"""Regenerate the paper's Table 1 and the per-theorem experiment reports.

Run with::

    python examples/table1_report.py            # quick sizes (~1 minute)
    python examples/table1_report.py --full     # paper-scale sizes

Prints the measured-vs-paper comparison for every cell of Table 1 plus the
supporting per-section experiments (Maj3 exact values, crumbling-wall bound,
tree and HQS exponent fits, randomized lower/upper bounds).
"""

from __future__ import annotations

import argparse

from repro.experiments import (
    Table1Sizes,
    render_table,
    render_table1,
    run_maj3_experiment,
    run_probe_cw_bound,
    run_probe_hqs_scaling,
    run_probe_tree_scaling,
    run_randomized_cw,
    run_randomized_hqs,
    run_randomized_majority,
    run_randomized_tree,
    run_table1,
    violations,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use larger instance sizes and more trials (slower, tighter CIs)",
    )
    args = parser.parse_args()

    if args.full:
        sizes = Table1Sizes(maj_n=201, triang_depth=20, tree_height=9, hqs_height=6)
        trials = 4000
        scaling_trials = 2500
    else:
        sizes = Table1Sizes(maj_n=101, triang_depth=12, tree_height=7, hqs_height=4)
        trials = 1000
        scaling_trials = 600

    table1_rows = run_table1(sizes=sizes, trials=trials)
    print(render_table1(table1_rows))
    print()

    print(render_table(run_maj3_experiment(), "Worked example: Maj3 (Section 2.3, Fig. 4)"))
    print()

    cw_rows = run_probe_cw_bound(ps=(0.3, 0.5), trials=trials)
    print(render_table(cw_rows, "Theorem 3.3: Probe_CW ≤ 2k − 1"))
    print()

    tree_rows, tree_fits = run_probe_tree_scaling(trials=scaling_trials)
    print(render_table(tree_rows, "Proposition 3.6: Probe_Tree scaling"))
    for p, fit in tree_fits.items():
        print(f"  fitted exponent at p={p}: {fit.exponent:.3f} (R² = {fit.r_squared:.4f})")
    print()

    hqs_rows, hqs_fits = run_probe_hqs_scaling(trials=scaling_trials)
    print(render_table(hqs_rows, "Theorem 3.8: Probe_HQS scaling"))
    for p, fit in hqs_fits.items():
        print(f"  fitted exponent at p={p}: {fit.exponent:.3f} (R² = {fit.r_squared:.4f})")
    print()

    rand_rows = (
        run_randomized_majority(trials=trials)
        + run_randomized_cw(trials=trials)
        + run_randomized_tree(trials=trials)
        + run_randomized_hqs(trials=scaling_trials)
    )
    print(render_table(rand_rows, "Section 4: randomized worst-case bounds"))
    print()

    all_rows = table1_rows + cw_rows + tree_rows + hqs_rows + rand_rows
    bad = violations(all_rows)
    if bad:
        print(f"WARNING: {len(bad)} rows violate their paper relation:")
        print(render_table(bad))
    else:
        print(f"All {len(all_rows)} checked relations consistent with the paper.")


if __name__ == "__main__":
    main()
