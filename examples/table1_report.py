"""Regenerate the paper's Table 1 and the per-theorem experiment reports.

Run with::

    python examples/table1_report.py            # quick sizes (~1 minute)
    python examples/table1_report.py --full     # paper-scale sizes
    python examples/table1_report.py --jobs 4   # fan sections across processes

Everything goes through the experiment registry and the unified runner —
the same pipeline as ``repro-probe run`` — so this script is just a
selection of spec ids plus parameter overrides.  It prints the
measured-vs-paper comparison for every cell of Table 1 and the supporting
per-section experiments (Maj3 exact values, crumbling-wall bound, tree and
HQS exponent fits, randomized lower/upper bounds), and can leave JSON
artifacts behind for later re-rendering with
``repro.experiments.writer.artifacts_to_markdown``.
"""

from __future__ import annotations

import argparse

from repro.experiments import render_table, violations
from repro.experiments.runner import run_experiments, write_artifacts

REPORT_IDS = ("table1", "maj3", "crumbling-walls", "tree", "hqs", "randomized")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="use larger instance sizes and more trials (slower, tighter CIs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="fan experiment sections across N processes"
    )
    parser.add_argument(
        "--output", default=None, help="also write one JSON artifact per section here"
    )
    args = parser.parse_args()

    overrides: dict = {"trials": 4000 if args.full else 1000}
    if args.full:
        overrides.update(maj_n=201, triang_depth=20, tree_height=9, hqs_height=6)

    results = run_experiments(REPORT_IDS, overrides=overrides, jobs=args.jobs)

    all_rows = []
    for result in results:
        print(render_table(result.rows, result.title))
        for line in result.extra:
            print(f"  {line}")
        print()
        all_rows.extend(result.rows)

    if args.output:
        for path in write_artifacts(results, args.output):
            print(f"wrote {path}")

    bad = violations(all_rows)
    if bad:
        print(f"WARNING: {len(bad)} rows violate their paper relation:")
        print(render_table(bad))
    else:
        print(f"All {len(all_rows)} checked relations consistent with the paper.")


if __name__ == "__main__":
    main()
