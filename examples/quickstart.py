"""Quickstart: build quorum systems, probe them, and compare against the paper.

Run with::

    python examples/quickstart.py

The script walks through the library's main concepts:

1. construct the coteries studied in the paper (Majority, Wheel, Triang,
   Tree, HQS) and inspect their structure;
2. draw a random failure pattern (the paper's probabilistic model) and run
   the paper's probing algorithm to find a witness;
3. estimate average probe complexities and compare them against the paper's
   closed-form bounds;
4. compute the exact probe complexities of the Maj3 worked example
   (PC = 3, PPC = 5/2, PCR = 8/3).
"""

from __future__ import annotations

import random

from repro import (
    Coloring,
    MajoritySystem,
    ProbeCW,
    ProbeHQS,
    ProbeTree,
    TreeSystem,
    TriangSystem,
    HQS,
    estimate_average_probes,
)
from repro.algorithms import ProbeMaj
from repro.core.exact import ExactSolver, permutation_algorithm_worst_expected
from repro.core.metrics import quorum_size_statistics
from repro.experiments.figures import render_all_figures
from repro.systems import WheelSystem


def section(title: str) -> None:
    print()
    print(title)
    print("-" * len(title))


def main() -> None:
    rng = random.Random(2001)

    section("1. The coteries studied in the paper")
    systems = [
        MajoritySystem(9),
        WheelSystem(8),
        TriangSystem(4),
        TreeSystem(2),
        HQS(2),
    ]
    for system in systems:
        stats = quorum_size_statistics(system)
        print(
            f"{system.name:<12} n={system.n:>3}  quorums={int(stats['count']):>4}  "
            f"quorum sizes {int(stats['min'])}..{int(stats['max'])}  "
            f"nondominated={system.is_nondominated()}"
        )
    print()
    print(render_all_figures())

    section("2. Probing for a witness under random failures (p = 1/2)")
    triang = TriangSystem(6)
    coloring = Coloring.random(triang.n, p=0.5, rng=rng)
    run = ProbeCW(triang).run_on(coloring, validate=True)
    print(f"failure pattern: {sorted(coloring.red_elements)} failed out of {triang.n}")
    print(
        f"Probe_CW probed {run.probes} elements (sequence {list(run.sequence)}) "
        f"and found a {run.witness.color.value} witness: {sorted(run.witness.elements)}"
    )

    section("3. Average probe complexity vs the paper's bounds")
    cases = [
        ("Maj(101), Prop 3.2: ~ n - Θ(√n) = 91",
         ProbeMaj(MajoritySystem(101)), 0.5),
        ("Triang(12), Thm 3.3: ≤ 2k - 1 = 23",
         ProbeCW(TriangSystem(12)), 0.5),
        ("Tree(h=7, n=255), Prop 3.6 recursion ≈ 49 = O(n^0.585)",
         ProbeTree(TreeSystem(7)), 0.5),
        ("HQS(h=4, n=81), Thm 3.8: 2.5^4 = 39.1",
         ProbeHQS(HQS(4)), 0.5),
    ]
    for label, algorithm, p in cases:
        estimate = estimate_average_probes(algorithm, p, trials=800, seed=1)
        print(f"{label:<50} measured {estimate.mean:7.2f} ± {estimate.ci95:.2f}")

    section("4. The Maj3 worked example (Section 2.3 / Fig. 4)")
    maj3 = MajoritySystem(3)
    solver = ExactSolver(maj3)
    print(f"PC(Maj3)      = {solver.probe_complexity()}          (paper: 3)")
    print(f"PPC_1/2(Maj3) = {solver.probabilistic_probe_complexity(0.5)}        (paper: 2.5)")
    print(f"PCR(Maj3)     = {permutation_algorithm_worst_expected(maj3):.4f}     (paper: 8/3 ≈ 2.6667)")


if __name__ == "__main__":
    main()
