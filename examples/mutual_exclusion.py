"""Quorum-based mutual exclusion under failures.

Run with::

    python examples/mutual_exclusion.py

This is the paper's first motivating application (distributed mutual
exclusion): before entering the critical section a client must hold locks on
every member of some quorum, and under failures it must first probe for a
*live* quorum.  The script drives a two-client workload over a simulated
cluster for several coteries and failure probabilities and reports:

* probes spent per critical-section attempt (the quantity the paper studies),
* how often no live quorum existed (availability, Fact 2.3),
* that mutual exclusion is never violated (quorum intersection).
"""

from __future__ import annotations

from repro.algorithms import ProbeCW, ProbeMaj, ProbeTree
from repro.simulation import BernoulliFailures, SimulatedCluster
from repro.simulation.protocols import QuorumMutex, run_mutex_workload
from repro.systems import MajoritySystem, TreeSystem, TriangSystem


def main() -> None:
    requests = 400
    clients = ["alice", "bob"]
    cases = [
        ("Majority(63)", MajoritySystem(63), ProbeMaj),
        ("Triang(10), n=55", TriangSystem(10), ProbeCW),
        ("Tree(h=5), n=63", TreeSystem(5), ProbeTree),
    ]
    print(f"{requests} critical-section requests, alternating clients {clients}\n")
    header = (
        f"{'coterie':<20} {'p(fail)':>8} {'probes/attempt':>14} "
        f"{'success rate':>12} {'no-quorum':>10}"
    )
    print(header)
    print("-" * len(header))
    for p in (0.05, 0.2, 0.4):
        for label, system, algorithm_cls in cases:
            cluster = SimulatedCluster(
                system.n, failure_model=BernoulliFailures(p), seed=11
            )
            mutex = QuorumMutex(cluster, algorithm_cls(system), seed=5)
            stats = run_mutex_workload(
                mutex,
                clients,
                requests=requests,
                failure_rate_between_requests=p / 4,
                seed=17,
            )
            print(
                f"{label:<20} {p:>8.2f} {stats.probes_per_attempt:>14.2f} "
                f"{stats.success_rate:>12.2f} {stats.failures_no_quorum:>10d}"
            )
        print()
    print("Probes per attempt track the paper's probabilistic bounds: "
          "close to n - Θ(√n) for Majority, ≤ 2k-1 for the wall, "
          "and the O(n^0.585)-type recursion value for the tree.")


if __name__ == "__main__":
    main()
