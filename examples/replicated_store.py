"""Quorum-replicated storage under failures: which coterie probes least?

Run with::

    python examples/replicated_store.py

This is the paper's second motivating application (replicated data).  A
replicated register is deployed over a simulated cluster whose nodes crash
and recover between operations.  Every read/write must first *probe* for a
live quorum; the script compares three coteries of comparable size —
Majority, Triang (a crumbling wall) and HQS — and three failure levels,
reporting probes per operation, success rate and consistency (a read must
never return a value older than the last committed write).

The punchline mirrors Theorem 3.3: the crumbling wall needs only O(k)
probes per operation regardless of how many replicas there are, whereas
Majority must probe about half the cluster.
"""

from __future__ import annotations

from repro.algorithms import ProbeCW, ProbeHQS, ProbeMaj
from repro.simulation import BernoulliFailures, SimulatedCluster
from repro.simulation.protocols import ReplicatedRegister, run_replication_workload
from repro.systems import HQS, MajoritySystem, TriangSystem


def build_cases():
    """Three coteries of roughly comparable size (n = 81, 78, 81)."""
    maj = MajoritySystem(81)
    triang = TriangSystem(12)  # n = 78, 12 rows
    hqs = HQS(4)  # n = 81, quorums of size 16
    return [
        ("Majority(81)", maj, ProbeMaj(maj)),
        ("Triang(12), n=78", triang, ProbeCW(triang)),
        ("HQS(h=4), n=81", hqs, ProbeHQS(hqs)),
    ]


def main() -> None:
    operations = 300
    print(f"{operations} operations per configuration (30% writes), "
          "nodes toggle up/down between operations\n")
    header = (
        f"{'coterie':<20} {'fail-rate':>9} {'probes/op':>10} "
        f"{'failed ops':>10} {'stale reads':>11}"
    )
    print(header)
    print("-" * len(header))
    for failure_rate in (0.01, 0.05, 0.15):
        for label, system, prober in build_cases():
            cluster = SimulatedCluster(
                system.n,
                failure_model=BernoulliFailures(0.1),
                seed=42,
            )
            register = ReplicatedRegister(cluster, prober, seed=7)
            stats = run_replication_workload(
                register,
                operations=operations,
                write_fraction=0.3,
                failure_rate_between_ops=failure_rate,
                seed=13,
            )
            print(
                f"{label:<20} {failure_rate:>9.2f} {stats.probes_per_operation:>10.2f} "
                f"{stats.failed_operations:>10d} {stats.stale_reads:>11d}"
            )
        print()
    print("Note how the crumbling wall's probes/op stays near 2k-1 = 23 "
          "while Majority pays close to n - Θ(√n) ≈ 72 probes, "
          "matching Theorem 3.3 vs Proposition 3.2.")


if __name__ == "__main__":
    main()
