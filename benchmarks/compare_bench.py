"""Diff two ``BENCH_*.json`` snapshots and gate on perf regressions.

Usage::

    python benchmarks/compare_bench.py OLD.json NEW.json [--threshold 0.2]
    python benchmarks/compare_bench.py --quick OLD.json NEW.json   # CI gate
    python benchmarks/compare_bench.py --history [SNAPSHOT...]     # trajectory

``--history`` renders a perf-trajectory table instead of gating: one
column per snapshot (default: every ``BENCH_*.json`` committed in the
repo root, ordered by date), one row per ratio metric — speedups and
throughput ratios, the host-normalized numbers that stay comparable
across the machines the committed snapshots came from.  Absolute
timings are deliberately omitted: across container hosts they track the
hardware, not the code.

Walks both snapshots, pairs up every *shared* performance metric by its
path (sections keyed recursively; list entries matched by their
``algorithm``/``source``/``system``/``experiment`` label when present,
else by index) and classifies metrics by name:

* ``*seconds*`` — wall-clock timings, lower is better;
* ``speedup`` / ``*_ratio`` — throughput ratios, higher is better.

Any shared metric that regressed by more than ``--threshold`` (default
20%) fails the comparison and the script exits nonzero, printing one line
per regression.  Metrics present in only one snapshot never fail the gate
(sections come and go as the suite grows) but are reported explicitly:
a wholly one-sided section prints one ``NEW section``/``REMOVED section``
line with its metric count, while a one-sided metric inside a section both
snapshots share prints its own ``NEW metric``/``REMOVED metric`` line —
a silently vanished metric is how a rename sneaks past the gate.  Timings
below ``--min-seconds`` (default 5 ms) in *both* snapshots are skipped —
at that scale the numbers are scheduler noise, not signal.

``--quick`` is the CI profile: it raises the default threshold to 100%
(committed snapshots may come from different container hosts, so only
egregious — >2x — regressions should block) and refuses to compare a
``--quick`` benchmark run against a full one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Identifying fields used to pair entries of benchmark-case lists.
_CASE_KEYS = ("algorithm", "source", "experiment", "system", "name")

#: Snapshot bookkeeping fields that are never performance metrics.
_SKIP_KEYS = {"date", "quick", "python", "machine"}


def flatten(node, prefix: str = "") -> dict[str, float]:
    """Flatten a snapshot into ``{metric path: numeric value}``."""
    metrics: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if key in _SKIP_KEYS and not prefix:
                continue
            metrics.update(flatten(value, f"{prefix}{key}" if not prefix else f"{prefix}.{key}"))
    elif isinstance(node, list):
        seen: set[str] = set()
        for index, entry in enumerate(node):
            label = str(index)
            if isinstance(entry, dict):
                # Compose the label from every identifying field so two
                # cases sharing e.g. an algorithm name but differing in
                # system/size pair up correctly across snapshots.
                parts = [str(entry[key]) for key in _CASE_KEYS if key in entry]
                if parts:
                    label = "/".join(parts)
            if label in seen:
                label = f"{label}#{index}"
            seen.add(label)
            metrics.update(flatten(entry, f"{prefix}[{label}]"))
    elif isinstance(node, bool):
        pass
    elif isinstance(node, (int, float)):
        metrics[prefix] = float(node)
    return metrics


def classify(path: str) -> str | None:
    """``"time"`` (lower better), ``"ratio"`` (higher better) or ``None``."""
    leaf = path.rsplit(".", 1)[-1]
    if "seconds" in leaf:
        return "time"
    if leaf == "speedup" or leaf.endswith("_ratio"):
        return "ratio"
    return None


def _ratio_built_on_noise(
    path: str, old: dict[str, float], new: dict[str, float], min_seconds: float
) -> bool:
    """True when a ratio metric's sibling timings include a sub-floor one.

    A speedup computed from a 30-microsecond numpy call is scheduler noise
    squared; if *any* timing in the ratio's own benchmark case sits below
    the noise floor in either snapshot, the ratio inherits that noise and
    must not gate.
    """
    prefix = path.rsplit(".", 1)[0] + "."
    for sibling in old:
        if (
            sibling.startswith(prefix)
            and classify(sibling) == "time"
            and sibling in new
            and (old[sibling] < min_seconds or new[sibling] < min_seconds)
        ):
            return True
    return False


def compare(
    old: dict[str, float],
    new: dict[str, float],
    threshold: float,
    min_seconds: float,
) -> tuple[list[str], list[str]]:
    """Return ``(regressions, notes)`` comparing shared perf metrics."""
    regressions: list[str] = []
    notes: list[str] = []
    shared = sorted(set(old) & set(new))
    compared = 0
    for path in shared:
        kind = classify(path)
        if kind is None:
            continue
        before, after = old[path], new[path]
        if kind == "time" and before < min_seconds and after < min_seconds:
            continue
        if kind == "ratio" and _ratio_built_on_noise(path, old, new, min_seconds):
            continue
        if before <= 0 or after <= 0:
            continue
        compared += 1
        change = (after / before - 1.0) if kind == "time" else (before / after - 1.0)
        if change > threshold:
            direction = "slower" if kind == "time" else "lower"
            regressions.append(
                f"REGRESSION {path}: {before:.6g} -> {after:.6g} "
                f"({change * 100.0:+.0f}% {direction})"
            )
    only_old = sorted(key for key in set(old) - set(new) if classify(key))
    only_new = sorted(key for key in set(new) - set(old) if classify(key))
    notes.append(f"{compared} shared performance metrics compared")
    notes.extend(_one_sided_notes(only_old, new, "REMOVED"))
    notes.extend(_one_sided_notes(only_new, old, "NEW"))
    return regressions, notes


def _section_of(path: str) -> str:
    """The top-level snapshot section a flattened metric path belongs to."""
    for stop in (".", "["):
        index = path.find(stop)
        if index != -1:
            path = path[:index]
    return path


def _one_sided_notes(
    only: list[str], other: dict[str, float], tag: str
) -> list[str]:
    """``NEW``/``REMOVED`` lines for metrics present in one snapshot only.

    Grouped by top-level section: a section absent from ``other``
    altogether collapses to one line with its metric count; a one-sided
    metric inside a section both snapshots have is listed individually.
    """
    by_section: dict[str, list[str]] = {}
    for path in only:
        by_section.setdefault(_section_of(path), []).append(path)
    other_sections = {_section_of(path) for path in other}
    notes = []
    for section in sorted(by_section):
        paths = by_section[section]
        if section in other_sections:
            notes.extend(f"{tag} metric {path}" for path in paths)
        else:
            count = len(paths)
            notes.append(
                f"{tag} section {section} ({count} metric{'s' if count != 1 else ''})"
            )
    return notes


def history(paths: list[Path]) -> int:
    """Render the perf trajectory of ratio metrics across snapshots."""
    if not paths:
        root = Path(__file__).resolve().parent.parent
        paths = sorted(root.glob("BENCH_*.json"))
    if not paths:
        print("compare_bench --history: no BENCH_*.json snapshots found")
        return 2
    snapshots = []
    for path in paths:
        payload = json.loads(Path(path).read_text())
        label = payload.get("date", Path(path).stem)
        if payload.get("quick"):
            label += " (quick)"
        snapshots.append((label, flatten(payload)))
    snapshots.sort(key=lambda item: item[0])

    rows = sorted({
        path
        for _, metrics in snapshots
        for path in metrics
        if classify(path) == "ratio"
    })
    if not rows:
        print("compare_bench --history: no ratio metrics in any snapshot")
        return 2
    name_width = max(len(row) for row in rows)
    col_widths = [max(len(label), 8) for label, _ in snapshots]
    header = "metric".ljust(name_width) + "".join(
        f"  {label:>{width}}" for (label, _), width in zip(snapshots, col_widths)
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for (_, metrics), width in zip(snapshots, col_widths):
            value = metrics.get(row)
            cells.append(
                f"  {value:>{width}.2f}" if value is not None else f"  {'—':>{width}}"
            )
        print(row.ljust(name_width) + "".join(cells))
    print(
        f"\n{len(rows)} ratio metrics across {len(snapshots)} snapshots "
        "(— = not measured in that snapshot; timings omitted as host-bound)"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths",
        type=Path,
        nargs="*",
        help="OLD.json NEW.json to gate, or any number of snapshots "
        "with --history (default: repo-root BENCH_*.json)",
    )
    parser.add_argument(
        "--history",
        action="store_true",
        help="render a perf-trajectory table across snapshots instead of gating",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="fail on regressions beyond this fraction (default 0.2; 1.0 with --quick)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="skip timings below this in both snapshots (noise floor)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI profile: lenient threshold, require matching quick flags",
    )
    args = parser.parse_args(argv)
    if args.history:
        return history(args.paths)
    if len(args.paths) != 2:
        parser.error("expected exactly two snapshots: OLD.json NEW.json")
    args.old, args.new = args.paths
    threshold = args.threshold
    if threshold is None:
        threshold = 1.0 if args.quick else 0.2

    old_payload = json.loads(args.old.read_text())
    new_payload = json.loads(args.new.read_text())
    if args.quick and old_payload.get("quick") != new_payload.get("quick"):
        print(
            "compare_bench: refusing to compare a --quick snapshot against a "
            f"full one ({args.old.name} quick={old_payload.get('quick')}, "
            f"{args.new.name} quick={new_payload.get('quick')})"
        )
        return 2

    regressions, notes = compare(
        flatten(old_payload), flatten(new_payload), threshold, args.min_seconds
    )
    print(
        f"compare_bench: {args.old.name} ({old_payload.get('date')}) -> "
        f"{args.new.name} ({new_payload.get('date')}), "
        f"threshold {threshold * 100.0:.0f}%"
    )
    for note in notes:
        print(f"  {note}")
    for line in regressions:
        print(f"  {line}")
    if regressions:
        print(f"FAIL: {len(regressions)} regressed metrics")
        return 1
    print("OK: no shared metric regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
