"""Benchmark `thm3.8-hqs`: HQS in the probabilistic model."""

from __future__ import annotations

import math

from conftest import report, run_experiment_once

from repro.experiments.hqs import run_probe_hqs_optimality, run_probe_hqs_scaling
from repro.experiments.report import render_table, violations


def test_probe_hqs_exponent(benchmark, fast_trials):
    rows, fits = run_experiment_once(
        benchmark,
        run_probe_hqs_scaling,
        heights=(2, 3, 4, 5),
        ps=(0.5, 0.25),
        trials=fast_trials,
        seed=37,
    )
    print()
    print(render_table(rows, "Theorem 3.8: Probe_HQS scaling"))
    assert not violations(rows)

    # Shape claims: the p = 1/2 exponent matches log3(2.5) ≈ 0.834 — strictly
    # larger than the quorum-size exponent log3(2) ≈ 0.63 (the paper's point
    # that PPC can exceed the quorum size asymptotically) — and the biased-p
    # exponent drops towards log3(2).
    assert abs(fits[0.5].exponent - math.log(2.5, 3)) < 0.05
    assert fits[0.5].exponent > math.log(2.0, 3) + 0.1
    assert fits[0.25].exponent < fits[0.5].exponent


def test_probe_hqs_optimality_crosscheck(benchmark):
    rows = run_experiment_once(benchmark, run_probe_hqs_optimality, heights=(1, 2))
    report(rows, "Theorem 3.9 cross-check (exact optimum vs Probe_HQS)")
