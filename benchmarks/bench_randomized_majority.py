"""Benchmark `thm4.2-maj-rand`: randomized Majority probing, worst case."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.analysis.yao import majority_lower_bound
from repro.experiments.majority import run_randomized_majority
from repro.experiments.report import render_table


def test_r_probe_maj_matches_theorem_4_2(benchmark, fast_trials):
    sizes = (5, 9, 21, 51)
    rows = run_experiment_once(
        benchmark, run_randomized_majority, sizes=sizes, trials=4 * fast_trials, seed=4002
    )
    print()
    print(render_table(rows, "Theorem 4.2: PCR(Maj) = n − (n−1)/(n+3)"))
    # Shape: both the worst-input measurement (upper side) and the hard-
    # distribution measurement (Yao lower side) agree with the exact value
    # within 5%, pinching PCR(Maj).
    for row in rows:
        exact = majority_lower_bound(row.params["n"])
        assert abs(row.measured - exact) / exact < 0.05
