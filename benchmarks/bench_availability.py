"""Benchmark `availability`: F_p(S) measurements and Fact 2.3 identities."""

from __future__ import annotations

from conftest import report, run_experiment_once

from repro.experiments.availability import run_availability_experiment


def test_availability_identities_and_recursions(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark, run_availability_experiment, ps=(0.1, 0.3, 0.5), trials=2 * fast_trials, seed=61
    )
    report(rows, "Availability: Fact 2.3 identities, recursions vs enumeration vs Monte-Carlo")
    # The Monte-Carlo rows (relation "~") should track the exact values.
    mc_rows = [r for r in rows if "Monte-Carlo" in r.quantity]
    for row in mc_rows:
        assert abs(row.measured - row.paper) < 0.05
