"""Benchmark `table1`: regenerate the paper's Table 1 (all 16 cells)."""

from __future__ import annotations

from conftest import report, run_experiment_once

from repro.experiments.table1 import Table1Sizes, render_table1, run_table1


def test_table1_regeneration(benchmark, fast_trials):
    sizes = Table1Sizes(maj_n=101, triang_depth=10, tree_height=6, hqs_height=4)
    rows = run_experiment_once(
        benchmark, run_table1, sizes=sizes, trials=fast_trials, seed=1001
    )
    print()
    print(render_table1(rows))
    report(rows, "Table 1 (benchmark-sized regeneration)")

    # Shape claims of Table 1 beyond the per-row relations:
    by_cell = {(r.system, r.quantity): r for r in rows}
    maj_ppc = by_cell[("Maj", "probabilistic p=1/2 (lower n-Θ(√n))")].measured
    tri_ppc = by_cell[("Triang", "probabilistic p=1/2 (upper 2k-1)")].measured
    tree_ppc = by_cell[("Tree", "probabilistic p=1/2 (upper O(n^0.585))")].measured
    hqs_ppc = by_cell[("HQS", "probabilistic p=1/2 (upper O(n^0.834))")].measured

    # In the probabilistic model the wall is by far the cheapest, the tree is
    # sublinear, HQS sits between quorum size and n, and Majority is ~n.
    assert tri_ppc < tree_ppc < maj_ppc
    assert hqs_ppc < maj_ppc
