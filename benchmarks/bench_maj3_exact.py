"""Benchmark `fig4-maj3`: the Section 2.3 worked example, computed exactly."""

from __future__ import annotations

import math

from conftest import report, run_experiment_once

from repro.experiments.maj3 import maj3_strategy_tree_summary, run_maj3_experiment


def test_maj3_exact_complexities(benchmark):
    rows = run_experiment_once(benchmark, run_maj3_experiment)
    report(rows, "Maj3 worked example (PC, PPC, PCR)")
    values = {row.quantity: row.measured for row in rows}
    assert values["PC (deterministic worst case)"] == 3.0
    assert math.isclose(values["PPC at p=1/2"], 2.5)
    assert math.isclose(values["PCR upper (random permutation alg.)"], 8 / 3)
    assert math.isclose(values["PCR lower (Yao, Thm 4.2 distribution)"], 8 / 3)


def test_maj3_optimal_strategy_tree(benchmark):
    summary = run_experiment_once(benchmark, maj3_strategy_tree_summary)
    print(f"\noptimal Maj3 strategy tree: {summary}")
    assert summary["depth"] == 3.0
    assert math.isclose(summary["expected_depth_half"], 2.5)
