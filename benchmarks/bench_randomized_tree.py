"""Benchmark `thm4.7-tree-rand`: randomized Tree probing, worst case."""

from __future__ import annotations

from conftest import report, run_experiment_once

from repro.experiments.report import render_table
from repro.experiments.tree import (
    run_deterministic_vs_randomized_tree,
    run_randomized_tree,
)


def test_r_probe_tree_between_paper_bounds(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark, run_randomized_tree, heights=(3, 5, 7, 9), trials=2 * fast_trials, seed=29
    )
    report(rows, "Theorems 4.7 / 4.8: 2(n+1)/3 ≤ R_Probe_Tree ≤ 5n/6 + 1/6")
    # Shape: the cost is linear in n with a slope strictly between the two
    # paper constants (2/3 and 5/6).
    upper_rows = [r for r in rows if r.relation == "<="]
    for row in upper_rows:
        n = row.params["n"]
        assert 0.60 * n <= row.measured <= 0.88 * n


def test_randomized_beats_deterministic_on_hard_inputs(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark,
        run_deterministic_vs_randomized_tree,
        heights=(3, 5, 7),
        trials=2 * fast_trials,
        seed=31,
    )
    print()
    print(render_table(rows, "Hard-input probes: deterministic / randomized ratio"))
    # The deterministic fixed-order algorithm pays strictly more than the
    # randomized one on the Theorem 4.8 inputs (ratio > 1), which is the
    # paper's motivation for Section 4.
    for row in rows:
        assert row.measured > 1.05
