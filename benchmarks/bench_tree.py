"""Benchmark `prop3.6-tree`: the Tree system in the probabilistic model."""

from __future__ import annotations

import math

from conftest import run_experiment_once

from repro.experiments.report import render_table, violations
from repro.experiments.tree import run_probe_tree_scaling


def test_probe_tree_exponent(benchmark, fast_trials):
    rows, fits = run_experiment_once(
        benchmark,
        run_probe_tree_scaling,
        heights=(3, 4, 5, 6, 7, 8),
        ps=(0.5, 0.3, 0.1),
        trials=fast_trials,
        seed=23,
    )
    print()
    print(render_table(rows, "Proposition 3.6 / Corollary 3.7: Probe_Tree scaling"))
    assert not violations(rows)

    # Shape claims: the fitted exponent at p = 1/2 is close to log2(1.5) and
    # strictly below 1 (sublinear), and biasing p lowers the exponent.
    assert abs(fits[0.5].exponent - math.log2(1.5)) < 0.12
    assert fits[0.5].exponent < 0.75
    assert fits[0.1].exponent < fits[0.3].exponent < fits[0.5].exponent + 0.02
    for fit in fits.values():
        assert fit.r_squared > 0.98
