"""Benchmark `lemma2.4-walk` and `lemma2.8-2.9-urn`: the technical lemmas."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.lemmas import run_urn_experiment, run_walk_experiment
from repro.experiments.report import render_table


def test_grid_walk_exit_times(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark,
        run_walk_experiment,
        sizes=(10, 50, 200, 1000),
        ps=(0.5, 0.3),
        trials=2 * fast_trials,
        seed=43,
    )
    print()
    print(render_table(rows, "Lemma 2.4: grid random-walk exit time"))
    for row in rows:
        assert abs(row.measured - row.paper) / row.paper < 0.05
    # Shape: at p = 1/2 the exit time approaches 2N from below; for p < 1/2
    # it approaches N/q.
    for row in rows:
        n, p = row.params["N"], row.params["p"]
        if p == 0.5:
            assert 1.6 * n <= row.measured <= 2.0 * n
        else:
            assert abs(row.measured - n / (1 - p)) < 0.15 * n


def test_urn_expectations(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark,
        run_urn_experiment,
        cases=((3, 5), (10, 10), (20, 5), (1, 30)),
        trials=4 * fast_trials,
        seed=59,
    )
    print()
    print(render_table(rows, "Lemmas 2.8 / 2.9: urn expectations"))
    for row in rows:
        assert abs(row.measured - row.paper) / row.paper < 0.05
