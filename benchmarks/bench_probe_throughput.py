"""Micro-benchmarks of the probing machinery itself.

These are conventional pytest-benchmark timings (operations per second) for
the hot paths a downstream user cares about: running each of the paper's
algorithms once on a large instance, evaluating the characteristic function,
and serving probes from the simulated cluster.  They complement the
experiment-level benchmarks, which measure probes rather than wall-clock
time.
"""

from __future__ import annotations

import random

from repro.algorithms import IRProbeHQS, ProbeCW, ProbeHQS, ProbeMaj, ProbeTree, RProbeTree
from repro.core.coloring import Coloring
from repro.core.oracle import ColoringOracle
from repro.simulation.cluster import ClusterProbeOracle, SimulatedCluster
from repro.simulation.failures import BernoulliFailures
from repro.systems import HQS, MajoritySystem, TreeSystem, TriangSystem


def _coloring(n: int, seed: int) -> Coloring:
    return Coloring.random(n, 0.5, random.Random(seed))


def test_probe_maj_single_run(benchmark):
    system = MajoritySystem(1001)
    coloring = _coloring(system.n, 1)
    algorithm = ProbeMaj(system)
    result = benchmark(lambda: algorithm.run_on(coloring))
    assert result.probes <= system.n


def test_probe_cw_single_run(benchmark):
    system = TriangSystem(45)  # n = 1035
    coloring = _coloring(system.n, 2)
    algorithm = ProbeCW(system)
    result = benchmark(lambda: algorithm.run_on(coloring))
    assert result.probes <= system.n


def test_probe_tree_single_run(benchmark):
    system = TreeSystem(10)  # n = 2047
    coloring = _coloring(system.n, 3)
    algorithm = ProbeTree(system)
    result = benchmark(lambda: algorithm.run_on(coloring))
    assert result.probes <= system.n


def test_randomized_tree_single_run(benchmark):
    system = TreeSystem(10)
    coloring = _coloring(system.n, 4)
    algorithm = RProbeTree(system)
    rng = random.Random(5)
    result = benchmark(lambda: algorithm.run_on(coloring, rng=rng))
    assert result.probes <= system.n


def test_probe_hqs_single_run(benchmark):
    system = HQS(7)  # n = 2187
    coloring = _coloring(system.n, 6)
    algorithm = ProbeHQS(system)
    result = benchmark(lambda: algorithm.run_on(coloring))
    assert result.probes <= system.n


def test_ir_probe_hqs_single_run(benchmark):
    system = HQS(7)
    coloring = _coloring(system.n, 7)
    algorithm = IRProbeHQS(system)
    rng = random.Random(8)
    result = benchmark(lambda: algorithm.run_on(coloring, rng=rng))
    assert result.probes <= system.n


def test_characteristic_function_evaluation(benchmark):
    system = TriangSystem(45)
    subset = frozenset(e for e in system.universe if e % 3 != 0)
    value = benchmark(lambda: system.contains_quorum(subset))
    assert isinstance(value, bool)


def test_cluster_probe_round_trip(benchmark):
    system = TriangSystem(45)
    cluster = SimulatedCluster(system.n, failure_model=BernoulliFailures(0.3), seed=9)
    algorithm = ProbeCW(system)

    def probe_once():
        oracle = ClusterProbeOracle(cluster)
        return algorithm.run(oracle, rng=None)

    result = benchmark(probe_once)
    assert result.witness is not None


def test_in_memory_oracle_overhead(benchmark):
    coloring = _coloring(2001, 10)

    def probe_all():
        oracle = ColoringOracle(coloring)
        for e in range(1, 2002):
            oracle.probe(e)
        return oracle.probe_count

    assert benchmark(probe_all) == 2001
