"""Micro-benchmarks of the probing machinery itself.

These are conventional pytest-benchmark timings (operations per second) for
the hot paths a downstream user cares about: running each of the paper's
algorithms once on a large instance, evaluating the characteristic function,
and serving probes from the simulated cluster.  They complement the
experiment-level benchmarks, which measure probes rather than wall-clock
time.
"""

from __future__ import annotations

import random

from repro.algorithms import IRProbeHQS, ProbeCW, ProbeHQS, ProbeMaj, ProbeTree, RProbeTree
from repro.core.coloring import Coloring
from repro.core.oracle import ColoringOracle
from repro.simulation.cluster import ClusterProbeOracle, SimulatedCluster
from repro.simulation.failures import BernoulliFailures
from repro.systems import HQS, MajoritySystem, TreeSystem, TriangSystem


def _coloring(n: int, seed: int) -> Coloring:
    return Coloring.random(n, 0.5, random.Random(seed))


def test_probe_maj_single_run(benchmark):
    system = MajoritySystem(1001)
    coloring = _coloring(system.n, 1)
    algorithm = ProbeMaj(system)
    result = benchmark(lambda: algorithm.run_on(coloring))
    assert result.probes <= system.n


def test_probe_cw_single_run(benchmark):
    system = TriangSystem(45)  # n = 1035
    coloring = _coloring(system.n, 2)
    algorithm = ProbeCW(system)
    result = benchmark(lambda: algorithm.run_on(coloring))
    assert result.probes <= system.n


def test_probe_tree_single_run(benchmark):
    system = TreeSystem(10)  # n = 2047
    coloring = _coloring(system.n, 3)
    algorithm = ProbeTree(system)
    result = benchmark(lambda: algorithm.run_on(coloring))
    assert result.probes <= system.n


def test_randomized_tree_single_run(benchmark):
    system = TreeSystem(10)
    coloring = _coloring(system.n, 4)
    algorithm = RProbeTree(system)
    rng = random.Random(5)
    result = benchmark(lambda: algorithm.run_on(coloring, rng=rng))
    assert result.probes <= system.n


def test_probe_hqs_single_run(benchmark):
    system = HQS(7)  # n = 2187
    coloring = _coloring(system.n, 6)
    algorithm = ProbeHQS(system)
    result = benchmark(lambda: algorithm.run_on(coloring))
    assert result.probes <= system.n


def test_ir_probe_hqs_single_run(benchmark):
    system = HQS(7)
    coloring = _coloring(system.n, 7)
    algorithm = IRProbeHQS(system)
    rng = random.Random(8)
    result = benchmark(lambda: algorithm.run_on(coloring, rng=rng))
    assert result.probes <= system.n


def test_characteristic_function_evaluation(benchmark):
    system = TriangSystem(45)
    subset = frozenset(e for e in system.universe if e % 3 != 0)
    value = benchmark(lambda: system.contains_quorum(subset))
    assert isinstance(value, bool)


def test_cluster_probe_round_trip(benchmark):
    system = TriangSystem(45)
    cluster = SimulatedCluster(system.n, failure_model=BernoulliFailures(0.3), seed=9)
    algorithm = ProbeCW(system)

    def probe_once():
        oracle = ClusterProbeOracle(cluster)
        return algorithm.run(oracle, rng=None)

    result = benchmark(probe_once)
    assert result.witness is not None


def test_in_memory_oracle_overhead(benchmark):
    coloring = _coloring(2001, 10)

    def probe_all():
        oracle = ColoringOracle(coloring)
        for e in range(1, 2002):
            oracle.probe(e)
        return oracle.probe_count

    assert benchmark(probe_all) == 2001


def test_coloring_random_large(benchmark):
    # n = 2000 uses the binomial-count fast path of Coloring.random.
    rng = random.Random(11)
    coloring = benchmark(lambda: Coloring.random(2000, 0.5, rng))
    assert coloring.n == 2000


def test_batched_montecarlo_probe_maj(benchmark):
    from repro.core.batched import estimate_average_probes_batched

    algorithm = ProbeMaj(MajoritySystem(1001))
    estimate = benchmark(
        lambda: estimate_average_probes_batched(algorithm, 0.5, trials=1000, seed=12)
    )
    assert estimate.trials == 1000


def test_batched_montecarlo_probe_cw(benchmark):
    from repro.core.batched import estimate_average_probes_batched

    algorithm = ProbeCW(TriangSystem(45))
    estimate = benchmark(
        lambda: estimate_average_probes_batched(algorithm, 0.5, trials=1000, seed=13)
    )
    assert estimate.trials == 1000


def test_mask_characteristic_function_evaluation(benchmark):
    from repro.core.bitmask import mask_of

    system = TriangSystem(45)
    mask = mask_of(e for e in system.universe if e % 3 != 0)
    value = benchmark(lambda: system.contains_quorum_mask(mask))
    assert isinstance(value, bool)


def test_exact_solver_ppc_n12(benchmark):
    from repro.core.exact import ExactSolver
    from repro.systems import CrumblingWall

    system = CrumblingWall([1, 2, 3, 3, 3])

    def solve():
        return ExactSolver(system).probabilistic_probe_complexity(0.5)

    value = benchmark.pedantic(solve, rounds=1, iterations=1)
    assert 0.0 < value <= system.n
