"""Benchmark `thm4.4-cw-rand`: randomized crumbling-wall probing, worst case."""

from __future__ import annotations

from conftest import report, run_experiment_once

from repro.experiments.crumbling_walls import run_randomized_cw


def test_r_probe_cw_between_yao_and_row_bound(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark, run_randomized_cw, depths=(5, 8, 12), trials=2 * fast_trials, seed=19
    )
    report(rows, "Theorems 4.4 / 4.6 and Corollary 4.5: R_Probe_CW")

    # Shape: on Triang the measured hard-input cost sits between (n+k)/2 and
    # the per-row bound, i.e. it is Θ(n/2) — half the universe, unlike the
    # probabilistic model's O(k).
    triang_rows = [r for r in rows if r.system.startswith("Triang") and r.relation == ">="]
    for row in triang_rows:
        n = row.params["n"]
        assert row.measured > 0.45 * n
