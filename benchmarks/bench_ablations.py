"""Benchmarks `ablation-cw-order`, `ablation-hqs`, `ablation-generic`."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.ablations import (
    run_cw_order_ablation,
    run_generic_baseline_ablation,
    run_hqs_ablation,
)
from repro.experiments.report import render_table


def test_cw_probing_order_ablation(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark, run_cw_order_ablation, depth=12, ps=(0.1, 0.3, 0.5), trials=fast_trials, seed=67
    )
    print()
    print(render_table(rows, "Ablation: Probe_CW vs alternative probing orders (Triang(12), n=78)"))
    by_variant = {}
    for row in rows:
        if row.params["p"] == 0.5:
            by_variant[row.quantity] = row.measured
    paper = by_variant["avg probes [Probe_CW (paper, lexicographic rows)]"]
    random_rows = by_variant["avg probes [Probe_CW (random within-row order)]"]
    bottom_up = by_variant["avg probes [R_Probe_CW (bottom-up randomized)]"]
    sequential = by_variant["avg probes [SequentialScan (element order)]"]
    # The paper's top-down structure is what matters: randomizing the
    # within-row order changes nothing measurable, while the bottom-up scan
    # and the generic scans pay Θ(n) instead of Θ(k).
    assert abs(paper - random_rows) < 1.5
    assert paper <= 2 * 12 - 1 + 0.5
    assert bottom_up > paper + 3.0
    assert sequential > 1.5 * paper


def test_hqs_laziness_ablation(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark, run_hqs_ablation, heights=(2, 3, 4), p=0.5, trials=fast_trials, seed=71
    )
    print()
    print(render_table(rows, "Ablation: lazy vs eager vs randomized HQS evaluation"))
    for height in (2, 3, 4):
        values = {
            row.quantity: row.measured for row in rows if row.params["h"] == height
        }
        lazy = values["avg probes [Probe_HQS (lazy, paper)]"]
        eager = values["avg probes [EagerProbeHQS (no short-circuit)]"]
        # Skipping the third child when two agree saves a constant factor
        # that compounds per level: (2.5/3)^h.
        assert lazy < eager
        assert abs(eager - 3.0**height) < 1e-9
        assert abs(lazy - 2.5**height) / 2.5**height < 0.1


def test_generic_baseline_ablation(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark, run_generic_baseline_ablation, trials=fast_trials, seed=73
    )
    print()
    print(render_table(rows, "Ablation: specialised algorithms vs universal candidate-quorum probing"))
    # Structural algorithms never do dramatically worse than the generic
    # baseline (within 2x) on their own systems.
    for row in rows:
        assert row.measured <= 2.0 * row.paper + 2.0
