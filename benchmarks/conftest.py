"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (see the
per-experiment index in DESIGN.md), asserts the *shape* claims (who wins,
bound satisfied, exponent in range) and prints the regenerated rows so the
numbers can be compared against EXPERIMENTS.md.

The experiment drivers are deliberately run once per benchmark round
(``rounds=1``) — the quantity being benchmarked is the experiment itself,
and its statistical quality comes from its internal Monte-Carlo trials, not
from repeating the whole driver.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import Row, render_table, violations


def run_experiment_once(benchmark, func, *args, **kwargs):
    """Run an experiment driver under pytest-benchmark (single round)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def report(rows: list[Row], title: str) -> None:
    """Print the regenerated table and fail on any violated paper relation."""
    print()
    print(render_table(rows, title))
    bad = violations(rows)
    assert not bad, f"{len(bad)} rows violate their paper relation:\n{render_table(bad)}"


@pytest.fixture
def fast_trials() -> int:
    """Trial count used by the benchmark-sized experiment runs."""
    return 600
