"""Benchmark `prop3.2-maj`: Majority in the probabilistic model."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.experiments.majority import (
    majority_sqrt_deficit_fit,
    run_probabilistic_majority,
)
from repro.experiments.report import render_table


def test_majority_average_probes_track_proposition_3_2(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark,
        run_probabilistic_majority,
        sizes=(11, 25, 51, 101),
        ps=(0.5, 0.3, 0.1),
        trials=fast_trials,
        seed=2001,
    )
    print()
    print(render_table(rows, "Proposition 3.2: Probe_Maj average probes"))
    # Shape: the measurement tracks the exact finite-n expectation within 10%.
    for row in rows:
        assert abs(row.measured - row.paper) / row.paper < 0.10
    # Shape: smaller p means fewer probes at every n.
    for n in (11, 25, 51, 101):
        per_p = {row.params["p"]: row.measured for row in rows if row.params["n"] == n}
        assert per_p[0.1] < per_p[0.3] < per_p[0.5] + 1e-9


def test_majority_sqrt_deficit(benchmark):
    fit = run_experiment_once(
        benchmark, majority_sqrt_deficit_fit, sizes=(25, 51, 101, 201), trials=1200, seed=7
    )
    print(f"\nΘ(√n) deficit fit: n - E[probes] ≈ {fit.sqrt_coefficient:.3f}·√n - {fit.offset:.3f} "
          f"(R² = {fit.r_squared:.4f})")
    # The deficit really is of √n order: coefficient bounded away from 0,
    # and the fit explains the data.
    assert 0.3 < fit.sqrt_coefficient < 2.5
    assert fit.r_squared > 0.9
