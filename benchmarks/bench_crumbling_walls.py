"""Benchmark `thm3.3-cw`: crumbling walls in the probabilistic model."""

from __future__ import annotations

from conftest import report, run_experiment_once

from repro.experiments.crumbling_walls import (
    run_cw_independence_of_n,
    run_probe_cw_bound,
    run_wheel_and_triang_corollaries,
)
from repro.systems.crumbling_walls import TriangSystem, uniform_wall


def test_probe_cw_respects_2k_minus_1(benchmark, fast_trials):
    walls = [TriangSystem(8), TriangSystem(15), uniform_wall(rows=10, width=20)]
    rows = run_experiment_once(
        benchmark,
        run_probe_cw_bound,
        walls=walls,
        ps=(0.1, 0.3, 0.5, 0.7, 0.9),
        trials=fast_trials,
        seed=11,
    )
    report(rows, "Theorem 3.3: Probe_CW ≤ 2k − 1 for every p")


def test_wheel_and_triang_corollaries(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark, run_wheel_and_triang_corollaries, trials=fast_trials, seed=13
    )
    report(rows, "Corollaries 3.4 / 3.5: Wheel ≤ 3, Triang within [2k−Θ(√k), 2k−1]")


def test_probe_count_independent_of_row_width(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark,
        run_cw_independence_of_n,
        widths_per_row=(5, 20, 100, 500),
        rows_count=8,
        trials=fast_trials,
        seed=17,
    )
    report(rows, "Crumbling wall: probes depend on k, not on n")
    measured = [row.measured for row in rows]
    # Growing n by 100x changes the average probe count by less than one probe.
    assert max(measured) - min(measured) < 1.0
