"""Benchmark `thm4.10-hqs-rand`: randomized HQS probing on the family P."""

from __future__ import annotations

from conftest import run_experiment_once

from repro.analysis.bounds import HQS_PPC_EXPONENT
from repro.experiments.hqs import run_randomized_hqs
from repro.experiments.report import render_table, violations


def test_r_and_ir_probe_hqs_exponents(benchmark, fast_trials):
    rows = run_experiment_once(
        benchmark, run_randomized_hqs, heights=(2, 3, 4, 5), trials=fast_trials, seed=41
    )
    print()
    print(render_table(rows, "Prop. 4.9 / Thm. 4.10 / Cor. 4.13: randomized HQS"))
    assert not violations(rows)

    fits = {row.quantity: row.measured for row in rows if row.system == "HQS (fit)"}
    r_exponent = fits["fitted exponent, R_Probe_HQS on P"]
    ir_exponent = fits["fitted exponent, IR_Probe_HQS on P"]
    # Shape claims: both exponents are sub-linear, at least the Cor. 4.13
    # lower-bound exponent (0.834) up to finite-size slack, and at most ~0.9
    # (the Prop. 4.9 upper bound).
    for exponent in (r_exponent, ir_exponent):
        assert HQS_PPC_EXPONENT - 0.06 <= exponent <= 0.93
    # IR_Probe_HQS does not scale worse than R_Probe_HQS.
    assert ir_exponent <= r_exponent + 0.02
