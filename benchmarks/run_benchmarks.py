"""Perf-snapshot entry point: time the hot paths and write ``BENCH_<date>.json``.

Unlike the pytest-benchmark files in this directory (which regenerate the
paper's tables), this script measures wall-clock throughput of the probing
machinery itself and records the numbers in a dated JSON snapshot, so
future PRs have a trajectory to compare against::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full run
    PYTHONPATH=src python benchmarks/run_benchmarks.py --quick    # CI smoke

Sections:

* ``exact_solver`` — mask-DP :class:`ExactSolver` versus the seed's
  frozenset ``lru_cache`` DP (replicated below as ``legacy_ppc``) on an
  ``n = 14`` crumbling wall, plus the warm-cache re-query cost;
* ``batched_montecarlo`` — vectorized versus per-trial Monte-Carlo
  estimation (1000 trials) for Probe_Maj on ``Maj(1001)`` and Probe_CW on
  ``Triang(45)`` (n = 1035);
* ``batched_gates`` — the level-synchronous gate engine
  (:mod:`repro.core.batched_gates`) versus the recursive per-trial loops
  for Probe_Tree / R_Probe_Tree on ``Tree(h=9)`` (n = 1023) and
  Probe_HQS / IR_Probe_HQS on ``HQS(h=6)`` (n = 729);
* ``coloring_sampling`` — ``Coloring.random`` at ``n = 2000`` and the
  ``random_batch`` matrix sampler;
* ``distribution_sampling`` — every registered
  :class:`~repro.core.distributions.ColoringSource` at ``n ≈ 1000``:
  the vectorized ``sample_matrix`` batch versus the per-trial scalar
  path each scenario used before the unified source layer
  (``FailureModel.sample_coloring`` / the ``*_hard_sampler`` closures);
* ``runner_overhead`` — the unified experiment runner
  (:mod:`repro.experiments.runner`: registry lookup, parameter resolution,
  environment metadata, artifact serialization) versus calling the same
  driver functions directly, on the ``lemmas`` experiment.
* ``streaming_engine`` — the chunked streaming engine
  (:mod:`repro.core.engine`) versus the one-shot batched path at equal
  trials (chunking overhead must stay bounded: ``chunked_vs_one_shot``
  ratios ≥ ~0.9x), the sharded (2-job) run, and the adaptive ``target_ci``
  mode on Maj(1001) near the critical ``p = 1/2``: a fixed-trial baseline
  sized for the near-critical cell wastes trials at easy ``p``; the
  adaptive run hits the same tolerance with fewer total trials.
* ``bitpacked_kernels`` — the bit-packed backend
  (:mod:`repro.core.bitpacked`, 64 trials per ``uint64`` word) versus the
  numpy kernels through the streaming engine at equal trials: Probe_Maj on
  ``Maj(1001)`` at 10^6 trials (the ISSUE's ≥5x acceptance case), plus
  Probe_CW / Probe_Tree / Probe_HQS secondaries; every case asserts
  bit-identical histograms inside the benchmark.
* ``compiled_kernels`` — the numba-jitted fused kernels
  (:mod:`repro.core.compiled`) versus the bitpacked backend at equal
  trials when numba is installed; without numba the section records the
  measured interpreted-loop slowdown plus a writeup of why the jitted
  speedup cannot be demonstrated on this host.
* ``exact_packed_dp`` — the word-batched packed mask-DP
  (``ExactSolver.packed_probe_complexity``) versus the trit-table sweep
  (``n ≤ 15``) and the sparse dict DP it replaces for ``15 < n ≤ 21``.

Use ``benchmarks/compare_bench.py`` to diff two snapshots and flag >20%
regressions in any shared metric, or ``--history`` to render the perf
trajectory across every committed snapshot.
"""

from __future__ import annotations

import argparse
import datetime
import json
import platform
import random
import sys
import time
from functools import lru_cache
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import (  # noqa: E402
    IRProbeHQS,
    ProbeCW,
    ProbeHQS,
    ProbeMaj,
    ProbeTree,
    RProbeTree,
)
from repro.core.batched import estimate_average_probes_batched  # noqa: E402
from repro.core.coloring import Coloring  # noqa: E402
from repro.core.estimator import estimate_average_probes  # noqa: E402
from repro.core.exact import ExactSolver  # noqa: E402
from repro.systems import (  # noqa: E402
    HQS,
    CrumblingWall,
    MajoritySystem,
    TreeSystem,
    TriangSystem,
)
from repro.systems.boolean import CharacteristicFunction  # noqa: E402


def legacy_ppc(system, p: float) -> float:
    """The seed implementation of ``probabilistic_probe_complexity``:
    frozenset knowledge states, per-call ``lru_cache``, frozenset witness
    test.  Kept verbatim as the speedup baseline."""
    f = CharacteristicFunction(system)
    universe = tuple(sorted(system.universe))
    q = 1.0 - p

    def witness_settled(green: frozenset[int], red: frozenset[int]):
        if system.contains_quorum(green):
            return "green"
        if not system.contains_quorum(system.universe - red):
            return "red"
        return None

    @lru_cache(maxsize=None)
    def value(green: frozenset[int], red: frozenset[int]) -> float:
        if witness_settled(green, red) is not None:
            return 0.0
        remaining = [e for e in universe if e not in green and e not in red]
        return 1.0 + min(
            q * value(green | {e}, red) + p * value(green, red | {e})
            for e in remaining
        )

    return value(frozenset(), frozenset())


def timed(fn, repeat: int = 1):
    """Best-of-``repeat`` wall-clock seconds plus the last return value."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_exact_solver(quick: bool) -> dict:
    widths = [1, 2, 3, 3, 3] if quick else [1, 2, 2, 3, 3, 3]
    system = CrumblingWall(widths)
    p = 0.5
    solver = ExactSolver(system)
    mask_seconds, mask_value = timed(lambda: solver.probabilistic_probe_complexity(p))
    warm_seconds, _ = timed(lambda: solver.probabilistic_probe_complexity(0.3))
    legacy_seconds, legacy_value = timed(lambda: legacy_ppc(system, p))
    assert abs(mask_value - legacy_value) < 1e-9, (mask_value, legacy_value)
    return {
        "system": system.name,
        "n": system.n,
        "p": p,
        "ppc_value": mask_value,
        "mask_dp_seconds": mask_seconds,
        "mask_dp_second_p_seconds": warm_seconds,
        "legacy_frozenset_dp_seconds": legacy_seconds,
        "speedup": legacy_seconds / mask_seconds,
    }


def _bench_batched_vs_loop(cases: list, trials: int, p: float = 0.5) -> list[dict]:
    """Time the batched kernel against the per-trial loop for each case."""
    results = []
    for name, algorithm in cases:
        batched_seconds, batched_estimate = timed(
            lambda: estimate_average_probes_batched(algorithm, p, trials=trials, seed=1),
            repeat=3,
        )
        loop_seconds, loop_estimate = timed(
            lambda: estimate_average_probes(algorithm, p, trials=trials, seed=1)
        )
        results.append(
            {
                "algorithm": name,
                "system": algorithm.system.name,
                "n": algorithm.system.n,
                "trials": trials,
                "batched_seconds": batched_seconds,
                "per_trial_loop_seconds": loop_seconds,
                "speedup": loop_seconds / batched_seconds,
                "batched_mean_probes": batched_estimate.mean,
                "loop_mean_probes": loop_estimate.mean,
            }
        )
    return results


def bench_batched_montecarlo(quick: bool) -> list[dict]:
    trials = 200 if quick else 1000
    cases = [
        ("ProbeMaj", ProbeMaj(MajoritySystem(1001))),
        ("ProbeCW", ProbeCW(TriangSystem(45))),  # n = 1035
    ]
    return _bench_batched_vs_loop(cases, trials)


def bench_batched_gates(quick: bool) -> list[dict]:
    trials = 200 if quick else 1000
    tree_height = 7 if quick else 9  # n = 255 / 1023
    hqs_height = 5 if quick else 6  # n = 243 / 729
    cases = [
        ("ProbeTree", ProbeTree(TreeSystem(tree_height))),
        ("RProbeTree", RProbeTree(TreeSystem(tree_height))),
        ("ProbeHQS", ProbeHQS(HQS(hqs_height))),
        ("IRProbeHQS", IRProbeHQS(HQS(hqs_height))),
    ]
    return _bench_batched_vs_loop(cases, trials)


def bench_coloring_sampling(quick: bool) -> dict:
    n = 2000
    count = 200 if quick else 1000
    rng = random.Random(5)
    single_seconds, _ = timed(
        lambda: [Coloring.random(n, 0.5, rng) for _ in range(count)]
    )
    batch_seconds, _ = timed(lambda: Coloring.random_batch(n, 0.5, count, rng=7))
    return {
        "n": n,
        "colorings": count,
        "random_seconds": single_seconds,
        "random_batch_seconds": batch_seconds,
    }


def bench_distribution_sampling(quick: bool) -> list[dict]:
    """Batched versus per-trial sampling for every registered source.

    ``batched_seconds`` times ``source.sample_matrix`` (one call for the
    whole batch); ``per_trial_seconds`` times the scalar path each
    scenario used before the unified source layer — the
    ``FailureModel.sample_coloring`` loop for the failure models and the
    hoisted sampler closures for the Yao/HQS hard families — which is the
    loop the batched consumers replace.
    """
    from repro.analysis.yao import (
        cw_hard_sampler,
        majority_hard_sampler,
        tree_hard_sampler,
    )
    from repro.core.distributions import build_source
    from repro.experiments.hqs import worst_case_family_sampler
    from repro.simulation.failures import (
        AdversarialFailures,
        BernoulliFailures,
        CorrelatedGroupFailures,
        FixedCountFailures,
    )

    trials = 200 if quick else 1000
    p = 0.3
    maj = MajoritySystem(1001)
    triang = TriangSystem(45)  # n = 1035
    tree = TreeSystem(9)  # n = 1023
    hqs = HQS(6)  # n = 729
    reds = round(p * maj.n)

    def model_loop(model, n):
        rng = random.Random(11)
        return lambda: [model.sample_coloring(n, rng) for _ in range(trials)]

    def sampler_loop(sampler):
        rng = random.Random(13)
        return lambda: [sampler(rng) for _ in range(trials)]

    cases = [
        ("bernoulli", maj, model_loop(BernoulliFailures(p), maj.n)),
        ("fixed_count", maj, model_loop(FixedCountFailures(reds), maj.n)),
        (
            "correlated_groups",
            triang,
            model_loop(CorrelatedGroupFailures(triang.rows, p), triang.n),
        ),
        (
            "adversarial",
            maj,
            model_loop(AdversarialFailures(range(1, reds + 1)), maj.n),
        ),
        ("majority_hard", maj, sampler_loop(majority_hard_sampler(maj))),
        ("cw_hard", triang, sampler_loop(cw_hard_sampler(triang))),
        ("tree_hard", tree, sampler_loop(tree_hard_sampler(tree))),
        ("hqs_family_p", hqs, sampler_loop(worst_case_family_sampler(hqs))),
    ]
    results = []
    for name, system, per_trial in cases:
        source = build_source(name, system, p)
        batched_seconds, red = timed(
            lambda: source.sample_matrix(system.n, trials, rng=17), repeat=3
        )
        assert red.shape == (trials, system.n)
        per_trial_seconds, _ = timed(per_trial)
        results.append(
            {
                "source": name,
                "system": system.name,
                "n": system.n,
                "trials": trials,
                "batched_seconds": batched_seconds,
                "per_trial_seconds": per_trial_seconds,
                "speedup": per_trial_seconds / batched_seconds,
            }
        )
    return results


def bench_runner_overhead(quick: bool) -> dict:
    """Registry dispatch + artifact write versus a direct driver call.

    Uses the ``lemmas`` experiment (pure-python Monte-Carlo, no numpy
    kernels) so the measured delta is runner machinery, not estimator
    noise.  The runner path must reproduce the direct rows exactly — the
    assert pins registry/driver parity inside the benchmark itself.
    """
    import tempfile

    from repro.experiments.lemmas import run_urn_experiment, run_walk_experiment
    from repro.experiments.runner import run_experiment, write_artifact

    trials = 60 if quick else 200
    direct_seconds, direct_rows = timed(
        lambda: run_walk_experiment(trials=trials) + run_urn_experiment(trials=trials),
        repeat=3,
    )
    runner_seconds, result = timed(
        lambda: run_experiment("lemmas", {"trials": trials}), repeat=3
    )
    assert list(result.rows) == direct_rows, "runner rows diverge from direct driver"
    with tempfile.TemporaryDirectory() as tmp:
        write_seconds, _ = timed(
            lambda: write_artifact(result, Path(tmp) / "lemmas.json"), repeat=3
        )
    return {
        "experiment": "lemmas",
        "trials": trials,
        "rows": len(result.rows),
        "direct_driver_seconds": direct_seconds,
        "runner_seconds": runner_seconds,
        "dispatch_overhead_seconds": runner_seconds - direct_seconds,
        "artifact_write_seconds": write_seconds,
    }


def bench_streaming_engine(quick: bool) -> dict:
    """Chunked/sharded/adaptive engine versus the one-shot batched path.

    ``chunked_vs_one_shot`` cases must hold the acceptance bar (≥ ~0.9x
    one-shot throughput at equal trials; the assert below pins mean
    byte-identity, the ratio records the overhead).  The ``target_ci``
    case sizes a fixed-trial baseline to reach a tolerance at the critical
    ``p = 1/2`` of Maj(1001) and then lets the adaptive mode run a
    two-point grid {easy p, critical p} at that tolerance: the easy cell
    stops early, so the adaptive total stays below two fixed cells.
    """
    from functools import partial

    from repro.algorithms import RProbeCW
    from repro.core.batched import estimate_average_source_batched
    from repro.core.distributions import BernoulliSource
    from repro.core.engine import stream_probes

    trials = 2000 if quick else 20000
    chunk = 512 if quick else 2048
    maj = MajoritySystem(1001)
    cases = []
    for name, algorithm, p in (
        ("ProbeMaj", ProbeMaj(maj), 0.5),
        ("RProbeCW", RProbeCW(TriangSystem(45)), 0.5),
    ):
        source = BernoulliSource(algorithm.system.n, p)
        one_shot_seconds, one_shot = timed(
            partial(
                estimate_average_source_batched, algorithm, source, trials=trials, seed=1
            ),
            repeat=3,
        )
        chunked_seconds, chunked = timed(
            partial(
                stream_probes, algorithm, source, trials=trials, chunk_size=chunk, seed=1
            ),
            repeat=3,
        )
        if not algorithm.randomized:
            # Deterministic kernels under stream-aligned sources: the
            # chunked mean must be byte-identical to the one-shot path.
            assert chunked.mean == one_shot.mean, (chunked.mean, one_shot.mean)
        # Time the sharded run against a pre-warmed shared pool (best of
        # 3), so the metric measures sharded throughput, not the one-off
        # worker spawn cost — which varies wildly across CI hosts and
        # would make the compare_bench gate flaky.
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            stream_probes(
                algorithm, source, trials=chunk, chunk_size=chunk, seed=1,
                jobs=2, executor=pool,
            )  # warm the workers
            sharded_seconds, sharded = timed(
                partial(
                    stream_probes,
                    algorithm,
                    source,
                    trials=trials,
                    chunk_size=chunk,
                    seed=1,
                    jobs=2,
                    executor=pool,
                ),
                repeat=3,
            )
        assert sharded.mean == chunked.mean, "sharded run diverged from sequential"
        cases.append(
            {
                "algorithm": name,
                "system": algorithm.system.name,
                "n": algorithm.system.n,
                "trials": trials,
                "chunk_size": chunk,
                "one_shot_seconds": one_shot_seconds,
                "chunked_seconds": chunked_seconds,
                "sharded_2_jobs_seconds": sharded_seconds,
                "chunked_throughput_ratio": one_shot_seconds / chunked_seconds,
            }
        )

    # Adaptive mode: fixed baseline sized for the near-critical p.  The
    # probe-count variance of Probe_Maj peaks on the shoulders of the
    # p = 1/2 transition (at exactly 1/2 the scan saturates near n, which
    # clamps the variance), so "near critical" is p = 0.45.
    algorithm = ProbeMaj(maj)
    fixed_trials = 4000 if quick else 40000
    critical_p, easy_p = 0.45, 0.2
    fixed_critical = stream_probes(
        algorithm, p=critical_p, trials=fixed_trials, chunk_size=chunk, seed=2
    )
    tolerance = fixed_critical.ci95 * 1.02
    adaptive = {}
    for label, p in (("critical", critical_p), ("easy", easy_p)):
        result = stream_probes(
            algorithm,
            p=p,
            target_ci=tolerance,
            chunk_size=chunk,
            max_trials=4 * fixed_trials,
            seed=2,
        )
        adaptive[label] = result
    total_adaptive = sum(r.n_trials_used for r in adaptive.values())
    return {
        "chunked_vs_one_shot": cases,
        "target_ci": {
            "system": maj.name,
            "n": maj.n,
            "tolerance_ci95": tolerance,
            "fixed_trials_per_cell": fixed_trials,
            "fixed_grid_trials": 2 * fixed_trials,
            "critical_p": critical_p,
            "easy_p": easy_p,
            "adaptive_trials_critical": adaptive["critical"].n_trials_used,
            "adaptive_trials_easy": adaptive["easy"].n_trials_used,
            "adaptive_grid_trials": total_adaptive,
            "reached_tolerance": all(r.reached_target for r in adaptive.values()),
            "trials_saved_ratio": (2 * fixed_trials) / total_adaptive,
        },
    }


def bench_bitpacked_kernels(quick: bool) -> list[dict]:
    """Bit-packed versus numpy kernels through the streaming engine.

    Equal trials, equal chunking, same seed: the only variable is the
    backend, and the assert pins bit-identical histograms — the speedup is
    never bought with a different answer.  The Probe_Maj case is the
    acceptance bar (≥ 5x at n ≈ 1000, 10^6 trials in the full run).
    """
    from functools import partial

    from repro.core.engine import stream_probes

    trials = 100_000 if quick else 1_000_000
    chunk = 65_536
    # The full-size numpy runs take minutes each; one measurement is stable
    # at that duration, so best-of-3 is reserved for the quick ms-scale run.
    repeat = 3 if quick else 1
    cases = [
        ("ProbeMaj", ProbeMaj(MajoritySystem(1001)), 0.5),
        ("ProbeCW", ProbeCW(TriangSystem(45)), 0.5),
        ("ProbeTree", ProbeTree(TreeSystem(9)), 0.5),
        ("ProbeHQS", ProbeHQS(HQS(6)), 0.5),
    ]
    results = []
    for name, algorithm, p in cases:
        run = partial(
            stream_probes, algorithm, p=p, trials=trials, chunk_size=chunk, seed=1
        )
        numpy_seconds, numpy_result = timed(partial(run, backend="numpy"), repeat=repeat)
        packed_seconds, packed_result = timed(
            partial(run, backend="bitpacked"), repeat=repeat
        )
        assert packed_result.histogram == numpy_result.histogram, (
            f"{name}: bitpacked histogram diverged from numpy"
        )
        assert packed_result.witness_red == numpy_result.witness_red
        results.append(
            {
                "algorithm": name,
                "system": algorithm.system.name,
                "n": algorithm.system.n,
                "trials": trials,
                "chunk_size": chunk,
                "numpy_seconds": numpy_seconds,
                "bitpacked_seconds": packed_seconds,
                "speedup": numpy_seconds / packed_seconds,
                "mean_probes": packed_result.mean,
            }
        )
    return results


def bench_compiled_kernels(quick: bool) -> dict:
    """Compiled (numba) versus bitpacked kernels through the streaming engine.

    With numba installed this mirrors ``bitpacked_kernels`` — equal trials,
    chunking and seed, histograms asserted identical — and records the
    compiled-over-bitpacked speedup (the ISSUE's ≥2x target for the gate
    engines at 10^6 trials).  Without numba the compiled backend cannot be
    dispatched (``resolve_backend`` refuses it), so the section records a
    measured writeup instead: the same loop bodies run as interpreted
    Python, and the measured slowdown versus bitpacked documents why the
    speedup target is not demonstrable on this host — no pip installs are
    available in the benchmark container, so there is no way to measure
    the jitted form here.
    """
    from functools import partial

    from repro.core.bitpacked import pack_matrix, run_packed
    from repro.core.compiled import NUMBA_AVAILABLE, run_compiled
    from repro.core.engine import stream_probes

    if not NUMBA_AVAILABLE:
        from repro.core.batched import sample_red_matrix

        trials = 1024 if quick else 4096
        cases = []
        for name, algorithm in (
            ("ProbeMaj", ProbeMaj(MajoritySystem(101))),
            ("ProbeTree", ProbeTree(TreeSystem(6))),
        ):
            packed = pack_matrix(
                sample_red_matrix(algorithm.system.n, 0.5, trials, rng=1)
            )
            packed_seconds, packed_result = timed(
                lambda: run_packed(algorithm, packed), repeat=3
            )
            interp_seconds, interp_result = timed(
                lambda: run_compiled(algorithm, packed), repeat=3
            )
            assert (interp_result[0] == packed_result[0]).all(), (
                f"{name}: interpreted compiled loop diverged from bitpacked"
            )
            cases.append(
                {
                    "algorithm": name,
                    "system": algorithm.system.name,
                    "n": algorithm.system.n,
                    "trials": trials,
                    "bitpacked_seconds": packed_seconds,
                    "interpreted_loop_seconds": interp_seconds,
                    # Deliberately not named *_ratio: higher means worse
                    # here and must not enter the regression gate.
                    "interpreted_slowdown": interp_seconds / packed_seconds,
                }
            )
        return {
            "numba_available": False,
            "note": (
                "numba is not installed and the container forbids installing "
                "it, so the jitted kernels cannot be dispatched or measured; "
                "the interpreted forms of the same loop bodies run "
                "'interpreted_slowdown'x slower than bitpacked (scalar "
                "per-word Python vs vectorized numpy word ops), which is "
                "the overhead numba's compilation exists to remove. "
                "Bit identity of the loop bodies is still asserted here "
                "and in tests/core/test_compiled.py."
            ),
            "interpreted_cases": cases,
        }

    trials = 100_000 if quick else 1_000_000
    chunk = 65_536
    repeat = 3 if quick else 1
    cases = [
        ("ProbeMaj", ProbeMaj(MajoritySystem(1001)), 0.5),
        ("ProbeCW", ProbeCW(TriangSystem(45)), 0.5),
        ("ProbeTree", ProbeTree(TreeSystem(9)), 0.5),
        ("ProbeHQS", ProbeHQS(HQS(6)), 0.5),
    ]
    results = []
    for name, algorithm, p in cases:
        run = partial(
            stream_probes, algorithm, p=p, trials=trials, chunk_size=chunk, seed=1
        )
        # Warm the JIT cache outside the timed region: compilation is a
        # one-off cost, not kernel throughput.
        stream_probes(algorithm, p=p, trials=256, chunk_size=256, seed=1,
                      backend="compiled")
        packed_seconds, packed_result = timed(
            partial(run, backend="bitpacked"), repeat=repeat
        )
        compiled_seconds, compiled_result = timed(
            partial(run, backend="compiled"), repeat=repeat
        )
        assert compiled_result.histogram == packed_result.histogram, (
            f"{name}: compiled histogram diverged from bitpacked"
        )
        assert compiled_result.witness_red == packed_result.witness_red
        results.append(
            {
                "algorithm": name,
                "system": algorithm.system.name,
                "n": algorithm.system.n,
                "trials": trials,
                "chunk_size": chunk,
                "bitpacked_seconds": packed_seconds,
                "compiled_seconds": compiled_seconds,
                "speedup": packed_seconds / compiled_seconds,
                "mean_probes": compiled_result.mean,
            }
        )
    return {"numba_available": True, "cases": results}


def bench_exact_packed_dp(quick: bool) -> list[dict]:
    """Word-batched packed mask-DP versus the older exact-PC routes.

    Each case builds fresh solvers (the routes cache per instance) and
    times the trit-table sweep (``n ≤ 15`` only), the packed mask-DP and —
    where it finishes in reasonable time — the sparse dict DP the packed
    sweep replaces for ``15 < n ≤ 21``.  All routes must agree on PC.
    """
    from repro.core.exact import _TABLE_DP_LIMIT

    cases = (
        [(MajoritySystem(11), True)]
        if quick
        else [
            (CrumblingWall([1, 3, 3, 3, 3]), True),  # n = 13: all three routes
            (TreeSystem(3), False),  # n = 15: the table-limit boundary
            (CrumblingWall([1, 3, 3, 3, 3, 3]), False),  # n = 16: packed-only
        ]
    )
    results = []
    for system, time_dict_dp in cases:
        label = system.name
        table_seconds = None
        if system.n <= _TABLE_DP_LIMIT:
            solver = ExactSolver(system)
            table_seconds, table_pc = timed(solver.probe_complexity)
        solver = ExactSolver(system)
        packed_seconds, packed_pc = timed(solver.packed_probe_complexity)
        if table_seconds is not None:
            assert packed_pc == table_pc, (label, packed_pc, table_pc)
        entry = {
            "system": system.name,
            "n": system.n,
            "pc": packed_pc,
            "packed_dp_seconds": packed_seconds,
        }
        if table_seconds is not None:
            entry["table_dp_seconds"] = table_seconds
            entry["speedup"] = table_seconds / packed_seconds
        if time_dict_dp:
            solver = ExactSolver(system)
            # The sparse dict DP is the route the packed sweep replaces;
            # private, but this benchmark pins exactly that replacement.
            dict_seconds, dict_pc = timed(lambda: solver._pc_value(0, 0))
            assert dict_pc == packed_pc, (label, dict_pc, packed_pc)
            entry["dict_dp_seconds"] = dict_seconds
        results.append(entry)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="smaller sizes for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="output path (default: BENCH_<date>.json in the repo root)",
    )
    args = parser.parse_args(argv)

    snapshot = {
        "date": datetime.date.today().isoformat(),
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "exact_solver": bench_exact_solver(args.quick),
        "batched_montecarlo": bench_batched_montecarlo(args.quick),
        "batched_gates": bench_batched_gates(args.quick),
        "coloring_sampling": bench_coloring_sampling(args.quick),
        "distribution_sampling": bench_distribution_sampling(args.quick),
        "runner_overhead": bench_runner_overhead(args.quick),
        "streaming_engine": bench_streaming_engine(args.quick),
        "bitpacked_kernels": bench_bitpacked_kernels(args.quick),
        "compiled_kernels": bench_compiled_kernels(args.quick),
        "exact_packed_dp": bench_exact_packed_dp(args.quick),
    }
    output = args.output
    if output is None:
        output = (
            Path(__file__).resolve().parent.parent
            / f"BENCH_{snapshot['date']}.json"
        )
    output.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(json.dumps(snapshot, indent=2))
    print(f"\nwrote {output}")
    exact = snapshot["exact_solver"]
    print(
        f"exact PPC n={exact['n']}: mask DP {exact['mask_dp_seconds']:.2f}s "
        f"vs legacy {exact['legacy_frozenset_dp_seconds']:.2f}s "
        f"({exact['speedup']:.1f}x)"
    )
    for case in snapshot["batched_montecarlo"] + snapshot["batched_gates"]:
        print(
            f"{case['algorithm']} n={case['n']} x{case['trials']}: batched "
            f"{case['batched_seconds']*1e3:.1f}ms vs loop "
            f"{case['per_trial_loop_seconds']*1e3:.1f}ms ({case['speedup']:.0f}x)"
        )
    for case in snapshot["distribution_sampling"]:
        print(
            f"sample {case['source']} n={case['n']} x{case['trials']}: batched "
            f"{case['batched_seconds']*1e3:.1f}ms vs per-trial "
            f"{case['per_trial_seconds']*1e3:.1f}ms ({case['speedup']:.0f}x)"
        )
    overhead = snapshot["runner_overhead"]
    print(
        f"runner overhead ({overhead['experiment']} x{overhead['trials']}): dispatch "
        f"{overhead['dispatch_overhead_seconds']*1e3:+.1f}ms on "
        f"{overhead['direct_driver_seconds']*1e3:.1f}ms direct, artifact write "
        f"{overhead['artifact_write_seconds']*1e3:.1f}ms"
    )
    engine = snapshot["streaming_engine"]
    for case in engine["chunked_vs_one_shot"]:
        print(
            f"engine {case['algorithm']} n={case['n']} x{case['trials']} "
            f"chunk {case['chunk_size']}: chunked {case['chunked_seconds']*1e3:.1f}ms "
            f"vs one-shot {case['one_shot_seconds']*1e3:.1f}ms "
            f"({case['chunked_throughput_ratio']:.2f}x throughput)"
        )
    adaptive = engine["target_ci"]
    print(
        f"engine target_ci on {adaptive['system']} @ ci95<={adaptive['tolerance_ci95']:.3f}: "
        f"adaptive {adaptive['adaptive_grid_trials']} trials vs fixed grid "
        f"{adaptive['fixed_grid_trials']} ({adaptive['trials_saved_ratio']:.2f}x fewer, "
        f"reached={adaptive['reached_tolerance']})"
    )
    for case in snapshot["bitpacked_kernels"]:
        print(
            f"bitpacked {case['algorithm']} n={case['n']} x{case['trials']}: "
            f"{case['bitpacked_seconds']*1e3:.1f}ms vs numpy "
            f"{case['numpy_seconds']*1e3:.1f}ms ({case['speedup']:.1f}x)"
        )
    compiled = snapshot["compiled_kernels"]
    if compiled["numba_available"]:
        for case in compiled["cases"]:
            print(
                f"compiled {case['algorithm']} n={case['n']} x{case['trials']}: "
                f"{case['compiled_seconds']*1e3:.1f}ms vs bitpacked "
                f"{case['bitpacked_seconds']*1e3:.1f}ms ({case['speedup']:.1f}x)"
            )
    else:
        print("compiled kernels: numba not installed; interpreted loop bodies run")
        for case in compiled["interpreted_cases"]:
            print(
                f"  {case['algorithm']} n={case['n']} x{case['trials']}: "
                f"{case['interpreted_slowdown']:.0f}x slower than bitpacked "
                "(bit-identical)"
            )
    for case in snapshot["exact_packed_dp"]:
        line = (
            f"exact PC {case['system']} n={case['n']}: packed DP "
            f"{case['packed_dp_seconds']:.2f}s"
        )
        if "table_dp_seconds" in case:
            line += (
                f" vs table {case['table_dp_seconds']:.2f}s"
                f" ({case['speedup']:.1f}x)"
            )
        if "dict_dp_seconds" in case:
            line += f" vs dict {case['dict_dp_seconds']:.2f}s"
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
