"""Test-support infrastructure shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used to exercise the fault-tolerant execution layer (worker kills, chunk
delays, kernel exceptions, interruptions) in tests and CI rather than
merely claiming recovery works.
"""
