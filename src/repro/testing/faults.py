"""Deterministic fault injection for the execution layer.

The streaming engine (:mod:`repro.core.engine`) calls :func:`fire_fault`
at two well-defined sites:

* ``"chunk"`` — inside :func:`~repro.core.engine._run_chunk`, keyed by the
  chunk's absolute start trial index.  Runs in the worker process under
  ``jobs > 1``, in the main process sequentially — and inside networked
  workers (:mod:`repro.distributed.worker`), where a ``"kill"`` here is
  the kill-worker fault (the coordinator sees the connection drop).
* ``"merge"`` — in the parent, keyed by the 1-based ordinal of the chunk
  merge that just completed.

The distributed worker adds two *network* sites whose actions need the
socket in hand, so they are consumed by the call site via
:func:`take_fault` instead of executed centrally:

* ``"worker-heartbeat"`` — in the worker's heartbeat thread, keyed by the
  chunk's start trial.  A ``"delay"`` here suppresses heartbeats for
  ``seconds`` while the chunk keeps computing — the partition/hang shape
  that must trip the coordinator's lease expiry.
* ``"worker-send"`` — just before the worker sends a chunk result, keyed
  by the chunk's start trial.  ``"drop"`` closes the connection without
  sending (drop-connection); ``"corrupt"`` sends the result frame with a
  flipped payload byte so the coordinator's CRC check rejects it
  (corrupt-frame).

The estimation service (:mod:`repro.service`) adds three sites of its own:

* ``"journal-write"`` — just before a job-journal record is persisted,
  keyed by the 1-based ordinal of the write within this process (for one
  job: 1 = submitted, 2 = running, 3 = done).  A ``"kill"`` at the done
  write is the daemon crashing between the engine checkpoint and the
  journal update — the recovery scan must reconcile the two.
* ``"service-handler"`` — inside the HTTP request handler after parsing,
  before any state changes, keyed by the 1-based ordinal of the POST
  request.  A ``"raise"`` exercises the 500 path: the daemon must answer
  with a clean error and keep serving.
* ``"service-pool"`` — just before a job's engine run starts, keyed by
  the job's submission sequence number.  A ``"raise"`` here is consumed
  by the service as a lost worker pool and must flip it into degraded
  read-only mode.

A *fault plan* is a list of :class:`Fault` records written to a JSON file;
the file's path travels to worker processes through the ``REPRO_FAULTS``
environment variable, so the same plan fires no matter which process ends
up executing the chunk.  Faults default to firing **once**: the first
process to reach the site claims an on-disk sentinel with
``O_CREAT | O_EXCL`` (atomic across processes, including pool respawns),
so a killed-and-retried chunk is not killed again — which is exactly the
transient-fault shape recovery must handle.

Actions:

* ``"kill"``      — ``os._exit(KILL_EXIT_CODE)``: the process dies without
  cleanup, like SIGKILL.  In a worker this surfaces as
  ``BrokenProcessPool`` in the parent.
* ``"raise"``     — raise :class:`FaultInjected` (a kernel-level error).
* ``"delay"``     — sleep ``seconds`` (drives chunk-timeout and
  lease-expiry paths; at ``"worker-heartbeat"`` it delays the beats, not
  the chunk).
* ``"interrupt"`` — raise ``KeyboardInterrupt`` (drives checkpoint-on-
  interrupt paths; meaningful at the ``"merge"`` site).
* ``"drop"`` / ``"corrupt"`` — network actions, only meaningful at sites
  whose call sites consume them with :func:`take_fault` (see above);
  reaching :func:`fire_fault` with one is a planning error and raises.

When ``REPRO_FAULTS`` is unset, :func:`fire_fault` is a single dict lookup
— the production path pays one environment read per chunk.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

#: Environment variable naming the active fault-plan file.
ENV_VAR = "REPRO_FAULTS"

#: Exit status of a ``"kill"`` fault — distinctive, so tests can assert
#: the process died by injection and not by accident.
KILL_EXIT_CODE = 43

#: Any-key wildcard for :attr:`Fault.key`.
ANY_KEY = -1

_SITES = (
    "chunk",
    "merge",
    "worker-heartbeat",
    "worker-send",
    "journal-write",
    "service-handler",
    "service-pool",
)
_ACTIONS = ("kill", "raise", "delay", "interrupt", "drop", "corrupt")

#: Actions that need their call site's context (a socket) to execute;
#: :func:`fire_fault` refuses them — they go through :func:`take_fault`.
CALLER_HANDLED_ACTIONS = ("drop", "corrupt")


class FaultInjected(RuntimeError):
    """The error raised by ``"raise"`` faults."""


@dataclass(frozen=True)
class Fault:
    """One planned fault: fire ``action`` when ``site`` reaches ``key``."""

    site: str
    key: int
    action: str
    seconds: float = 0.0
    once: bool = True

    def __post_init__(self) -> None:
        if self.site not in _SITES:
            raise ValueError(f"unknown fault site {self.site!r}; sites: {_SITES}")
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; actions: {_ACTIONS}"
            )

    def matches(self, site: str, key: int) -> bool:
        return self.site == site and self.key in (key, ANY_KEY)


#: Plans are immutable once written, so cache them per path — worker
#: processes re-read at most once per plan.
_PLAN_CACHE: dict[str, tuple[Fault, ...]] = {}


def clear_plan_cache() -> None:
    """Drop cached plans (tests that rewrite a plan file in place)."""
    _PLAN_CACHE.clear()


def write_plan(faults: Sequence[Fault], directory: str | Path) -> Path:
    """Write a fault plan into ``directory`` and return the plan path.

    The directory doubles as the once-only ledger: sentinel files marking
    fired faults live next to the plan.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "fault_plan.json"
    payload = {
        "kind": "fault_plan",
        "faults": [
            {
                "site": fault.site,
                "key": fault.key,
                "action": fault.action,
                "seconds": fault.seconds,
                "once": fault.once,
            }
            for fault in faults
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    _PLAN_CACHE.pop(str(path), None)
    return path


def _load_plan(path: str) -> tuple[Fault, ...]:
    cached = _PLAN_CACHE.get(path)
    if cached is not None:
        return cached
    payload = json.loads(Path(path).read_text())
    faults = tuple(
        Fault(
            site=entry["site"],
            key=int(entry["key"]),
            action=entry["action"],
            seconds=float(entry.get("seconds", 0.0)),
            once=bool(entry.get("once", True)),
        )
        for entry in payload.get("faults", ())
    )
    _PLAN_CACHE[path] = faults
    return faults


@contextmanager
def active_plan(faults: Sequence[Fault], directory: str | Path) -> Iterator[Path]:
    """Install a fault plan for the duration of the block.

    Writes the plan under ``directory``, points ``REPRO_FAULTS`` at it
    (inherited by worker processes spawned inside the block — including
    pool respawns), and restores the previous environment on exit.
    """
    path = write_plan(faults, directory)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(path)
    try:
        yield path
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous
        _PLAN_CACHE.pop(str(path), None)


def _claim(plan_path: str, index: int) -> bool:
    """Atomically claim fault ``index``; ``True`` exactly once per plan.

    The sentinel is created with ``O_CREAT | O_EXCL`` in the plan's
    directory, so the claim is exclusive across processes and survives
    worker-pool respawns — a retried chunk never re-fires a once-only
    fault.
    """
    sentinel = Path(plan_path).parent / f"fault-{index}.fired"
    try:
        os.close(os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def fire_fault(site: str, key: int) -> None:
    """Execute any planned fault matching ``(site, key)``.

    No-op (one env lookup) when no plan is installed.
    """
    plan_path = os.environ.get(ENV_VAR)
    if not plan_path:
        return
    for index, fault in enumerate(_load_plan(plan_path)):
        if not fault.matches(site, key):
            continue
        if fault.once and not _claim(plan_path, index):
            continue
        _execute(fault, site, key)


def take_fault(
    site: str, key: int, actions: Sequence[str] = CALLER_HANDLED_ACTIONS
) -> Fault | None:
    """Claim and return a planned fault for the call site to execute itself.

    Network actions (``"drop"``, ``"corrupt"``) and the heartbeat
    ``"delay"`` need the live socket or thread in hand, so the site that
    owns it asks for a matching fault and performs the action.  Claiming
    honors the same once-only sentinel as :func:`fire_fault`; returns
    ``None`` when no plan is installed or nothing matches.
    """
    plan_path = os.environ.get(ENV_VAR)
    if not plan_path:
        return None
    for index, fault in enumerate(_load_plan(plan_path)):
        if not fault.matches(site, key) or fault.action not in actions:
            continue
        if fault.once and not _claim(plan_path, index):
            continue
        return fault
    return None


def _execute(fault: Fault, site: str, key: int) -> None:
    if fault.action in CALLER_HANDLED_ACTIONS:
        raise ValueError(
            f"fault action {fault.action!r} at site {site!r} must be consumed "
            "by its call site via take_fault(), not executed by fire_fault()"
        )
    if fault.action == "kill":
        # Dies like SIGKILL: no cleanup, no Python-level unwinding.
        os._exit(KILL_EXIT_CODE)
    if fault.action == "raise":
        raise FaultInjected(f"injected fault at {site} {key}: {fault}")
    if fault.action == "delay":
        time.sleep(fault.seconds)
        return
    if fault.action == "interrupt":
        raise KeyboardInterrupt(f"injected interrupt at {site} {key}")


# -- file-corruption helpers (checkpoint/artifact robustness tests) ---------------


def truncate_file(path: str | Path, keep_bytes: int) -> Path:
    """Cut ``path`` down to its first ``keep_bytes`` bytes, in place.

    Simulates the torn write a crash mid-``write_text`` would leave —
    the failure mode the atomic writers exist to prevent, and the input
    shape loaders must reject with a clear message.
    """
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(0, keep_bytes)])
    return path


def drop_json_field(path: str | Path, field: str) -> Path:
    """Rewrite a JSON file with ``field`` removed (schema-validation tests)."""
    path = Path(path)
    payload = json.loads(path.read_text())
    payload.pop(field, None)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
