"""Command-line interface for the reproduction.

Provides a small set of subcommands so the experiments can be driven without
writing Python:

* ``repro-probe systems``          — list the built-in systems and their metrics
* ``repro-probe distributions``    — list the registered coloring sources
* ``repro-probe figures``          — render the paper's Figures 1–3 as ASCII
* ``repro-probe maj3``             — the Section 2.3 worked example, exact
* ``repro-probe probe``            — run one probing episode on a random coloring
* ``repro-probe estimate``         — Monte-Carlo PPC estimate vs the paper bound
* ``repro-probe sweep``            — batched (p, n) grid sweep + JSON artifact
* ``repro-probe worker``           — serve chunk leases to a distributed
  coordinator (``estimate``/``sweep --workers``)
* ``repro-probe table1``           — regenerate Table 1
* ``repro-probe list``             — list the registered experiments
* ``repro-probe run <id>``         — run registered experiments through the
  unified runner (``--tag``/``--all`` selection, ``--jobs`` process fan-out,
  ``--seed``/``--trials``/``--param`` overrides, ``--output`` JSON artifacts)

Experiment dispatch is registry-driven (:mod:`repro.experiments.registry`):
the CLI holds no per-experiment branches, so registering a new
:class:`~repro.experiments.registry.ExperimentSpec` is all it takes to make
a workload runnable here.  ``repro-probe experiment`` remains as a
deprecated alias of ``run``.

Input scenarios are likewise registry-driven
(:mod:`repro.core.distributions`): ``estimate``/``sweep`` accept
``--distribution <name>`` and registered experiments accept
``--param distribution=<name>``, so any registered coloring source — the
i.i.d. model, exact-count, correlated groups, the Yao hard families —
drives the batched kernels without new CLI surface.

Monte-Carlo estimation runs through the streaming engine
(:mod:`repro.core.engine`): ``estimate`` and ``sweep`` accept
``--chunk-size`` (trials per chunk; memory stays O(chunk)),
``--target-ci`` (adaptive stopping at a 95% CI half-width tolerance),
``--max-trials`` (the adaptive cap), ``--jobs`` (shard chunks across
worker processes, byte-identical to sequential), ``--backend``
(``numpy``/``bitpacked``/``compiled``/``auto`` kernel backend;
deterministic algorithms produce byte-identical histograms under every
backend — see README, "Kernel backends") and
``--auto-backend-min-trials`` (the trial count at which ``auto`` leaves
numpy for a packed backend).

Fault tolerance (see README, "Fault tolerance, checkpoints, and
resume"): ``estimate``/``sweep`` accept ``--retries`` (per-chunk retry
budget) and ``--chunk-timeout`` (seconds before a chunk's worker is
declared hung); ``estimate`` adds ``--checkpoint <path>`` (periodic
crash-safe state) and ``--resume <path>`` (continue a checkpointed run
byte-identically), and ``sweep`` the grid-level equivalents (skip
completed cells on resume).  ``sweep`` and ``run`` degrade gracefully by
default — failed cells/experiments are recorded in the artifact with
``status``/``error`` and exit nonzero — while ``--fail-fast`` restores
strict abort-on-first-error behavior.

Distributed execution (see README, "Distributed workers"):
``estimate``/``sweep`` accept ``--workers HOST:PORT[,...]`` (bind a
coordinator and lease chunks to workers dialing in with
``repro-probe worker --connect HOST:PORT``) or ``--spawn-workers N``
(loopback workers), plus ``--min-workers``, ``--lease-timeout`` and
``--no-local-fallback``; distributed runs are byte-identical to
``--jobs 1``.

The module is also usable as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterator, Sequence
from contextlib import contextmanager

from repro.algorithms import default_deterministic_algorithm, default_randomized_algorithm
from repro.core.coloring import Coloring
from repro.core.estimator import estimate_average_probes
from repro.systems import (
    SYSTEM_CHOICES,
    CrumblingWall,
    GridSystem,
    HQS,
    MajoritySystem,
    TreeSystem,
    TriangSystem,
    WheelSystem,
    build_system,
)


def _cmd_systems(args: argparse.Namespace) -> int:
    from repro.core.metrics import quorum_size_statistics

    systems = [
        MajoritySystem(9),
        WheelSystem(8),
        TriangSystem(4),
        CrumblingWall([1, 3, 3]),
        TreeSystem(2),
        HQS(2),
        GridSystem(3),
    ]
    print(f"{'system':<16} {'n':>4} {'quorums':>8} {'min':>4} {'max':>4} {'ND':>4}")
    for system in systems:
        stats = quorum_size_statistics(system)
        nd = system.is_nondominated() if system.n <= 12 else None
        print(
            f"{system.name:<16} {system.n:>4} {int(stats['count']):>8} "
            f"{int(stats['min']):>4} {int(stats['max']):>4} "
            f"{'yes' if nd else 'no' if nd is not None else '?':>4}"
        )
    return 0


def _cmd_distributions(args: argparse.Namespace) -> int:
    from repro.core.distributions import source_specs

    specs = source_specs()
    width = max(len(spec.name) for spec in specs)
    print(f"{'name':<{width}}  description")
    print(f"{'-' * width}  {'-' * 11}")
    for spec in specs:
        aliases = f" (alias: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"{spec.name:<{width}}  {spec.description}{aliases}")
    print(
        f"\n{len(specs)} sources; use `estimate`/`sweep --distribution <name>` "
        "or `run ... --param distribution=<name>`"
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments.figures import render_all_figures

    print(render_all_figures())
    return 0


def _cmd_maj3(args: argparse.Namespace) -> int:
    from repro.experiments.maj3 import run_maj3_experiment
    from repro.experiments.report import render_table

    print(render_table(run_maj3_experiment(), "Maj3 worked example (Section 2.3)"))
    return 0


def _cmd_probe(args: argparse.Namespace) -> int:
    import random

    system = build_system(args.system, args.size)
    algorithm = (
        default_randomized_algorithm(system)
        if args.randomized
        else default_deterministic_algorithm(system)
    )
    rng = random.Random(args.seed)
    coloring = Coloring.random(system.n, args.p, rng)
    run = algorithm.run_on(coloring, rng=rng, validate=True)
    print(f"system    : {system.name} (n={system.n})")
    print(f"algorithm : {algorithm.name}")
    print(f"failed    : {sorted(coloring.red_elements)}")
    print(f"probes    : {run.probes}")
    print(f"sequence  : {list(run.sequence)}")
    print(f"witness   : {run.witness.color.value} {sorted(run.witness.elements)}")
    return 0


@contextmanager
def _distributed_coordinator(args: argparse.Namespace) -> Iterator:
    """Coordinator lifecycle for ``--workers``/``--spawn-workers`` commands.

    Yields ``None`` when the command is not distributed; otherwise binds
    the coordinator, optionally spawns loopback workers, waits for the
    expected head count (a loud error if they don't show up), and tears
    everything down — shutdown frames to workers, reaped child processes —
    when the block ends.
    """
    addresses = getattr(args, "workers", None)
    spawn = getattr(args, "spawn_workers", 0)
    if not addresses and not spawn:
        yield None
        return
    from repro.distributed import Coordinator, shutdown_workers, spawn_local_workers
    from repro.signals import trap_as_keyboard_interrupt

    bind = (
        [entry.strip() for entry in addresses.split(",") if entry.strip()]
        if addresses
        else [("127.0.0.1", 0)]
    )
    kwargs = {"local_fallback": not args.no_local_fallback}
    if args.lease_timeout is not None:
        kwargs["lease_timeout"] = args.lease_timeout
    try:
        coordinator = Coordinator(bind, **kwargs)
    except (ValueError, OSError) as error:
        raise SystemExit(str(error)) from None
    processes = []
    # SIGTERM unwinds like Ctrl-C, so a supervisor stopping this run still
    # reaches the finally below: workers get shutdown frames and spawned
    # processes are reaped instead of tripping the lease-expiry path.
    with trap_as_keyboard_interrupt():
        try:
            for host, port in coordinator.addresses:
                print(f"coordinator listening on {host}:{port}", file=sys.stderr)
            if spawn:
                processes = spawn_local_workers(spawn, coordinator.addresses[0])
            expected = args.min_workers if args.min_workers is not None else (spawn or 1)
            try:
                coordinator.wait_for_workers(expected, timeout=60.0)
            except TimeoutError as error:
                raise SystemExit(str(error)) from None
            yield coordinator
        finally:
            coordinator.close()
            if processes:
                shutdown_workers(processes)


def _cmd_worker(args: argparse.Namespace) -> int:
    """``worker --connect``: serve chunk leases to a coordinator."""
    from repro.distributed import (
        DEFAULT_HEARTBEAT_INTERVAL,
        DEFAULT_RECONNECT_FOR,
        run_worker,
    )

    try:
        return run_worker(
            args.connect,
            heartbeat_interval=(
                DEFAULT_HEARTBEAT_INTERVAL
                if args.heartbeat_interval is None
                else args.heartbeat_interval
            ),
            reconnect_for=(
                DEFAULT_RECONNECT_FOR
                if args.reconnect_for is None
                else args.reconnect_for
            ),
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the probe-estimation HTTP daemon until SIGTERM."""
    import logging

    from repro.service import serve

    logging.basicConfig(
        level=logging.INFO, format="%(asctime)s %(name)s %(levelname)s %(message)s"
    )
    try:
        return serve(
            args.data_dir,
            host=args.host,
            port=args.port,
            queue_size=args.queue_size,
            workers=args.workers,
            engine_jobs=args.engine_jobs,
            job_retries=args.job_retries,
            retries=args.retries,
            chunk_timeout=args.chunk_timeout,
            deadline=args.deadline,
        )
    except ValueError as error:
        raise SystemExit(str(error)) from None


def _cmd_resume(args: argparse.Namespace) -> int:
    """``estimate --resume``: continue a checkpointed run, self-contained."""
    from repro.core.engine import resume_stream
    from repro.distributed import DistributedError

    try:
        with _distributed_coordinator(args) as coordinator:
            result = resume_stream(
                args.resume,
                jobs=args.jobs,
                coordinator=coordinator,
                retries=args.retries,
                chunk_timeout=args.chunk_timeout,
                checkpoint_path=args.checkpoint,
                backend=args.backend,
            )
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error)) from None
    except DistributedError as error:
        raise SystemExit(f"{type(error).__name__}: {error}") from None
    print(f"resumed   : {args.resume}")
    print(f"algorithm : {result.algorithm}")
    print(f"inputs    : {result.source}")
    print(f"backend   : {result.backend}")
    if result.target_ci is not None:
        verdict = "reached" if result.reached_target else "NOT reached"
        print(
            f"stopping  : target ci95 {result.target_ci:g} {verdict} "
            f"after {result.n_trials_used} trials (ci95 {result.ci95:.4g})"
        )
    print(
        f"avg probes: {result.mean:.3f} ± {result.ci95:.3f} "
        f"({result.n_trials_used} trials)"
    )
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    if args.resume is not None:
        return _cmd_resume(args)
    system = build_system(args.system, args.size)
    algorithm = (
        default_randomized_algorithm(system)
        if args.randomized
        else default_deterministic_algorithm(system)
    )
    from repro.core.distributions import build_source, canonical_source_name

    try:
        distribution = canonical_source_name(args.distribution)
    except ValueError as error:
        raise SystemExit(str(error)) from None
    bernoulli = distribution == "bernoulli"
    source = None
    if not bernoulli:
        try:
            source = build_source(distribution, system, args.p)
        except ValueError as error:
            raise SystemExit(str(error)) from None
    _reject_trials_with_target_ci(args)
    streaming = (
        args.target_ci is not None
        or args.chunk_size is not None
        or args.max_trials is not None
        or args.jobs > 1
        or args.retries is not None
        or args.chunk_timeout is not None
        or args.checkpoint is not None
        or args.workers is not None
        or args.spawn_workers > 0
        or args.backend is not None
    )
    stream_result = None
    if streaming or args.batched:
        from repro.core.engine import stream_probes
        from repro.distributed import DistributedError

        try:
            with _distributed_coordinator(args) as coordinator:
                stream_result = stream_probes(
                    algorithm,
                    source,
                    p=args.p,
                    trials=args.trials,
                    target_ci=args.target_ci,
                    chunk_size=args.chunk_size,
                    max_trials=args.max_trials,
                    seed=args.seed,
                    jobs=args.jobs,
                    coordinator=coordinator,
                    retries=args.retries,
                    chunk_timeout=args.chunk_timeout,
                    checkpoint_path=args.checkpoint,
                    backend=args.backend,
                )
        except ValueError as error:
            raise SystemExit(str(error)) from None
        except DistributedError as error:
            raise SystemExit(f"{type(error).__name__}: {error}") from None
        estimate = stream_result.estimate
    else:
        estimate = estimate_average_probes(
            algorithm,
            args.p,
            trials=args.trials,
            seed=args.seed,
            source=source,
        )
    print(f"system    : {system.name} (n={system.n})")
    print(f"algorithm : {algorithm.name}")
    print(f"p         : {args.p}")
    if not bernoulli:
        print(f"inputs    : {distribution}")
    if stream_result is not None:
        from repro.core.batched import supports_batched

        kind = "vectorized kernel" if supports_batched(algorithm) else "per-trial fallback"
        jobs = f", {args.jobs} jobs" if args.jobs > 1 else ""
        print(
            f"estimator : streaming ({kind}, "
            f"chunk {stream_result.chunk_size}{jobs})"
        )
        print(f"backend   : {stream_result.backend}")
        if (
            stream_result.retries_used
            or stream_result.pool_respawns
            or stream_result.worker_reassignments
        ):
            print(
                f"recovery  : {stream_result.retries_used} chunk retries, "
                f"{stream_result.pool_respawns} pool respawns, "
                f"{stream_result.worker_reassignments} lease reassignments"
            )
        if stream_result.target_ci is not None:
            verdict = (
                "reached" if stream_result.reached_target else "NOT reached"
            )
            print(
                f"stopping  : target ci95 {stream_result.target_ci:g} {verdict} "
                f"after {stream_result.n_trials_used} trials "
                f"(ci95 {stream_result.ci95:.4g})"
            )
    print(f"avg probes: {estimate.mean:.3f} ± {estimate.ci95:.3f} ({estimate.trials} trials)")
    if not bernoulli:
        print("paper bounds: stated for the i.i.d. model only")
        return 0
    try:
        from repro.analysis.bounds import Direction, Model, bounds_for

        table = bounds_for(system)
        for direction in (Direction.LOWER, Direction.EXACT, Direction.UPPER):
            bound = table.get(Model.PROBABILISTIC, direction)
            if bound is not None:
                print(
                    f"paper {direction.value:<5}: {bound.value(system.n, args.p):.3f}  "
                    f"[{bound.source}: {bound.formula}]"
                )
    except KeyError:
        print("paper bounds: none stated for this system")
    return 0


def _parse_int_list(text: str) -> list[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _parse_float_list(text: str) -> list[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.distributed import DistributedError
    from repro.experiments.sweep import (
        render_sweep,
        resume_sweep,
        run_sweep,
        write_sweep_artifact,
    )

    _reject_trials_with_target_ci(args)
    try:
        with _distributed_coordinator(args) as coordinator:
            if args.resume is not None:
                # Self-contained: the grid definition comes from the
                # checkpoint; only execution knobs apply here.
                result = resume_sweep(
                    args.resume,
                    jobs=args.jobs,
                    fail_fast=args.fail_fast,
                    retries=args.retries,
                    chunk_timeout=args.chunk_timeout,
                    coordinator=coordinator,
                    checkpoint_path=args.checkpoint,
                    backend=args.backend,
                )
            else:
                result = run_sweep(
                    args.system,
                    sizes=args.sizes,
                    ps=args.ps,
                    trials=args.trials,
                    seed=args.seed,
                    randomized=args.randomized,
                    distribution=args.distribution,
                    chunk_size=args.chunk_size,
                    target_ci=args.target_ci,
                    max_trials=args.max_trials,
                    jobs=args.jobs,
                    fail_fast=args.fail_fast,
                    retries=args.retries,
                    chunk_timeout=args.chunk_timeout,
                    coordinator=coordinator,
                    checkpoint_path=args.checkpoint,
                    backend=args.backend,
                )
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(str(error)) from None
    except DistributedError as error:
        raise SystemExit(f"{type(error).__name__}: {error}") from None
    print(render_sweep(result))
    # The default artifact name encodes every result-changing axis so two
    # sweeps of the same system cannot silently overwrite each other.
    inputs_suffix = (
        "" if result.distribution == "bernoulli" else f"_{result.distribution}"
    )
    output = args.output or (
        f"sweep_{result.system}{'_rand' if result.randomized else ''}{inputs_suffix}.json"
    )
    path = write_sweep_artifact(result, output)
    print(f"wrote {path}")
    failed = result.failed_cells
    if failed:
        print(
            f"ERROR: {len(failed)} of {len(result.cells)} cells failed "
            "(recorded in the artifact)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.experiments.table1 import Table1Sizes, render_table1, run_table1

    sizes = Table1Sizes(
        maj_n=args.maj_n,
        triang_depth=args.triang_depth,
        tree_height=args.tree_height,
        hqs_height=args.hqs_height,
    )
    rows = run_table1(sizes=sizes, trials=args.trials, seed=args.seed)
    print(render_table1(rows))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.registry import all_specs, all_tags, specs_for_tag

    specs = specs_for_tag(args.tag) if args.tag else all_specs()
    if not specs:
        print(f"no experiments tagged {args.tag!r}; tags: {', '.join(all_tags())}")
        return 1
    width = max(len(spec.id) for spec in specs)
    tag_width = max(len(",".join(spec.tags)) for spec in specs)
    print(f"{'id':<{width}}  {'tags':<{tag_width}}  title")
    print(f"{'-' * width}  {'-' * tag_width}  {'-' * 5}")
    for spec in specs:
        print(f"{spec.id:<{width}}  {','.join(spec.tags):<{tag_width}}  {spec.title}")
        if args.params:
            for param in spec.params:
                print(
                    f"{'':<{width}}    --param {param.name}={param.default!r}"
                    f" ({param.kind}){': ' + param.help if param.help else ''}"
                )
    print(f"\n{len(specs)} experiments; tags: {', '.join(all_tags())}")
    return 0


def _parse_param_overrides(pairs: Sequence[str]) -> dict[str, str]:
    overrides: dict[str, str] = {}
    for pair in pairs or ():
        name, separator, value = pair.partition("=")
        if not separator or not name:
            raise SystemExit(f"--param expects name=value, got {pair!r}")
        overrides[name.strip()] = value
    return overrides


def _selected_specs(args: argparse.Namespace) -> list:
    from repro.experiments.registry import all_specs, all_tags, get_spec, specs_for_tag

    specs = []
    if args.all:
        specs.extend(all_specs())
    elif args.tag:
        tagged = specs_for_tag(args.tag)
        if not tagged:
            raise SystemExit(
                f"no experiments tagged {args.tag!r}; tags: {', '.join(all_tags())}"
            )
        specs.extend(tagged)
    for experiment_id in args.ids:
        try:
            specs.append(get_spec(experiment_id))
        except KeyError as error:
            raise SystemExit(str(error)) from None
    unique = list({spec.id: spec for spec in specs}.values())
    if not unique:
        raise SystemExit("select experiments: give ids, --tag <tag> or --all")
    return unique


def _cmd_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import render_table
    from repro.experiments.runner import artifact_path, run_experiments, write_artifact

    if getattr(args, "deprecated_alias", False):
        print(
            "note: `repro-probe experiment` is deprecated; use `repro-probe run`",
            file=sys.stderr,
        )
    specs = _selected_specs(args)
    param_overrides = _parse_param_overrides(args.param)
    if len(specs) == 1:
        # Strict resolution surfaces typos in explicit --param pairs for a
        # single spec; the shared --trials/--seed flags stay lenient (specs
        # without those parameters, like maj3, simply ignore them).
        try:
            specs[0].resolve_params(param_overrides, strict=True)
        except (KeyError, ValueError) as error:
            raise SystemExit(str(error)) from None
    overrides: dict = dict(param_overrides)
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.seed is not None:
        overrides["seed"] = args.seed

    if args.output is not None and len(specs) > 1 and args.output.endswith(".json"):
        raise SystemExit(
            f"--output {args.output} is a .json file but {len(specs)} experiments "
            "were selected; pass a directory instead"
        )

    try:
        results = run_experiments(
            [spec.id for spec in specs],
            overrides=overrides,
            jobs=args.jobs,
            fail_fast=args.fail_fast,
            backend=args.backend,
        )
    except ValueError as error:
        raise SystemExit(f"invalid parameter value: {error}") from None

    total_rows = 0
    total_violations = 0
    failed = []
    for result in results:
        if result.status != "ok":
            failed.append(result)
            print(f"Experiment {result.spec_id} — {result.title}")
            print(f"FAILED: {result.error}")
            print()
            continue
        print(render_table(result.rows, f"Experiment {result.spec_id} — {result.title}"))
        for line in result.extra:
            print(line)
        bad = result.violation_rows
        total_rows += len(result.rows)
        total_violations += len(bad)
        if bad:
            print(f"WARNING: {len(bad)} rows violate their paper relation")
        print()

    if args.output is not None:
        output = Path(args.output)
        if len(results) == 1 and output.suffix == ".json":
            paths = [write_artifact(results[0], output)]
        else:
            paths = [
                write_artifact(result, artifact_path(result, output))
                for result in results
            ]
        for path in paths:
            print(f"wrote {path}")

    if failed:
        names = ", ".join(result.spec_id for result in failed)
        print(
            f"\nERROR: {len(failed)} of {len(results)} experiments failed: {names}",
            file=sys.stderr,
        )
        return 1
    if total_violations:
        print(f"\nWARNING: {total_violations} rows violate their paper relation")
        return 1
    print(f"\nAll {total_rows} checked relations consistent with the paper.")
    return 0


def _reject_trials_with_target_ci(args: argparse.Namespace) -> None:
    """An explicit --trials contradicts --target-ci: fail, don't guess."""
    if args.target_ci is not None and args.trials is not None:
        raise SystemExit(
            "--trials and --target-ci are mutually exclusive: the adaptive mode "
            "chooses the trial count itself; cap it with --max-trials instead"
        )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The streaming-engine knobs shared by ``estimate`` and ``sweep``."""
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        dest="chunk_size",
        help="streaming-engine trials per chunk (default: auto)",
    )
    parser.add_argument(
        "--target-ci",
        type=float,
        default=None,
        dest="target_ci",
        help="adaptive stop: 95%% CI half-width tolerance (default: fixed trials)",
    )
    parser.add_argument(
        "--max-trials",
        type=int,
        default=None,
        dest="max_trials",
        help="trial cap of the --target-ci stopping mode",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard trial chunks across N worker processes",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="per-chunk retry budget for worker crashes/timeouts (default 2)",
    )
    parser.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        dest="chunk_timeout",
        help="seconds before a chunk's worker is declared hung and respawned",
    )
    parser.add_argument(
        "--backend",
        choices=["numpy", "bitpacked", "compiled", "auto"],
        default=None,
        help="kernel backend: bit-packed (64 trials/word) or compiled "
        "(numba-fused, requires numba) for deterministic algorithms, numpy "
        "otherwise; auto prefers compiled, then bitpacked, per algorithm "
        "and trial count",
    )
    parser.add_argument(
        "--auto-backend-min-trials",
        type=int,
        default=None,
        dest="auto_backend_min_trials",
        metavar="N",
        help="trial count at which --backend auto leaves numpy for a packed "
        "backend (default 8192; also settable via "
        "REPRO_AUTO_BACKEND_MIN_TRIALS)",
    )


def _add_distributed_arguments(parser: argparse.ArgumentParser) -> None:
    """The distributed-backend knobs shared by ``estimate`` and ``sweep``."""
    parser.add_argument(
        "--workers",
        default=None,
        metavar="HOST:PORT[,...]",
        help="run distributed: bind a coordinator on these addresses and "
        "lease chunks to workers dialing in via `repro-probe worker --connect`",
    )
    parser.add_argument(
        "--spawn-workers",
        type=int,
        default=0,
        dest="spawn_workers",
        metavar="N",
        help="run distributed: spawn N loopback worker processes",
    )
    parser.add_argument(
        "--min-workers",
        type=int,
        default=None,
        dest="min_workers",
        metavar="N",
        help="wait for N connected workers before starting "
        "(default: the --spawn-workers count, else 1)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        dest="lease_timeout",
        help="seconds without a heartbeat before a worker's lease is "
        "reassigned (default 10)",
    )
    parser.add_argument(
        "--no-local-fallback",
        action="store_true",
        dest="no_local_fallback",
        help="fail with AllWorkersLostError instead of computing locally "
        "when every worker is gone",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-probe",
        description="Probe-complexity experiments for quorum systems (Hassin & Peleg)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("systems", help="list built-in systems").set_defaults(func=_cmd_systems)
    sub.add_parser(
        "distributions", help="list the registered coloring sources"
    ).set_defaults(func=_cmd_distributions)
    sub.add_parser("figures", help="render Figures 1-3").set_defaults(func=_cmd_figures)
    sub.add_parser("maj3", help="the Maj3 worked example").set_defaults(func=_cmd_maj3)

    probe = sub.add_parser("probe", help="run one probing episode")
    probe.add_argument("--system", choices=SYSTEM_CHOICES, default="triang")
    probe.add_argument("--size", type=int, default=6, help="system size knob")
    probe.add_argument("--p", type=float, default=0.5, help="failure probability")
    probe.add_argument("--seed", type=int, default=None)
    probe.add_argument("--randomized", action="store_true", help="use the randomized algorithm")
    probe.set_defaults(func=_cmd_probe)

    estimate = sub.add_parser("estimate", help="Monte-Carlo average probe estimate")
    estimate.add_argument("--system", choices=SYSTEM_CHOICES, default="triang")
    estimate.add_argument("--size", type=int, default=8)
    estimate.add_argument("--p", type=float, default=0.5)
    estimate.add_argument(
        "--trials",
        type=int,
        default=None,
        help="Monte-Carlo trials (default 1000; mutually exclusive with --target-ci)",
    )
    estimate.add_argument("--seed", type=int, default=None)
    estimate.add_argument("--randomized", action="store_true")
    estimate.add_argument(
        "--batched",
        action="store_true",
        help="use the vectorized (numpy) Monte-Carlo estimator",
    )
    estimate.add_argument(
        "--distribution",
        default="bernoulli",
        help="registered coloring source for the inputs (see `distributions`)",
    )
    estimate.add_argument(
        "--checkpoint",
        default=None,
        help="write crash-safe run state to this file after every merged chunk",
    )
    estimate.add_argument(
        "--resume",
        default=None,
        metavar="CKPT",
        help="continue a checkpointed run (self-contained: other flags ignored)",
    )
    _add_engine_arguments(estimate)
    _add_distributed_arguments(estimate)
    estimate.set_defaults(func=_cmd_estimate)

    sweep = sub.add_parser(
        "sweep",
        help="batched Monte-Carlo sweep over a (p, size) grid, written as JSON",
    )
    sweep.add_argument("--system", choices=SYSTEM_CHOICES, default="tree")
    sweep.add_argument(
        "--sizes",
        type=_parse_int_list,
        default=[3, 5, 7, 9],
        help="comma-separated size knobs (e.g. tree/HQS heights)",
    )
    sweep.add_argument(
        "--ps",
        type=_parse_float_list,
        default=[0.1, 0.3, 0.5],
        help="comma-separated failure probabilities",
    )
    sweep.add_argument(
        "--trials",
        type=int,
        default=None,
        help="trials per cell (default 1000; mutually exclusive with --target-ci)",
    )
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--randomized", action="store_true")
    sweep.add_argument(
        "--distribution",
        default="bernoulli",
        help="registered coloring source for the cell inputs (see `distributions`)",
    )
    sweep.add_argument(
        "--output",
        default=None,
        help="artifact path (default: sweep_<system>[_rand].json)",
    )
    sweep.add_argument(
        "--fail-fast",
        action="store_true",
        dest="fail_fast",
        help="abort on the first failing cell instead of recording it",
    )
    sweep.add_argument(
        "--checkpoint",
        default=None,
        help="write grid-resume state to this file after every measured cell",
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="CKPT",
        help="continue a checkpointed sweep, skipping completed cells "
        "(self-contained: grid flags ignored)",
    )
    _add_engine_arguments(sweep)
    _add_distributed_arguments(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    worker = sub.add_parser(
        "worker", help="serve chunk leases to a distributed coordinator"
    )
    worker.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="coordinator address to dial (an estimate/sweep run with --workers)",
    )
    worker.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        dest="heartbeat_interval",
        help="seconds between lease heartbeats while computing (default 1)",
    )
    worker.add_argument(
        "--reconnect-for",
        type=float,
        default=None,
        dest="reconnect_for",
        help="seconds of failed reconnection attempts before giving up (default 10)",
    )
    worker.set_defaults(func=_cmd_worker)

    serve = sub.add_parser(
        "serve", help="run the probe-estimation HTTP service"
    )
    serve.add_argument(
        "--data-dir",
        required=True,
        dest="data_dir",
        metavar="DIR",
        help="durable state directory (job journal, checkpoints, result cache)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8421, help="bind port (0 picks a free port)"
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=16,
        dest="queue_size",
        help="admission bound: waiting jobs beyond this get 503 + Retry-After",
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="concurrent job runner threads"
    )
    serve.add_argument(
        "--engine-jobs",
        type=int,
        default=1,
        dest="engine_jobs",
        help="worker processes per engine run (shared warm chunk pool)",
    )
    serve.add_argument(
        "--job-retries",
        type=int,
        default=1,
        dest="job_retries",
        help="re-run attempts for a failed job (exponential backoff)",
    )
    serve.add_argument(
        "--retries",
        type=int,
        default=None,
        help="per-chunk retry budget inside each engine run",
    )
    serve.add_argument(
        "--chunk-timeout",
        type=float,
        default=None,
        dest="chunk_timeout",
        help="seconds before a hung chunk is abandoned and re-run",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds (engine run_timeout)",
    )
    serve.set_defaults(func=_cmd_serve)

    table1 = sub.add_parser("table1", help="regenerate the paper's Table 1")
    table1.add_argument("--maj-n", type=int, default=101, dest="maj_n")
    table1.add_argument("--triang-depth", type=int, default=12, dest="triang_depth")
    table1.add_argument("--tree-height", type=int, default=7, dest="tree_height")
    table1.add_argument("--hqs-height", type=int, default=4, dest="hqs_height")
    table1.add_argument("--trials", type=int, default=1000)
    table1.add_argument("--seed", type=int, default=1001)
    table1.set_defaults(func=_cmd_table1)

    listing = sub.add_parser("list", help="list the registered experiments")
    listing.add_argument("--tag", default=None, help="only experiments with this tag")
    listing.add_argument(
        "--params", action="store_true", help="show each experiment's parameter schema"
    )
    listing.set_defaults(func=_cmd_list)

    def add_run_arguments(run_parser: argparse.ArgumentParser, ids_nargs: str) -> None:
        run_parser.add_argument(
            "ids", nargs=ids_nargs, metavar="id", help="registered experiment id(s)"
        )
        run_parser.add_argument("--tag", default=None, help="run every experiment with this tag")
        run_parser.add_argument(
            "--all", action="store_true", help="run every registered experiment"
        )
        run_parser.add_argument(
            "--trials", type=int, default=None, help="Monte-Carlo trials override"
        )
        run_parser.add_argument("--seed", type=int, default=None, help="experiment seed override")
        run_parser.add_argument(
            "--param",
            action="append",
            metavar="NAME=VALUE",
            default=[],
            help="override a declared parameter (repeatable); see `list --params`",
        )
        run_parser.add_argument(
            "--jobs", type=int, default=1, help="fan experiments out across N processes"
        )
        run_parser.add_argument(
            "--output",
            default=None,
            help="write JSON artifact(s): a directory, or a .json path for a single id",
        )
        run_parser.add_argument(
            "--fail-fast",
            action="store_true",
            dest="fail_fast",
            help="abort on the first failing experiment instead of recording it",
        )
        run_parser.add_argument(
            "--backend",
            choices=["numpy", "bitpacked", "compiled", "auto"],
            default=None,
            help="kernel backend for the experiments' engine calls "
            "(auto recommended for mixed algorithm sets)",
        )
        run_parser.add_argument(
            "--auto-backend-min-trials",
            type=int,
            default=None,
            dest="auto_backend_min_trials",
            metavar="N",
            help="trial count at which backend auto leaves numpy for a "
            "packed backend (default 8192; also settable via "
            "REPRO_AUTO_BACKEND_MIN_TRIALS)",
        )

    run = sub.add_parser(
        "run", help="run registered experiments through the unified runner"
    )
    add_run_arguments(run, "*")
    run.set_defaults(func=_cmd_run)

    experiment = sub.add_parser(
        "experiment", help="deprecated alias of `run`"
    )
    add_run_arguments(experiment, "+")
    experiment.set_defaults(func=_cmd_run, deprecated_alias=True)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "auto_backend_min_trials", None) is not None:
        from repro.core.batched import set_auto_backend_min_trials

        try:
            set_auto_backend_min_trials(args.auto_backend_min_trials)
        except ValueError as exc:
            parser.error(str(exc))
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
