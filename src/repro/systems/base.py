"""Quorum systems, coteries and nondominated coteries.

A *set system* over the universe ``U = {1, ..., n}`` is a collection of
subsets of ``U``.  A *quorum system* is a set system whose members (quorums)
pairwise intersect.  A *coterie* additionally satisfies minimality (no quorum
contains another), and a coterie is *nondominated* (ND) when no other coterie
dominates it (Section 2.1 of the paper).

Because interesting systems (e.g. Majority over hundreds of elements) have an
astronomically large number of quorums, the base class represents a system
*implicitly*: subclasses must be able to decide whether a given set of
elements contains a quorum, and to exhibit one when it does.  Explicit quorum
enumeration is available where feasible and is used by the structural checks
(intersection, minimality, nondomination) exercised in the test-suite.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator

from repro.core.bitmask import elements_of, mask_of, validate_mask
from repro.core.coloring import Color, Coloring

#: Default cap on universe size for brute-force quorum enumeration.
ENUMERATION_LIMIT = 20


class QuorumSystem(ABC):
    """Abstract base class for (implicitly represented) quorum systems.

    Subclasses must implement :meth:`contains_quorum` (the characteristic
    monotone boolean function of the system, Definition 1 of the paper) and
    :meth:`find_quorum_within`, and may override :meth:`quorums` with an
    efficient enumerator of the *minimal* quorums.
    """

    def __init__(self, n: int, name: str | None = None) -> None:
        if n < 1:
            raise ValueError(f"universe must contain at least one element, got n={n}")
        self._n = n
        self._name = name or type(self).__name__
        self._quorum_masks_cache: tuple[int, ...] | None = None
        self._transversal_masks_cache: tuple[int, ...] | None = None

    # -- basic attributes -------------------------------------------------

    @property
    def n(self) -> int:
        """Number of elements in the universe."""
        return self._n

    @property
    def name(self) -> str:
        """Human-readable name of the system."""
        return self._name

    @property
    def universe(self) -> frozenset[int]:
        """The universe ``{1, ..., n}``."""
        return frozenset(range(1, self._n + 1))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self._n})"

    # -- characteristic function ------------------------------------------

    @abstractmethod
    def contains_quorum(self, elements: Iterable[int]) -> bool:
        """Return True if ``elements`` is a superset of some quorum.

        Equivalently, this evaluates the characteristic monotone boolean
        function ``f_S`` on the assignment giving 1 to ``elements``.
        """

    @abstractmethod
    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        """Return some quorum contained in ``elements``, or None.

        The returned quorum need not be minimal, but concrete systems return
        minimal quorums whenever that is natural.
        """

    # -- bitmask fast path ---------------------------------------------------

    @property
    def universe_mask(self) -> int:
        """The universe as an integer mask (bit ``i`` ⇔ element ``i + 1``)."""
        return (1 << self._n) - 1

    def contains_quorum_mask(self, mask: int) -> bool:
        """Mask-native :meth:`contains_quorum`.

        The default implementation round-trips through a frozenset so every
        system supports the mask protocol; concrete systems override it with
        structure-aware word operations (popcount thresholds, precomputed
        row/quorum masks, recursive gate evaluation).
        """
        validate_mask(mask, self._n)
        return self.contains_quorum(elements_of(mask))

    def find_quorum_within_mask(self, mask: int) -> int | None:
        """Mask-native :meth:`find_quorum_within`."""
        validate_mask(mask, self._n)
        quorum = self.find_quorum_within(elements_of(mask))
        return None if quorum is None else mask_of(quorum)

    def is_transversal_mask(self, mask: int) -> bool:
        """Mask-native :meth:`is_transversal`."""
        validate_mask(mask, self._n)
        return not self.contains_quorum_mask(self.universe_mask & ~mask)

    def quorum_masks(self) -> tuple[int, ...]:
        """All minimal quorums as integer masks, computed once per instance.

        Requires quorum enumeration, hence the same universe-size limits as
        :meth:`quorums`; the tuple is cached so repeated callers pay the
        enumeration cost only once.
        """
        if self._quorum_masks_cache is None:
            self._quorum_masks_cache = tuple(mask_of(q) for q in self.quorums())
        return self._quorum_masks_cache

    def transversal_masks(self) -> tuple[int, ...]:
        """All minimal transversals as integer masks, computed once.

        These are the quorums of the dual system; a known-red mask settles a
        red witness exactly when it covers one of them.
        """
        if self._transversal_masks_cache is None:
            from repro.systems.boolean import dual_system

            self._transversal_masks_cache = tuple(
                mask_of(q) for q in dual_system(self).quorums()
            )
        return self._transversal_masks_cache

    def is_quorum(self, elements: Iterable[int]) -> bool:
        """Return True if ``elements`` is exactly a *minimal* quorum.

        A set is a minimal quorum when it contains a quorum but no proper
        subset of it does.
        """
        s = frozenset(elements)
        if not self.contains_quorum(s):
            return False
        return all(not self.contains_quorum(s - {e}) for e in s)

    def is_transversal(self, elements: Iterable[int]) -> bool:
        """Return True if ``elements`` intersects every quorum.

        A set ``R`` is a transversal iff its complement contains no quorum.
        """
        complement = self.universe - frozenset(elements)
        return not self.contains_quorum(complement)

    # -- quorum enumeration -------------------------------------------------

    def quorums(self) -> Iterator[frozenset[int]]:
        """Iterate over all minimal quorums of the system.

        The default implementation brute-forces over all subsets and is only
        usable for small universes (``n <= ENUMERATION_LIMIT``); concrete
        systems override it with direct constructions where possible.
        """
        if self._n > ENUMERATION_LIMIT:
            raise NotImplementedError(
                f"brute-force quorum enumeration is limited to n <= "
                f"{ENUMERATION_LIMIT}; {self.name} has n = {self._n}"
            )
        universe = sorted(self.universe)
        for size in range(1, self._n + 1):
            for subset in itertools.combinations(universe, size):
                candidate = frozenset(subset)
                if self.is_quorum(candidate):
                    yield candidate

    def quorum_sizes(self) -> list[int]:
        """Sizes of all minimal quorums (requires enumeration)."""
        return sorted(len(q) for q in self.quorums())

    def min_quorum_size(self) -> int:
        """Size of a smallest quorum (the paper's parameter ``c``)."""
        return min(len(q) for q in self.quorums())

    def max_quorum_size(self) -> int:
        """Size of a largest quorum (the paper's parameter ``m``)."""
        return max(len(q) for q in self.quorums())

    # -- structural properties ----------------------------------------------

    def has_intersection_property(self) -> bool:
        """Check that every pair of quorums intersects (quorum-system axiom)."""
        qs = list(self.quorums())
        return all(q1 & q2 for q1, q2 in itertools.combinations(qs, 2)) if len(qs) > 1 else True

    def is_coterie(self) -> bool:
        """Check intersection plus minimality (no quorum contains another)."""
        qs = list(self.quorums())
        for q1, q2 in itertools.permutations(qs, 2):
            if q1 < q2:
                return False
        return self.has_intersection_property()

    def is_nondominated(self) -> bool:
        """Check nondomination via the classical transversal criterion.

        A coterie ``S`` is ND iff every transversal of ``S`` contains a
        quorum of ``S`` (Lemma 2.1 gives one direction; the converse holds as
        well: if some transversal contains no quorum, adding a minimal such
        transversal produces a dominating coterie).  Equivalently, for every
        subset ``T`` of the universe, either ``T`` contains a quorum or the
        complement of ``T`` contains a quorum — i.e. the characteristic
        function is self-dual.
        """
        if self._n > ENUMERATION_LIMIT:
            raise NotImplementedError(
                "exhaustive nondomination check is limited to small universes"
            )
        universe = sorted(self.universe)
        full = self.universe
        for size in range(self._n + 1):
            for subset in itertools.combinations(universe, size):
                t = frozenset(subset)
                if not self.contains_quorum(t) and not self.contains_quorum(full - t):
                    return False
        return True

    def dominates(self, other: "QuorumSystem") -> bool:
        """Return True if this coterie dominates ``other`` (``self ≻ other``).

        ``R`` dominates ``S`` when they differ and every quorum of ``S``
        contains some quorum of ``R``.
        """
        if self.n != other.n:
            raise ValueError("domination is only defined over a common universe")
        mine = set(self.quorums())
        theirs = set(other.quorums())
        if mine == theirs:
            return False
        return all(self.contains_quorum(s) for s in theirs)

    # -- witnesses against a coloring ----------------------------------------

    def find_green_quorum(self, coloring: Coloring) -> frozenset[int] | None:
        """Return a quorum all of whose elements are green, if one exists."""
        self._check_coloring(coloring)
        return self.find_quorum_within(coloring.green_elements)

    def find_red_quorum(self, coloring: Coloring) -> frozenset[int] | None:
        """Return a quorum all of whose elements are red, if one exists."""
        self._check_coloring(coloring)
        return self.find_quorum_within(coloring.red_elements)

    def has_live_quorum(self, coloring: Coloring) -> bool:
        """Return True if the system currently contains a live (green) quorum."""
        self._check_coloring(coloring)
        return self.contains_quorum(coloring.green_elements)

    def witness_color(self, coloring: Coloring) -> Color:
        """Color of the witness for this coloring.

        Green when a live quorum exists, red otherwise (in which case the red
        elements form a transversal; for an ND coterie they contain a red
        quorum, Lemma 2.1).
        """
        return Color.GREEN if self.has_live_quorum(coloring) else Color.RED

    def _check_coloring(self, coloring: Coloring) -> None:
        if coloring.n != self._n:
            raise ValueError(
                f"coloring is over {coloring.n} elements but {self.name} has n={self._n}"
            )

    # -- conversions -----------------------------------------------------------

    def to_explicit(self) -> "ExplicitQuorumSystem":
        """Materialize the minimal quorums into an explicit system."""
        return ExplicitQuorumSystem(self.n, self.quorums(), name=self.name)


class ExplicitQuorumSystem(QuorumSystem):
    """A quorum system given by an explicit list of quorums.

    The quorum list is reduced to its minimal sets (an explicit system built
    from arbitrary sets therefore always satisfies minimality; intersection
    and nondomination are *not* enforced and can be checked separately).
    """

    def __init__(
        self,
        n: int,
        quorums: Iterable[Iterable[int]],
        name: str | None = None,
    ) -> None:
        super().__init__(n, name=name or "ExplicitQuorumSystem")
        sets = {frozenset(q) for q in quorums}
        if not sets:
            raise ValueError("a quorum system must contain at least one quorum")
        for q in sets:
            if not q:
                raise ValueError("quorums must be nonempty")
            if not q <= self.universe:
                raise ValueError(f"quorum {sorted(q)} not contained in universe 1..{n}")
        # Keep only minimal sets so the collection is an antichain.
        self._quorums = sorted(
            (q for q in sets if not any(other < q for other in sets)),
            key=lambda q: (len(q), sorted(q)),
        )
        self._quorum_masks_cache = tuple(mask_of(q) for q in self._quorums)

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        return any(q <= s for q in self._quorums)

    def contains_quorum_mask(self, mask: int) -> bool:
        validate_mask(mask, self._n)
        return any(q & mask == q for q in self._quorum_masks_cache)

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        for q in self._quorums:
            if q <= s:
                return q
        return None

    def quorums(self) -> Iterator[frozenset[int]]:
        return iter(self._quorums)

    def quorum_count(self) -> int:
        """Number of (minimal) quorums."""
        return len(self._quorums)


def intersection_property(quorums: Iterable[Iterable[int]]) -> bool:
    """Check pairwise intersection for an explicit collection of sets."""
    sets = [frozenset(q) for q in quorums]
    return all(a & b for a, b in itertools.combinations(sets, 2)) if len(sets) > 1 else True


def is_antichain(quorums: Iterable[Iterable[int]]) -> bool:
    """Check that no set in the collection contains another."""
    sets = [frozenset(q) for q in quorums]
    return not any(a < b for a, b in itertools.permutations(sets, 2))
