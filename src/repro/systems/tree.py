"""The Tree quorum system (Agrawal & El-Abbadi 1991).

The universe is arranged as a complete binary tree.  A quorum is defined
recursively: it is either the root together with a quorum of one of its
subtrees, or the union of one quorum from each of the two subtrees.  For a
single node the only quorum is that node itself.

Nodes are numbered in heap order: the root is 1 and the children of node
``v`` are ``2v`` and ``2v + 1``; a tree of height ``h`` therefore has
``n = 2^(h+1) - 1`` elements.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.systems.base import QuorumSystem


class TreeSystem(QuorumSystem):
    """The binary-tree coterie over a complete binary tree of height ``h``."""

    def __init__(self, height: int) -> None:
        if height < 0:
            raise ValueError("tree height must be nonnegative")
        n = 2 ** (height + 1) - 1
        super().__init__(n, name=f"Tree(h={height})")
        self._height = height

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_size(cls, n: int) -> "TreeSystem":
        """Build the tree system over ``n = 2^(h+1) - 1`` elements."""
        height = (n + 1).bit_length() - 2
        if 2 ** (height + 1) - 1 != n:
            raise ValueError(f"n={n} is not of the form 2^(h+1) - 1")
        return cls(height)

    # -- tree structure ----------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the tree (a single node has height 0)."""
        return self._height

    @property
    def root(self) -> int:
        """The root element (heap index 1)."""
        return 1

    def is_leaf(self, v: int) -> bool:
        """True when ``v`` has no children."""
        self._check_node(v)
        return 2 * v > self._n

    def children(self, v: int) -> tuple[int, int] | tuple[()]:
        """The (left, right) children of ``v``, or () for a leaf."""
        self._check_node(v)
        if self.is_leaf(v):
            return ()
        return (2 * v, 2 * v + 1)

    def parent(self, v: int) -> int | None:
        """Parent of ``v``, or None for the root."""
        self._check_node(v)
        return None if v == 1 else v // 2

    def leaves(self) -> list[int]:
        """All leaf elements, left to right."""
        first_leaf = 2**self._height
        return list(range(first_leaf, self._n + 1))

    def depth_of(self, v: int) -> int:
        """Depth of node ``v`` (the root has depth 0)."""
        self._check_node(v)
        return v.bit_length() - 1

    def subtree_elements(self, v: int) -> frozenset[int]:
        """All elements in the subtree rooted at ``v`` (including ``v``)."""
        self._check_node(v)
        elements = []
        frontier = [v]
        while frontier:
            node = frontier.pop()
            elements.append(node)
            if not self.is_leaf(node):
                frontier.extend((2 * node, 2 * node + 1))
        return frozenset(elements)

    def _check_node(self, v: int) -> None:
        if not 1 <= v <= self._n:
            raise ValueError(f"node {v} outside universe 1..{self._n}")

    # -- quorum predicate ----------------------------------------------------------

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return self._has_quorum(1, s)

    def _has_quorum(self, v: int, s: frozenset[int]) -> bool:
        if self.is_leaf(v):
            return v in s
        left, right = 2 * v, 2 * v + 1
        left_ok = self._has_quorum(left, s)
        right_ok = self._has_quorum(right, s)
        if left_ok and right_ok:
            return True
        return v in s and (left_ok or right_ok)

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        return self._has_quorum_mask(1, mask)

    def _has_quorum_mask(self, v: int, mask: int) -> bool:
        # Heap node v corresponds to bit v - 1; leaves have 2v > n.
        if 2 * v > self._n:
            return bool((mask >> (v - 1)) & 1)
        left_ok = self._has_quorum_mask(2 * v, mask)
        right_ok = self._has_quorum_mask(2 * v + 1, mask)
        if left_ok and right_ok:
            return True
        return bool((mask >> (v - 1)) & 1) and (left_ok or right_ok)

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return self._find_quorum(1, s)

    def _find_quorum(self, v: int, s: frozenset[int]) -> frozenset[int] | None:
        if self.is_leaf(v):
            return frozenset({v}) if v in s else None
        left_q = self._find_quorum(2 * v, s)
        right_q = self._find_quorum(2 * v + 1, s)
        if v in s:
            # Prefer the cheaper root+subtree form when available.
            if left_q is not None and (right_q is None or len(left_q) <= len(right_q)):
                return left_q | {v}
            if right_q is not None:
                return right_q | {v}
            return None
        if left_q is not None and right_q is not None:
            return left_q | right_q
        return None

    # -- enumeration / sizes ----------------------------------------------------------

    def quorums(self) -> Iterator[frozenset[int]]:
        yield from self._enumerate(1)

    def _enumerate(self, v: int) -> Iterator[frozenset[int]]:
        if self.is_leaf(v):
            yield frozenset({v})
            return
        left, right = 2 * v, 2 * v + 1
        left_quorums = list(self._enumerate(left))
        right_quorums = list(self._enumerate(right))
        for q in left_quorums:
            yield q | {v}
        for q in right_quorums:
            yield q | {v}
        for ql in left_quorums:
            for qr in right_quorums:
                yield ql | qr

    def quorum_count(self) -> int:
        """Number of quorums, via ``Q(h) = 2 Q(h-1) + Q(h-1)^2``."""
        count = 1
        for _ in range(self._height):
            count = 2 * count + count * count
        return count

    def min_quorum_size(self) -> int:
        """A root-to-leaf path, of size ``h + 1``."""
        return self._height + 1

    def max_quorum_size(self) -> int:
        """All the leaves, of size ``2^h = (n + 1) / 2``."""
        return 2**self._height
