"""Name-and-size-knob factory for the paper's systems.

Shared by the CLI, the sweep runner and the experiment registry, so
library code never has to import :mod:`repro.cli` to turn a
``("tree", 7)``-style specification into a system.

Like the experiment registry (:mod:`repro.experiments.registry`), the
factory is registration-driven: each system family maps a CLI name (plus
aliases) to a builder taking the integer size knob.  New families register
a builder instead of growing an ``if`` ladder.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.systems.base import QuorumSystem
from repro.systems.crumbling_walls import CrumblingWall, TriangSystem
from repro.systems.grid import GridSystem
from repro.systems.hqs import HQS
from repro.systems.majority import MajoritySystem
from repro.systems.tree import TreeSystem
from repro.systems.wheel import WheelSystem

#: Canonical CLI name -> builder taking the size knob.
_BUILDERS: dict[str, Callable[[int], QuorumSystem]] = {}

#: Alias -> canonical CLI name.
_ALIASES: dict[str, str] = {}


def register_system_builder(
    name: str,
    builder: Callable[[int], QuorumSystem],
    aliases: tuple[str, ...] = (),
) -> None:
    """Register a system family under ``name`` (plus ``aliases``)."""
    key = name.lower()
    if key in _BUILDERS or key in _ALIASES:
        raise ValueError(f"system name {name!r} already registered")
    _BUILDERS[key] = builder
    for alias in aliases:
        alias_key = alias.lower()
        if alias_key in _BUILDERS or alias_key in _ALIASES:
            raise ValueError(f"system alias {alias!r} already registered")
        _ALIASES[alias_key] = key


register_system_builder(
    "maj", lambda size: MajoritySystem(size if size % 2 == 1 else size + 1),
    aliases=("majority",),
)
register_system_builder("wheel", lambda size: WheelSystem(max(size, 3)))
register_system_builder("triang", lambda size: TriangSystem(max(size, 1)))
register_system_builder(
    "cw",
    lambda size: CrumblingWall([1] + [max(size, 2)] * max(size - 1, 1)),
    aliases=("wall",),
)
register_system_builder("tree", lambda size: TreeSystem(max(size, 0)))
register_system_builder("hqs", lambda size: HQS(max(size, 0)))
register_system_builder("grid", lambda size: GridSystem(max(size, 1)))

#: The CLI names accepted by :func:`build_system`.
SYSTEM_CHOICES = tuple(_BUILDERS)


def build_system(name: str, size: int) -> QuorumSystem:
    """Construct one of the paper's systems from a CLI name and size knob.

    ``size`` means: universe size for Majority/Wheel (odd / >= 3), number of
    rows for Triang, tree height for Tree and HQS, side length for Grid.
    Out-of-range knobs are clamped to the nearest valid value (an even
    Majority size is bumped to ``size + 1``).
    """
    key = name.lower()
    key = _ALIASES.get(key, key)
    builder = _BUILDERS.get(key)
    if builder is None:
        raise ValueError(
            f"unknown system {name!r}; choose from {', '.join(SYSTEM_CHOICES)}"
        )
    return builder(size)
