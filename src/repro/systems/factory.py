"""Name-and-size-knob factory for the paper's systems.

Shared by the CLI and the sweep runner, so library code never has to
import :mod:`repro.cli` to turn a ``("tree", 7)``-style specification into
a system.
"""

from __future__ import annotations

from repro.systems.base import QuorumSystem
from repro.systems.crumbling_walls import CrumblingWall, TriangSystem
from repro.systems.grid import GridSystem
from repro.systems.hqs import HQS
from repro.systems.majority import MajoritySystem
from repro.systems.tree import TreeSystem
from repro.systems.wheel import WheelSystem

#: The CLI names accepted by :func:`build_system`.
SYSTEM_CHOICES = ("maj", "wheel", "triang", "cw", "tree", "hqs", "grid")


def build_system(name: str, size: int) -> QuorumSystem:
    """Construct one of the paper's systems from a CLI name and size knob.

    ``size`` means: universe size for Majority/Wheel (odd / >= 3), number of
    rows for Triang, tree height for Tree and HQS, side length for Grid.
    Out-of-range knobs are clamped to the nearest valid value (an even
    Majority size is bumped to ``size + 1``).
    """
    key = name.lower()
    if key in ("maj", "majority"):
        return MajoritySystem(size if size % 2 == 1 else size + 1)
    if key == "wheel":
        return WheelSystem(max(size, 3))
    if key == "triang":
        return TriangSystem(max(size, 1))
    if key in ("cw", "wall"):
        return CrumblingWall([1] + [max(size, 2)] * max(size - 1, 1))
    if key == "tree":
        return TreeSystem(max(size, 0))
    if key == "hqs":
        return HQS(max(size, 0))
    if key == "grid":
        return GridSystem(max(size, 1))
    raise ValueError(
        f"unknown system {name!r}; choose from maj, wheel, triang, cw, tree, hqs, grid"
    )
