"""The Crumbling Walls (CW) family of quorum systems (Peleg & Wool 1997).

An ``(n_1, ..., n_k)``-CW system arranges the universe in ``k`` rows, where
row ``i`` has width ``n_i`` and ``sum n_i = n``.  A quorum consists of one
*full* row ``j`` together with one representative element from every row
*below* row ``j`` (i.e. rows ``j+1, ..., k``).  When ``n_1 = 1`` and all
other rows have width greater than 1, the system is a nondominated coterie.

Special cases implemented here:

* the Wheel system is the ``(1, n-1)``-CW;
* the Triang system (Erdős–Lovász / Lovász) is the ``(1, 2, ..., d)``-CW.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Sequence

from repro.systems.base import QuorumSystem


class CrumblingWall(QuorumSystem):
    """An ``(n_1, ..., n_k)``-crumbling-wall quorum system.

    Elements are numbered row by row from the top: row 1 holds elements
    ``1..n_1``, row 2 holds the next ``n_2`` elements, and so on.
    """

    def __init__(self, widths: Sequence[int], name: str | None = None) -> None:
        widths = list(widths)
        if not widths:
            raise ValueError("a crumbling wall needs at least one row")
        if any(w < 1 for w in widths):
            raise ValueError("every row must have positive width")
        n = sum(widths)
        super().__init__(n, name=name or f"CW{tuple(widths)}")
        self._widths = widths
        self._rows: list[frozenset[int]] = []
        start = 1
        for w in widths:
            self._rows.append(frozenset(range(start, start + w)))
            start += w
        self._row_of = {e: i for i, row in enumerate(self._rows) for e in row}
        # Row bitmasks, bottom row last — the unit of the mask fast path.
        self._row_masks = [(((1 << w) - 1) << (min(row) - 1)) for w, row in zip(widths, self._rows)]

    # -- structure ----------------------------------------------------------

    @property
    def widths(self) -> list[int]:
        """Row widths ``(n_1, ..., n_k)``."""
        return list(self._widths)

    @property
    def num_rows(self) -> int:
        """Number of rows ``k``."""
        return len(self._widths)

    @property
    def rows(self) -> list[frozenset[int]]:
        """The rows as element sets, from top (row 1) to bottom (row k)."""
        return list(self._rows)

    def row(self, index: int) -> frozenset[int]:
        """Elements of row ``index`` (1-based, top to bottom)."""
        if not 1 <= index <= len(self._rows):
            raise IndexError(f"row index {index} outside 1..{len(self._rows)}")
        return self._rows[index - 1]

    def row_of(self, element: int) -> int:
        """1-based row index of an element."""
        if element not in self._row_of:
            raise ValueError(f"element {element} outside universe 1..{self._n}")
        return self._row_of[element] + 1

    def max_row_width(self) -> int:
        """Width of the widest row (the paper's parameter ``m`` in Thm. 4.4)."""
        return max(self._widths)

    def is_nd_shape(self) -> bool:
        """The structural ND criterion: first row of width 1, all other rows
        of width greater than 1 (Section 2.2).
        """
        if self._widths[0] != 1:
            return False
        return all(w > 1 for w in self._widths[1:])

    # -- quorum predicate ------------------------------------------------------

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        # A quorum exists within s iff some row j is fully contained in s and
        # s hits every row below j.  Scan bottom-up, tracking whether all rows
        # strictly below the current one are hit.
        below_all_hit = True
        for j in range(len(self._rows) - 1, -1, -1):
            row = self._rows[j]
            if below_all_hit and row <= s:
                return True
            if not (row & s):
                below_all_hit = False
            # once a row below is missed, no higher row can work
            if not below_all_hit:
                return False
        return False

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        # Same bottom-up scan as contains_quorum, on row bitmasks.
        for row_mask in reversed(self._row_masks):
            if mask & row_mask == row_mask:
                return True
            if not mask & row_mask:
                return False
        return False

    @property
    def row_masks(self) -> list[int]:
        """The rows as integer masks, from top (row 1) to bottom (row k)."""
        return list(self._row_masks)

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        representatives: list[int] = []
        for j in range(len(self._rows) - 1, -1, -1):
            row = self._rows[j]
            if row <= s:
                return row | frozenset(representatives)
            hit = row & s
            if not hit:
                return None
            representatives.append(min(hit))
        return None

    def quorums(self) -> Iterator[frozenset[int]]:
        """Enumerate all quorums: a full row plus representatives below it."""
        k = len(self._rows)
        for j in range(k):
            below = [sorted(self._rows[i]) for i in range(j + 1, k)]
            for reps in itertools.product(*below):
                yield self._rows[j] | frozenset(reps)

    def quorum_count(self) -> int:
        """Number of quorums, computed without enumeration."""
        total = 0
        for j in range(len(self._rows)):
            prod = 1
            for i in range(j + 1, len(self._rows)):
                prod *= self._widths[i]
            total += prod
        return total

    def min_quorum_size(self) -> int:
        k = len(self._rows)
        return min(self._widths[j] + (k - 1 - j) for j in range(k))

    def max_quorum_size(self) -> int:
        k = len(self._rows)
        return max(self._widths[j] + (k - 1 - j) for j in range(k))


class TriangSystem(CrumblingWall):
    """The Triang system: the ``(1, 2, ..., d)``-crumbling wall.

    Row ``i`` has width ``i``, so the universe has ``n = d (d + 1) / 2``
    elements and every quorum has exactly ``d`` elements (the system is
    ``d``-uniform).
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("Triang needs depth >= 1")
        super().__init__(list(range(1, depth + 1)), name=f"Triang({depth})")
        self._depth = depth

    @property
    def depth(self) -> int:
        """Number of rows ``d`` (also the uniform quorum size)."""
        return self._depth

    def min_quorum_size(self) -> int:
        return self._depth

    def max_quorum_size(self) -> int:
        return self._depth


def wheel_as_crumbling_wall(n: int) -> CrumblingWall:
    """The Wheel system represented as the ``(1, n-1)``-CW."""
    if n < 3:
        raise ValueError("the Wheel needs at least 3 elements")
    return CrumblingWall([1, n - 1], name=f"WheelCW({n})")


def uniform_wall(rows: int, width: int) -> CrumblingWall:
    """A ``(1, width, width, ...)``-CW with ``rows`` rows in total.

    The first row has width 1 (so the system is an ND coterie) and all other
    rows share the given width.  Useful for scaling experiments where the
    number of rows ``k`` and the row width vary independently.
    """
    if rows < 1:
        raise ValueError("need at least one row")
    if width < 2:
        raise ValueError("non-first rows must have width >= 2 for an ND wall")
    widths = [1] + [width] * (rows - 1)
    return CrumblingWall(widths, name=f"UniformCW(rows={rows}, width={width})")
