"""Monotone boolean function view of quorum systems (Definition 1).

A quorum system ``S`` over ``{1..n}`` induces the monotone boolean function

    f_S(x_1, ..., x_n) = OR_{Q in S} AND_{i in Q} x_i,

whose minterms are exactly the (minimal) quorums.  This module provides that
view, three-valued evaluation under partial knowledge (used by probe
strategies, which know only the colors of probed elements), and the dual
function/system.  A coterie is nondominated precisely when ``f_S`` is
self-dual, which is the criterion used by the structural tests.
"""

from __future__ import annotations

import enum
import itertools
from collections.abc import Iterable, Iterator, Mapping

from repro.core.bitmask import mask_of, validate_mask
from repro.core.coloring import Color
from repro.systems.base import ExplicitQuorumSystem, QuorumSystem

#: Universe-size cap for the per-instance settled-witness memo.  Beyond it a
#: knowledge-state cache could grow without bound, so memoization is skipped.
_SETTLED_MEMO_LIMIT = 24

#: Insertion cap for the memo.  Long Monte-Carlo runs through the generic
#: scan algorithms see mostly-unique knowledge states; once the cache holds
#: this many entries, new states are evaluated without being stored, so
#: memory stays bounded while the hot repeated prefixes (exact permutation
#: sweeps, strategy-tree builds) remain cached.
_SETTLED_MEMO_MAX_ENTRIES = 500_000


class Ternary(enum.Enum):
    """Three-valued logic outcome for evaluation under partial knowledge."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"


class CharacteristicFunction:
    """The characteristic monotone boolean function ``f_S`` of a system."""

    def __init__(self, system: QuorumSystem) -> None:
        self._system = system
        self._full_mask = (1 << system.n) - 1
        # Memo for witness_settled_mask, keyed by (green_mask, red_mask).
        # Shared across every query on this instance, so DP solvers and the
        # permutation analysis stop recomputing identical knowledge states.
        self._settled_memo: dict[tuple[int, int], Color | None] | None = (
            {} if system.n <= _SETTLED_MEMO_LIMIT else None
        )

    @property
    def system(self) -> QuorumSystem:
        return self._system

    @property
    def n(self) -> int:
        return self._system.n

    # -- total evaluation ------------------------------------------------------

    def evaluate(self, assignment: Mapping[int, bool] | Iterable[int]) -> bool:
        """Evaluate ``f_S`` on a total assignment.

        ``assignment`` is either a mapping element -> bool or the set of
        elements assigned 1 (True).
        """
        ones = self._ones(assignment)
        return self._system.contains_quorum(ones)

    def _ones(self, assignment: Mapping[int, bool] | Iterable[int]) -> frozenset[int]:
        if isinstance(assignment, Mapping):
            return frozenset(e for e, v in assignment.items() if v)
        return frozenset(assignment)

    # -- partial evaluation ----------------------------------------------------

    def evaluate_partial(
        self, known_true: Iterable[int], known_false: Iterable[int]
    ) -> Ternary:
        """Evaluate ``f_S`` knowing only some variables.

        ``known_true`` are elements known to be 1 (green), ``known_false``
        elements known to be 0 (red).  The result is ``TRUE`` if the function
        is already forced to 1 (a green quorum is certain), ``FALSE`` if it is
        forced to 0 (the red elements form a transversal), and ``UNKNOWN``
        otherwise.
        """
        true_mask = mask_of(known_true)
        false_mask = mask_of(known_false)
        validate_mask(true_mask, self.n)
        validate_mask(false_mask, self.n)
        return self.evaluate_partial_mask(true_mask, false_mask)

    def evaluate_partial_mask(self, true_mask: int, false_mask: int) -> Ternary:
        """Mask-native :meth:`evaluate_partial`."""
        if true_mask & false_mask:
            raise ValueError("an element cannot be simultaneously green and red")
        settled = self.witness_settled_mask(true_mask, false_mask)
        if settled is Color.GREEN:
            return Ternary.TRUE
        if settled is Color.RED:
            return Ternary.FALSE
        return Ternary.UNKNOWN

    def witness_settled(
        self, known_green: Iterable[int], known_red: Iterable[int]
    ) -> Color | None:
        """Witness color determined by the current knowledge, if any.

        Returns ``Color.GREEN`` when the known-green elements already contain
        a quorum, ``Color.RED`` when the known-red elements already form a
        transversal (so no live quorum can exist), and ``None`` when more
        probes are needed.  This is exactly the termination test of a probe
        strategy.
        """
        green_mask = mask_of(known_green)
        red_mask = mask_of(known_red)
        validate_mask(green_mask, self.n)
        validate_mask(red_mask, self.n)
        if green_mask & red_mask:
            raise ValueError("an element cannot be simultaneously green and red")
        return self.witness_settled_mask(green_mask, red_mask)

    def witness_settled_mask(self, green_mask: int, red_mask: int) -> Color | None:
        """Mask-native :meth:`witness_settled`, memoized per knowledge state.

        On small universes the result is cached on the instance, so DP
        solvers and permutation sweeps that revisit the same
        ``(green, red)`` knowledge state get a dict lookup instead of a
        characteristic-function evaluation.
        """
        memo = self._settled_memo
        if memo is not None:
            key = (green_mask, red_mask)
            try:
                return memo[key]
            except KeyError:
                pass
        system = self._system
        if system.contains_quorum_mask(green_mask):
            settled: Color | None = Color.GREEN
        elif not system.contains_quorum_mask(self._full_mask & ~red_mask):
            settled = Color.RED
        else:
            settled = None
        if memo is not None and len(memo) < _SETTLED_MEMO_MAX_ENTRIES:
            memo[key] = settled
        return settled

    # -- minterms / maxterms / duality -----------------------------------------

    def minterms(self) -> Iterator[frozenset[int]]:
        """Minimal sets of variables whose assignment to 1 forces ``f_S = 1``.

        These are exactly the minimal quorums.
        """
        return self._system.quorums()

    def maxterms(self) -> Iterator[frozenset[int]]:
        """Minimal sets of variables whose assignment to 0 forces ``f_S = 0``.

        These are the minimal transversals of the system.
        """
        return self.dual_system().quorums()

    def is_monotone(self) -> bool:
        """Exhaustively verify monotonicity (small universes only)."""
        n = self.n
        if n > 16:
            raise NotImplementedError("exhaustive monotonicity check limited to n <= 16")
        universe = sorted(self._system.universe)
        for size in range(n):
            for subset in itertools.combinations(universe, size):
                s = frozenset(subset)
                if self.evaluate(s):
                    for extra in self._system.universe - s:
                        if not self.evaluate(s | {extra}):
                            return False
        return True

    def is_self_dual(self) -> bool:
        """Check ``f_S(x) = ¬f_S(¬x)`` for all assignments (small universes).

        Self-duality of the characteristic function is equivalent to the
        coterie being nondominated.
        """
        n = self.n
        if n > 20:
            raise NotImplementedError("exhaustive self-duality check limited to n <= 20")
        universe = sorted(self._system.universe)
        full = self._system.universe
        for size in range(n + 1):
            for subset in itertools.combinations(universe, size):
                s = frozenset(subset)
                if self.evaluate(s) == self.evaluate(full - s):
                    return False
        return True

    def dual_system(self) -> QuorumSystem:
        """The dual quorum system, whose quorums are the minimal transversals."""
        return dual_system(self._system)


def dual_system(system: QuorumSystem) -> ExplicitQuorumSystem:
    """Compute the dual of a quorum system by explicit enumeration.

    The dual's quorums are the minimal transversals of the original system.
    For a nondominated coterie the dual coincides with the original (as a set
    of quorums).  Requires quorum enumeration, hence small universes.
    """
    quorums = list(system.quorums())
    transversals = _minimal_hitting_sets(quorums, system.universe)
    return ExplicitQuorumSystem(system.n, transversals, name=f"dual({system.name})")


def _minimal_hitting_sets(
    sets: list[frozenset[int]], universe: frozenset[int]
) -> list[frozenset[int]]:
    """Minimal hitting sets (transversals) of a small set collection."""
    if not sets:
        return []
    hitting: list[frozenset[int]] = []
    elements = sorted(universe)
    for size in range(1, len(universe) + 1):
        for candidate in itertools.combinations(elements, size):
            c = frozenset(candidate)
            if any(h <= c for h in hitting):
                continue
            if all(c & s for s in sets):
                hitting.append(c)
    return hitting


def systems_equal(a: QuorumSystem, b: QuorumSystem) -> bool:
    """Return True if two systems have identical sets of minimal quorums."""
    if a.n != b.n:
        return False
    return set(a.quorums()) == set(b.quorums())
