"""Quorum-system constructions (the substrate of the paper).

This subpackage provides the abstract :class:`~repro.systems.base.QuorumSystem`
interface together with every concrete construction analyzed or referenced in
the paper: Majority, Wheel, Crumbling Walls (including Triang), the binary
Tree system, the hierarchical quorum system (HQS), plus grid and composition
constructions used by the examples.
"""

from repro.systems.base import (
    ExplicitQuorumSystem,
    QuorumSystem,
    intersection_property,
    is_antichain,
)
from repro.systems.boolean import (
    CharacteristicFunction,
    Ternary,
    dual_system,
    systems_equal,
)
from repro.systems.composition import CompositeSystem, self_composition
from repro.systems.factory import SYSTEM_CHOICES, build_system
from repro.systems.crumbling_walls import (
    CrumblingWall,
    TriangSystem,
    uniform_wall,
    wheel_as_crumbling_wall,
)
from repro.systems.fpp import ProjectivePlaneSystem
from repro.systems.grid import GridSystem
from repro.systems.hqs import HQS
from repro.systems.majority import MajoritySystem, WeightedMajoritySystem
from repro.systems.singleton import SingletonSystem, StarSystem
from repro.systems.tree import TreeSystem
from repro.systems.wheel import WheelSystem

__all__ = [
    "QuorumSystem",
    "ExplicitQuorumSystem",
    "intersection_property",
    "is_antichain",
    "CharacteristicFunction",
    "Ternary",
    "dual_system",
    "systems_equal",
    "CompositeSystem",
    "self_composition",
    "SYSTEM_CHOICES",
    "build_system",
    "CrumblingWall",
    "TriangSystem",
    "uniform_wall",
    "wheel_as_crumbling_wall",
    "ProjectivePlaneSystem",
    "GridSystem",
    "HQS",
    "MajoritySystem",
    "WeightedMajoritySystem",
    "SingletonSystem",
    "StarSystem",
    "TreeSystem",
    "WheelSystem",
]
