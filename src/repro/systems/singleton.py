"""Degenerate and star-shaped coteries used in tests and compositions."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.systems.base import QuorumSystem


class SingletonSystem(QuorumSystem):
    """The coterie whose single quorum is ``{center}``.

    Over a universe of size ``n`` this is a (degenerately) nondominated
    coterie: every transversal contains the center.  It models a single
    primary-copy replica and is the base case of recursive compositions.
    """

    def __init__(self, n: int = 1, center: int = 1) -> None:
        super().__init__(n, name=f"Singleton({center}/{n})")
        if not 1 <= center <= n:
            raise ValueError(f"center {center} outside universe 1..{n}")
        self._center = center

    @property
    def center(self) -> int:
        """The single element forming the quorum."""
        return self._center

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return self._center in s

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        return bool((mask >> (self._center - 1)) & 1)

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        if self._center in frozenset(elements):
            return frozenset({self._center})
        return None

    def quorums(self) -> Iterator[frozenset[int]]:
        yield frozenset({self._center})


class StarSystem(QuorumSystem):
    """The star coterie: quorums are ``{hub, i}`` for every ``i != hub``.

    Over ``n >= 3`` elements this is a coterie (all quorums share the hub and
    none contains another) but it is *dominated* — e.g. by the Wheel system,
    which adds the quorum consisting of all non-hub elements.  It is used in
    tests as a canonical example of a dominated coterie.
    """

    def __init__(self, n: int, hub: int = 1) -> None:
        if n < 3:
            raise ValueError("the star coterie needs at least 3 elements")
        if not 1 <= hub <= n:
            raise ValueError(f"hub {hub} outside universe 1..{n}")
        super().__init__(n, name=f"Star({n})")
        self._hub = hub

    @property
    def hub(self) -> int:
        """The element shared by all quorums."""
        return self._hub

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return self._hub in s and len(s) >= 2

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        return bool((mask >> (self._hub - 1)) & 1) and mask.bit_count() >= 2

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if self._hub not in s:
            return None
        others = sorted(s - {self._hub})
        if not others:
            return None
        return frozenset({self._hub, others[0]})

    def quorums(self) -> Iterator[frozenset[int]]:
        for i in sorted(self.universe - {self._hub}):
            yield frozenset({self._hub, i})
