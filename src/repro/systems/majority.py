"""The Majority quorum system (Thomas 1979) and weighted voting systems.

``Maj`` over an odd universe of size ``n`` has as quorums all subsets of size
``(n + 1) / 2``.  It is the canonical nondominated coterie and the paper's
first running example (Proposition 3.2 and Theorem 4.2).
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Iterator, Mapping

from repro.systems.base import QuorumSystem


class MajoritySystem(QuorumSystem):
    """The majority coterie: all subsets of size ``(n + 1) / 2`` (n odd)."""

    def __init__(self, n: int) -> None:
        if n % 2 == 0:
            raise ValueError(f"the Majority system requires an odd universe, got n={n}")
        super().__init__(n, name=f"Maj({n})")

    @property
    def quorum_size(self) -> int:
        """Size of every quorum, ``(n + 1) / 2``."""
        return (self._n + 1) // 2

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return len(s) >= self.quorum_size

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        return mask.bit_count() >= self.quorum_size

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if len(s) < self.quorum_size:
            return None
        return frozenset(sorted(s)[: self.quorum_size])

    def quorums(self) -> Iterator[frozenset[int]]:
        for combo in itertools.combinations(sorted(self.universe), self.quorum_size):
            yield frozenset(combo)

    def quorum_count(self) -> int:
        """Number of quorums, ``C(n, (n+1)/2)`` (without enumeration)."""
        return math.comb(self._n, self.quorum_size)

    def min_quorum_size(self) -> int:
        return self.quorum_size

    def max_quorum_size(self) -> int:
        return self.quorum_size


class WeightedMajoritySystem(QuorumSystem):
    """A weighted voting system: quorums are the minimal sets whose total
    weight strictly exceeds half of the total weight.

    With all weights equal to 1 (and odd ``n``) this reduces to
    :class:`MajoritySystem`.  Weighted voting is the classical vote-assignment
    view of quorum systems (Garcia-Molina & Barbara), included as a substrate
    generalization used in the examples.
    """

    def __init__(self, weights: Mapping[int, int] | Iterable[int], name: str | None = None) -> None:
        if isinstance(weights, Mapping):
            items = dict(weights)
            n = max(items)
            if set(items) != set(range(1, n + 1)):
                raise ValueError("weights mapping must cover the universe 1..n")
            weight_list = [items[e] for e in range(1, n + 1)]
        else:
            weight_list = list(weights)
            n = len(weight_list)
        if n < 1:
            raise ValueError("need at least one element")
        if any(w < 0 for w in weight_list):
            raise ValueError("weights must be nonnegative")
        total = sum(weight_list)
        if total <= 0:
            raise ValueError("total weight must be positive")
        super().__init__(n, name=name or f"WeightedMaj({n})")
        self._weights = {e: weight_list[e - 1] for e in range(1, n + 1)}
        self._weight_list = tuple(weight_list)
        self._threshold = total / 2.0

    @property
    def weights(self) -> dict[int, int]:
        """Vote weight of each element."""
        return dict(self._weights)

    def weight_of(self, elements: Iterable[int]) -> int:
        """Total vote weight of a set of elements."""
        return sum(self._weights[e] for e in elements)

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return self.weight_of(s) > self._threshold

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        weight = 0
        m = mask
        while m:
            low = m & -m
            weight += self._weight_list[low.bit_length() - 1]
            m ^= low
        return weight > self._threshold

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if not self.contains_quorum(s):
            return None
        # Greedily shrink to a minimal majority set, dropping light elements first.
        members = sorted(s, key=lambda e: (self._weights[e], e))
        chosen = set(s)
        for e in members:
            if self.weight_of(chosen - {e}) > self._threshold:
                chosen.discard(e)
        return frozenset(chosen)
