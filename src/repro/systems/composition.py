"""Recursive composition of coteries.

Several of the paper's systems are compositions of a small outer coterie
with copies of itself: the Tree system composes the 3-element coterie
``{{root, L}, {root, R}, {L, R}}`` recursively, and HQS composes ``Maj3``
recursively over its leaves.  This module provides the general construction:
replace each element of an *outer* coterie with a disjoint *inner* quorum
system; a composed quorum is obtained by choosing an outer quorum and, for
each of its elements, a quorum of the corresponding inner system.

The composition of nondominated coteries is again nondominated, which the
property-based tests verify on small instances.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.systems.base import QuorumSystem


class CompositeSystem(QuorumSystem):
    """Composition of an outer coterie with per-element inner systems.

    Parameters
    ----------
    outer:
        The outer quorum system, over universe ``{1..k}``.
    inners:
        One inner quorum system per outer element, in order.  Inner universes
        are relabeled to consecutive blocks: inner system ``i`` occupies the
        elements ``offset_i + 1 .. offset_i + n_i`` of the composed universe.
    """

    def __init__(
        self,
        outer: QuorumSystem,
        inners: Sequence[QuorumSystem],
        name: str | None = None,
    ) -> None:
        if len(inners) != outer.n:
            raise ValueError(
                f"need exactly one inner system per outer element "
                f"({outer.n}), got {len(inners)}"
            )
        offsets = []
        total = 0
        for inner in inners:
            offsets.append(total)
            total += inner.n
        super().__init__(total, name=name or f"Composite({outer.name})")
        self._outer = outer
        self._inners = list(inners)
        self._offsets = offsets

    # -- structure --------------------------------------------------------------

    @property
    def outer(self) -> QuorumSystem:
        return self._outer

    @property
    def inners(self) -> list[QuorumSystem]:
        return list(self._inners)

    def block(self, outer_element: int) -> frozenset[int]:
        """Composed-universe elements belonging to a given outer element."""
        self._check_outer(outer_element)
        offset = self._offsets[outer_element - 1]
        size = self._inners[outer_element - 1].n
        return frozenset(range(offset + 1, offset + size + 1))

    def to_inner(self, outer_element: int, element: int) -> int:
        """Translate a composed-universe element into inner coordinates."""
        self._check_outer(outer_element)
        offset = self._offsets[outer_element - 1]
        inner = self._inners[outer_element - 1]
        local = element - offset
        if not 1 <= local <= inner.n:
            raise ValueError(
                f"element {element} does not belong to outer element {outer_element}"
            )
        return local

    def from_inner(self, outer_element: int, local: int) -> int:
        """Translate inner coordinates into the composed universe."""
        self._check_outer(outer_element)
        inner = self._inners[outer_element - 1]
        if not 1 <= local <= inner.n:
            raise ValueError(f"local element {local} outside inner universe")
        return self._offsets[outer_element - 1] + local

    def _check_outer(self, outer_element: int) -> None:
        if not 1 <= outer_element <= self._outer.n:
            raise ValueError(
                f"outer element {outer_element} outside 1..{self._outer.n}"
            )

    def _live_outer_elements(self, s: frozenset[int]) -> frozenset[int]:
        """Outer elements whose inner system has a quorum inside ``s``."""
        live = []
        for outer_element in range(1, self._outer.n + 1):
            inner = self._inners[outer_element - 1]
            local = frozenset(
                self.to_inner(outer_element, e)
                for e in s & self.block(outer_element)
            )
            if inner.contains_quorum(local):
                live.append(outer_element)
        return frozenset(live)

    # -- quorum predicate ----------------------------------------------------------

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return self._outer.contains_quorum(self._live_outer_elements(s))

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        live_mask = 0
        for index, inner in enumerate(self._inners):
            block_bits = (mask >> self._offsets[index]) & ((1 << inner.n) - 1)
            if inner.contains_quorum_mask(block_bits):
                live_mask |= 1 << index
        return self._outer.contains_quorum_mask(live_mask)

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        live = self._live_outer_elements(s)
        outer_quorum = self._outer.find_quorum_within(live)
        if outer_quorum is None:
            return None
        composed: set[int] = set()
        for outer_element in outer_quorum:
            inner = self._inners[outer_element - 1]
            local = frozenset(
                self.to_inner(outer_element, e)
                for e in s & self.block(outer_element)
            )
            inner_quorum = inner.find_quorum_within(local)
            assert inner_quorum is not None
            composed.update(
                self.from_inner(outer_element, e) for e in inner_quorum
            )
        return frozenset(composed)

    # -- enumeration --------------------------------------------------------------

    def quorums(self) -> Iterator[frozenset[int]]:
        for outer_quorum in self._outer.quorums():
            yield from self._expand(sorted(outer_quorum), frozenset())

    def _expand(
        self, remaining: list[int], acc: frozenset[int]
    ) -> Iterator[frozenset[int]]:
        if not remaining:
            yield acc
            return
        outer_element, rest = remaining[0], remaining[1:]
        inner = self._inners[outer_element - 1]
        for inner_quorum in inner.quorums():
            mapped = frozenset(
                self.from_inner(outer_element, e) for e in inner_quorum
            )
            yield from self._expand(rest, acc | mapped)


def self_composition(base: QuorumSystem, levels: int, factory=None) -> QuorumSystem:
    """Compose ``base`` with itself ``levels`` times.

    ``levels = 0`` returns ``base`` unchanged; each further level replaces
    every element of the previous system by a fresh copy of ``base``.  With
    ``base = Maj3`` restricted to its leaves this reproduces the HQS gate
    structure.
    """
    if levels < 0:
        raise ValueError("levels must be nonnegative")
    system = base
    for _ in range(levels):
        system = CompositeSystem(base, [system] * base.n)
    return system
