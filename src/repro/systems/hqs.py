"""The Hierarchical Quorum System (HQS) of Kumar (1991).

The ``n = 3^h`` universe elements are the leaves of a complete ternary tree
whose internal nodes act as 2-of-3 majority gates.  The tree computes a
monotone boolean function of the leaf values; its minterms — minimal leaf
sets whose assignment to 1 forces the root to 1 — are the quorums.  Every
quorum has exactly ``2^h = n^{log_3 2}`` elements, so the system is uniform.

Internal nodes are addressed by a ternary-heap index: the root is node 0 and
the children of node ``v`` are ``3v + 1``, ``3v + 2`` and ``3v + 3``.  The
leaf with heap index ``v`` corresponds to universe element
``v - (3^h - 1) / 2 + 1``.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.systems.base import QuorumSystem


class HQS(QuorumSystem):
    """Kumar's hierarchical quorum system over ``n = 3^h`` elements."""

    def __init__(self, height: int) -> None:
        if height < 0:
            raise ValueError("HQS height must be nonnegative")
        n = 3**height
        super().__init__(n, name=f"HQS(h={height})")
        self._height = height
        self._first_leaf = (3**height - 1) // 2
        self._total_nodes = (3 ** (height + 1) - 1) // 2

    @classmethod
    def from_size(cls, n: int) -> "HQS":
        """Build the HQS over ``n = 3^h`` elements."""
        height = 0
        size = 1
        while size < n:
            size *= 3
            height += 1
        if size != n:
            raise ValueError(f"n={n} is not a power of 3")
        return cls(height)

    # -- tree structure ---------------------------------------------------------

    @property
    def height(self) -> int:
        """Height of the ternary gate tree."""
        return self._height

    @property
    def root(self) -> int:
        """Heap index of the root gate (0)."""
        return 0

    def is_leaf_node(self, v: int) -> bool:
        """True when heap node ``v`` is a leaf (i.e. a universe element)."""
        self._check_node(v)
        return v >= self._first_leaf

    def children(self, v: int) -> tuple[int, int, int] | tuple[()]:
        """The three children of an internal node, or () for a leaf."""
        self._check_node(v)
        if self.is_leaf_node(v):
            return ()
        return (3 * v + 1, 3 * v + 2, 3 * v + 3)

    def node_depth(self, v: int) -> int:
        """Depth of heap node ``v`` (root at depth 0)."""
        self._check_node(v)
        depth = 0
        while v > 0:
            v = (v - 1) // 3
            depth += 1
        return depth

    def leaf_to_element(self, v: int) -> int:
        """Universe element corresponding to leaf heap node ``v``."""
        if not self.is_leaf_node(v):
            raise ValueError(f"node {v} is not a leaf")
        return v - self._first_leaf + 1

    def element_to_leaf(self, element: int) -> int:
        """Leaf heap node corresponding to a universe element."""
        if not 1 <= element <= self._n:
            raise ValueError(f"element {element} outside universe 1..{self._n}")
        return element + self._first_leaf - 1

    def leaves_under(self, v: int) -> frozenset[int]:
        """Universe elements whose leaves lie in the subtree of heap node ``v``."""
        self._check_node(v)
        elements = []
        frontier = [v]
        while frontier:
            node = frontier.pop()
            if self.is_leaf_node(node):
                elements.append(self.leaf_to_element(node))
            else:
                frontier.extend(self.children(node))
        return frozenset(elements)

    def _check_node(self, v: int) -> None:
        if not 0 <= v < self._total_nodes:
            raise ValueError(f"heap node {v} outside 0..{self._total_nodes - 1}")

    # -- quorum predicate ----------------------------------------------------------

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return self._evaluates_true(0, s)

    def _evaluates_true(self, v: int, s: frozenset[int]) -> bool:
        if self.is_leaf_node(v):
            return self.leaf_to_element(v) in s
        votes = sum(1 for child in self.children(v) if self._evaluates_true(child, s))
        return votes >= 2

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        return self._evaluates_true_mask(0, mask)

    def _evaluates_true_mask(self, v: int, mask: int) -> bool:
        # Leaf heap node v holds universe element v - first_leaf + 1.
        if v >= self._first_leaf:
            return bool((mask >> (v - self._first_leaf)) & 1)
        a = self._evaluates_true_mask(3 * v + 1, mask)
        b = self._evaluates_true_mask(3 * v + 2, mask)
        if a and b:
            return True
        if not (a or b):
            return False
        return self._evaluates_true_mask(3 * v + 3, mask)

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return self._find_minterm(0, s)

    def _find_minterm(self, v: int, s: frozenset[int]) -> frozenset[int] | None:
        if self.is_leaf_node(v):
            element = self.leaf_to_element(v)
            return frozenset({element}) if element in s else None
        winning = []
        for child in self.children(v):
            sub = self._find_minterm(child, s)
            if sub is not None:
                winning.append(sub)
            if len(winning) == 2:
                return winning[0] | winning[1]
        return None

    # -- enumeration / sizes ----------------------------------------------------------

    def quorums(self) -> Iterator[frozenset[int]]:
        yield from self._enumerate(0)

    def _enumerate(self, v: int) -> Iterator[frozenset[int]]:
        if self.is_leaf_node(v):
            yield frozenset({self.leaf_to_element(v)})
            return
        child_quorums = [list(self._enumerate(child)) for child in self.children(v)]
        for i in range(3):
            for j in range(i + 1, 3):
                for qa in child_quorums[i]:
                    for qb in child_quorums[j]:
                        yield qa | qb

    def quorum_count(self) -> int:
        """Number of quorums, via ``Q(h) = 3 Q(h-1)^2``."""
        count = 1
        for _ in range(self._height):
            count = 3 * count * count
        return count

    @property
    def quorum_size(self) -> int:
        """Uniform quorum size ``2^h = n^{log_3 2}``."""
        return 2**self._height

    def min_quorum_size(self) -> int:
        return self.quorum_size

    def max_quorum_size(self) -> int:
        return self.quorum_size
