"""The Wheel quorum system (Holzman, Marcus & Peleg).

The Wheel over ``{1..n}`` has the quorums ``{1, i}`` for every ``i >= 2``
(spokes through the hub ``1``) together with the rim ``{2, ..., n}``.  It is
a nondominated coterie, and it coincides with the ``(1, n-1)``-crumbling
wall, which is how the paper obtains its probabilistic probe complexity bound
of at most 3 probes (Corollary 3.4).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.systems.base import QuorumSystem


class WheelSystem(QuorumSystem):
    """The Wheel coterie: spokes ``{1, i}`` plus the rim ``{2..n}``."""

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(f"the Wheel system needs at least 3 elements, got n={n}")
        super().__init__(n, name=f"Wheel({n})")

    @property
    def hub(self) -> int:
        """The hub element shared by all spoke quorums."""
        return 1

    @property
    def rim(self) -> frozenset[int]:
        """The rim quorum ``{2, ..., n}``."""
        return frozenset(range(2, self._n + 1))

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        if 1 in s and len(s) >= 2:
            return True
        return self.rim <= s

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        if mask & 1:
            return mask != 1
        rim_mask = self.universe_mask & ~1
        return mask & rim_mask == rim_mask

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if 1 in s:
            others = sorted(s - {1})
            if others:
                return frozenset({1, others[0]})
            return None
        if self.rim <= s:
            return self.rim
        return None

    def quorums(self) -> Iterator[frozenset[int]]:
        for i in range(2, self._n + 1):
            yield frozenset({1, i})
        yield self.rim

    def quorum_count(self) -> int:
        """Number of quorums: ``n - 1`` spokes plus the rim."""
        return self._n

    def min_quorum_size(self) -> int:
        return 2

    def max_quorum_size(self) -> int:
        return self._n - 1
