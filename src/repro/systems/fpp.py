"""Finite-projective-plane (FPP) quorum systems.

Maekawa's classical √n mutual-exclusion algorithm — cited in the paper's
related work — builds its quorums from a finite projective plane: the
elements are the ``n = q² + q + 1`` points of the plane of order ``q``, the
quorums are its lines (each of size ``q + 1``), and any two lines meet in
exactly one point, giving the intersection property with optimally small,
optimally balanced quorums.

This module constructs the plane ``PG(2, q)`` for prime ``q`` using
homogeneous coordinates over ``GF(q)``.  The order-2 plane (the Fano plane)
is a nondominated coterie; planes of larger order are *dominated* — unlike
the systems analyzed in the paper's theorems — which makes them a useful
contrast case in the test-suite: probing can end without a monochromatic
quorum witness on the red side, only a red transversal.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.systems.base import QuorumSystem


def _is_prime(q: int) -> bool:
    if q < 2:
        return False
    if q % 2 == 0:
        return q == 2
    d = 3
    while d * d <= q:
        if q % d == 0:
            return False
        d += 2
    return True


def _normalize(vector: tuple[int, int, int], q: int) -> tuple[int, int, int]:
    """Scale a nonzero homogeneous triple so its first nonzero entry is 1."""
    for index in range(3):
        if vector[index] % q != 0:
            inverse = pow(vector[index], -1, q)
            return tuple((value * inverse) % q for value in vector)  # type: ignore[return-value]
    raise ValueError("the zero vector is not a projective point")


class ProjectivePlaneSystem(QuorumSystem):
    """The FPP quorum system of prime order ``q`` (Maekawa-style quorums).

    Elements ``1 .. q² + q + 1`` are the points of ``PG(2, q)``; the quorums
    are the lines.  Every quorum has size ``q + 1 ≈ √n`` and every element
    lies on exactly ``q + 1`` quorums, so the system is both uniform and
    perfectly balanced.
    """

    def __init__(self, order: int) -> None:
        if not _is_prime(order):
            raise ValueError(
                f"this construction supports prime orders only, got {order}"
            )
        n = order * order + order + 1
        super().__init__(n, name=f"FPP(q={order})")
        self._order = order
        self._points = self._projective_points(order)
        self._point_index = {point: i + 1 for i, point in enumerate(self._points)}
        self._lines = self._build_lines(order)

    @property
    def order(self) -> int:
        """The order ``q`` of the plane."""
        return self._order

    @property
    def quorum_size(self) -> int:
        """Uniform quorum (line) size ``q + 1``."""
        return self._order + 1

    # -- construction ----------------------------------------------------------

    @staticmethod
    def _projective_points(q: int) -> list[tuple[int, int, int]]:
        points: set[tuple[int, int, int]] = set()
        for x in range(q):
            for y in range(q):
                for z in range(q):
                    if x == y == z == 0:
                        continue
                    points.add(_normalize((x, y, z), q))
        return sorted(points)

    def _build_lines(self, q: int) -> list[frozenset[int]]:
        lines = []
        for line in self._projective_points(q):
            members = frozenset(
                self._point_index[point]
                for point in self._points
                if sum(a * b for a, b in zip(line, point)) % q == 0
            )
            lines.append(members)
        return sorted(lines, key=sorted)

    # -- QuorumSystem interface ---------------------------------------------------

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        return any(line <= s for line in self._lines)

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        for line in self._lines:
            if line <= s:
                return line
        return None

    def quorums(self) -> Iterator[frozenset[int]]:
        return iter(self._lines)

    def quorum_count(self) -> int:
        """Number of lines, ``q² + q + 1`` (equal to the number of points)."""
        return len(self._lines)

    def min_quorum_size(self) -> int:
        return self.quorum_size

    def max_quorum_size(self) -> int:
        return self.quorum_size

    def lines_through(self, element: int) -> list[frozenset[int]]:
        """All quorums containing a given element (exactly ``q + 1`` of them)."""
        if not 1 <= element <= self.n:
            raise ValueError(f"element {element} outside universe 1..{self.n}")
        return [line for line in self._lines if element in line]
