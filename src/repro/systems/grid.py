"""Grid quorum systems (Maekawa-style row/column quorums).

The paper cites Maekawa's ``sqrt(n)`` mutual-exclusion algorithm as one of
the classical quorum constructions.  This module provides a rectangular grid
system whose quorums are a full row together with a full column.  It is used
by the example applications and the ablation benchmarks as an additional
point of comparison; it is *not* one of the systems analyzed in the paper's
theorems, which is why no closed-form probe-complexity bound is attached to
it in :mod:`repro.analysis.bounds`.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator

from repro.systems.base import QuorumSystem


class GridSystem(QuorumSystem):
    """A ``rows x cols`` grid whose quorums are one full row plus one full
    column.

    Elements are numbered row-major: element ``(r - 1) * cols + c`` sits at
    row ``r``, column ``c`` (both 1-based).
    """

    def __init__(self, rows: int, cols: int | None = None) -> None:
        cols = rows if cols is None else cols
        if rows < 1 or cols < 1:
            raise ValueError("grid dimensions must be positive")
        super().__init__(rows * cols, name=f"Grid({rows}x{cols})")
        self._rows = rows
        self._cols = cols
        row_unit = (1 << cols) - 1
        self._grid_row_masks = [row_unit << (r * cols) for r in range(rows)]
        col_unit = 0
        for r in range(rows):
            col_unit |= 1 << (r * cols)
        self._grid_col_masks = [col_unit << c for c in range(cols)]

    @property
    def rows(self) -> int:
        return self._rows

    @property
    def cols(self) -> int:
        return self._cols

    def position(self, element: int) -> tuple[int, int]:
        """(row, column) of an element, 1-based."""
        if not 1 <= element <= self._n:
            raise ValueError(f"element {element} outside universe 1..{self._n}")
        return ((element - 1) // self._cols + 1, (element - 1) % self._cols + 1)

    def element_at(self, row: int, col: int) -> int:
        """Element at a (row, column) position, 1-based."""
        if not (1 <= row <= self._rows and 1 <= col <= self._cols):
            raise ValueError(f"position ({row}, {col}) outside the grid")
        return (row - 1) * self._cols + col

    def row_elements(self, row: int) -> frozenset[int]:
        """All elements of a row."""
        return frozenset(self.element_at(row, c) for c in range(1, self._cols + 1))

    def col_elements(self, col: int) -> frozenset[int]:
        """All elements of a column."""
        return frozenset(self.element_at(r, col) for r in range(1, self._rows + 1))

    def contains_quorum(self, elements: Iterable[int]) -> bool:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        full_rows = [r for r in range(1, self._rows + 1) if self.row_elements(r) <= s]
        if not full_rows:
            return False
        full_cols = [c for c in range(1, self._cols + 1) if self.col_elements(c) <= s]
        return bool(full_cols)

    def contains_quorum_mask(self, mask: int) -> bool:
        if mask < 0 or mask >> self._n:
            raise ValueError("elements outside the universe")
        if not any(mask & m == m for m in self._grid_row_masks):
            return False
        return any(mask & m == m for m in self._grid_col_masks)

    def find_quorum_within(self, elements: Iterable[int]) -> frozenset[int] | None:
        s = frozenset(elements)
        if not s <= self.universe:
            raise ValueError("elements outside the universe")
        for r in range(1, self._rows + 1):
            if not self.row_elements(r) <= s:
                continue
            for c in range(1, self._cols + 1):
                if self.col_elements(c) <= s:
                    return self.row_elements(r) | self.col_elements(c)
        return None

    def quorums(self) -> Iterator[frozenset[int]]:
        for r, c in itertools.product(
            range(1, self._rows + 1), range(1, self._cols + 1)
        ):
            yield self.row_elements(r) | self.col_elements(c)

    def quorum_count(self) -> int:
        return self._rows * self._cols

    def min_quorum_size(self) -> int:
        return self._rows + self._cols - 1

    def max_quorum_size(self) -> int:
        return self._rows + self._cols - 1
