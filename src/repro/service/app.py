"""The probe-estimation daemon: HTTP API, job queue, and crash-safe serving.

``repro-probe serve`` runs a stdlib-only HTTP service over the same
engine every other entry point uses:

* ``POST /estimate`` — submit one streaming estimation (``202`` + job id,
  or ``200`` immediately on a result-cache hit);
* ``POST /sweep`` — submit a ``(sizes, ps)`` grid;
* ``GET /jobs/<id>`` — the job's journal record (state, result, error);
* ``GET /healthz`` — liveness: ``200`` while serving (including degraded),
  ``503`` once draining;
* ``GET /readyz`` — readiness: ``200`` only when accepting new jobs;
* ``GET /metrics`` — Prometheus text metrics.

Robustness model (the point of this module):

* **Durability** — every accepted job is journaled before the ``202``
  leaves the socket, and every state change is an atomic write.  Runs
  checkpoint through the engine's own ``checkpoint_path`` hook, so
  ``kill -9`` at *any* moment loses at most the chunks since the last
  durable boundary: the startup scan re-queues interrupted jobs and the
  resumed runs are byte-identical to uninterrupted ones (the engine's
  ``(seed, start)`` chunk keying).  Completed jobs are never re-run.
* **Admission control** — a bounded queue; a full queue or a non-ready
  service answers ``503`` with a ``Retry-After`` header instead of
  accepting work it cannot do.  Failed runs retry with exponential
  backoff up to a bounded attempt budget; each attempt runs under the
  service deadline (the engine's ``run_timeout``) and the existing
  chunk-timeout machinery.
* **Degraded mode** — a lost worker pool (``BrokenExecutor``, or the
  ``"service-pool"`` fault site) flips the service read-only: job status
  and cached results keep serving, new submissions get ``503``.
* **Graceful shutdown** — SIGTERM/SIGINT set the engine ``stop_event``;
  in-flight runs stop at the next chunk boundary with a durable
  checkpoint and return to ``submitted``, then the server exits.  A
  second signal force-exits.
* **Caching** — results are content-addressed by the resolved request
  parameters (:mod:`repro.service.cache`); repeated queries are one file
  read, integrity-checked by CRC before serving.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
import time
from concurrent.futures import BrokenExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.algorithms import (
    default_deterministic_algorithm,
    default_randomized_algorithm,
)
from repro.core.distributions import build_source
from repro.core.engine import (
    ChunkPool,
    RunDeadlineExceeded,
    RunInterrupted,
    resume_stream,
    stream_probes,
)
from repro.service.cache import ResultCache, cache_key
from repro.service.jobs import (
    NORMALIZERS,
    BadRequest,
    Job,
    JobJournal,
    estimate_result_payload,
    sweep_result_payload,
)
from repro.service.metrics import STATE_CODES, ServiceMetrics
from repro.systems import build_system
from repro.testing.faults import FaultInjected, fire_fault

_logger = logging.getLogger("repro.service")

# Patchable in tests (retry-backoff pauses).
_sleep = time.sleep


class ServiceUnavailable(RuntimeError):
    """The service cannot accept this work right now (HTTP 503)."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ProbeService:
    """Job queue + worker threads + durable state under one directory.

    The HTTP layer (:class:`ProbeServer`) is a thin shell over this
    object; tests drive it directly.  ``data_dir`` holds everything
    durable: ``journal/`` (job records + engine checkpoints) and
    ``cache/`` (content-addressed results).
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        queue_size: int = 16,
        workers: int = 1,
        engine_jobs: int = 1,
        job_retries: int = 1,
        retry_backoff: float = 0.05,
        retries: int | None = None,
        chunk_timeout: float | None = None,
        deadline: float | None = None,
        retry_after: float = 1.0,
    ) -> None:
        if queue_size < 1:
            raise ValueError("queue_size must be at least 1")
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if job_retries < 0:
            raise ValueError("job_retries must be >= 0")
        self.data_dir = Path(data_dir)
        self.queue_size = queue_size
        self.workers = workers
        self.engine_jobs = engine_jobs
        self.job_retries = job_retries
        self.retry_backoff = retry_backoff
        self.retries = retries
        self.chunk_timeout = chunk_timeout
        self.deadline = deadline
        self.retry_after = retry_after

        self.journal = JobJournal(self.data_dir / "journal")
        self.cache = ResultCache(self.data_dir / "cache")
        self.metrics = ServiceMetrics()
        self.stop_event = threading.Event()
        self.state = "ready"

        self._lock = threading.RLock()
        self._jobs: dict[str, Job] = {}
        # Admission is enforced by ``_queued`` against ``queue_size`` (the
        # Queue itself is unbounded so the recovery scan can always
        # re-enqueue every interrupted job, however many there are).
        self._queue: queue.Queue = queue.Queue()
        self._queued = 0
        self._in_flight = 0
        self._requests = 0
        self._threads: list[threading.Thread] = []
        self._pool: ChunkPool | None = None
        self._started = False

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Recover the journal, then start the worker threads."""
        if self._started:
            return
        self._started = True
        pending, finished = self.journal.recover()
        for job in finished:
            self._jobs[job.id] = job
            # A crash between the ``done`` journal write and the cache put
            # leaves a completed result that is not yet addressable;
            # backfill so repeat queries hit.
            if job.state == "done" and job.result is not None:
                if not self.cache.path_for(job.cache_key).is_file():
                    self.cache.put(
                        job.cache_key, {"kind": job.kind, **job.params}, job.result
                    )
        for job in pending:
            self._jobs[job.id] = job
            self.metrics.inc("jobs_recovered_total")
            self._enqueue(job)
        if pending:
            _logger.info(
                "journal recovery: re-queued %d interrupted job(s)", len(pending)
            )
        if self.engine_jobs > 1:
            self._pool = ChunkPool(self.engine_jobs)
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"probe-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def begin_drain(self) -> None:
        """Flip to draining and ask in-flight runs to stop (non-blocking).

        Safe to call from a signal handler: it only sets flags — the
        engine notices ``stop_event`` at the next chunk boundary, writes
        a durable checkpoint and raises out of the run.
        """
        with self._lock:
            if self.state == "draining":
                return
            self._set_state("draining")
        self.stop_event.set()
        _logger.info("draining: in-flight jobs will checkpoint and stop")

    def drain(self) -> None:
        """Drain and wait: workers exit once in-flight runs checkpoint."""
        self.begin_drain()
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join()
        self._threads.clear()
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    close = drain

    def _set_state(self, state: str) -> None:
        self.state = state
        self.metrics.set_gauge("service_state", STATE_CODES[state])

    # -- submission and reads -----------------------------------------------------

    def submit(self, kind: str, payload: dict) -> tuple[int, dict]:
        """Accept (or reject) one request; returns ``(status, body)``.

        Raises :class:`~repro.service.jobs.BadRequest` for malformed
        requests and :class:`ServiceUnavailable` when admission control
        rejects — the HTTP layer maps those to 400 and 503.
        """
        params = NORMALIZERS[kind](payload)
        key = cache_key({"kind": kind, **params})
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.inc("cache_hits_total")
            return 200, {
                "state": "done",
                "cached": True,
                "cache_key": key,
                "result": cached,
            }
        self.metrics.inc("cache_misses_total")
        with self._lock:
            if self.state != "ready":
                self.metrics.inc("jobs_rejected_total")
                raise ServiceUnavailable(
                    f"service is {self.state}; not accepting new jobs",
                    self.retry_after,
                )
            if self._queued >= self.queue_size:
                self.metrics.inc("jobs_rejected_total")
                raise ServiceUnavailable(
                    f"queue full ({self.queue_size} job(s) waiting)",
                    self.retry_after,
                )
            job = self.journal.new_job(kind, params)
            # Durable before the 202 leaves the socket: an accepted job
            # survives any crash from here on.
            self.journal.write(job)
            self._jobs[job.id] = job
            self.metrics.inc("jobs_submitted_total")
            self._enqueue(job)
        return 202, {"id": job.id, "state": "submitted", "cache_key": job.cache_key}

    def job_view(self, job_id: str) -> dict | None:
        """The public record for ``job_id``, or ``None`` (404)."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            try:
                job = self.journal.load(job_id)
            except FileNotFoundError:
                return None
        return job.public_view()

    def next_request_ordinal(self) -> int:
        """1-based POST ordinal (the ``"service-handler"`` fault key)."""
        with self._lock:
            self._requests += 1
            return self._requests

    def _enqueue(self, job: Job) -> None:
        with self._lock:
            self._queued += 1
            self.metrics.set_gauge("queue_depth", self._queued)
        self._queue.put(job.id)

    # -- the worker side ----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:
                return
            with self._lock:
                self._queued -= 1
                self.metrics.set_gauge("queue_depth", self._queued)
                job = self._jobs[job_id]
            if self.stop_event.is_set():
                # Draining: the job is already durable as ``submitted``;
                # the next start re-queues it.
                continue
            try:
                self._run_job(job)
            except Exception:  # pragma: no cover - worker must never die
                _logger.exception("unexpected error running %s", job.id)

    def _run_job(self, job: Job) -> None:
        with self._lock:
            job.state = "running"
            job.attempts += 1
            self._in_flight += 1
            self.metrics.set_gauge("jobs_in_flight", self._in_flight)
        self.journal.write(job)
        started = time.monotonic()
        try:
            try:
                fire_fault("service-pool", job.seq)
            except FaultInjected as error:
                # The injected stand-in for a lost pool — distinct from a
                # FaultInjected escaping the engine run, which retries.
                self._enter_degraded(job, error)
                return
            result = self._execute(job)
        except BrokenExecutor as error:
            self._enter_degraded(job, error)
            return
        except RunInterrupted:
            # Drain: the engine checkpointed at the boundary; the job goes
            # back to submitted and the next start resumes it exactly.
            with self._lock:
                job.state = "submitted"
            self.journal.write(job)
            return
        except RunDeadlineExceeded as error:
            self._finish_failed(job, f"deadline exceeded: {error}")
            return
        except Exception as error:
            self._retry_or_fail(job, error)
            return
        finally:
            with self._lock:
                self._in_flight -= 1
                self.metrics.set_gauge("jobs_in_flight", self._in_flight)
        self._finish_done(job, result, time.monotonic() - started)

    def _execute(self, job: Job) -> dict:
        params = job.params
        checkpoint = self.journal.checkpoint_path(job)
        if job.kind == "estimate":
            if checkpoint.is_file():
                result = resume_stream(
                    checkpoint,
                    jobs=self.engine_jobs,
                    executor=self._pool,
                    retries=self.retries,
                    chunk_timeout=self.chunk_timeout,
                    stop_event=self.stop_event,
                    run_timeout=self.deadline,
                )
            else:
                system = build_system(params["system"], params["size"])
                algorithm = (
                    default_randomized_algorithm(system)
                    if params["randomized"]
                    else default_deterministic_algorithm(system)
                )
                source = build_source(params["distribution"], system, params["p"])
                result = stream_probes(
                    algorithm,
                    source,
                    trials=params["trials"],
                    target_ci=params["target_ci"],
                    chunk_size=params["chunk_size"],
                    min_trials=params["min_trials"],
                    max_trials=params["max_trials"],
                    seed=params["seed"],
                    jobs=self.engine_jobs,
                    executor=self._pool,
                    retries=self.retries,
                    chunk_timeout=self.chunk_timeout,
                    checkpoint_path=checkpoint,
                    backend=params["backend"],
                    stop_event=self.stop_event,
                    run_timeout=self.deadline,
                )
            return estimate_result_payload(result)
        from repro.experiments.sweep import resume_sweep, run_sweep

        if checkpoint.is_file():
            result = resume_sweep(
                checkpoint,
                jobs=self.engine_jobs,
                retries=self.retries,
                chunk_timeout=self.chunk_timeout,
                backend=params["backend"],
                stop_event=self.stop_event,
                run_timeout=self.deadline,
            )
        else:
            result = run_sweep(
                params["system"],
                params["sizes"],
                params["ps"],
                trials=params["trials"],
                target_ci=params["target_ci"],
                seed=params["seed"],
                randomized=params["randomized"],
                distribution=params["distribution"],
                chunk_size=params["chunk_size"],
                min_trials=params["min_trials"],
                max_trials=params["max_trials"],
                jobs=self.engine_jobs,
                retries=self.retries,
                chunk_timeout=self.chunk_timeout,
                checkpoint_path=checkpoint,
                backend=params["backend"],
                stop_event=self.stop_event,
                run_timeout=self.deadline,
            )
        return sweep_result_payload(result)

    def _finish_done(self, job: Job, result: dict, seconds: float) -> None:
        with self._lock:
            job.state = "done"
            job.result = result
            job.error = ""
        self.metrics.inc("jobs_done_total")
        self.metrics.inc("job_seconds_total", seconds)
        recovery = result.get("recovery", {})
        self.metrics.inc("chunk_retries_total", recovery.get("retries_used", 0))
        self.metrics.inc("pool_respawns_total", recovery.get("pool_respawns", 0))
        self.metrics.inc("trials_total", _trials_of(job.kind, result))
        # Journal first, cache second: a crash in between leaves a done
        # record without a cache entry, which the startup scan backfills.
        self.journal.write(job)
        self.cache.put(job.cache_key, {"kind": job.kind, **job.params}, result)
        _logger.info("%s done (%d attempt(s))", job.id, job.attempts)

    def _finish_failed(self, job: Job, error: str) -> None:
        with self._lock:
            job.state = "failed"
            job.error = error
        self.metrics.inc("jobs_failed_total")
        self.journal.write(job)
        _logger.warning("%s failed: %s", job.id, error)

    def _retry_or_fail(self, job: Job, error: BaseException) -> None:
        if job.attempts > self.job_retries:
            self._finish_failed(
                job,
                f"{type(error).__name__}: {error} "
                f"(after {job.attempts} attempt(s))",
            )
            return
        backoff = self.retry_backoff * (2 ** (job.attempts - 1))
        _logger.warning(
            "%s attempt %d failed (%s); retrying in %.2fs",
            job.id,
            job.attempts,
            error,
            backoff,
        )
        self.metrics.inc("job_retries_total")
        _sleep(backoff)
        with self._lock:
            job.state = "submitted"
        self.journal.write(job)
        self._enqueue(job)

    def _enter_degraded(self, job: Job, error: BaseException) -> None:
        """Worker pool lost: stop computing, keep serving reads."""
        _logger.error("worker pool lost; entering degraded mode: %s", error)
        with self._lock:
            if self.state == "ready":
                self._set_state("degraded")
            job.state = "submitted"
        # The job is durable and will run on the next (healthy) start.
        self.journal.write(job)


def _trials_of(kind: str, result: dict) -> int:
    statistics = result.get("statistics", {})
    if kind == "estimate":
        return int(statistics.get("n_trials_used", 0))
    return sum(
        int(cell.get("n_trials_used", 0))
        for cell in statistics.get("cells", ())
        if cell.get("status") == "ok"
    )


# -- the HTTP shell ---------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-probe"

    @property
    def service(self) -> ProbeService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _logger.debug("%s %s", self.address_string(), format % args)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self.service.metrics.inc("requests_total")
        service = self.service
        if self.path == "/healthz":
            if service.state == "draining":
                self._send_json(503, {"state": service.state})
            else:
                self._send_json(200, {"state": service.state})
            return
        if self.path == "/readyz":
            status = 200 if service.state == "ready" else 503
            self._send_json(status, {"state": service.state})
            return
        if self.path == "/metrics":
            body = service.metrics.render().encode()
            self.send_response(200)
            self.send_header("Content-Type", "text/plain; version=0.0.4")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if self.path.startswith("/jobs/"):
            view = service.job_view(self.path[len("/jobs/") :])
            if view is None:
                self._send_json(404, {"error": "no such job"})
            else:
                self._send_json(200, view)
            return
        self._send_json(404, {"error": f"no such endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self.service.metrics.inc("requests_total")
        kind = {"/estimate": "estimate", "/sweep": "sweep"}.get(self.path)
        if kind is None:
            self._send_json(404, {"error": f"no such endpoint {self.path!r}"})
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            payload = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as error:
            self._send_json(400, {"error": f"invalid JSON body: {error}"})
            return
        try:
            fire_fault("service-handler", self.service.next_request_ordinal())
            status, body = self.service.submit(kind, payload)
        except BadRequest as error:
            self._send_json(400, {"error": str(error)})
            return
        except ServiceUnavailable as error:
            self._send_json(
                503,
                {"error": str(error), "state": self.service.state},
                headers={"Retry-After": f"{error.retry_after:g}"},
            )
            return
        except FaultInjected as error:
            # The 500 path: answer cleanly, keep serving.
            _logger.error("handler error: %s", error)
            self._send_json(500, {"error": str(error)})
            return
        self._send_json(status, body)

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        if status >= 400:
            self.service.metrics.inc("request_errors_total")
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class ProbeServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`ProbeService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: ProbeService) -> None:
        super().__init__(address, _Handler)
        self.service = service


def make_server(
    service: ProbeService, host: str = "127.0.0.1", port: int = 0
) -> ProbeServer:
    """Bind (but do not run) the HTTP shell; ``port=0`` picks a free port."""
    return ProbeServer((host, port), service)


def _announce(message: str) -> None:
    # Flushed, so a supervisor reading our pipe sees the bound address
    # immediately (stdout is block-buffered when not a tty).
    print(message, flush=True)


def serve(
    data_dir: str | Path,
    host: str = "127.0.0.1",
    port: int = 8421,
    *,
    announce=_announce,
    **service_options,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns an exit status.

    The first signal begins a graceful drain — ``/healthz`` flips to 503
    immediately, in-flight runs checkpoint at their next chunk boundary —
    and the server exits once they have.  A second signal raises
    ``KeyboardInterrupt`` and exits without waiting.
    """
    service = ProbeService(data_dir, **service_options)
    service.start()
    server = make_server(service, host, port)
    bound_host, bound_port = server.server_address[:2]
    announce(f"serving on http://{bound_host}:{bound_port} (data: {data_dir})")

    def _finish() -> None:
        service.drain()
        server.shutdown()

    def _on_signal(signum: int) -> None:
        # Flag flips are signal-safe; the blocking drain runs elsewhere.
        service.begin_drain()
        threading.Thread(target=_finish, daemon=True).start()

    from repro.signals import trap_to_callback

    try:
        with trap_to_callback(_on_signal):
            server.serve_forever()
    except KeyboardInterrupt:
        announce("second signal: exiting without waiting for drain")
        return 130
    finally:
        server.server_close()
    service.drain()
    announce("drained; all accepted jobs are durable")
    return 0
