"""Durable job records: request normalization and the journal.

Every estimation job the service accepts is persisted as one JSON record
(``journal/job-NNNNNN.json``) written atomically at every state change,
so the journal on disk is always a crash-consistent description of the
service's work:

* ``submitted`` — accepted and queued; the request is fully resolved
  (seed, trials/tolerance, backend all pinned), so the record alone
  reproduces the run bit-for-bit.
* ``running`` — a worker picked it up; its engine checkpoint (written by
  the run itself under ``checkpoints/``) carries the chunk-level state.
* ``done`` / ``failed`` — terminal; ``result`` or ``error`` is recorded.

Recovery after ``kill -9`` is a scan of this directory: ``done``/
``failed`` jobs are served from their records (never re-run), ``running``
jobs are re-queued and resume from their engine checkpoint, ``submitted``
jobs are re-queued from scratch.  Because requests are resolved at
submission and engine chunks are keyed by ``(seed, start)``, a recovered
job's statistics are byte-identical to an uninterrupted run's.

Loading is strict, like every persisted format in the repo: a truncated
or corrupt record, a wrong ``kind``, a newer schema or a missing field
fail with a message naming the file and the field — never a raw
``KeyError``/``JSONDecodeError``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.checkpoint import (
    atomic_write_json,
    check_schema_version,
    load_json_payload,
    remove_stale_tmp,
    required_field,
    sweep_stale_tmp,
)
from repro.core.distributions import build_source, canonical_source_name
from repro.core.engine import StreamResult, resolve_fixed_trials
from repro.service.cache import cache_key
from repro.systems import build_system
from repro.testing.faults import fire_fault

#: ``kind`` field of job journal records.
JOB_KIND = "service_job"

#: Version of the job record JSON schema.
JOB_SCHEMA_VERSION = 1

#: The job lifecycle; ``done``/``failed`` are terminal.
JOB_STATES = ("submitted", "running", "done", "failed")

#: Request kinds the service runs.
JOB_KINDS = ("estimate", "sweep")

#: Result keys that describe *how* a run went, not *what* it computed —
#: wall clock and fault-recovery counters.  Excluded from the
#: ``statistics`` block, so byte-identity claims compare real payloads.
NONDETERMINISTIC_KEYS = (
    "seconds",
    "retries_used",
    "pool_respawns",
    "worker_reassignments",
)


class BadRequest(ValueError):
    """A request that cannot be turned into a runnable job (HTTP 400)."""


def _require(payload: dict, key: str):
    value = payload.get(key)
    if value is None:
        raise BadRequest(f"missing required field {key!r}")
    return value


def _take(payload: dict, allowed: dict[str, Any]) -> dict:
    """Apply defaults and reject unknown keys loudly."""
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise BadRequest(
            f"unknown field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )
    resolved = dict(allowed)
    resolved.update({key: value for key, value in payload.items() if value is not None})
    return resolved


def _as_int(value, name: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{name} must be an integer, got {value!r}")
    return value


def normalize_estimate(payload: dict) -> dict:
    """Resolve a ``POST /estimate`` body into canonical run parameters.

    Everything that pins the run's bytes is made explicit here — seed
    (default 0, so identical queries are cache hits; pass your own for
    independent samples), stopping mode, chunk size, backend — and the
    system/distribution are built once to validate them.  The returned
    dict *is* the cache key's content.
    """
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    params = _take(
        payload,
        {
            "system": None,
            "size": 8,
            "p": None,
            "randomized": False,
            "distribution": "bernoulli",
            "trials": None,
            "target_ci": None,
            "chunk_size": None,
            "min_trials": None,
            "max_trials": None,
            "seed": 0,
            "backend": "numpy",
        },
    )
    system_name = str(_require(params, "system"))
    size = _as_int(params["size"], "size")
    p = float(_require(params, "p"))
    try:
        system = build_system(system_name, size)
        params["distribution"] = canonical_source_name(str(params["distribution"]))
        build_source(params["distribution"], system, p)
    except ValueError as error:
        raise BadRequest(str(error)) from None
    try:
        params["trials"] = resolve_fixed_trials(
            params["trials"], params["target_ci"], default=1000
        )
    except ValueError as error:
        raise BadRequest(str(error)) from None
    params.update(
        system=system_name,
        size=size,
        p=p,
        randomized=bool(params["randomized"]),
        seed=_as_int(params["seed"], "seed"),
        backend=_validated_backend(params["backend"]),
    )
    return params


def normalize_sweep(payload: dict) -> dict:
    """Resolve a ``POST /sweep`` body into canonical grid parameters."""
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    params = _take(
        payload,
        {
            "system": None,
            "sizes": None,
            "ps": None,
            "randomized": False,
            "distribution": "bernoulli",
            "trials": None,
            "target_ci": None,
            "chunk_size": None,
            "min_trials": None,
            "max_trials": None,
            "seed": 0,
            "backend": "numpy",
        },
    )
    system_name = str(_require(params, "system"))
    sizes = _require(params, "sizes")
    ps = _require(params, "ps")
    if not isinstance(sizes, list) or not sizes:
        raise BadRequest("sizes must be a non-empty list of integers")
    if not isinstance(ps, list) or not ps:
        raise BadRequest("ps must be a non-empty list of numbers")
    try:
        build_system(system_name, _as_int(sizes[0], "sizes[0]"))
        params["distribution"] = canonical_source_name(str(params["distribution"]))
    except ValueError as error:
        raise BadRequest(str(error)) from None
    try:
        params["trials"] = resolve_fixed_trials(
            params["trials"], params["target_ci"], default=1000
        )
    except ValueError as error:
        raise BadRequest(str(error)) from None
    params.update(
        system=system_name,
        sizes=[_as_int(size, "sizes[]") for size in sizes],
        ps=[float(p) for p in ps],
        randomized=bool(params["randomized"]),
        seed=_as_int(params["seed"], "seed"),
        backend=_validated_backend(params["backend"]),
    )
    return params


def _validated_backend(backend) -> str:
    from repro.core.batched import BACKEND_CHOICES

    backend = str(backend)
    if backend not in BACKEND_CHOICES:
        raise BadRequest(
            f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}"
        )
    return backend


NORMALIZERS = {"estimate": normalize_estimate, "sweep": normalize_sweep}


# -- result payloads --------------------------------------------------------------


def deterministic_view(payload):
    """``payload`` with every wall-clock/recovery key removed, recursively.

    This is the part of a result two runs of the same job must agree on
    byte-for-byte — what the crash-recovery tests compare and what the
    cache CRC ultimately protects.
    """
    if isinstance(payload, dict):
        return {
            key: deterministic_view(value)
            for key, value in payload.items()
            if key not in NONDETERMINISTIC_KEYS
        }
    if isinstance(payload, list):
        return [deterministic_view(item) for item in payload]
    return payload


def estimate_result_payload(result: StreamResult) -> dict:
    """JSON result of an estimate job: deterministic statistics apart."""
    return {
        "statistics": {
            "algorithm": result.algorithm,
            "source": result.source,
            "mode": result.mode,
            "mean": result.mean,
            "std": result.std,
            "ci95": result.ci95,
            "n_trials_used": result.n_trials_used,
            "chunk_size": result.chunk_size,
            "chunks": result.chunks,
            "witness_red": result.witness_red,
            "histogram": list(result.histogram),
            "target_ci": result.target_ci,
            "reached_target": result.reached_target,
            "backend": result.backend,
        },
        "seconds": result.seconds,
        "recovery": {
            "retries_used": result.retries_used,
            "pool_respawns": result.pool_respawns,
            "worker_reassignments": result.worker_reassignments,
        },
    }


def sweep_result_payload(result) -> dict:
    """JSON result of a sweep job (``repro.experiments.sweep`` result)."""
    cells = [cell for cell in result.cells if cell.status == "ok"]
    return {
        "statistics": deterministic_view(result.to_dict()),
        "seconds": sum(cell.seconds for cell in cells),
        "recovery": {
            "retries_used": sum(cell.retries_used for cell in cells),
            "pool_respawns": sum(cell.pool_respawns for cell in cells),
            "worker_reassignments": sum(
                cell.worker_reassignments for cell in cells
            ),
        },
    }


# -- the journal ------------------------------------------------------------------


@dataclass
class Job:
    """One accepted request and its lifecycle state."""

    id: str
    seq: int
    kind: str
    params: dict
    cache_key: str
    state: str = "submitted"
    attempts: int = 0
    error: str = ""
    result: dict | None = None
    created: float = field(default_factory=time.time)
    updated: float = 0.0

    def to_payload(self) -> dict:
        return {
            "kind": JOB_KIND,
            "schema": JOB_SCHEMA_VERSION,
            "id": self.id,
            "seq": self.seq,
            "job_kind": self.kind,
            "params": self.params,
            "cache_key": self.cache_key,
            "state": self.state,
            "attempts": self.attempts,
            "error": self.error,
            "result": self.result,
            "created": self.created,
            "updated": self.updated,
        }

    @classmethod
    def from_payload(cls, payload: dict, path: str | Path = "<payload>") -> "Job":
        check_schema_version(payload, JOB_SCHEMA_VERSION, path)
        state = str(required_field(payload, "state", path))
        if state not in JOB_STATES:
            raise ValueError(f"{path}: unknown job state {state!r}")
        kind = str(required_field(payload, "job_kind", path))
        if kind not in JOB_KINDS:
            raise ValueError(f"{path}: unknown job kind {kind!r}")
        return cls(
            id=str(required_field(payload, "id", path)),
            seq=int(required_field(payload, "seq", path)),
            kind=kind,
            params=dict(required_field(payload, "params", path)),
            cache_key=str(required_field(payload, "cache_key", path)),
            state=state,
            attempts=int(required_field(payload, "attempts", path)),
            error=str(payload.get("error", "")),
            result=payload.get("result"),
            created=float(required_field(payload, "created", path)),
            updated=float(required_field(payload, "updated", path)),
        )

    def public_view(self) -> dict:
        """What ``GET /jobs/<id>`` returns."""
        view = {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "params": self.params,
            "cache_key": self.cache_key,
            "attempts": self.attempts,
            "created": self.created,
            "updated": self.updated,
        }
        if self.error:
            view["error"] = self.error
        if self.result is not None:
            view["result"] = self.result
        return view


class JobJournal:
    """Atomic per-job JSON records under one directory.

    The journal is the service's source of truth: every transition is
    persisted *before* it takes effect in memory (write-ahead), through
    the same tmp + fsync + ``os.replace`` writer as engine checkpoints.
    The ``"journal-write"`` fault site fires just before each write, so
    the crash-between-checkpoint-and-journal window is directly testable.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.checkpoints = self.directory / "checkpoints"
        self.checkpoints.mkdir(exist_ok=True)
        # A crash between tmp write and replace leaves orphans; sweep them
        # on startup (satellite of the same durability story).
        sweep_stale_tmp(self.directory)
        sweep_stale_tmp(self.checkpoints)
        self._next_seq = 1 + max(
            (job.seq for job in self.load_all()), default=0
        )
        self._writes = 0

    def path_for(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.json"

    def checkpoint_path(self, job: Job) -> Path:
        suffix = "sweep.ckpt" if job.kind == "sweep" else "ckpt"
        return self.checkpoints / f"{job.id}.{suffix}"

    def new_job(self, kind: str, params: dict) -> Job:
        """Build (but do not persist) the next job record."""
        if kind not in JOB_KINDS:
            raise BadRequest(f"unknown job kind {kind!r}")
        seq = self._next_seq
        self._next_seq += 1
        return Job(
            id=f"job-{seq:06d}",
            seq=seq,
            kind=kind,
            params=params,
            cache_key=cache_key({"kind": kind, **params}),
        )

    def write(self, job: Job) -> Path:
        """Persist ``job``'s current state durably.

        The ``"journal-write"`` fault site fires just before the write,
        keyed by the 1-based ordinal of this write within the process —
        so a plan can crash the daemon exactly between a job's engine
        checkpoint and its ``done`` record (write 3 for a lone job).
        """
        self._writes += 1
        fire_fault("journal-write", self._writes)
        job.updated = time.time()
        path = self.path_for(job.id)
        remove_stale_tmp(path)
        return atomic_write_json(path, job.to_payload())

    def load(self, job_id: str) -> Job:
        """Load one record; strict about kind, schema and fields."""
        path = self.path_for(job_id)
        payload = load_json_payload(path, JOB_KIND)
        return Job.from_payload(payload, path)

    def load_all(self) -> list[Job]:
        """Every record, in submission order; corrupt records raise."""
        jobs = [
            Job.from_payload(load_json_payload(path, JOB_KIND), path)
            for path in sorted(self.directory.glob("job-*.json"))
        ]
        return sorted(jobs, key=lambda job: job.seq)

    def recover(self) -> tuple[list[Job], list[Job]]:
        """Scan the journal after a restart.

        Returns ``(pending, finished)``: ``pending`` holds the jobs to
        re-enqueue in submission order — ``submitted`` ones untouched and
        ``running`` ones demoted back to ``submitted`` (their engine
        checkpoint, if any, makes the re-run a byte-identical resume) —
        and ``finished`` the terminal ones, served from their records.
        """
        pending: list[Job] = []
        finished: list[Job] = []
        for job in self.load_all():
            if job.state in ("done", "failed"):
                finished.append(job)
                continue
            if job.state == "running":
                job.state = "submitted"
                self.write(job)
            pending.append(job)
        return pending, finished
