"""Resilient probe-estimation service (``repro-probe serve``).

A stdlib-only HTTP daemon over the streaming engine: durable job journal,
bounded admission queue, content-addressed result cache, graceful drain.
See :mod:`repro.service.app` for the robustness model.
"""

from repro.service.app import (
    ProbeServer,
    ProbeService,
    ServiceUnavailable,
    make_server,
    serve,
)
from repro.service.cache import ResultCache, cache_key, canonical_json, result_crc
from repro.service.jobs import (
    BadRequest,
    Job,
    JobJournal,
    deterministic_view,
    normalize_estimate,
    normalize_sweep,
)
from repro.service.metrics import ServiceMetrics

__all__ = [
    "BadRequest",
    "Job",
    "JobJournal",
    "ProbeServer",
    "ProbeService",
    "ResultCache",
    "ServiceMetrics",
    "ServiceUnavailable",
    "cache_key",
    "canonical_json",
    "deterministic_view",
    "make_server",
    "normalize_estimate",
    "normalize_sweep",
    "result_crc",
    "serve",
]
