"""Content-addressed result cache with integrity-checked entries.

The millions-of-users traffic pattern is many clients asking the *same*
question — same system, algorithm, distribution, intensity, stopping rule,
seed and backend.  Every run in this repo is deterministic in exactly
those inputs (the engine's seeding contract), so a completed result can be
served forever: the cache key is the blake2s digest of the canonical JSON
of the resolved request parameters, and a hit is one file read instead of
a Monte-Carlo run.

Entries are JSON files named by their key, written atomically
(:func:`repro.core.checkpoint.atomic_write_json`) and carrying a CRC-32 of
the canonical result payload.  ``get`` verifies the CRC before serving:
a corrupted entry (disk fault, manual edit) is logged, removed and treated
as a miss — the service must never serve bytes it cannot vouch for, but a
recomputation is always safe, so cache corruption is the one persisted-
state failure that does *not* raise.
"""

from __future__ import annotations

import hashlib
import json
import logging
import zlib
from pathlib import Path
from typing import Any

from repro.core.checkpoint import (
    atomic_write_json,
    load_json_payload,
    remove_stale_tmp,
    required_field,
    sweep_stale_tmp,
)

_logger = logging.getLogger("repro.service.cache")

#: ``kind`` field of cache entry files.
CACHE_ENTRY_KIND = "result_cache_entry"

#: Version of the cache entry JSON schema.
CACHE_ENTRY_SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> str:
    """The one canonical serialization (sorted keys, no whitespace).

    Both the cache key and the integrity CRC are computed over this form,
    so two requests that parse to the same parameters always address the
    same entry, byte-for-byte.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def cache_key(params: dict) -> str:
    """Content address of a resolved request's parameters."""
    return hashlib.blake2s(canonical_json(params).encode()).hexdigest()


def result_crc(result: dict) -> int:
    """CRC-32 over the canonical serialization of a result payload."""
    return zlib.crc32(canonical_json(result).encode())


class ResultCache:
    """Directory of completed results addressed by request content.

    ``get``/``put`` are safe under concurrent readers and one writer per
    key (atomic replace); two writers racing the same key write identical
    bytes by construction, so last-writer-wins is harmless.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        # Leftovers of a crash mid-put are stale by definition.
        sweep_stale_tmp(self.directory)

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The cached result for ``key``, or ``None`` (miss/corrupt).

        A corrupt entry — unreadable JSON, wrong kind, missing fields, or
        a CRC mismatch — is logged and removed so the next completion
        rewrites it; the caller just recomputes.
        """
        path = self.path_for(key)
        if not path.is_file():
            self.misses += 1
            return None
        try:
            payload = load_json_payload(path, CACHE_ENTRY_KIND)
            stored_crc = int(required_field(payload, "crc32", path))
            result = required_field(payload, "result", path)
        except (ValueError, FileNotFoundError) as error:
            self._evict_corrupt(path, str(error))
            return None
        if result_crc(result) != stored_crc:
            self._evict_corrupt(path, "CRC-32 mismatch")
            return None
        self.hits += 1
        return result

    def put(self, key: str, params: dict, result: dict) -> Path:
        """Persist ``result`` under ``key`` (atomic, CRC-stamped)."""
        path = self.path_for(key)
        remove_stale_tmp(path)
        return atomic_write_json(
            path,
            {
                "kind": CACHE_ENTRY_KIND,
                "schema": CACHE_ENTRY_SCHEMA_VERSION,
                "key": key,
                "params": params,
                "crc32": result_crc(result),
                "result": result,
            },
        )

    def _evict_corrupt(self, path: Path, reason: str) -> None:
        self.misses += 1
        _logger.warning("evicting corrupt cache entry %s: %s", path, reason)
        try:
            path.unlink()
        except OSError:  # pragma: no cover - raced with another eviction
            pass
