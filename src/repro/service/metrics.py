"""Service observability: a small Prometheus-text metrics registry.

Stdlib-only and deliberately tiny: a thread-safe bag of monotonic
counters plus point-in-time gauges, rendered in the Prometheus text
exposition format (``# HELP``/``# TYPE`` then ``name value`` lines) for
``GET /metrics``.  Counters survive for the life of the process, not
across restarts — durable state lives in the journal, metrics describe
the running daemon.
"""

from __future__ import annotations

import threading

_PREFIX = "repro_"

#: Monotonic counters the service increments (name → HELP text).
COUNTERS = {
    "jobs_submitted_total": "Jobs accepted into the queue.",
    "jobs_done_total": "Jobs that completed successfully.",
    "jobs_failed_total": "Jobs that exhausted retries or hit their deadline.",
    "jobs_rejected_total": "Submissions rejected with 503 (queue full or not ready).",
    "jobs_recovered_total": "Jobs re-queued by the startup journal scan.",
    "requests_total": "HTTP requests handled.",
    "request_errors_total": "HTTP requests answered with a 4xx/5xx status.",
    "cache_hits_total": "Result-cache hits (estimate served without a run).",
    "cache_misses_total": "Result-cache misses.",
    "job_retries_total": "Job-level retry attempts after a failed run.",
    "chunk_retries_total": "Engine chunk retries summed over completed jobs.",
    "pool_respawns_total": "Worker-pool respawns summed over completed jobs.",
    "trials_total": "Monte-Carlo trials executed by completed jobs.",
    "job_seconds_total": "Wall-clock seconds spent running jobs.",
}

#: Point-in-time gauges the service sets (name → HELP text).
GAUGES = {
    "queue_depth": "Jobs waiting in the admission queue.",
    "jobs_in_flight": "Jobs currently running.",
    "service_state": "Service state: 0 ready, 1 degraded, 2 draining.",
}

#: Encoding of the service state machine on the ``service_state`` gauge.
STATE_CODES = {"ready": 0, "degraded": 1, "draining": 2}


class ServiceMetrics:
    """Thread-safe counters + gauges with a Prometheus text renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters = dict.fromkeys(COUNTERS, 0.0)
        self._gauges = dict.fromkeys(GAUGES, 0.0)

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (must be declared)."""
        with self._lock:
            self._counters[name] += amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` (must be declared) to ``value``."""
        with self._lock:
            self._gauges[name] = float(value)

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (tests, handlers)."""
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            return self._gauges[name]

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
        lines = []
        for name, help_text in COUNTERS.items():
            full = _PREFIX + name
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} counter")
            lines.append(f"{full} {_format(counters[name])}")
        for name, help_text in GAUGES.items():
            full = _PREFIX + name
            lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {_format(gauges[name])}")
        return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    """Integers render bare (``7``), fractions keep their float form."""
    return str(int(value)) if value == int(value) else repr(value)
