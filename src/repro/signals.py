"""Graceful SIGTERM/SIGINT handling for the long-lived processes.

Supervisors (systemd, Kubernetes, a shell ``timeout``) stop a process with
SIGTERM and expect it to wind down: deregister, close sockets, flush
state.  Python's default reaction to SIGTERM is immediate termination with
no cleanup — ``finally`` blocks don't run, coordinators see an abrupt
disconnect and burn a lease-expiry timeout, daemons leave jobs marked
running.  This module gives every long-lived entry point one shared,
restorable way to turn those signals into something Python can unwind:

* :func:`trap_as_keyboard_interrupt` — SIGTERM behaves like Ctrl-C: the
  blocking call in the main thread raises ``KeyboardInterrupt``, existing
  ``except KeyboardInterrupt`` / ``finally`` cleanup paths run.  Used by
  the networked worker (close the socket, exit 0) and the CLI coordinator
  context (send shutdown frames, reap spawned workers).
* :func:`trap_to_callback` — SIGTERM/SIGINT invoke a callback instead of
  killing the process; the first signal triggers it, a second one falls
  back to ``KeyboardInterrupt`` so a wedged drain can still be escaped.
  Used by the estimation service, whose drain (stop intake, checkpoint
  in-flight jobs, exit) is event-driven rather than exception-driven.

Both are no-ops off the main thread (``signal.signal`` is main-thread
only) and both restore the previous handlers on exit, so nesting and test
suites stay safe.
"""

from __future__ import annotations

import signal
import threading
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager

#: The signals supervisors use to stop a service.
STOP_SIGNALS = (signal.SIGTERM, signal.SIGINT)


def _on_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


@contextmanager
def trap_as_keyboard_interrupt(
    signals: Sequence[signal.Signals] = STOP_SIGNALS,
) -> Iterator[None]:
    """Make ``signals`` raise ``KeyboardInterrupt`` inside the block.

    SIGINT already does this by default; adding SIGTERM means a
    supervisor's stop request runs the very same cleanup path as Ctrl-C.
    Restores the previous handlers on exit; silently a no-op off the main
    thread, where Python forbids installing handlers.
    """
    if not _on_main_thread():
        yield
        return
    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, signal.default_int_handler)
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


@contextmanager
def trap_to_callback(
    callback: Callable[[int], None],
    signals: Sequence[signal.Signals] = STOP_SIGNALS,
) -> Iterator[None]:
    """Invoke ``callback(signum)`` on the first stop signal in the block.

    The callback runs in the main thread's signal context, so it must be
    quick and reentrancy-safe — typically it just sets events (the
    service's drain flag).  A *second* signal raises
    ``KeyboardInterrupt``: if the graceful path wedges, the operator's
    repeated Ctrl-C still gets out.  Previous handlers are restored on
    exit; no-op off the main thread.
    """
    if not _on_main_thread():
        yield
        return
    fired = False

    def handler(signum, frame):
        nonlocal fired
        if fired:
            raise KeyboardInterrupt(f"second stop signal {signum}")
        fired = True
        callback(signum)

    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, handler)
    try:
        yield
    finally:
        for signum, handler_ in previous.items():
            signal.signal(signum, handler_)
