"""Witnesses to the state of a quorum system.

A probing algorithm terminates by exhibiting a *witness*: either a green
(live) quorum, proving that the task can be performed, or a red transversal,
proving that no live quorum exists.  For a nondominated coterie the red
transversal always contains a red quorum (Lemma 2.1), so both kinds of
witness are monochromatic sets that contain a quorum — which is what the
paper's algorithms search for.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coloring import Color, Coloring
from repro.systems.base import QuorumSystem


@dataclass(frozen=True)
class Witness:
    """A monochromatic witness to the system state.

    ``color`` is green for a live-quorum witness and red for a
    no-live-quorum witness; ``elements`` is the witnessing set (a green
    quorum, or a red transversal / red quorum respectively).
    """

    color: Color
    elements: frozenset[int]

    @property
    def is_green(self) -> bool:
        """True when the witness certifies that a live quorum exists."""
        return self.color is Color.GREEN

    @property
    def is_red(self) -> bool:
        """True when the witness certifies that no live quorum exists."""
        return self.color is Color.RED

    def __len__(self) -> int:
        return len(self.elements)

    def validate(self, system: QuorumSystem, coloring: Coloring) -> None:
        """Raise :class:`InvalidWitnessError` unless this witness is valid.

        Validity means: (1) the witness elements really have the claimed
        color under ``coloring``; (2) a green witness contains a quorum;
        (3) a red witness is a transversal of the system (equivalently, its
        removal leaves no quorum).
        """
        for element in self.elements:
            actual = coloring[element]
            if actual is not self.color:
                raise InvalidWitnessError(
                    f"witness claims element {element} is {self.color.value} "
                    f"but it is {actual.value}"
                )
        if self.is_green:
            if not system.contains_quorum(self.elements):
                raise InvalidWitnessError(
                    "green witness does not contain a quorum"
                )
        else:
            if not system.is_transversal(self.elements):
                raise InvalidWitnessError(
                    "red witness is not a transversal of the system"
                )

    def is_valid(self, system: QuorumSystem, coloring: Coloring) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate(system, coloring)
        except InvalidWitnessError:
            return False
        return True


class InvalidWitnessError(AssertionError):
    """Raised when a probing algorithm returns an incorrect witness."""


def reference_witness(system: QuorumSystem, coloring: Coloring) -> Witness:
    """Construct a correct witness directly from full knowledge of the coloring.

    This is the "omniscient" baseline used to check algorithm outputs: a
    green quorum when one exists, otherwise the set of all red elements
    (which is then necessarily a transversal).
    """
    green_quorum = system.find_green_quorum(coloring)
    if green_quorum is not None:
        return Witness(Color.GREEN, green_quorum)
    return Witness(Color.RED, coloring.red_elements)
