"""Integer-bitmask representation of element sets.

The probing stack's hot paths (knowledge-state dynamic programming, witness
settling, Monte-Carlo trial loops) operate on subsets of the universe
``{1, ..., n}``.  Representing such a subset as a Python integer whose bit
``i`` stands for element ``i + 1`` turns the frozenset algebra into a
handful of machine-word operations: subset tests become ``mask & q == q``,
unions are ``|``, complements are ``full & ~mask`` and cardinalities are
``int.bit_count``.  Python integers are arbitrary precision, so the same
representation covers universes far beyond 64 elements.

This module holds the conversion helpers shared by :mod:`repro.core` and
:mod:`repro.systems`; the numpy-batched trial representation (one boolean
row per sampled coloring) lives in :mod:`repro.core.batched`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def full_mask(n: int) -> int:
    """Mask of the whole universe ``{1, ..., n}``."""
    return (1 << n) - 1


def mask_of(elements: Iterable[int]) -> int:
    """Mask with bit ``e - 1`` set for every element ``e``."""
    mask = 0
    for e in elements:
        mask |= 1 << (e - 1)
    return mask


def elements_of(mask: int) -> frozenset[int]:
    """The element set represented by ``mask``."""
    return frozenset(iter_elements(mask))


def iter_elements(mask: int) -> Iterator[int]:
    """Yield the (1-based) elements of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length()
        mask ^= low


def element_bit(element: int) -> int:
    """The single-bit mask of one element."""
    return 1 << (element - 1)


def validate_mask(mask: int, n: int) -> None:
    """Raise if ``mask`` is negative or has bits outside ``{1, ..., n}``."""
    if mask < 0:
        raise ValueError("element masks must be nonnegative")
    if mask >> n:
        raise ValueError(f"mask {mask:#x} has elements outside universe 1..{n}")
