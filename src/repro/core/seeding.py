"""Parameter-keyed seed streams (the per-cell seeding primitives).

A Monte-Carlo experiment is a grid of *cells* — one ``(system, p)`` point,
one urn case, one ablation variant group, one simulated-cluster trial.
Reusing the experiment seed for every cell correlates the samples across
cells, which silently couples sampling errors between rows that are
supposed to be independent measurements.

The fix, introduced for the sweep runner and now shared by every layer
(drivers, the sweep runner, the simulated cluster), is to key each cell's
stream by the cell's own parameter values: a numpy ``SeedSequence`` whose
entropy is the experiment seed and whose spawn key encodes the cell
parameters.  Two properties follow:

* cells are statistically independent of each other, and
* a cell reproduces bit-identically no matter which grid (or sub-grid) it
  is part of — reordering sizes, dropping a ``p`` or running a single cell
  in isolation does not change any other cell's samples.

Keys may be ints (two's complement into uint64), floats (IEEE-754 bit
pattern) or strings (BLAKE2s digest), since ``SeedSequence`` only accepts
non-negative integer entropy.

The module lives in :mod:`repro.core` so that lower layers (e.g.
:mod:`repro.simulation`) can derive cell streams without importing the
experiments package; :mod:`repro.experiments.seeding` re-exports it.
"""

from __future__ import annotations

import hashlib

import numpy as np

_UINT64_MASK = 0xFFFFFFFFFFFFFFFF


def _key_to_uint64(key: int | float | str) -> int:
    """Encode one cell-key component as an unsigned 64-bit word."""
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, (int, np.integer)):
        return int(key) & _UINT64_MASK
    if isinstance(key, (float, np.floating)):
        return int(np.float64(key).view(np.uint64))
    if isinstance(key, str):
        digest = hashlib.blake2s(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(digest, "big")
    raise TypeError(f"unsupported cell key {key!r} of type {type(key).__name__}")


def cell_sequence(seed: int, *keys: int | float | str) -> np.random.SeedSequence:
    """The ``SeedSequence`` for the cell identified by ``keys``."""
    return np.random.SeedSequence(
        entropy=int(seed) & _UINT64_MASK,
        spawn_key=tuple(_key_to_uint64(key) for key in keys),
    )


def cell_generator(seed: int, *keys: int | float | str) -> np.random.Generator:
    """A fresh numpy generator on the cell's stream (the sweep runner's path)."""
    return np.random.default_rng(cell_sequence(seed, *keys))


def cell_seed(seed: int | None, *keys: int | float | str) -> int | None:
    """Derive an integer seed for the cell identified by ``keys``.

    This is the driver-facing form: the result feeds the ``seed=`` argument
    of the sequential and batched estimators.  ``None`` passes through, so
    unseeded (OS-entropy) runs stay unseeded.
    """
    if seed is None:
        return None
    return int(cell_sequence(seed, *keys).generate_state(1, np.uint64)[0])
