"""Bit-packed kernel backend: 64 Monte-Carlo trials per ``uint64`` word.

The numpy kernels of :mod:`repro.core.batched` spend one byte per
``(trial, element)`` cell and one int64 lane per trial; at streaming-engine
scale the memory traffic of the ``(trials, n)`` matrices is the throughput
ceiling.  This module stores a batch of colorings *transposed and packed*:
a ``(n_words, n)`` ``uint64`` array where bit ``t`` of ``words[w, e]`` is
the red bit of trial ``64 * w + t`` for element ``e + 1`` (one bit-plane
per element, 64 trials per word).  Quorum tests then become word-parallel
AND/XOR/popcount operations, and the per-trial probe counters become
*bit-sliced* (carry-save) integers: a counter over 64 trials is a short
list of ``uint64`` planes, least-significant bit first, and adding a 0/1
mask into it is a ripple-carry chain of ``XOR``/``AND`` word ops.

Packed kernels exist for the deterministic algorithms only:

* ``ProbeMaj`` — running red/green quorum counters over the probe order
  with a per-trial early-exit mask (bias-offset counters: initialized to
  ``2**B - target`` so the carry out of the top plane *is* the quorum
  test);
* ``ProbeCW`` — per-wall-row mode scan (XNOR against the mode bits,
  popcount-driven early exit, mode flip on a matchless row);
* ``ProbeTree`` / ``ProbeHQS`` — the level-synchronous gate recurrences of
  :mod:`repro.core.batched_gates` with child probe counts carried as
  bit-plane lists and combined by full-adder chains against the gate
  conditions.

Each packed kernel reproduces its numpy counterpart's per-trial probe
counts and witness colors *exactly* (integer arithmetic both ways), and
:func:`sample_packed` consumes the underlying PCG64 stream exactly like
``ColoringSource.sample_matrix`` does — ``generator.random`` fills
row-major, so drawing in row slabs is stream-identical to the one-shot
matrix draw.  Probe-count histograms are therefore bit-identical between
backends under every chunk size, ``jobs=N`` and distributed split, which
``tests/core/test_bitpacked.py`` pins.

Randomized algorithms keep the numpy path: their per-trial permutation
draws have no packed formulation that preserves the sequential RNG
contract, and :func:`repro.core.batched.resolve_backend` rejects
``backend="bitpacked"`` for them loudly.

Kernels follow the signature ``kernel(algorithm, packed, rng)`` over a
:class:`PackedColorings` and are registered with
:func:`repro.core.batched.register_kernel` under ``backend="bitpacked"``;
use :func:`run_packed` (or the streaming engine's ``backend=``) rather
than calling them directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.crumbling_walls import ProbeCW
from repro.algorithms.hqs import ProbeHQS
from repro.algorithms.majority import ProbeMaj
from repro.algorithms.tree import ProbeTree
from repro.core.batched import kernel_scratch, register_kernel
from repro.core.coloring import as_numpy_generator
from repro.core.distributions import BernoulliSource, ColoringSource

#: All 64 bits set — the packed representation of "every trial lane".
ALL_LANES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Trials per packing slab in :func:`sample_packed` (must be a multiple of
#: 64 so every slab fills whole words).  Bounds the transient bool matrix
#: to ``slab * n`` bytes regardless of the chunk size.
PACK_SLAB_TRIALS = 4096


# -- popcount ---------------------------------------------------------------------

_POPCOUNT16: np.ndarray | None = None


def _popcount16_table() -> np.ndarray:
    """The 16-bit popcount lookup table (64 KiB, built on first use)."""
    global _POPCOUNT16
    if _POPCOUNT16 is None:
        values = np.arange(1 << 16, dtype=np.uint32)
        counts = np.zeros(1 << 16, dtype=np.uint8)
        for shift in range(16):
            counts += ((values >> shift) & 1).astype(np.uint8)
        _POPCOUNT16 = counts
    return _POPCOUNT16


def _popcount64_lut(words: np.ndarray) -> np.ndarray:
    """Per-word popcount via four 16-bit table lookups (pre-2.0 numpy)."""
    w = np.asarray(words, dtype=np.uint64)
    table = _popcount16_table()
    counts = np.zeros(w.shape, dtype=np.int64)
    mask = np.uint64(0xFFFF)
    for shift in (0, 16, 32, 48):
        counts += table[((w >> np.uint64(shift)) & mask).astype(np.uint16)]
    return counts


if hasattr(np, "bitwise_count"):

    def popcount64(words: np.ndarray) -> np.ndarray:
        """Per-word set-bit counts as int64 (``np.bitwise_count``)."""
        return np.bitwise_count(np.asarray(words, dtype=np.uint64)).astype(np.int64)

else:  # pragma: no cover - numpy >= 2.0 in the pinned environment
    popcount64 = _popcount64_lut


def count_ones(words: np.ndarray) -> int:
    """Total number of set bits across ``words``."""
    return int(popcount64(words).sum())


# -- packed layout ----------------------------------------------------------------


@dataclass(frozen=True)
class PackedColorings:
    """``trials`` colorings packed 64-per-word.

    ``words`` has shape ``(n_words, n)``: bit ``t`` of ``words[w, e]`` is
    trial ``64 * w + t``'s red bit for element ``e + 1`` (same column
    convention as the bool matrices of :mod:`repro.core.batched`).  Lanes
    past ``trials`` in the last word are zero padding; kernels mask them
    through :meth:`valid_mask` and the final per-trial unpack.
    """

    words: np.ndarray
    trials: int

    @property
    def n(self) -> int:
        """Universe size (number of element bit-planes)."""
        return self.words.shape[1]

    @property
    def n_words(self) -> int:
        """Number of 64-trial words."""
        return self.words.shape[0]

    def valid_mask(self) -> np.ndarray:
        """Per-word mask of lanes that hold real trials, shape ``(n_words,)``."""
        mask = np.full(self.n_words, ALL_LANES, dtype=np.uint64)
        if self.n_words:
            tail = self.trials - 64 * (self.n_words - 1)
            if tail < 64:
                mask[-1] = np.uint64((1 << tail) - 1)
        return mask


def _pack_rows(red: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, n)`` bool matrix into ``(ceil(rows / 64), n)`` words."""
    rows, n = red.shape
    n_words = -(-rows // 64)
    packed_bytes = np.packbits(red, axis=0, bitorder="little")
    padded = np.zeros((n_words * 8, n), dtype=np.uint8)
    padded[: packed_bytes.shape[0]] = packed_bytes
    shifted = padded.reshape(n_words, 8, n).astype(np.uint64)
    words = np.zeros((n_words, n), dtype=np.uint64)
    for byte in range(8):
        words |= shifted[:, byte, :] << np.uint64(8 * byte)
    return words


def pack_matrix(red: np.ndarray) -> PackedColorings:
    """Pack a ``(trials, n)`` bool red matrix into bit-planes."""
    red = np.asarray(red, dtype=bool)
    if red.ndim != 2:
        raise ValueError(f"red matrix must be 2-D, got shape {red.shape}")
    return PackedColorings(_pack_rows(red), red.shape[0])


def unpack_lanes(bits: np.ndarray, trials: int) -> np.ndarray:
    """Unpack a ``(n_words,)`` lane mask into a ``(trials,)`` bool array."""
    raw = np.ascontiguousarray(bits, dtype=np.uint64).astype("<u8", copy=False)
    lanes = np.unpackbits(raw.view(np.uint8), bitorder="little")
    return lanes[:trials].astype(bool)


def unpack_matrix(packed: PackedColorings) -> np.ndarray:
    """Inverse of :func:`pack_matrix`: the ``(trials, n)`` bool matrix."""
    columns = np.ascontiguousarray(packed.words.T).astype("<u8", copy=False)
    bits = np.unpackbits(columns.view(np.uint8), axis=1, bitorder="little")
    return bits[:, : packed.trials].T.astype(bool)


def sample_packed(
    source: ColoringSource,
    n: int,
    trials: int,
    rng=None,
    slab_trials: int = PACK_SLAB_TRIALS,
) -> PackedColorings:
    """Draw ``trials`` colorings from ``source`` directly into bit-planes.

    Stream-identical to ``pack_matrix(source.sample_matrix(n, trials, rng))``
    for every source: Bernoulli draws are filled slab-by-slab (64-trial
    aligned) without ever materializing the full bool matrix —
    ``Generator.random`` consumes one uniform per cell in row-major order,
    so splitting the draw by rows leaves the stream unchanged — and other
    sources fall back to packing their (validated) one-shot matrix.
    """
    if n != source.n:
        raise ValueError(
            f"{source.name} source draws over n={source.n}, "
            f"but a packed batch for n={n} was requested"
        )
    if trials < 0:
        raise ValueError("batch size must be nonnegative")
    if slab_trials < 64 or slab_trials % 64:
        raise ValueError(f"slab_trials must be a positive multiple of 64, got {slab_trials}")
    generator = as_numpy_generator(rng)
    if not isinstance(source, BernoulliSource):
        return pack_matrix(source.sample_matrix(n, trials, generator))
    p = source.p
    words = np.zeros((-(-trials // 64), n), dtype=np.uint64)
    start = 0
    while start < trials:
        count = min(slab_trials, trials - start)
        red = generator.random((count, n)) < p
        word = start // 64
        words[word : word + -(-count // 64)] = _pack_rows(red)
        start += count
    return PackedColorings(words, trials)


# -- bit-sliced arithmetic --------------------------------------------------------
#
# A "plane list" is a little-endian bit-sliced integer: planes[i] holds bit
# i of a per-lane counter, each plane a uint64 array (one lane per trial).


def accumulate_bit(planes: list[np.ndarray], bits: np.ndarray) -> None:
    """``planes += bits`` in place (``bits`` is a 0/1-per-lane mask),
    growing the plane list when the ripple carry overflows the top plane."""
    carry = bits
    for i, plane in enumerate(planes):
        if not carry.any():
            return
        planes[i] = plane ^ carry
        carry = plane & carry
    if carry.any():
        planes.append(carry)


def counter_add(planes: list[np.ndarray], bits: np.ndarray) -> np.ndarray:
    """``planes += bits`` in a fixed-width counter; returns the carry out
    of the top plane (the per-lane overflow mask — see
    :func:`threshold_counter`)."""
    carry = bits
    for i, plane in enumerate(planes):
        planes[i] = plane ^ carry
        carry = plane & carry
    return carry


def threshold_counter(target: int, shape: tuple[int, ...]) -> list[np.ndarray]:
    """A bias-offset counter that overflows after exactly ``target`` adds.

    Planes are initialized to ``2**B - target`` (``B`` = bit length of
    ``target``) in every lane, so the ``target``-th :func:`counter_add`
    increment carries out of the top plane — the carry mask *is* the
    "count reached target" test, with no comparison pass.
    """
    if target < 1:
        raise ValueError(f"threshold target must be positive, got {target}")
    width = target.bit_length()
    offset = (1 << width) - target
    return [
        np.full(shape, ALL_LANES, dtype=np.uint64)
        if (offset >> i) & 1
        else np.zeros(shape, dtype=np.uint64)
        for i in range(width)
    ]


def planes_add(a: list[np.ndarray], b: list[np.ndarray]) -> list[np.ndarray]:
    """Full-adder chain over two bit-sliced integers (new plane list)."""
    out: list[np.ndarray] = []
    carry: np.ndarray | None = None
    for i in range(max(len(a), len(b))):
        x = a[i] if i < len(a) else None
        y = b[i] if i < len(b) else None
        if x is None:
            x, y = y, None
        if y is None and carry is None:
            out.append(x)
            continue
        if y is None:
            y, carry = carry, None
        total = x ^ y
        generate = x & y
        if carry is not None:
            out.append(total ^ carry)
            carry = generate | (total & carry)
        else:
            out.append(total)
            carry = generate
    if carry is not None and carry.any():
        out.append(carry)
    return out


def planes_mask(planes: list[np.ndarray], mask: np.ndarray) -> list[np.ndarray]:
    """The bit-sliced integer gated per lane: value where ``mask``, else 0."""
    return [plane & mask for plane in planes]


def planes_to_counts(planes: list[np.ndarray], trials: int) -> np.ndarray:
    """Unpack a bit-sliced integer into per-trial ``int64`` counts."""
    counts = np.zeros(trials, dtype=np.int64)
    for i, plane in enumerate(planes):
        counts += unpack_lanes(np.ravel(plane), trials).astype(np.int64) << i
    return counts


def _ones_planes(shape: tuple[int, ...]) -> list[np.ndarray]:
    """The bit-sliced constant 1 in every lane (leaf probe counts)."""
    return [np.full(shape, ALL_LANES, dtype=np.uint64)]


# -- packed kernels ---------------------------------------------------------------


def packed_probe_maj_kernel(algorithm, packed: PackedColorings, rng=None):
    """Algorithm Probe_Maj over bit-planes: red/green threshold counters
    along the probe order, early exit once every trial lane has stopped."""
    scratch = kernel_scratch(algorithm)
    columns = scratch.get("maj_columns")
    if columns is None:
        columns = np.asarray(algorithm.order, dtype=np.intp) - 1
        scratch["maj_columns"] = columns
    target = algorithm.system.quorum_size
    words = packed.words
    active = packed.valid_mask()
    red_count = threshold_counter(target, active.shape)
    green_count = threshold_counter(target, active.shape)
    probes: list[np.ndarray] = []
    witness_green = np.zeros_like(active)
    for column in columns:
        bits = words[:, column]
        accumulate_bit(probes, active)
        red_fire = counter_add(red_count, bits & active)
        green_fire = counter_add(green_count, ~bits & active)
        witness_green |= green_fire
        active = active & ~(red_fire | green_fire)
        if not count_ones(active):
            break
    return planes_to_counts(probes, packed.trials), unpack_lanes(
        witness_green, packed.trials
    )


def packed_probe_cw_kernel(algorithm, packed: PackedColorings, rng=None):
    """Algorithm Probe_CW over bit-planes: XNOR each row element against
    the per-trial mode bits, stop lanes at their first match, flip the mode
    where a row ran out without one."""
    if algorithm.randomized:
        raise ValueError(
            "the bitpacked Probe_CW kernel supports the deterministic "
            "in-row order only"
        )
    from repro.core.batched import _cw_row_columns

    row_columns = _cw_row_columns(algorithm)
    words = packed.words
    valid = packed.valid_mask()
    mode_red = words[:, row_columns[0][0]].copy()
    probes: list[np.ndarray] = [valid.copy()]  # the width-1 top row
    for columns in row_columns[1:]:
        still = valid.copy()
        for column in columns:
            accumulate_bit(probes, still)
            matches_mode = ~(words[:, column] ^ mode_red)
            still = still & ~matches_mode
            if not count_ones(still):
                break
        mode_red ^= still  # flip lanes that saw no mode-colored element
    return planes_to_counts(probes, packed.trials), unpack_lanes(
        ~mode_red & valid, packed.trials
    )


def packed_probe_tree_kernel(algorithm, packed: PackedColorings, rng=None):
    """Algorithm Probe_Tree over bit-planes: the Prop. 3.6 recurrence
    ``P(v) = 1 + P(right) + [C(right) != e] * P(left)`` with child probe
    counts carried as plane lists and added carry-save per level."""
    system = algorithm.system
    words = packed.words
    first = 1 << system.height
    value = words[:, first - 1 : 2 * first - 1]
    probes = _ones_planes(value.shape)
    for depth in range(system.height - 1, -1, -1):
        lo = 1 << depth
        elem = words[:, lo - 1 : 2 * lo - 1]
        left_v, right_v = value[:, 0::2], value[:, 1::2]
        left_p = [plane[:, 0::2] for plane in probes]
        right_p = [plane[:, 1::2] for plane in probes]
        right_matches = ~(right_v ^ elem)
        value = (right_matches & elem) | (~right_matches & left_v)
        probes = planes_add(right_p, planes_mask(left_p, ~right_matches))
        probes = planes_add(probes, _ones_planes(elem.shape))
    return planes_to_counts(probes, packed.trials), unpack_lanes(
        ~value[:, 0] & packed.valid_mask(), packed.trials
    )


def packed_probe_hqs_kernel(algorithm, packed: PackedColorings, rng=None):
    """Algorithm Probe_HQS over bit-planes: the 2-then-3 gate
    ``P = P(c1) + P(c2) + [C(c1) != C(c2)] * P(c3)`` per level, probe
    counts combined by full-adder chains under the disagreement mask."""
    words = packed.words
    n_words = packed.n_words
    value = words
    probes = _ones_planes(words.shape)
    for _ in range(algorithm.system.height):
        gates = value.shape[1] // 3
        values = value.reshape(n_words, gates, 3)
        costs = [plane.reshape(n_words, gates, 3) for plane in probes]
        first_two_agree = ~(values[..., 0] ^ values[..., 1])
        value = (first_two_agree & values[..., 0]) | (
            ~first_two_agree & values[..., 2]
        )
        probes = planes_add(
            planes_add(
                [plane[..., 0] for plane in costs],
                [plane[..., 1] for plane in costs],
            ),
            planes_mask([plane[..., 2] for plane in costs], ~first_two_agree),
        )
    return planes_to_counts(probes, packed.trials), unpack_lanes(
        ~value[:, 0] & packed.valid_mask(), packed.trials
    )


def run_packed(
    algorithm, packed: PackedColorings, rng=None
) -> tuple[np.ndarray, np.ndarray]:
    """Run every packed trial through the algorithm's bitpacked kernel.

    Returns the same ``(probes, witness_green)`` pair as
    :func:`repro.core.batched.batched_run` — per-trial ``int64`` probe
    counts and bool witness colors — so downstream accounting (histograms,
    witness tallies) is backend-agnostic.  Raises for algorithms without a
    packed kernel; randomized algorithms never have one.
    """
    from repro.core.batched import kernel_for

    if packed.n != algorithm.system.n:
        raise ValueError(
            f"packed batch has n={packed.n}, algorithm expects n={algorithm.system.n}"
        )
    kernel = kernel_for(algorithm, backend="bitpacked")
    if kernel is None:
        raise TypeError(f"no bitpacked kernel for {algorithm.name}")
    return kernel(algorithm, packed, rng)


register_kernel(ProbeMaj, packed_probe_maj_kernel, backend="bitpacked")
register_kernel(ProbeCW, packed_probe_cw_kernel, backend="bitpacked")
register_kernel(ProbeTree, packed_probe_tree_kernel, backend="bitpacked")
register_kernel(ProbeHQS, packed_probe_hqs_kernel, backend="bitpacked")
