"""Classical quality measures of quorum systems: availability and load.

The paper's probabilistic analysis repeatedly uses the *availability*
parameter ``F_p(S)`` of Peleg & Wool — the probability that no live quorum
exists when every element fails independently with probability ``p`` — and
its two basic facts (Fact 2.3): for an ND coterie ``F_p(S) ≤ p`` whenever
``p ≤ 1/2``, and ``F_p(S) + F_{1-p}(S) = 1``.

The *load* of a quorum system (Naor & Wool) measures how evenly work can be
spread over the elements by a randomized quorum-picking strategy; it is not
used in the paper's proofs but is part of the standard measurement suite a
user of the library expects, and is exercised by the examples.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable

from repro.core.coloring import Coloring, enumerate_colorings_with_reds
from repro.core.estimator import Estimate
from repro.systems.base import QuorumSystem


# -- availability -------------------------------------------------------------------


def availability_exact(system: QuorumSystem, p: float) -> float:
    """Exact failure probability ``F_p(S)`` by enumeration over red sets.

    ``F_p(S)`` is the probability that the green elements contain no quorum.
    Exponential in ``n``; use for ``n`` up to roughly 20.
    """
    _check_probability(p)
    if system.n > 22:
        raise ValueError(
            "exact availability enumeration is limited to n <= 22; "
            "use availability_monte_carlo instead"
        )
    total = 0.0
    n = system.n
    for r in range(n + 1):
        weight = (p**r) * ((1.0 - p) ** (n - r))
        if weight == 0.0:
            continue
        for coloring in enumerate_colorings_with_reds(n, r):
            if not system.has_live_quorum(coloring):
                total += weight
    return total


def availability_monte_carlo(
    system: QuorumSystem,
    p: float,
    trials: int = 2000,
    seed: int | None = None,
    batched: bool = False,
) -> Estimate:
    """Monte-Carlo estimate of ``F_p(S)``.

    With ``batched=True`` the whole trial batch is sampled as one red
    matrix and the witness colors come from the system's batched probing
    kernel (the witness is green exactly when a live quorum exists);
    systems without a kernel fall back to the per-trial loop inside the
    batched layer.  The batched path draws from a different RNG stream, so
    per-seed values differ from the sequential path.
    """
    _check_probability(p)
    if trials < 1:
        raise ValueError("need at least one trial")
    if batched:
        import numpy as np

        from repro.algorithms import default_deterministic_algorithm
        from repro.core.batched import batched_or_sequential_run
        from repro.core.coloring import as_numpy_generator
        from repro.core.distributions import sample_bernoulli_matrix

        algorithm = default_deterministic_algorithm(system)
        generator = as_numpy_generator(seed)
        red = sample_bernoulli_matrix(system.n, p, trials, generator)
        _, witness_green = batched_or_sequential_run(algorithm, red, generator)
        return Estimate.from_samples(np.where(witness_green, 0.0, 1.0))
    rng = random.Random(seed)
    samples = []
    for _ in range(trials):
        coloring = Coloring.random(system.n, p, rng)
        samples.append(0.0 if system.has_live_quorum(coloring) else 1.0)
    return Estimate.from_samples(samples)


def check_availability_identity(system: QuorumSystem, p: float) -> bool:
    """Check Fact 2.3(2): ``F_p(S) + F_{1-p}(S) = 1`` for an ND coterie."""
    _check_probability(p)
    total = availability_exact(system, p) + availability_exact(system, 1.0 - p)
    return math.isclose(total, 1.0, abs_tol=1e-9)


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"failure probability must be in [0, 1], got {p}")


# -- quorum size statistics -----------------------------------------------------------


def quorum_size_statistics(system: QuorumSystem) -> dict[str, float]:
    """Min / max / mean quorum size and quorum count (requires enumeration)."""
    sizes = [len(q) for q in system.quorums()]
    if not sizes:
        raise ValueError("system has no quorums")
    return {
        "count": float(len(sizes)),
        "min": float(min(sizes)),
        "max": float(max(sizes)),
        "mean": float(sum(sizes) / len(sizes)),
    }


def is_uniform(system: QuorumSystem) -> bool:
    """True when every quorum has the same size (a ``c``-uniform system)."""
    sizes = {len(q) for q in system.quorums()}
    return len(sizes) == 1


# -- load -----------------------------------------------------------------------------


def load_of_strategy(
    system: QuorumSystem, weights: dict[frozenset[int], float]
) -> float:
    """Load induced on the busiest element by a quorum-picking strategy.

    ``weights`` assigns a probability to each quorum (they are normalized
    here); the load of element ``i`` is the probability that the chosen
    quorum contains ``i``, and the strategy's load is the maximum over
    elements.
    """
    total = sum(weights.values())
    if total <= 0:
        raise ValueError("strategy weights must have positive total mass")
    element_load = {e: 0.0 for e in system.universe}
    for quorum, weight in weights.items():
        for e in quorum:
            element_load[e] += weight / total
    return max(element_load.values())


def uniform_strategy_load(system: QuorumSystem) -> float:
    """Load of the strategy picking a (minimal) quorum uniformly at random."""
    quorums = list(system.quorums())
    return load_of_strategy(system, {q: 1.0 for q in quorums})


def optimal_load(system: QuorumSystem) -> float:
    """System load ``L(S)``: the minimum achievable busiest-element load.

    Solved as a linear program over quorum-picking strategies using
    ``scipy.optimize.linprog`` when scipy is available; falls back to the
    uniform-strategy upper bound otherwise.
    """
    quorums = list(system.quorums())
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return uniform_strategy_load(system)

    elements = sorted(system.universe)
    m = len(quorums)
    # Variables: strategy probabilities w_1..w_m plus the load bound L.
    # Minimize L subject to sum_j [i in Q_j] w_j <= L, sum w_j = 1, w >= 0.
    c = [0.0] * m + [1.0]
    a_ub = []
    b_ub = []
    for e in elements:
        row = [1.0 if e in q else 0.0 for q in quorums] + [-1.0]
        a_ub.append(row)
        b_ub.append(0.0)
    a_eq = [[1.0] * m + [0.0]]
    b_eq = [1.0]
    bounds = [(0.0, None)] * m + [(0.0, None)]
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds)
    if not result.success:  # pragma: no cover - defensive
        return uniform_strategy_load(system)
    return float(result.x[-1])


# -- probe-centric summary -------------------------------------------------------------


def system_summary(system: QuorumSystem, p: float = 0.5) -> dict[str, float]:
    """A compact metric card for a (small) quorum system.

    Includes quorum statistics, exact availability at ``p`` and the optimal
    load.  Only usable where quorum enumeration is feasible.
    """
    stats = quorum_size_statistics(system)
    stats["availability_Fp"] = availability_exact(system, p)
    stats["load"] = optimal_load(system)
    stats["n"] = float(system.n)
    return stats


def minimal_quorum_size_lower_bound(system: QuorumSystem, p: float) -> float:
    """The generic lower bound of Lemma 3.1 on ``PPC_p``.

    ``2c − Θ(√c)`` at ``p = 1/2`` (here instantiated as ``2c − 2√c``) and
    ``c / q`` for ``p < 1/2``, where ``c`` is the minimal quorum size.
    """
    _check_probability(p)
    c = system.min_quorum_size()
    q = 1.0 - p
    if math.isclose(p, 0.5):
        return 2.0 * c - 2.0 * math.sqrt(c)
    if p < 0.5:
        return c / q
    # For p > 1/2 the roles of the colors swap (Fact 2.3(2)).
    return c / p


def elements_of(systems: Iterable[QuorumSystem]) -> dict[str, int]:
    """Universe sizes of a collection of systems, keyed by name."""
    return {s.name: s.n for s in systems}
