"""Compiled kernel backend: numba-jitted fused loops over packed planes.

The bitpacked backend (:mod:`repro.core.bitpacked`) already evaluates 64
trials per ``uint64`` word, but its bit-sliced counters live in Python
lists of numpy arrays: every ripple-carry step and every full-adder plane
is a separate numpy dispatch.  ``BENCH_2026-08-08.json`` shows where that
ceiling bites — ProbeMaj (few planes, wide words) reaches ~21x over numpy
while ProbeCW/Tree/HQS sit at 1.6–2.7x because their adder chains issue
hundreds of tiny array ops per chunk.  This module fuses each algorithm's
whole recurrence — probe-order scan, wall-row mode scan, tree/HQS gate
levels, carry-save adders and the final per-trial unpack — into **one
loop per kernel** over scalar ``uint64`` words, and compiles that loop
with ``numba.njit(cache=True)``.

The kernels operate on the same :class:`~repro.core.bitpacked.PackedColorings`
layout as the bitpacked backend (bit ``t`` of ``words[w, e]`` is trial
``64 * w + t``'s red bit for element ``e + 1``) and reproduce the numpy
kernels' per-trial probe counts and witness colors exactly — integer
arithmetic in all three backends — so probe-count histograms are
bit-identical across ``numpy`` / ``bitpacked`` / ``compiled`` under every
chunk size, ``jobs=N`` and distributed split, which
``tests/core/test_compiled.py`` pins.

numba is an *optional* dependency, gated on
``importlib.util.find_spec("numba")``:

* with numba, the loop bodies are jitted on first call (``cache=True``
  persists the machine code across processes);
* without numba, the loop bodies below remain plain Python functions.
  They stay registered (so the registry can describe them and tests can
  exercise their bit-exact semantics on tiny batches), but
  :func:`repro.core.batched.resolve_backend` refuses ``backend="compiled"``
  loudly and the ``auto`` policy falls through to ``bitpacked``.

Randomized algorithms keep the numpy path for the same reason as the
bitpacked backend: their per-trial permutation draws have no packed
formulation that preserves the sequential RNG contract.
"""

from __future__ import annotations

import importlib.util
from typing import TYPE_CHECKING

import numpy as np

from repro.algorithms.crumbling_walls import ProbeCW
from repro.algorithms.hqs import ProbeHQS
from repro.algorithms.majority import ProbeMaj
from repro.algorithms.tree import ProbeTree
from repro.core.batched import kernel_scratch, register_kernel

if TYPE_CHECKING:  # runtime import would be circular: bitpacked imports
    from repro.core.bitpacked import PackedColorings  # batched imports here

#: True when numba is importable; the compiled backend is only *resolvable*
#: (``resolve_backend``) in that case.  The kernels below are importable and
#: registered either way.
NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

if NUMBA_AVAILABLE:  # pragma: no cover - exercised by the optional CI job
    from numba import njit

    def _jit(func):
        """numba's nopython JIT with on-disk caching (one warmup per machine)."""
        return njit(cache=True)(func)

else:

    def _jit(func):
        """numba absent: leave the loop as plain Python (tests only — the
        resolver never routes production runs here)."""
        return func


# Scalar uint64 constants: module-level numpy scalars are frozen into the
# jitted code as constants, and behave identically (wrap-around, logical
# shifts) when the loops run as plain Python.
_ZERO = np.uint64(0)
_ONE = np.uint64(1)
_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)


def _probe_width(n: int) -> int:
    """Bit-planes needed for a probe counter that never exceeds ``n``."""
    return int(n).bit_length() + 1


# -- fused loops ------------------------------------------------------------------
#
# Each loop processes one 64-trial word at a time with scalar uint64
# arithmetic: per-lane counters are little-endian bit-sliced integers held
# in small uint64 arrays, exactly as in bitpacked.py, but every carry chain
# is a register-level loop instead of a numpy dispatch.  Outputs are
# written per-trial directly (probe counts and witness colors), fusing the
# final unpack into the same pass.


@_jit
def _maj_loop(words, valid, columns, target, width, probe_width, trials, probes_out, witness_out):
    n_words = words.shape[0]
    offset = (_ONE << np.uint64(width)) - np.uint64(target)
    red = np.empty(width, np.uint64)
    green = np.empty(width, np.uint64)
    probe_planes = np.empty(probe_width, np.uint64)
    for w in range(n_words):
        active = valid[w]
        for i in range(width):
            if (offset >> np.uint64(i)) & _ONE:
                red[i] = _FULL
                green[i] = _FULL
            else:
                red[i] = _ZERO
                green[i] = _ZERO
        for i in range(probe_width):
            probe_planes[i] = _ZERO
        witness = _ZERO
        for k in range(columns.shape[0]):
            if active == _ZERO:
                break
            bits = words[w, columns[k]]
            carry = active
            i = 0
            while carry != _ZERO:
                tmp = probe_planes[i]
                probe_planes[i] = tmp ^ carry
                carry = tmp & carry
                i += 1
            carry = bits & active
            for i in range(width):
                tmp = red[i]
                red[i] = tmp ^ carry
                carry = tmp & carry
            red_fire = carry
            carry = (~bits) & active
            for i in range(width):
                tmp = green[i]
                green[i] = tmp ^ carry
                carry = tmp & carry
            green_fire = carry
            witness |= green_fire
            active = active & ~(red_fire | green_fire)
        base = 64 * w
        lanes = trials - base
        if lanes > 64:
            lanes = 64
        for t in range(lanes):
            tu = np.uint64(t)
            count = 0
            for i in range(probe_width):
                count += int((probe_planes[i] >> tu) & _ONE) << i
            probes_out[base + t] = count
            witness_out[base + t] = ((witness >> tu) & _ONE) != _ZERO


@_jit
def _cw_loop(words, valid, row_cols, row_offsets, probe_width, trials, probes_out, witness_out):
    n_words = words.shape[0]
    n_rows = row_offsets.shape[0] - 1
    probe_planes = np.empty(probe_width, np.uint64)
    for w in range(n_words):
        v = valid[w]
        mode_red = words[w, row_cols[row_offsets[0]]]
        for i in range(probe_width):
            probe_planes[i] = _ZERO
        carry = v  # the width-1 top row costs one probe in every lane
        i = 0
        while carry != _ZERO:
            tmp = probe_planes[i]
            probe_planes[i] = tmp ^ carry
            carry = tmp & carry
            i += 1
        for r in range(1, n_rows):
            still = v
            for k in range(row_offsets[r], row_offsets[r + 1]):
                carry = still
                i = 0
                while carry != _ZERO:
                    tmp = probe_planes[i]
                    probe_planes[i] = tmp ^ carry
                    carry = tmp & carry
                    i += 1
                matches_mode = ~(words[w, row_cols[k]] ^ mode_red)
                still = still & ~matches_mode
                if still == _ZERO:
                    break
            mode_red = mode_red ^ still  # flip lanes with no mode-colored element
        witness = (~mode_red) & v
        base = 64 * w
        lanes = trials - base
        if lanes > 64:
            lanes = 64
        for t in range(lanes):
            tu = np.uint64(t)
            count = 0
            for i in range(probe_width):
                count += int((probe_planes[i] >> tu) & _ONE) << i
            probes_out[base + t] = count
            witness_out[base + t] = ((witness >> tu) & _ONE) != _ZERO


@_jit
def _tree_loop(words, valid, height, probe_width, trials, probes_out, witness_out):
    n_words = words.shape[0]
    first = 1 << height
    value = np.empty(first, np.uint64)
    cost = np.empty((first, probe_width), np.uint64)
    for w in range(n_words):
        for j in range(first):
            value[j] = words[w, first - 1 + j]
            cost[j, 0] = _FULL  # every leaf costs exactly one probe
            for b in range(1, probe_width):
                cost[j, b] = _ZERO
        for depth in range(height - 1, -1, -1):
            lo = 1 << depth
            for g in range(lo):
                elem = words[w, lo - 1 + g]
                left_v = value[2 * g]
                right_v = value[2 * g + 1]
                right_matches = ~(right_v ^ elem)
                not_matches = ~right_matches
                # cost[g] = cost[right] + cost[left if right disagreed] + 1
                carry = _ZERO
                for b in range(probe_width):
                    x = cost[2 * g + 1, b]
                    y = cost[2 * g, b] & not_matches
                    cost[g, b] = x ^ y ^ carry
                    carry = (x & y) | (carry & (x ^ y))
                carry = _FULL
                for b in range(probe_width):
                    tmp = cost[g, b]
                    cost[g, b] = tmp ^ carry
                    carry = tmp & carry
                    if carry == _ZERO:
                        break
                value[g] = (right_matches & elem) | (not_matches & left_v)
        witness = (~value[0]) & valid[w]
        base = 64 * w
        lanes = trials - base
        if lanes > 64:
            lanes = 64
        for t in range(lanes):
            tu = np.uint64(t)
            count = 0
            for i in range(probe_width):
                count += int((cost[0, i] >> tu) & _ONE) << i
            probes_out[base + t] = count
            witness_out[base + t] = ((witness >> tu) & _ONE) != _ZERO


@_jit
def _hqs_loop(words, valid, height, probe_width, trials, probes_out, witness_out):
    n_words = words.shape[0]
    n = words.shape[1]
    value = np.empty(n, np.uint64)
    cost = np.empty((n, probe_width), np.uint64)
    acc = np.empty(probe_width, np.uint64)
    for w in range(n_words):
        for j in range(n):
            value[j] = words[w, j]
            cost[j, 0] = _FULL  # every leaf costs exactly one probe
            for b in range(1, probe_width):
                cost[j, b] = _ZERO
        size = n
        for _ in range(height):
            gates = size // 3
            for g in range(gates):
                a = value[3 * g]
                b_v = value[3 * g + 1]
                c = value[3 * g + 2]
                agree = ~(a ^ b_v)
                disagree = ~agree
                # cost[g] = cost[c1] + cost[c2] + cost[c3 if c1, c2 disagreed]
                carry = _ZERO
                for b in range(probe_width):
                    x = cost[3 * g, b]
                    y = cost[3 * g + 1, b]
                    acc[b] = x ^ y ^ carry
                    carry = (x & y) | (carry & (x ^ y))
                carry = _ZERO
                for b in range(probe_width):
                    x = acc[b]
                    y = cost[3 * g + 2, b] & disagree
                    cost[g, b] = x ^ y ^ carry
                    carry = (x & y) | (carry & (x ^ y))
                value[g] = (agree & a) | (disagree & c)
            size = gates
        witness = (~value[0]) & valid[w]
        base = 64 * w
        lanes = trials - base
        if lanes > 64:
            lanes = 64
        for t in range(lanes):
            tu = np.uint64(t)
            count = 0
            for i in range(probe_width):
                count += int((cost[0, i] >> tu) & _ONE) << i
            probes_out[base + t] = count
            witness_out[base + t] = ((witness >> tu) & _ONE) != _ZERO


# -- kernel wrappers --------------------------------------------------------------


def _outputs(trials: int) -> tuple[np.ndarray, np.ndarray]:
    return np.zeros(trials, dtype=np.int64), np.zeros(trials, dtype=bool)


def compiled_probe_maj_kernel(algorithm, packed: PackedColorings, rng=None):
    """Algorithm Probe_Maj as one fused compiled loop per 64-trial word."""
    scratch = kernel_scratch(algorithm)
    columns = scratch.get("maj_columns_i64")
    if columns is None:
        columns = np.asarray(algorithm.order, dtype=np.int64) - 1
        scratch["maj_columns_i64"] = columns
    target = algorithm.system.quorum_size
    probes, witness = _outputs(packed.trials)
    _maj_loop(
        packed.words,
        packed.valid_mask(),
        columns,
        target,
        target.bit_length(),
        _probe_width(packed.n),
        packed.trials,
        probes,
        witness,
    )
    return probes, witness


def compiled_probe_cw_kernel(algorithm, packed: PackedColorings, rng=None):
    """Algorithm Probe_CW as one fused compiled loop per 64-trial word."""
    if algorithm.randomized:
        raise ValueError(
            "the compiled Probe_CW kernel supports the deterministic "
            "in-row order only"
        )
    from repro.core.batched import _cw_row_columns

    scratch = kernel_scratch(algorithm)
    flat = scratch.get("cw_flat_rows")
    if flat is None:
        row_columns = _cw_row_columns(algorithm)
        row_cols = np.concatenate(row_columns).astype(np.int64)
        row_offsets = np.zeros(len(row_columns) + 1, dtype=np.int64)
        np.cumsum([c.size for c in row_columns], out=row_offsets[1:])
        flat = (row_cols, row_offsets)
        scratch["cw_flat_rows"] = flat
    row_cols, row_offsets = flat
    probes, witness = _outputs(packed.trials)
    _cw_loop(
        packed.words,
        packed.valid_mask(),
        row_cols,
        row_offsets,
        _probe_width(packed.n),
        packed.trials,
        probes,
        witness,
    )
    return probes, witness


def compiled_probe_tree_kernel(algorithm, packed: PackedColorings, rng=None):
    """Algorithm Probe_Tree as one fused compiled loop per 64-trial word."""
    probes, witness = _outputs(packed.trials)
    _tree_loop(
        packed.words,
        packed.valid_mask(),
        algorithm.system.height,
        _probe_width(packed.n),
        packed.trials,
        probes,
        witness,
    )
    return probes, witness


def compiled_probe_hqs_kernel(algorithm, packed: PackedColorings, rng=None):
    """Algorithm Probe_HQS as one fused compiled loop per 64-trial word."""
    probes, witness = _outputs(packed.trials)
    _hqs_loop(
        packed.words,
        packed.valid_mask(),
        algorithm.system.height,
        _probe_width(packed.n),
        packed.trials,
        probes,
        witness,
    )
    return probes, witness


def run_compiled(
    algorithm, packed: PackedColorings, rng=None
) -> tuple[np.ndarray, np.ndarray]:
    """Run every packed trial through the algorithm's compiled kernel.

    Same ``(probes, witness_green)`` contract as
    :func:`repro.core.bitpacked.run_packed`.  Callable without numba (the
    loops run as plain Python — orders of magnitude slower, fine for
    tests); production dispatch goes through ``resolve_backend``, which
    requires numba before handing out ``"compiled"``.
    """
    from repro.core.batched import kernel_for

    if packed.n != algorithm.system.n:
        raise ValueError(
            f"packed batch has n={packed.n}, algorithm expects n={algorithm.system.n}"
        )
    kernel = kernel_for(algorithm, backend="compiled")
    if kernel is None:
        raise TypeError(f"no compiled kernel for {algorithm.name}")
    return kernel(algorithm, packed, rng)


register_kernel(ProbeMaj, compiled_probe_maj_kernel, backend="compiled")
register_kernel(ProbeCW, compiled_probe_cw_kernel, backend="compiled")
register_kernel(ProbeTree, compiled_probe_tree_kernel, backend="compiled")
register_kernel(ProbeHQS, compiled_probe_hqs_kernel, backend="compiled")
