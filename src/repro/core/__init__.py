"""Probe-complexity core: colorings, oracles, witnesses, strategy trees,
exact optimal solvers and Monte-Carlo estimators."""

from repro.core.coloring import (
    GREEN,
    RED,
    Color,
    Coloring,
    ColoringDistribution,
    WeightedColoring,
    enumerate_colorings,
    enumerate_colorings_with_reds,
)
from repro.core.estimator import (
    Estimate,
    WorstCaseEstimate,
    estimate_average_probes,
    estimate_average_under,
    estimate_expected_probes_on,
    estimate_worst_case_expected,
)
from repro.core.exact import (
    ExactSolver,
    permutation_algorithm_worst_expected,
    probabilistic_probe_complexity,
    probe_complexity,
    yao_lower_bound,
)
from repro.core.metrics import (
    availability_exact,
    availability_monte_carlo,
    check_availability_identity,
    is_uniform,
    minimal_quorum_size_lower_bound,
    optimal_load,
    quorum_size_statistics,
    system_summary,
    uniform_strategy_load,
)
from repro.core.oracle import ColoringOracle, ProbeBudgetExceeded, ProbeOracle, RecordingOracle
from repro.core.strategy_tree import (
    Leaf,
    ProbeNode,
    StrategyTree,
    strategy_tree_from_algorithm,
)
from repro.core.witness import InvalidWitnessError, Witness, reference_witness

__all__ = [
    "GREEN",
    "RED",
    "Color",
    "Coloring",
    "ColoringDistribution",
    "WeightedColoring",
    "enumerate_colorings",
    "enumerate_colorings_with_reds",
    "Estimate",
    "WorstCaseEstimate",
    "estimate_average_probes",
    "estimate_average_under",
    "estimate_expected_probes_on",
    "estimate_worst_case_expected",
    "ExactSolver",
    "permutation_algorithm_worst_expected",
    "probabilistic_probe_complexity",
    "probe_complexity",
    "yao_lower_bound",
    "availability_exact",
    "availability_monte_carlo",
    "check_availability_identity",
    "is_uniform",
    "minimal_quorum_size_lower_bound",
    "optimal_load",
    "quorum_size_statistics",
    "system_summary",
    "uniform_strategy_load",
    "ColoringOracle",
    "ProbeBudgetExceeded",
    "ProbeOracle",
    "RecordingOracle",
    "Leaf",
    "ProbeNode",
    "StrategyTree",
    "strategy_tree_from_algorithm",
    "InvalidWitnessError",
    "Witness",
    "reference_witness",
]
