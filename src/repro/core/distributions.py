"""Unified coloring sources: one distribution abstraction, batched sampling.

The paper evaluates probe complexity under several input regimes — i.i.d.
Bernoulli failures, exact-count and adversarial red sets, and the Section-4
Yao hard distributions — and the repo historically grew a separate
representation for each ("where do colorings come from"): the scalar
:class:`~repro.core.coloring.ColoringDistribution`, the
:class:`~repro.simulation.failures.FailureModel` hierarchy, the i.i.d.-only
matrix samplers and the ad-hoc ``*_hard_matrix`` functions.  Only the
i.i.d. model could reach the vectorized kernels of
:mod:`repro.core.batched`.

This module unifies them behind one protocol:

* :class:`ColoringSource` — a distribution over colorings of a fixed
  universe with **both** a scalar ``sample(rng) -> Coloring`` and a batched
  ``sample_matrix(n, trials, rng) -> (trials, n) bool ndarray`` (the native
  input of the batched kernels).  ``rng`` is anything
  :func:`~repro.core.coloring.as_numpy_generator` accepts — ``None``, an
  int seed, a ``random.Random``, a numpy ``Generator`` or a per-cell
  stream from :mod:`repro.core.seeding`.
* concrete sources for every failure scenario the repo knows: Bernoulli
  (the single i.i.d. sampler implementation — ``Coloring.random_batch``
  and ``repro.core.batched.sample_red_matrix`` both delegate here),
  exact-count, correlated whole-group failures, fixed adversarial sets and
  finite explicit distributions (vectorized CDF inversion).  The Yao/HQS
  hard families register their sources from :mod:`repro.analysis.yao` and
  :mod:`repro.experiments.hqs`.
* a name-keyed registry mirroring
  :func:`repro.core.batched.register_kernel` and
  :func:`repro.systems.factory.register_system_builder`: a factory
  ``(system, p) -> ColoringSource`` per name, so experiment drivers, the
  sweep runner and the CLI resolve ``distribution="fixed_count"``-style
  parameters uniformly.  ``p`` is the scenario's intensity knob — failure
  probability for Bernoulli, ``round(p * n)`` failures for exact-count and
  adversarial sources, the group-failure probability for correlated groups
  — so one ``(p, size)`` grid sweeps any registered scenario.

Making a new failure scenario batched-fast everywhere is now a
:func:`register_source` call away.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.coloring import Coloring, ColoringDistribution, as_numpy_generator


def sample_bernoulli_matrix(n: int, p: float, trials: int, rng=None) -> np.ndarray:
    """Sample ``trials`` i.i.d. colorings as a ``(trials, n)`` bool matrix.

    The canonical i.i.d. matrix sampler: ``Coloring.random_batch`` and
    ``repro.core.batched.sample_red_matrix`` are aliases of this function,
    which keeps the RNG consumption (one uniform per matrix entry)
    identical across every historical call site.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"failure probability must be in [0, 1], got {p}")
    if trials < 0:
        raise ValueError("batch size must be nonnegative")
    return as_numpy_generator(rng).random((trials, n)) < p


class ColoringSource(ABC):
    """A distribution over colorings of a fixed universe ``{1..n}``.

    Subclasses implement :meth:`_sample_matrix`; the public
    :meth:`sample_matrix` validates the universe size and coerces ``rng``.
    The default scalar :meth:`sample` draws a one-row matrix, so every
    source is automatically usable by per-trial consumers (the sequential
    estimators, the simulated cluster); sources with a cheaper scalar draw
    override it.
    """

    #: Registry-style label recorded in artifacts (subclasses override).
    name: str = "source"

    @property
    @abstractmethod
    def n(self) -> int:
        """Size of the universe the source draws over."""

    @property
    def uniforms_per_trial(self) -> int | None:
        """Base uniforms ``_sample_matrix`` consumes per trial, when fixed.

        The streaming engine (:mod:`repro.core.engine`) uses this to give
        every *trial* — not every chunk — its own position in one
        ``PCG64`` stream, which makes chunked sampling byte-identical to a
        one-shot ``sample_matrix`` call regardless of chunk boundaries.
        Return ``None`` (the default) when the consumption is unknown or
        data-dependent (e.g. bounded-``integers`` rejection sampling); the
        engine then falls back to per-chunk streams.
        """
        return None

    @abstractmethod
    def _sample_matrix(self, trials: int, generator: np.random.Generator) -> np.ndarray:
        """Draw ``trials`` colorings as a ``(trials, n)`` bool red matrix."""

    def sample_matrix(self, n: int, trials: int, rng=None) -> np.ndarray:
        """Draw ``trials`` colorings as a ``(trials, n)`` bool red matrix.

        ``n`` must match the source's universe — call sites pass their
        system's size, so a source/system mismatch fails loudly instead of
        producing a silently misshapen batch.
        """
        if n != self.n:
            raise ValueError(
                f"{self.name} source draws over n={self.n}, "
                f"but a matrix for n={n} was requested"
            )
        if trials < 0:
            raise ValueError("batch size must be nonnegative")
        return self._sample_matrix(trials, as_numpy_generator(rng))

    def sample(self, rng=None) -> Coloring:
        """Draw one coloring."""
        return Coloring.from_red_row(self.sample_matrix(self.n, 1, rng)[0])


class BernoulliSource(ColoringSource):
    """The paper's probabilistic model: each element red with probability ``p``."""

    name = "bernoulli"

    def __init__(self, n: int, p: float) -> None:
        if n < 0:
            raise ValueError(f"universe size must be nonnegative, got {n}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"failure probability must be in [0, 1], got {p}")
        self._n = n
        self._p = p

    @property
    def n(self) -> int:
        return self._n

    @property
    def p(self) -> float:
        return self._p

    @property
    def uniforms_per_trial(self) -> int:
        return self._n

    def _sample_matrix(self, trials, generator):
        return generator.random((trials, self._n)) < self._p

    def sample(self, rng=None) -> Coloring:
        generator = as_numpy_generator(rng)
        return Coloring.from_red_row(generator.random(self._n) < self._p)


class FixedCountSource(ColoringSource):
    """Exactly ``count`` uniformly chosen elements are red.

    This is the Theorem 4.2 hard-distribution shape (``count = k + 1`` on
    Majority) and the exact-count failure scenario.  The batched draw keys
    every element with an i.i.d. uniform and marks the ``count`` smallest
    keys per row red (``argpartition``, O(n) per row).
    """

    name = "fixed_count"

    def __init__(self, n: int, count: int) -> None:
        if not 0 <= count <= n:
            raise ValueError(f"red count {count} outside 0..{n}")
        self._n = n
        self._count = count

    @property
    def n(self) -> int:
        return self._n

    @property
    def count(self) -> int:
        return self._count

    @property
    def uniforms_per_trial(self) -> int:
        # The degenerate counts return without touching the generator.
        return 0 if self._count in (0, self._n) else self._n

    def _sample_matrix(self, trials, generator):
        red = np.zeros((trials, self._n), dtype=bool)
        if self._count == 0 or trials == 0:
            return red
        if self._count == self._n:
            red[:] = True
            return red
        keys = generator.random((trials, self._n))
        chosen = np.argpartition(keys, self._count - 1, axis=1)[:, : self._count]
        np.put_along_axis(red, chosen, True, axis=1)
        return red

    def sample(self, rng=None) -> Coloring:
        generator = as_numpy_generator(rng)
        row = np.zeros(self._n, dtype=bool)
        row[generator.permutation(self._n)[: self._count]] = True
        return Coloring.from_red_row(row)


class CorrelatedGroupsSource(ColoringSource):
    """Whole groups of elements fail together, each with probability ``group_p``.

    The batched draw is one Bernoulli per ``(trial, group)`` expanded
    through a group-membership matrix (a BLAS matmul), so correlated
    scenarios cost barely more than i.i.d. ones.  Elements outside every
    group never fail.
    """

    name = "correlated_groups"

    def __init__(self, n: int, groups: Iterable[Iterable[int]], group_p: float) -> None:
        if not 0.0 <= group_p <= 1.0:
            raise ValueError(
                f"group failure probability must be in [0, 1], got {group_p}"
            )
        self._n = n
        self._groups = [frozenset(group) for group in groups]
        self._group_p = group_p
        membership = np.zeros((len(self._groups), n), dtype=np.float32)
        for index, group in enumerate(self._groups):
            for element in group:
                if not 1 <= element <= n:
                    raise ValueError(
                        f"group element {element} outside universe 1..{n}"
                    )
                membership[index, element - 1] = 1.0
        self._membership = membership

    @property
    def n(self) -> int:
        return self._n

    @property
    def groups(self) -> list[frozenset[int]]:
        return list(self._groups)

    @property
    def group_p(self) -> float:
        return self._group_p

    @property
    def uniforms_per_trial(self) -> int:
        return len(self._groups)

    def _sample_matrix(self, trials, generator):
        if not self._groups:
            return np.zeros((trials, self._n), dtype=bool)
        fails = generator.random((trials, len(self._groups))) < self._group_p
        return (fails.astype(np.float32) @ self._membership) > 0.5

    def sample(self, rng=None) -> Coloring:
        generator = as_numpy_generator(rng)
        if not self._groups:
            return Coloring.all_green(self._n)
        fails = generator.random(len(self._groups)) < self._group_p
        row = (fails.astype(np.float32) @ self._membership) > 0.5
        return Coloring.from_red_row(row)


class AdversarialSource(ColoringSource):
    """A fixed, adversarially chosen red set (the worst-case model)."""

    name = "adversarial"

    def __init__(self, n: int, failed: Iterable[int]) -> None:
        self._n = n
        self._failed = frozenset(failed)
        row = np.zeros(n, dtype=bool)
        for element in self._failed:
            if not 1 <= element <= n:
                raise ValueError(f"failed element {element} outside universe 1..{n}")
            row[element - 1] = True
        self._row = row
        self._coloring = Coloring(n, self._failed)

    @property
    def n(self) -> int:
        return self._n

    @property
    def failed(self) -> frozenset[int]:
        return self._failed

    @property
    def uniforms_per_trial(self) -> int:
        return 0

    def _sample_matrix(self, trials, generator):
        return np.tile(self._row, (trials, 1))

    def sample(self, rng=None) -> Coloring:
        return self._coloring


class FiniteSource(ColoringSource):
    """A finite explicit distribution, sampled by vectorized CDF inversion.

    Wraps a :class:`~repro.core.coloring.ColoringDistribution` (the
    Yao-style small-system representation): the support is packed once
    into a ``(support, n)`` bool matrix and batches are drawn with one
    ``searchsorted`` over the precomputed CDF — O(log support) per trial
    instead of the scalar path's linear scan of old.
    """

    name = "finite"

    def __init__(self, distribution: ColoringDistribution) -> None:
        self._distribution = distribution
        self._n = distribution.n
        support = distribution.support
        self._support = support
        rows = np.zeros((len(support), self._n), dtype=bool)
        for index, weighted in enumerate(support):
            for element in weighted.coloring.red_elements:
                rows[index, element - 1] = True
        self._rows = rows
        self._cdf_list = distribution.cdf
        self._cdf = np.asarray(self._cdf_list, dtype=np.float64)

    @property
    def n(self) -> int:
        return self._n

    @property
    def distribution(self) -> ColoringDistribution:
        return self._distribution

    @property
    def uniforms_per_trial(self) -> int:
        return 1

    def _sample_matrix(self, trials, generator):
        draws = generator.random(trials)
        indices = np.searchsorted(self._cdf, draws, side="left")
        indices = np.minimum(indices, len(self._cdf) - 1)
        return self._rows[indices]

    def sample(self, rng=None) -> Coloring:
        generator = as_numpy_generator(rng)
        index = bisect_left(self._cdf_list, float(generator.random()))
        return self._support[min(index, len(self._cdf_list) - 1)].coloring


# -- registry ---------------------------------------------------------------------


@dataclass(frozen=True)
class SourceSpec:
    """A registered coloring-source family: name, factory, description.

    The factory receives the quorum system the experiment runs on and the
    intensity knob ``p`` (the grid's failure-probability axis) and returns
    a ready :class:`ColoringSource` for that system's universe.
    """

    name: str
    factory: Callable[[Any, float], ColoringSource]
    description: str = ""
    aliases: tuple[str, ...] = field(default=())


_SOURCES: dict[str, SourceSpec] = {}
_ALIASES: dict[str, str] = {}
_DEFAULTS_LOADED = False


def register_source(
    name: str,
    factory: Callable[[Any, float], ColoringSource],
    description: str = "",
    aliases: tuple[str, ...] = (),
) -> SourceSpec:
    """Register a coloring-source factory under ``name`` (plus ``aliases``).

    Mirrors :func:`repro.systems.factory.register_system_builder`:
    duplicate names are an error, lookups are case-insensitive.
    """
    key = name.lower()
    if key in _SOURCES or key in _ALIASES:
        raise ValueError(f"coloring source {name!r} already registered")
    alias_keys = []
    for alias in aliases:
        alias_key = alias.lower()
        if alias_key == key or alias_key in alias_keys:
            raise ValueError(f"coloring-source alias {alias!r} duplicates the name")
        if alias_key in _SOURCES or alias_key in _ALIASES:
            raise ValueError(f"coloring-source alias {alias!r} already registered")
        alias_keys.append(alias_key)
    # All keys validated before any mutation: a rejected registration
    # leaves the registry untouched.
    spec = SourceSpec(name=key, factory=factory, description=description, aliases=aliases)
    _SOURCES[key] = spec
    for alias_key in alias_keys:
        _ALIASES[alias_key] = key
    return spec


def _ensure_default_sources() -> None:
    """Load the hard-family registrations exactly once (import side effect).

    The Yao / HQS hard distributions live in higher layers
    (:mod:`repro.analysis.yao`, :mod:`repro.experiments.hqs`) and register
    themselves on import, exactly like the default
    :class:`~repro.experiments.registry.ExperimentSpec` registrations.
    """
    global _DEFAULTS_LOADED
    if not _DEFAULTS_LOADED:
        _DEFAULTS_LOADED = True
        import repro.analysis.yao  # noqa: F401  (registers on import)
        import repro.experiments.hqs  # noqa: F401  (registers on import)


def source_specs() -> tuple[SourceSpec, ...]:
    """Every registered source family, sorted by name."""
    _ensure_default_sources()
    return tuple(_SOURCES[key] for key in sorted(_SOURCES))


def source_names() -> tuple[str, ...]:
    """The sorted registered source names."""
    return tuple(spec.name for spec in source_specs())


def canonical_source_name(name: str) -> str:
    """Resolve ``name`` (any case, possibly an alias) to its registered name.

    Consumers that special-case a source — e.g. "does the paper bound
    apply", which is a statement about ``bernoulli`` — must compare
    canonical names, not raw strings, so aliases like ``iid`` behave
    identically to the name they resolve to.
    """
    _ensure_default_sources()
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _SOURCES:
        raise ValueError(
            f"unknown coloring source {name!r}; "
            f"choose from {', '.join(source_names())}"
        )
    return key


def build_source(name: str, system, p: float) -> ColoringSource:
    """Build the registered source ``name`` for ``system`` at intensity ``p``."""
    return _SOURCES[canonical_source_name(name)].factory(system, p)


def require_system(system, cls: type, source_name: str):
    """Shared type guard for sources tied to a system family.

    The hard-distribution factories (Theorems 4.2/4.6/4.8, Lemma 4.11)
    only make sense on their own system class; registry factories call
    this to fail loudly on a mismatched ``--param distribution=...``.
    """
    if not isinstance(system, cls):
        raise ValueError(
            f"the {source_name} source requires a {cls.__name__}, "
            f"got {type(system).__name__}"
        )
    return system


def _scaled_count(system, p: float) -> int:
    """The exact-count knob derived from the grid's ``p`` axis."""
    return min(system.n, max(0, round(p * system.n)))


def _default_groups(system) -> list[frozenset[int]]:
    """Correlated-failure groups for a system.

    Structured systems group naturally (a crumbling-wall row is a rack);
    anything else is split into contiguous blocks of ``~sqrt(n)`` elements.
    ``rows`` is only trusted when it actually is a collection of element
    groups — e.g. ``GridSystem.rows`` is the row *count*, not a grouping.
    """
    rows = getattr(system, "rows", None)
    if isinstance(rows, Iterable) and not isinstance(rows, (str, bytes)):
        rows = list(rows)
        if rows and all(isinstance(row, Iterable) for row in rows):
            return [frozenset(row) for row in rows]
    block = max(1, round(float(system.n) ** 0.5))
    elements = list(range(1, system.n + 1))
    return [
        frozenset(elements[start : start + block])
        for start in range(0, system.n, block)
    ]


register_source(
    "bernoulli",
    lambda system, p: BernoulliSource(system.n, p),
    "i.i.d. failures: every element red with probability p (the paper's model)",
    aliases=("iid",),
)
register_source(
    "fixed_count",
    lambda system, p: FixedCountSource(system.n, _scaled_count(system, p)),
    "exactly round(p*n) uniformly chosen elements fail",
)
register_source(
    "correlated_groups",
    lambda system, p: CorrelatedGroupsSource(system.n, _default_groups(system), p),
    "whole groups (system rows, else ~sqrt(n) blocks) fail together w.p. p",
)
register_source(
    "adversarial",
    lambda system, p: AdversarialSource(
        system.n, range(1, _scaled_count(system, p) + 1)
    ),
    "a fixed adversarial red set: the first round(p*n) elements",
)
