"""Crash-safe persistence: atomic file writes and engine checkpoints.

Two concerns live here because they share one durability primitive:

* :func:`atomic_write_text` / :func:`atomic_write_json` — write-to-temp,
  ``fsync``, then ``os.replace``.  Readers of the target path see either
  the previous complete file or the new complete file, never a torn
  write.  Every artifact writer in the repo (experiment artifacts, sweep
  artifacts, engine checkpoints) goes through these helpers.
* :class:`EngineCheckpoint` — the serialized state of a streaming
  estimation run (:mod:`repro.core.engine`).  Because chunks are keyed by
  ``(seed, start trial)`` and the accumulator is an exact integer
  histogram, the checkpoint is *complete*: resuming from it re-runs only
  the not-yet-merged chunks and produces results byte-identical to an
  uninterrupted run.

Checkpoint loading is strict: a truncated or corrupt file, an unknown
``kind``, a newer schema version, or a missing field all fail with a
message naming the file and the offending field — never a raw
``KeyError``.
"""

from __future__ import annotations

import base64
import json
import logging
import os
import tempfile
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

_logger = logging.getLogger("repro.checkpoint")

#: ``kind`` field of engine checkpoint files.
CHECKPOINT_KIND = "engine_checkpoint"

#: Version of the engine checkpoint JSON schema.
CHECKPOINT_SCHEMA_VERSION = 1


# -- atomic writes ----------------------------------------------------------------


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (tmp + fsync + ``os.replace``).

    A crash at any point leaves either the old file or the new one — a
    half-written temp file is never visible under the target name.
    """
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=destination.parent, prefix=f".{destination.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, destination)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return destination


def atomic_write_json(path: str | Path, payload: Any) -> Path:
    """Serialize ``payload`` as indented JSON and write it atomically."""
    return atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


def remove_stale_tmp(path: str | Path) -> list[Path]:
    """Remove leftover ``.{name}.*.tmp`` siblings of ``path``.

    A crash between :func:`atomic_write_text`'s temp write and its
    ``os.replace`` leaves an orphaned ``.{name}.XXXX.tmp`` next to the
    target — harmless to correctness (readers never see it under the
    target name) but it accumulates forever.  The durable writers
    (:func:`save_engine_checkpoint`, the artifact and journal writers)
    call this before writing; removals are logged so an operator can see
    a crash happened.  Two concurrent writers of the *same* target are
    not supported (the engine enforces one writer per checkpoint), so a
    matching tmp is always stale.
    """
    target = Path(path)
    removed = []
    if not target.parent.is_dir():
        return removed
    for stale in target.parent.glob(f".{target.name}.*.tmp"):
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - raced with another sweep
            continue
        _logger.warning("removed stale temp file left by a crash: %s", stale)
        removed.append(stale)
    return removed


def sweep_stale_tmp(directory: str | Path) -> list[Path]:
    """Remove every ``.*.tmp`` atomic-write leftover in ``directory``.

    The directory-wide variant of :func:`remove_stale_tmp` for startup
    scans of state directories (the service's journal and cache), where
    the crashed writer's target name is not known in advance.
    """
    removed = []
    directory = Path(directory)
    if not directory.is_dir():
        return removed
    for stale in directory.glob(".*.tmp"):
        try:
            stale.unlink()
        except OSError:  # pragma: no cover - raced with another sweep
            continue
        _logger.warning("removed stale temp file left by a crash: %s", stale)
        removed.append(stale)
    return removed


# -- strict payload access --------------------------------------------------------


def required_field(payload: Mapping[str, Any], key: str, path: str | Path) -> Any:
    """``payload[key]``, failing with a message naming the file and field."""
    try:
        return payload[key]
    except KeyError:
        raise ValueError(f"{path}: missing required field {key!r}") from None


def load_json_payload(path: str | Path, kind: str) -> dict[str, Any]:
    """Read a JSON artifact and verify its ``kind``, with clear errors."""
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        raise FileNotFoundError(f"{path}: no such {kind} file") from None
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(
            f"{path}: not a valid {kind} file (truncated or corrupt JSON: {error})"
        ) from None
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: not a valid {kind} file (expected a JSON object)")
    found = payload.get("kind")
    if found != kind:
        raise ValueError(f"{path}: expected kind {kind!r}, found {found!r}")
    return payload


def check_schema_version(
    payload: Mapping[str, Any], current: int, path: str | Path, *, legacy_ok: bool = False
) -> int:
    """Validate the ``schema`` field against the newest version we read."""
    if "schema" not in payload:
        if legacy_ok:
            return 0
        raise ValueError(f"{path}: missing required field 'schema'")
    version = payload["schema"]
    if not isinstance(version, int):
        raise ValueError(f"{path}: schema version must be an integer, got {version!r}")
    if version > current:
        raise ValueError(
            f"{path}: written by schema version {version}, "
            f"but this build reads versions <= {current}"
        )
    return version


# -- engine checkpoints -----------------------------------------------------------


@dataclass(frozen=True)
class EngineCheckpoint:
    """Durable state of one streaming run at a chunk boundary.

    ``next_start`` is the absolute trial index of the first chunk not yet
    merged; every preceding chunk's statistics are folded into
    ``histogram``/``count``/``witness_red``.  The stored configuration
    (``trials``/``target_ci``/``chunk_size``/guards/``entropy``) is the
    *resolved* one, so a resumed run reproduces the exact chunk schedule
    and stopping decisions of the interrupted run.  ``pair_blob`` is the
    pickled ``(algorithm, source)`` pair — optional, but when present a
    checkpoint is fully self-contained and ``repro-probe estimate
    --resume`` needs no other flags.
    """

    entropy: int
    mode: str
    trials: int | None
    target_ci: float | None
    chunk_size: int
    min_trials: int
    max_trials: int
    algorithm: str
    source: str
    n: int
    count: int
    witness_red: int
    histogram: tuple[int, ...]
    chunks_merged: int
    next_start: int
    complete: bool
    pair_blob: bytes | None = None

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "kind": CHECKPOINT_KIND,
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "entropy": self.entropy,
            "mode": self.mode,
            "trials": self.trials,
            "target_ci": self.target_ci,
            "chunk_size": self.chunk_size,
            "min_trials": self.min_trials,
            "max_trials": self.max_trials,
            "algorithm": self.algorithm,
            "source": self.source,
            "n": self.n,
            "count": self.count,
            "witness_red": self.witness_red,
            "histogram": list(self.histogram),
            "chunks_merged": self.chunks_merged,
            "next_start": self.next_start,
            "complete": self.complete,
            "pair_blob": (
                None
                if self.pair_blob is None
                else base64.b64encode(self.pair_blob).decode("ascii")
            ),
        }

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, Any], path: str | Path = "<payload>"
    ) -> "EngineCheckpoint":
        check_schema_version(payload, CHECKPOINT_SCHEMA_VERSION, path)
        field = lambda key: required_field(payload, key, path)  # noqa: E731
        blob = field("pair_blob")
        return cls(
            entropy=int(field("entropy")),
            mode=str(field("mode")),
            trials=None if field("trials") is None else int(payload["trials"]),
            target_ci=(
                None if field("target_ci") is None else float(payload["target_ci"])
            ),
            chunk_size=int(field("chunk_size")),
            min_trials=int(field("min_trials")),
            max_trials=int(field("max_trials")),
            algorithm=str(field("algorithm")),
            source=str(field("source")),
            n=int(field("n")),
            count=int(field("count")),
            witness_red=int(field("witness_red")),
            histogram=tuple(int(c) for c in field("histogram")),
            chunks_merged=int(field("chunks_merged")),
            next_start=int(field("next_start")),
            complete=bool(field("complete")),
            pair_blob=None if blob is None else base64.b64decode(blob),
        )


def save_engine_checkpoint(path: str | Path, state: EngineCheckpoint) -> Path:
    """Write ``state`` durably (atomic replace, fsynced).

    Also sweeps stale ``*.tmp`` leftovers a previous crash may have left
    beside this checkpoint (see :func:`remove_stale_tmp`).
    """
    remove_stale_tmp(path)
    return atomic_write_json(path, state.to_payload())


def load_engine_checkpoint(path: str | Path) -> EngineCheckpoint:
    """Load a checkpoint written by :func:`save_engine_checkpoint`.

    Raises ``ValueError`` with a message naming the file and the missing
    or unreadable field; never a bare ``KeyError``.
    """
    payload = load_json_payload(path, CHECKPOINT_KIND)
    return EngineCheckpoint.from_payload(payload, path)
