"""Probe strategy trees (decision trees) for quorum probing.

The paper describes adaptive probing algorithms by binary rooted trees: each
internal node is labeled with the element to probe next, its two outgoing
edges correspond to the green/red outcome, and each leaf is labeled with the
color of the witness found (Fig. 4 shows the tree for ``Maj3``).

This module provides an explicit tree representation with the three cost
measures of Section 2.3:

* ``depth``                      — worst-case number of probes (PC);
* ``expected_depth(p)``          — expected probes in the probabilistic model
                                   (PPC_p) for this particular tree;
* ``expected_depth_under(dist)`` — expected probes under an arbitrary input
                                   distribution (used in Yao-style bounds).

Trees can be validated against a system (every leaf must be justified by the
probes on its root-to-leaf path) and extracted from any deterministic
probing algorithm by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.core.coloring import Color, Coloring, ColoringDistribution
from repro.core.oracle import ProbeOracle
from repro.systems.base import QuorumSystem
from repro.systems.boolean import CharacteristicFunction


@dataclass(frozen=True)
class Leaf:
    """A leaf of the strategy tree, announcing the witness color."""

    output: Color

    @property
    def is_leaf(self) -> bool:
        return True


@dataclass(frozen=True)
class ProbeNode:
    """An internal node probing ``element`` and branching on the outcome."""

    element: int
    on_green: "StrategyNode"
    on_red: "StrategyNode"

    @property
    def is_leaf(self) -> bool:
        return False

    def child(self, outcome: Color) -> "StrategyNode":
        """The subtree followed when the probe returns ``outcome``."""
        return self.on_green if outcome is Color.GREEN else self.on_red


StrategyNode = Union[Leaf, ProbeNode]


class StrategyTree:
    """A complete probe strategy tree for a quorum system."""

    def __init__(self, system: QuorumSystem, root: StrategyNode) -> None:
        self._system = system
        self._root = root

    @property
    def system(self) -> QuorumSystem:
        return self._system

    @property
    def root(self) -> StrategyNode:
        return self._root

    # -- cost measures ----------------------------------------------------------

    def depth(self) -> int:
        """Worst-case number of probes (the deterministic PC of this tree)."""
        return _depth(self._root)

    def expected_depth(self, p: float) -> float:
        """Expected probes when each element is red with probability ``p``.

        This is the probabilistic probe complexity ``PPC_p`` of this
        particular strategy tree.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"failure probability must be in [0, 1], got {p}")
        return _expected_depth(self._root, p)

    def expected_depth_under(self, distribution: ColoringDistribution) -> float:
        """Expected probes under an explicit distribution over colorings."""
        if distribution.n != self._system.n:
            raise ValueError("distribution universe does not match the system")
        return distribution.expectation(lambda coloring: self.probes_on(coloring))

    def probes_on(self, coloring: Coloring) -> int:
        """Number of probes performed on a specific input coloring."""
        node = self._root
        count = 0
        while not node.is_leaf:
            count += 1
            node = node.child(coloring[node.element])
        return count

    def output_on(self, coloring: Coloring) -> Color:
        """Witness color announced on a specific input coloring."""
        node = self._root
        while not node.is_leaf:
            node = node.child(coloring[node.element])
        return node.output

    # -- structure ---------------------------------------------------------------

    def leaf_count(self) -> int:
        """Number of leaves of the tree."""
        return _leaf_count(self._root)

    def node_count(self) -> int:
        """Number of internal (probe) nodes of the tree."""
        return _node_count(self._root)

    # -- validation ---------------------------------------------------------------

    def validate(self) -> None:
        """Check that every leaf announcement is justified by its path.

        Along the path to a green leaf the elements probed green must contain
        a quorum; along the path to a red leaf the elements probed red must
        form a transversal.  Also checks that no element is probed twice on a
        single path.  Raises ``ValueError`` on any violation.
        """
        f = CharacteristicFunction(self._system)
        _validate(self._root, f, frozenset(), frozenset())

    def is_valid(self) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate()
        except ValueError:
            return False
        return True


# -- recursive helpers ------------------------------------------------------------


def _depth(node: StrategyNode) -> int:
    if node.is_leaf:
        return 0
    return 1 + max(_depth(node.on_green), _depth(node.on_red))


def _expected_depth(node: StrategyNode, p: float) -> float:
    if node.is_leaf:
        return 0.0
    q = 1.0 - p
    return 1.0 + q * _expected_depth(node.on_green, p) + p * _expected_depth(node.on_red, p)


def _leaf_count(node: StrategyNode) -> int:
    if node.is_leaf:
        return 1
    return _leaf_count(node.on_green) + _leaf_count(node.on_red)


def _node_count(node: StrategyNode) -> int:
    if node.is_leaf:
        return 0
    return 1 + _node_count(node.on_green) + _node_count(node.on_red)


def _validate(
    node: StrategyNode,
    f: CharacteristicFunction,
    green: frozenset[int],
    red: frozenset[int],
) -> None:
    if node.is_leaf:
        settled = f.witness_settled(green, red)
        if settled is None:
            raise ValueError(
                f"leaf reached with inconclusive knowledge "
                f"(green={sorted(green)}, red={sorted(red)})"
            )
        if settled is not node.output:
            raise ValueError(
                f"leaf announces {node.output.value} but knowledge implies "
                f"{settled.value}"
            )
        return
    if node.element in green or node.element in red:
        raise ValueError(f"element {node.element} probed twice on one path")
    _validate(node.on_green, f, green | {node.element}, red)
    _validate(node.on_red, f, green, red | {node.element})


# -- building trees from algorithms --------------------------------------------------


class _NeedProbe(Exception):
    """Internal control-flow signal: the simulated algorithm probed an
    element whose color is not yet fixed on the current tree path."""

    def __init__(self, element: int) -> None:
        super().__init__(element)
        self.element = element


class _PartialOracle:
    """Oracle that answers from a fixed partial coloring and raises
    :class:`_NeedProbe` on the first unknown element."""

    def __init__(self, n: int, known: dict[int, Color]) -> None:
        self._n = n
        self._known = known
        self._probed: dict[int, Color] = {}

    @property
    def n(self) -> int:
        return self._n

    def probe(self, element: int) -> Color:
        if not 1 <= element <= self._n:
            raise ValueError(f"element {element} outside universe 1..{self._n}")
        if element not in self._known:
            raise _NeedProbe(element)
        color = self._known[element]
        self._probed[element] = color
        return color

    @property
    def probe_count(self) -> int:
        return len(self._probed)

    @property
    def known(self) -> dict[int, Color]:
        return dict(self._probed)


def strategy_tree_from_algorithm(
    algorithm: Callable[[ProbeOracle], "object"],
    system: QuorumSystem,
    max_nodes: int = 1_000_000,
) -> StrategyTree:
    """Extract the strategy tree of a deterministic probing algorithm.

    ``algorithm`` is any callable taking a probe oracle and returning an
    object with a ``color`` attribute (e.g. a
    :class:`~repro.core.witness.Witness`); it is re-run once per tree path,
    against an oracle that answers from the colors fixed on that path and
    forks the tree at the first unknown probe.  The algorithm must be
    deterministic given the oracle answers.

    The resulting tree has at most ``2^PC`` leaves, so this is intended for
    small systems; ``max_nodes`` guards against runaway extraction.
    """
    counter = {"nodes": 0}

    def build(known: dict[int, Color]) -> StrategyNode:
        oracle = _PartialOracle(system.n, known)
        try:
            result = algorithm(oracle)
        except _NeedProbe as need:
            counter["nodes"] += 1
            if counter["nodes"] > max_nodes:
                raise RuntimeError(
                    f"strategy tree exceeds {max_nodes} nodes; "
                    "system too large for explicit extraction"
                ) from None
            element = need.element
            return ProbeNode(
                element=element,
                on_green=build({**known, element: Color.GREEN}),
                on_red=build({**known, element: Color.RED}),
            )
        return Leaf(result.color)

    return StrategyTree(system, build({}))
