"""Probe oracles: the adaptive-probing interface used by every algorithm.

A probing algorithm interacts with the system only through an oracle: it
names an element, the oracle reveals the element's color, and the probe is
counted.  This mirrors the paper's model, in which an adaptive algorithm
selects the next element to probe based on the outcomes of previous probes.

Two oracle flavours are provided here:

* :class:`ColoringOracle` answers probes from an in-memory
  :class:`~repro.core.coloring.Coloring` — the representation used by all
  complexity experiments.
* :class:`RecordingOracle` wraps another oracle and records the exact probe
  sequence, used by the strategy-tree tools and by tests.

The discrete-event cluster oracle lives in
:mod:`repro.simulation.cluster`; it satisfies the same protocol so the
probing algorithms run unchanged against the simulated distributed system.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.core.coloring import Color, Coloring


class ProbeBudgetExceeded(RuntimeError):
    """Raised when an oracle's probe budget is exhausted."""


@runtime_checkable
class ProbeOracle(Protocol):
    """Protocol implemented by all probe oracles."""

    @property
    def n(self) -> int:
        """Size of the universe."""
        ...

    def probe(self, element: int) -> Color:
        """Reveal (and count) the color of ``element``."""
        ...

    @property
    def probe_count(self) -> int:
        """Number of *distinct* elements probed so far."""
        ...

    @property
    def known(self) -> dict[int, Color]:
        """Colors revealed so far, keyed by element."""
        ...


class ColoringOracle:
    """Oracle answering probes from a fixed coloring.

    Repeated probes of the same element are answered from cache and are not
    counted again — the paper's complexity measure counts probed *elements*.

    Parameters
    ----------
    coloring:
        The ground-truth coloring.
    budget:
        Optional cap on the number of distinct probes; exceeding it raises
        :class:`ProbeBudgetExceeded`.  Used by tests to assert that an
        algorithm respects a claimed bound on every single run.
    """

    def __init__(self, coloring: Coloring, budget: int | None = None) -> None:
        self._coloring = coloring
        self._known: dict[int, Color] = {}
        self._sequence: list[int] = []
        self._budget = budget

    @property
    def n(self) -> int:
        return self._coloring.n

    @property
    def coloring(self) -> Coloring:
        """The underlying ground-truth coloring."""
        return self._coloring

    def probe(self, element: int) -> Color:
        if not 1 <= element <= self._coloring.n:
            raise ValueError(f"element {element} outside universe 1..{self._coloring.n}")
        if element in self._known:
            return self._known[element]
        if self._budget is not None and len(self._known) >= self._budget:
            raise ProbeBudgetExceeded(
                f"probe budget of {self._budget} exhausted before probing {element}"
            )
        color = self._coloring[element]
        self._known[element] = color
        self._sequence.append(element)
        return color

    @property
    def probe_count(self) -> int:
        return len(self._known)

    @property
    def known(self) -> dict[int, Color]:
        return dict(self._known)

    @property
    def sequence(self) -> list[int]:
        """Elements in the order they were (first) probed."""
        return list(self._sequence)

    @property
    def known_green(self) -> frozenset[int]:
        """Elements probed and found green."""
        return frozenset(e for e, c in self._known.items() if c is Color.GREEN)

    @property
    def known_red(self) -> frozenset[int]:
        """Elements probed and found red."""
        return frozenset(e for e, c in self._known.items() if c is Color.RED)


class RecordingOracle:
    """Wrap another oracle and forward probes while recording the sequence."""

    def __init__(self, inner: ProbeOracle) -> None:
        self._inner = inner
        self._sequence: list[int] = []
        self._seen: set[int] = set()

    @property
    def n(self) -> int:
        return self._inner.n

    def probe(self, element: int) -> Color:
        if element not in self._seen:
            self._seen.add(element)
            self._sequence.append(element)
        return self._inner.probe(element)

    @property
    def probe_count(self) -> int:
        return self._inner.probe_count

    @property
    def known(self) -> dict[int, Color]:
        return self._inner.known

    @property
    def sequence(self) -> list[int]:
        """Distinct elements in first-probe order."""
        return list(self._sequence)
