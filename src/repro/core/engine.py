"""Streaming estimation engine: chunked adaptive Monte-Carlo over kernels.

The batched layer (:mod:`repro.core.batched`) evaluates one ``(trials, n)``
matrix per call, which caps trial counts by RAM and fixes precision up
front.  This module drives any (algorithm kernel × coloring source) pair in
fixed-size *trial chunks* instead: each chunk is sampled, run through
:func:`repro.core.batched.batched_or_sequential_run` and folded into an
exact running accumulator, so memory stays ``O(chunk_size · n)`` while the
trial count scales to ``10^7`` and beyond.

Two stopping modes are supported:

* **fixed** — run exactly ``trials`` trials (the default), chunked;
* **target_ci** — keep adding chunks until the normal-approximation 95%
  confidence half-width falls below ``target_ci``, guarded by
  ``min_trials``/``max_trials``.  Near a phase transition (e.g. the
  critical ``p`` of a probe-complexity curve) variance spikes and fixed
  trial counts sized for the hard cell waste work everywhere else; the
  adaptive mode spends trials only where the tolerance demands them.

Accumulation is a mergeable Welford/Chan-style moment accumulator
specialized to the domain: probe counts are small nonnegative integers, so
the engine accumulates an exact probe-count *histogram* per chunk
(:class:`MomentAccumulator`) and derives mean/variance from exact integer
sums.  Merged means are therefore bit-identical no matter how the trials
are chunked or which worker computed which chunk — no floating-point
summation-order drift.

Seeding guarantees (the "seed schedule"):

* Every chunk draws from streams derived only from ``(seed, start)`` where
  ``start`` is the chunk's absolute first trial index — never from which
  worker ran it or how many chunks preceded it.  Sequential and
  ``jobs=N`` runs are therefore byte-identical.
* Sources that declare a fixed RNG consumption per trial
  (:attr:`~repro.core.distributions.ColoringSource.uniforms_per_trial`)
  are sampled *trial-aligned*: the chunk starting at trial ``s`` uses a
  ``PCG64(seed)`` stream advanced by ``s × uniforms_per_trial`` draws, so
  trial ``t`` sees exactly the uniforms it would see in a single one-shot
  ``sample_matrix`` call from ``default_rng(seed)``.  For these sources
  the sampled inputs — and hence the means of algorithms whose kernels
  consume no randomness — are byte-identical to the one-shot batched path
  *and* invariant under the chunk size.
* Sources with data-dependent consumption (the ``integers``-based hard
  families) fall back to a per-chunk spawned stream keyed by ``start``:
  still deterministic and jobs-invariant, but the chunk layout becomes
  part of the schedule.
* Algorithm randomness (randomized kernels, the per-trial fallback) always
  comes from its own per-chunk stream keyed by ``start`` — never from the
  sample stream, so a chunk's algorithm draws cannot correlate with a
  later chunk's inputs.  Randomized algorithms are distribution-identical
  across chunk layouts (same caveat as batched-vs-sequential before).

Chunks shard across a ``ProcessPoolExecutor`` (``jobs > 1``); results are
merged in absolute chunk order and the ``target_ci`` stopping rule is
evaluated after each in-order merge, so speculative chunks computed past
the stopping point are discarded and the parallel stop point equals the
sequential one.

Fault tolerance: execution is organized as *chunk leases*.  A
:class:`ChunkLedger` gives every chunk a bounded retry budget with
exponential backoff; a worker exception re-runs just that chunk, a lost
worker (``BrokenProcessPool``) or an expired per-chunk ``chunk_timeout``
respawns the pool (:meth:`ChunkPool.respawn`) and re-submits only the
unmerged chunks.  Because chunks are keyed by ``(seed, start)`` and merged
in absolute order, a recovered run is byte-identical to a fault-free one.
``checkpoint_path`` serializes the exact-integer accumulator plus the
lease position durably (tmp + fsync + ``os.replace``) every
``checkpoint_every`` merges — and on ``KeyboardInterrupt`` — so
``resume=``/:func:`resume_stream` continues a killed run byte-identically
from the last durable chunk boundary.  The fault paths are exercised, not
just claimed: :mod:`repro.testing.faults` injects worker kills, delays,
kernel errors and interrupts at the ``"chunk"``/``"merge"`` sites wired
into :func:`_run_chunk` and the merge loop.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import time
from collections import OrderedDict
from collections.abc import Iterator
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import contextmanager
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.algorithms.base import ProbingAlgorithm
from repro.core.distributions import BernoulliSource, ColoringSource
from repro.core.estimator import Estimate
from repro.core.seeding import cell_sequence
from repro.testing.faults import fire_fault

#: Default number of trials per chunk: large enough to amortize numpy call
#: overhead, small enough that a chunk's ``(chunk, n)`` matrix stays cache-
#: and RAM-friendly at n ≈ 10^3.
DEFAULT_CHUNK_TRIALS = 4096

#: Default ``max_trials`` guard of the ``target_ci`` stopping mode.
DEFAULT_MAX_TRIALS = 1_000_000

#: Default per-chunk retry budget: a chunk may fail (worker exception,
#: lost worker, timeout) this many times before the run gives up.
DEFAULT_RETRIES = 2

#: Base of the exponential retry backoff, in seconds: attempt ``k`` of a
#: chunk sleeps ``backoff * 2^(k-1)`` before re-running.
DEFAULT_RETRY_BACKOFF = 0.05

#: Indirection for tests: retry backoff sleeps go through this hook.
_sleep = time.sleep


class RunInterrupted(RuntimeError):
    """A run stopped cooperatively at a chunk boundary (``stop_event``).

    Raised by :func:`stream_probes` after the current chunk's statistics
    are merged and — when ``checkpoint_path`` is set — a durable
    checkpoint is written, so the run resumes byte-identically.  This is
    the graceful-drain primitive: a serving layer sets the event on
    SIGTERM and every in-flight run lands on a resumable checkpoint
    instead of being torn mid-chunk.
    """


class RunDeadlineExceeded(TimeoutError):
    """A run outlived its ``run_timeout`` wall-clock budget.

    Like :class:`RunInterrupted`, raised only at a chunk boundary after a
    durable checkpoint, so a deadline-killed run is still resumable.
    """


@dataclass(frozen=True)
class ChunkStats:
    """Sufficient statistics of one evaluated chunk (what workers return)."""

    trials: int
    #: ``histogram[v]`` = number of trials whose probe count was ``v``.
    histogram: np.ndarray
    witness_red: int


class MomentAccumulator:
    """Mergeable running moments over integer probe counts.

    A Welford/Chan-style parallel accumulator specialized to the engine's
    domain: samples are small nonnegative integers, so instead of floating
    ``(count, mean, M2)`` triples it merges exact probe-count histograms
    and computes mean/variance from exact Python-integer sums.  The merge
    is associative and exact, which is what makes chunked, sharded and
    one-shot runs agree on the mean to the last bit.
    """

    __slots__ = ("count", "witness_red", "_histogram")

    def __init__(self) -> None:
        self.count = 0
        self.witness_red = 0
        self._histogram = np.zeros(0, dtype=np.int64)

    def merge(self, chunk: ChunkStats) -> None:
        """Fold one chunk's statistics into the running totals."""
        hist = np.asarray(chunk.histogram, dtype=np.int64)
        if hist.size > self._histogram.size:
            grown = np.zeros(hist.size, dtype=np.int64)
            grown[: self._histogram.size] = self._histogram
            self._histogram = grown
        self._histogram[: hist.size] += hist
        self.count += int(chunk.trials)
        self.witness_red += int(chunk.witness_red)

    @property
    def histogram(self) -> np.ndarray:
        """The accumulated probe-count histogram (index = probe count)."""
        return self._histogram

    def load_state(
        self, count: int, witness_red: int, histogram: "Iterator[int] | tuple[int, ...]"
    ) -> None:
        """Restore checkpointed totals (resume path); exact, like merging."""
        self.count = int(count)
        self.witness_red = int(witness_red)
        self._histogram = np.asarray(tuple(histogram), dtype=np.int64)

    def _exact_sums(self) -> tuple[int, int]:
        """Exact ``(Σ probes, Σ probes²)`` as arbitrary-precision ints."""
        total = 0
        total_sq = 0
        for value in np.nonzero(self._histogram)[0].tolist():
            count = int(self._histogram[value])
            total += count * value
            total_sq += count * value * value
        return total, total_sq

    @property
    def mean(self) -> float:
        """Exact sample mean (one correctly-rounded division)."""
        if self.count == 0:
            raise ValueError("no trials accumulated")
        total, _ = self._exact_sums()
        return total / self.count

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1) from exact integer sums."""
        if self.count <= 1:
            return 0.0
        total, total_sq = self._exact_sums()
        numerator = self.count * total_sq - total * total
        return math.sqrt(numerator / (self.count * (self.count - 1)))

    @property
    def ci95(self) -> float:
        """Half-width of the normal-approximation 95% confidence interval."""
        if self.count <= 1:
            return float("inf")
        return 1.96 * self.std / math.sqrt(self.count)


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one streaming estimation run.

    ``n_trials_used`` is the number of trials actually evaluated — equal to
    the requested ``trials`` in fixed mode, chosen by the stopping rule in
    ``target_ci`` mode.  ``histogram[v]`` counts trials with probe count
    ``v`` (exact).  ``seconds`` is wall clock and excluded from every
    determinism claim, as are the fault-recovery counters
    ``retries_used``/``pool_respawns``/``worker_reassignments`` — a
    recovered run reports how bumpy the ride was, but its statistics are
    byte-identical to a fault-free run's.
    """

    algorithm: str
    source: str
    mode: str
    mean: float
    std: float
    n_trials_used: int
    chunk_size: int
    chunks: int
    witness_red: int
    histogram: tuple[int, ...]
    target_ci: float | None
    reached_target: bool | None
    seconds: float
    retries_used: int = 0
    pool_respawns: int = 0
    worker_reassignments: int = 0
    #: The *resolved* kernel backend the run executed on ("numpy",
    #: "bitpacked" or "compiled" — never "auto"); deterministic kernels
    #: produce byte-identical statistics on every backend.
    backend: str = "numpy"

    @property
    def estimate(self) -> Estimate:
        """The run as a plain :class:`~repro.core.estimator.Estimate`."""
        return Estimate(mean=self.mean, std=self.std, trials=self.n_trials_used)

    @property
    def ci95(self) -> float:
        return self.estimate.ci95

    @property
    def stderr(self) -> float:
        return self.estimate.stderr

    @property
    def failure_rate(self) -> float:
        """Fraction of trials whose witness was red (no live quorum)."""
        return self.witness_red / self.n_trials_used


#: Active recovery collectors (see :func:`collect_recovery`); every
#: finished :func:`stream_probes` run adds its counters to each of them.
_RECOVERY_COLLECTORS: list[dict] = []

#: Counter keys a recovery collector accumulates.
RECOVERY_KEYS = ("retries_used", "pool_respawns", "worker_reassignments")


@contextmanager
def collect_recovery() -> Iterator[dict]:
    """Accumulate recovery counters of every engine run inside the block.

    Yields a dict with :data:`RECOVERY_KEYS`; each :func:`stream_probes`
    completion adds its ``retries_used``/``pool_respawns``/
    ``worker_reassignments`` into it.  Used by the experiment and sweep
    runners to persist recovery statistics in artifacts without threading
    the counters through every ``ExperimentSpec.run`` signature.
    """
    totals = dict.fromkeys(RECOVERY_KEYS, 0)
    _RECOVERY_COLLECTORS.append(totals)
    try:
        yield totals
    finally:
        _RECOVERY_COLLECTORS.remove(totals)


#: Ambient kernel-backend request applied when a run doesn't pass
#: ``backend=`` explicitly; see :func:`default_backend`.
_AMBIENT_BACKEND = "numpy"


@contextmanager
def default_backend(backend: str) -> Iterator[None]:
    """Set the ambient kernel backend for engine runs inside the block.

    Every :func:`stream_probes` call that leaves ``backend=None`` resolves
    against this value instead of ``"numpy"``.  Used by the experiment
    runner to apply a backend choice across a spec's internal engine calls
    without threading ``backend=`` through every ``ExperimentSpec.run``
    signature (the same shape as :func:`collect_recovery`).
    """
    from repro.core.batched import BACKEND_CHOICES

    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}"
        )
    global _AMBIENT_BACKEND
    previous = _AMBIENT_BACKEND
    _AMBIENT_BACKEND = backend
    try:
        yield
    finally:
        _AMBIENT_BACKEND = previous


# -- chunk execution --------------------------------------------------------------


def _resolve_entropy(seed: int | None) -> int:
    """The run's entropy (fresh OS entropy when unseeded).

    The seed is used verbatim — ``PCG64(seed)`` must match the one-shot
    path's ``default_rng(seed)`` for *every* accepted seed, so no silent
    masking.  Negative seeds are rejected exactly like the one-shot
    batched path (``default_rng`` raises on them too).
    """
    if seed is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    seed = int(seed)
    if seed < 0:
        raise ValueError(f"seed must be a non-negative integer, got {seed}")
    return seed


def _chunk_sample_generator(
    source: ColoringSource, entropy: int, start: int
) -> np.random.Generator:
    """The sampling stream of the chunk starting at absolute trial ``start``.

    Trial-aligned (``PCG64(entropy)`` advanced past the preceding trials'
    draws) when the source declares a fixed per-trial consumption; a
    per-chunk spawned stream otherwise.
    """
    per_trial = source.uniforms_per_trial
    if per_trial is None:
        return np.random.default_rng(cell_sequence(entropy, "engine-sample", start))
    bit_generator = np.random.PCG64(entropy)
    if start and per_trial:
        bit_generator.advance(start * per_trial)
    return np.random.Generator(bit_generator)


def _chunk_algorithm_generator(entropy: int, start: int) -> np.random.Generator:
    """The algorithm-randomness stream of the chunk starting at ``start``."""
    return np.random.default_rng(cell_sequence(entropy, "engine-algorithm", start))


def _run_chunk(
    algorithm: ProbingAlgorithm,
    source: ColoringSource,
    entropy: int,
    start: int,
    size: int,
    backend: str = "numpy",
) -> ChunkStats:
    """Sample and evaluate one chunk; returns O(n) sufficient statistics.

    ``backend`` is a *resolved* backend ("numpy", "bitpacked" or
    "compiled").  The packed paths draw the chunk directly into bit-planes
    from the same trial-aligned stream and run the bit-sliced (bitpacked)
    or numba-fused (compiled) kernel; their probe counts and witness
    tallies are bit-identical to the numpy path for deterministic kernels,
    so the merged statistics don't depend on the backend.
    """
    from repro.core.batched import batched_or_sequential_run

    fire_fault("chunk", start)
    sample_rng = _chunk_sample_generator(source, entropy, start)
    if backend in ("bitpacked", "compiled"):
        from repro.core.bitpacked import run_packed, sample_packed

        packed = sample_packed(source, source.n, size, sample_rng)
        if backend == "compiled":
            from repro.core.compiled import run_compiled

            probes, witness_green = run_compiled(
                algorithm, packed, _chunk_algorithm_generator(entropy, start)
            )
        else:
            probes, witness_green = run_packed(
                algorithm, packed, _chunk_algorithm_generator(entropy, start)
            )
    else:
        red = source.sample_matrix(source.n, size, sample_rng)
        probes, witness_green = batched_or_sequential_run(
            algorithm, red, _chunk_algorithm_generator(entropy, start)
        )
    return ChunkStats(
        trials=size,
        histogram=np.bincount(probes),
        witness_red=size - int(np.count_nonzero(witness_green)),
    )


def _pair_payload(
    algorithm: ProbingAlgorithm, source: ColoringSource, backend: str = "numpy"
) -> tuple[bytes, str]:
    """Pickle the (algorithm, source, backend) triple once per run, plus a
    cache token.

    The parent serializes the triple a single time and ships the same bytes
    with every chunk task; workers deserialize once per token and then
    reuse the *same* objects for all their chunks, so the per-algorithm
    kernel scratch (:func:`repro.core.batched.kernel_scratch`) stays warm
    inside workers exactly as it does sequentially.  The resolved backend
    rides in the payload so sharded and distributed workers evaluate their
    chunks on the same kernels as the parent.
    """
    blob = pickle.dumps(
        (algorithm, source, backend), protocol=pickle.HIGHEST_PROTOCOL
    )
    return blob, hashlib.blake2s(blob, digest_size=16).hexdigest()


def _unpack_pair(pair) -> tuple[ProbingAlgorithm, ColoringSource, str]:
    """Unpack a deserialized pair payload; pre-backend payloads (legacy
    checkpoints) were plain ``(algorithm, source)`` pairs on numpy."""
    if len(pair) == 2:
        return pair[0], pair[1], "numpy"
    return pair


#: Worker-side cache of deserialized (algorithm, source) pairs, keyed by
#: the payload token; small LRU so long-lived shared pools don't accumulate
#: every pair they ever ran.
_WORKER_PAIRS: "OrderedDict[str, tuple]" = OrderedDict()
_WORKER_PAIRS_MAX = 8


def _run_chunk_task(payload) -> ChunkStats:
    """Top-level worker entry point (must be picklable for process pools)."""
    blob, token, entropy, start, size = payload
    pair = _WORKER_PAIRS.get(token)
    if pair is None:
        pair = pickle.loads(blob)
        _WORKER_PAIRS[token] = pair
        while len(_WORKER_PAIRS) > _WORKER_PAIRS_MAX:
            _WORKER_PAIRS.popitem(last=False)
    else:
        _WORKER_PAIRS.move_to_end(token)
    algorithm, source, backend = _unpack_pair(pair)
    return _run_chunk(algorithm, source, entropy, start, size, backend)


# -- fault-tolerant pool + chunk leases -------------------------------------------


class ChunkPool:
    """A respawnable worker pool for engine chunks.

    ``ProcessPoolExecutor`` is permanently broken once any worker dies —
    every in-flight and future submission raises ``BrokenProcessPool``.
    Recovery therefore means *replacing* the executor, which only the
    object that owns it can do; this wrapper owns it.  Share one
    ``ChunkPool`` across many engine runs (``run_sweep`` shares one per
    grid) and a crash recovered in one cell leaves the pool usable by the
    next.
    """

    def __init__(self, max_workers: int) -> None:
        if max_workers < 1:
            raise ValueError("ChunkPool needs at least one worker")
        self.max_workers = max_workers
        self.respawns = 0
        self._executor = ProcessPoolExecutor(max_workers=max_workers)

    def submit(self, fn, /, *args):
        return self._executor.submit(fn, *args)

    def respawn(self) -> None:
        """Replace the executor: terminate stragglers, spawn fresh workers.

        Used after ``BrokenProcessPool`` (the old pool is unusable) and
        after a chunk timeout (a worker may be hung on the chunk and must
        be killed, or it would keep a core busy forever).
        """
        old = self._executor
        old.shutdown(wait=False, cancel_futures=True)
        for process in list((getattr(old, "_processes", None) or {}).values()):
            try:
                if process.is_alive():
                    process.terminate()
            except (OSError, ValueError):  # pragma: no cover - already dead
                pass
        self.respawns += 1
        self._executor = ProcessPoolExecutor(max_workers=self.max_workers)

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self) -> "ChunkPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


class _BorrowedPool:
    """Adapter for a caller-owned raw ``ProcessPoolExecutor``.

    The engine can use it but must not respawn it — the owner holds a
    reference to the same executor and would keep submitting to the old
    one.  Worker-crash recovery requires a :class:`ChunkPool`.
    """

    def __init__(self, executor: ProcessPoolExecutor) -> None:
        self._executor = executor

    def submit(self, fn, /, *args):
        return self._executor.submit(fn, *args)

    def respawn(self) -> None:
        raise RuntimeError(
            "a worker process died but the engine was handed a raw "
            "ProcessPoolExecutor it must not respawn; pass a "
            "repro.core.engine.ChunkPool to enable worker-crash recovery"
        )


class ChunkLedger:
    """Chunk-lease bookkeeping: bounded retries with exponential backoff.

    Every chunk — keyed by its absolute start trial — may fail at most
    ``retries`` times; a failure is a worker exception, a lost worker
    (``BrokenProcessPool`` charges all in-flight leases, since any of them
    may have killed the worker) or an expired chunk timeout.  Exhausting a
    budget re-raises the original error unchanged.
    """

    def __init__(self, retries: int, backoff: float) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff < 0:
            raise ValueError(f"retry backoff must be >= 0, got {backoff}")
        self.retries = retries
        self.backoff = backoff
        self.failures = 0
        self._attempts: dict[int, int] = {}

    def record_failure(self, start: int, error: BaseException) -> None:
        """Charge one failed lease for the chunk at ``start``.

        Raises ``error`` itself once the chunk's budget is exhausted, so
        callers see the true cause (a ``FaultInjected``, the original
        ``BrokenProcessPool``, ...) rather than a wrapper.
        """
        count = self._attempts.get(start, 0) + 1
        self._attempts[start] = count
        self.failures += 1
        if count > self.retries:
            raise error

    def backoff_seconds(self, start: int) -> float:
        """Exponential backoff before the chunk's next attempt."""
        count = self._attempts.get(start, 0)
        if count == 0 or self.backoff == 0:
            return 0.0
        return self.backoff * (2 ** (count - 1))


# -- scheduling -------------------------------------------------------------------


class _StoppingRule:
    """When to stop merging chunks, shared by the sequential and sharded paths."""

    def __init__(
        self,
        trials: int | None,
        target_ci: float | None,
        min_trials: int,
        max_trials: int,
    ) -> None:
        self.trials = trials
        self.target_ci = target_ci
        self.min_trials = min_trials
        self.max_trials = max_trials

    def chunk_starts(self, chunk_size: int, first: int = 0) -> Iterator[tuple[int, int]]:
        """Yield ``(start, size)`` chunks in absolute order.

        ``first`` resumes the schedule at that absolute trial index; it is
        always a multiple of ``chunk_size`` (checkpoints land on chunk
        boundaries), so the resumed layout equals the uninterrupted one.
        """
        total = self.trials if self.target_ci is None else self.max_trials
        start = first
        while start < total:
            yield start, min(chunk_size, total - start)
            start += chunk_size

    def should_stop(self, accumulator: MomentAccumulator) -> bool:
        """Evaluate after each in-order merge (``target_ci`` mode only)."""
        if self.target_ci is None:
            return False
        if accumulator.count < self.min_trials:
            return False
        return accumulator.ci95 <= self.target_ci


def resolve_fixed_trials(
    trials: int | None, target_ci: float | None, default: int
) -> int | None:
    """The one trials/target_ci contract, shared by every entry point.

    Fixed mode (``target_ci is None``): ``trials`` defaults to ``default``
    and must be positive.  Adaptive mode: an explicit ``trials`` is a loud
    error (the stopping rule chooses the count; ``max_trials`` is the cap)
    and the resolved value is ``None``.
    """
    if target_ci is not None:
        if trials is not None:
            raise ValueError(
                "pass either trials (fixed mode) or target_ci (adaptive mode), "
                "not both; use max_trials to cap an adaptive run"
            )
        return None
    if trials is None:
        return default
    if trials < 1:
        raise ValueError("need at least one trial")
    return trials


def stream_probes(
    algorithm: ProbingAlgorithm,
    source: ColoringSource | None = None,
    *,
    p: float | None = None,
    trials: int | None = None,
    target_ci: float | None = None,
    chunk_size: int | None = None,
    min_trials: int | None = None,
    max_trials: int | None = None,
    seed: int | None = None,
    jobs: int = 1,
    executor: "ProcessPoolExecutor | ChunkPool | None" = None,
    coordinator=None,
    retries: int | None = None,
    chunk_timeout: float | None = None,
    retry_backoff: float | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    resume=None,
    backend: str | None = None,
    stop_event=None,
    run_timeout: float | None = None,
) -> StreamResult:
    """Run the streaming engine for one (algorithm, source) pair.

    ``backend`` selects the kernel backend — ``"numpy"``, ``"bitpacked"``
    (64 trials per word; deterministic algorithms only, rejected loudly
    otherwise), ``"compiled"`` (the same packed layout fused into
    numba-jitted loops; requires numba, rejected loudly without it) or
    ``"auto"`` (prefers compiled → bitpacked → numpy; see
    :func:`repro.core.batched.resolve_backend`); ``None`` defers to the
    ambient default (:func:`default_backend`, normally numpy).  The
    backend is an execution knob like ``jobs``: for deterministic kernels
    the merged statistics are byte-identical across backends, and the
    resolved choice is recorded on ``StreamResult.backend``.

    Exactly one of the stopping modes applies: with ``target_ci=None``
    (fixed mode) exactly ``trials`` trials run; with a ``target_ci``
    tolerance the engine adds chunks until the 95% CI half-width is at most
    the tolerance, evaluating the rule only after ``min_trials`` (default:
    one full chunk) and giving up at ``max_trials`` (default ``10^6``;
    ``reached_target`` reports which way it ended).  ``source`` defaults to
    the i.i.d. model at ``p``.  ``jobs > 1`` shards chunks across worker
    processes with results byte-identical to the sequential run (see the
    module docstring for the full seeding contract); callers issuing many
    engine runs (e.g. the sweep grid) may pass a shared ``executor`` —
    preferably a :class:`ChunkPool`, which the engine can respawn after a
    worker crash — so worker processes are spawned once, not per run; the
    engine then never shuts the pool down, it only cancels its own
    not-yet-started chunks.  A ``coordinator``
    (:class:`repro.distributed.Coordinator`) is the third backend: chunks
    are leased to networked workers instead, still byte-identical to
    ``jobs=1`` (mutually exclusive with ``jobs > 1``/``executor``).

    Fault tolerance: each chunk has a retry budget of ``retries``
    (default :data:`DEFAULT_RETRIES`) with exponential backoff
    (``retry_backoff`` base seconds); worker deaths and chunks that miss
    ``chunk_timeout`` seconds respawn the pool and re-run only the lost
    chunks, byte-identically.  ``checkpoint_path`` persists the run state
    atomically every ``checkpoint_every`` merged chunks and on
    ``KeyboardInterrupt``; ``resume`` (a checkpoint path or loaded
    :class:`~repro.core.checkpoint.EngineCheckpoint`) continues such a run
    from its last durable chunk boundary — the resumed configuration comes
    from the checkpoint, so the stopping-mode and seeding arguments must
    be left unset.

    Cooperative control: ``stop_event`` (a ``threading.Event``-alike) is
    polled after every merged chunk — once set, the run checkpoints (when
    ``checkpoint_path`` is given) and raises :class:`RunInterrupted`;
    ``run_timeout`` bounds this call's wall-clock seconds the same way,
    raising :class:`RunDeadlineExceeded`.  Both land on a chunk boundary,
    so the interrupted run is exactly as resumable as a ``KeyboardInterrupt``.
    """
    state = None
    if resume is not None:
        from repro.core.checkpoint import EngineCheckpoint, load_engine_checkpoint

        state = (
            resume
            if isinstance(resume, EngineCheckpoint)
            else load_engine_checkpoint(resume)
        )
        explicit = {
            "trials": trials,
            "target_ci": target_ci,
            "chunk_size": chunk_size,
            "min_trials": min_trials,
            "max_trials": max_trials,
            "seed": seed,
        }
        given = sorted(name for name, value in explicit.items() if value is not None)
        if given:
            raise ValueError(
                "resume restores the run configuration from the checkpoint; "
                f"don't pass {', '.join(given)}"
            )
        trials = state.trials
        target_ci = state.target_ci
        chunk_size = state.chunk_size
        min_trials = state.min_trials
        max_trials = state.max_trials
        seed = state.entropy
    if source is None:
        if p is None:
            raise ValueError("pass a failure probability p or a ColoringSource")
        source = BernoulliSource(algorithm.system.n, p)
    if source.n != algorithm.system.n:
        raise ValueError(
            f"source draws over n={source.n}, "
            f"algorithm runs on n={algorithm.system.n}"
        )
    if state is not None and (
        state.algorithm != algorithm.name
        or state.source != source.name
        or state.n != source.n
    ):
        raise ValueError(
            f"checkpoint records {state.algorithm} on {state.source} "
            f"(n={state.n}); resuming with {algorithm.name} on {source.name} "
            f"(n={source.n})"
        )
    trials = resolve_fixed_trials(trials, target_ci, default=1000)
    if target_ci is None:
        mode = "fixed"
    else:
        if target_ci <= 0:
            raise ValueError("target_ci must be positive")
        mode = "target_ci"
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_TRIALS if trials is None else min(
            trials, DEFAULT_CHUNK_TRIALS
        )
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least one trial")
    if max_trials is None:
        max_trials = DEFAULT_MAX_TRIALS
    if min_trials is None:
        min_trials = min(chunk_size, max_trials)
    if not 1 <= min_trials <= max_trials:
        raise ValueError(
            f"need 1 <= min_trials ({min_trials}) <= max_trials ({max_trials})"
        )
    if coordinator is not None and (jobs > 1 or executor is not None):
        raise ValueError(
            "a distributed coordinator replaces the process pool; pass "
            "either coordinator or jobs/executor, not both"
        )
    retries = DEFAULT_RETRIES if retries is None else retries
    retry_backoff = DEFAULT_RETRY_BACKOFF if retry_backoff is None else retry_backoff
    if chunk_timeout is not None and chunk_timeout <= 0:
        raise ValueError("chunk_timeout must be positive (None disables it)")
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be at least one chunk")
    if run_timeout is not None and run_timeout <= 0:
        raise ValueError("run_timeout must be positive (None disables it)")
    deadline_at = None if run_timeout is None else time.monotonic() + run_timeout
    from repro.core.batched import resolve_backend

    backend = resolve_backend(
        algorithm,
        _AMBIENT_BACKEND if backend is None else backend,
        trials if trials is not None else max_trials,
    )

    entropy = _resolve_entropy(seed)
    rule = _StoppingRule(trials, target_ci, min_trials, max_trials)
    ledger = ChunkLedger(retries, retry_backoff)
    accumulator = MomentAccumulator()
    chunks_merged = 0
    next_start = 0
    if state is not None:
        accumulator.load_state(state.count, state.witness_red, state.histogram)
        chunks_merged = state.chunks_merged
        next_start = state.next_start

    pair_blob = None
    if checkpoint_path is not None:
        pair_blob, _ = _pair_payload(algorithm, source, backend)

    def write_checkpoint(complete: bool) -> None:
        if checkpoint_path is None:
            return
        from repro.core.checkpoint import EngineCheckpoint, save_engine_checkpoint

        save_engine_checkpoint(
            checkpoint_path,
            EngineCheckpoint(
                entropy=entropy,
                mode=mode,
                trials=trials,
                target_ci=target_ci,
                chunk_size=chunk_size,
                min_trials=min_trials,
                max_trials=max_trials,
                algorithm=algorithm.name,
                source=source.name,
                n=source.n,
                count=accumulator.count,
                witness_red=accumulator.witness_red,
                histogram=tuple(int(c) for c in accumulator.histogram),
                chunks_merged=chunks_merged,
                next_start=next_start,
                complete=complete,
                pair_blob=pair_blob,
            ),
        )

    def absorb(start: int, size: int, stats: ChunkStats) -> bool:
        """Fold one in-order chunk; True when the stopping rule says stop."""
        nonlocal chunks_merged, next_start
        accumulator.merge(stats)
        chunks_merged += 1
        next_start = start + size
        fire_fault("merge", chunks_merged)
        if chunks_merged % checkpoint_every == 0:
            write_checkpoint(complete=False)
        if rule.should_stop(accumulator):
            return True
        # Cooperative control lands exactly here — after the merge, so the
        # checkpoint below holds every finished chunk and resume continues
        # byte-identically from this boundary.
        if stop_event is not None and stop_event.is_set():
            write_checkpoint(complete=False)
            raise RunInterrupted(
                f"run stopped at trial {next_start} (stop_event set); "
                + (
                    f"checkpoint durable at {checkpoint_path}"
                    if checkpoint_path is not None
                    else "no checkpoint_path, progress discarded"
                )
            )
        if deadline_at is not None and time.monotonic() > deadline_at:
            write_checkpoint(complete=False)
            raise RunDeadlineExceeded(
                f"run exceeded run_timeout={run_timeout}s at trial {next_start}"
                + (
                    f"; checkpoint durable at {checkpoint_path}"
                    if checkpoint_path is not None
                    else ""
                )
            )
        return False

    start_time = time.perf_counter()
    respawns = 0
    reassignments = 0
    # A checkpoint marked complete has nothing left to run; an adaptive
    # resume may likewise already satisfy its tolerance at the restored
    # state (the interrupted run would have stopped at that very merge).
    finished = (state is not None and state.complete) or (
        accumulator.count > 0 and rule.should_stop(accumulator)
    )
    try:
        if not finished:
            schedule = rule.chunk_starts(chunk_size, first=next_start)
            if coordinator is not None:
                from repro.distributed.coordinator import distributed_drive

                reassigned_before = coordinator.reassignments
                try:
                    distributed_drive(
                        algorithm,
                        source,
                        entropy,
                        schedule,
                        ledger,
                        coordinator,
                        absorb=absorb,
                        backend=backend,
                    )
                finally:
                    reassignments = coordinator.reassignments - reassigned_before
            elif jobs <= 1 and executor is None:
                _sequential_drive(
                    algorithm, source, entropy, schedule, ledger, absorb, backend
                )
            else:
                if executor is None:
                    pool: "ChunkPool | _BorrowedPool" = ChunkPool(max_workers=jobs)
                    owned: ChunkPool | None = pool
                elif isinstance(executor, ChunkPool):
                    pool, owned = executor, None
                else:
                    pool, owned = _BorrowedPool(executor), None
                respawns_before = getattr(pool, "respawns", 0)
                try:
                    _sharded_drive(
                        algorithm,
                        source,
                        entropy,
                        schedule,
                        ledger,
                        pool,
                        window=2 * max(jobs, 1),
                        chunk_timeout=chunk_timeout,
                        absorb=absorb,
                        backend=backend,
                    )
                finally:
                    respawns = getattr(pool, "respawns", 0) - respawns_before
                    if owned is not None:
                        owned.shutdown(wait=False)
    except KeyboardInterrupt:
        # Leave a durable resume point before propagating the interrupt.
        write_checkpoint(complete=False)
        raise

    write_checkpoint(complete=True)
    seconds = time.perf_counter() - start_time
    reached = None if target_ci is None else accumulator.ci95 <= target_ci
    result = StreamResult(
        algorithm=algorithm.name,
        source=source.name,
        mode=mode,
        mean=accumulator.mean,
        std=accumulator.std,
        n_trials_used=accumulator.count,
        chunk_size=chunk_size,
        chunks=chunks_merged,
        witness_red=accumulator.witness_red,
        histogram=tuple(int(c) for c in accumulator.histogram),
        target_ci=target_ci,
        reached_target=reached,
        seconds=seconds,
        retries_used=ledger.failures,
        pool_respawns=respawns,
        worker_reassignments=reassignments,
        backend=backend,
    )
    for totals in _RECOVERY_COLLECTORS:
        for key in RECOVERY_KEYS:
            totals[key] += getattr(result, key)
    return result


def _sequential_drive(
    algorithm: ProbingAlgorithm,
    source: ColoringSource,
    entropy: int,
    schedule: Iterator[tuple[int, int]],
    ledger: ChunkLedger,
    absorb,
    backend: str = "numpy",
) -> None:
    """Run chunks in-process, retrying failures against the lease ledger."""
    for start, size in schedule:
        while True:
            try:
                stats = _run_chunk(algorithm, source, entropy, start, size, backend)
                break
            except KeyboardInterrupt:
                raise
            except Exception as error:
                ledger.record_failure(start, error)
                _sleep(ledger.backoff_seconds(start))
        if absorb(start, size, stats):
            return


def _sharded_drive(
    algorithm: ProbingAlgorithm,
    source: ColoringSource,
    entropy: int,
    schedule: Iterator[tuple[int, int]],
    ledger: ChunkLedger,
    pool: "ChunkPool | _BorrowedPool",
    *,
    window: int,
    chunk_timeout: float | None,
    absorb,
    backend: str = "numpy",
) -> None:
    """Shard chunks over worker processes with crash/timeout recovery.

    ``pending`` is the live lease list in absolute chunk order; merges
    only ever happen at its head, so statistics fold in the same order as
    a sequential run no matter which worker finishes when or how often a
    chunk is retried.  Three failure shapes are handled:

    * a worker exception re-runs just that chunk (the pool is healthy);
    * ``BrokenProcessPool`` charges *every* in-flight lease (any of them
      may have killed the worker), respawns the pool, re-submits all;
    * a chunk missing ``chunk_timeout`` charges that chunk and respawns
      too — only killing the worker reclaims a hung chunk.
    """
    blob, token = _pair_payload(algorithm, source, backend)

    def submit(start: int, size: int):
        return pool.submit(_run_chunk_task, (blob, token, entropy, start, size))

    pending: list[list] = []  # [start, size, future] in absolute chunk order

    def recover(error: BaseException, charge_all: bool) -> None:
        # Charge the lease budgets first (re-raises the original error on
        # exhaustion), then replace the pool and re-submit every unmerged
        # chunk — their futures all belonged to the dead pool.
        head_start = pending[0][0]
        if charge_all:
            for lease in pending:
                ledger.record_failure(lease[0], error)
        else:
            ledger.record_failure(head_start, error)
        pool.respawn()
        _sleep(ledger.backoff_seconds(head_start))
        for lease in pending:
            lease[2] = submit(lease[0], lease[1])

    exhausted = False
    try:
        while True:
            try:
                while not exhausted and len(pending) < window:
                    item = next(schedule, None)
                    if item is None:
                        exhausted = True
                        break
                    # Append before submitting so a submit-time pool break
                    # still has the lease on the books for recovery.
                    pending.append([item[0], item[1], None])
                    pending[-1][2] = submit(item[0], item[1])
                if not pending:
                    return
                start, size, future = pending[0]
                stats = future.result(timeout=chunk_timeout)
            except BrokenExecutor as error:
                recover(error, charge_all=True)
                continue
            except FuturesTimeout:
                recover(
                    TimeoutError(
                        f"chunk at trial {start} exceeded "
                        f"chunk_timeout={chunk_timeout}s"
                    ),
                    charge_all=False,
                )
                continue
            except Exception as error:
                # Task-level failure: the pool is healthy, retry just this
                # chunk.
                ledger.record_failure(start, error)
                _sleep(ledger.backoff_seconds(start))
                pending[0][2] = submit(start, size)
                continue
            pending.pop(0)
            if absorb(start, size, stats):
                return
    finally:
        # Always drain our own leases — on the stop path *and* on error
        # paths, shared pool or owned: orphaned speculative chunks would
        # otherwise keep running (or hold queue slots) after this run is
        # gone.
        for lease in pending:
            if lease[2] is not None:
                lease[2].cancel()


def resume_stream(
    path: str | Path,
    *,
    jobs: int = 1,
    executor: "ProcessPoolExecutor | ChunkPool | None" = None,
    coordinator=None,
    retries: int | None = None,
    chunk_timeout: float | None = None,
    retry_backoff: float | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    backend: str | None = None,
    stop_event=None,
    run_timeout: float | None = None,
) -> StreamResult:
    """Continue a checkpointed run from its own serialized state.

    The checkpoint carries the pickled ``(algorithm, source, backend)``
    payload, so no other description of the run is needed — this is what
    ``repro-probe estimate --resume`` calls.  By default the continued run
    keeps checkpointing to the same file and stays on the backend the
    interrupted run resolved (backends are byte-identical for
    deterministic kernels, so overriding ``backend`` is safe).
    """
    from repro.core.checkpoint import load_engine_checkpoint

    state = load_engine_checkpoint(path)
    if state.pair_blob is None:
        raise ValueError(
            f"{path}: checkpoint carries no serialized (algorithm, source) "
            "pair; resume through stream_probes(resume=...) with the "
            "original objects instead"
        )
    algorithm, source, recorded_backend = _unpack_pair(pickle.loads(state.pair_blob))
    return stream_probes(
        algorithm,
        source,
        backend=recorded_backend if backend is None else backend,
        jobs=jobs,
        executor=executor,
        coordinator=coordinator,
        retries=retries,
        chunk_timeout=chunk_timeout,
        retry_backoff=retry_backoff,
        checkpoint_path=Path(path) if checkpoint_path is None else checkpoint_path,
        checkpoint_every=checkpoint_every,
        resume=state,
        stop_event=stop_event,
        run_timeout=run_timeout,
    )


def stream_estimate(
    algorithm: ProbingAlgorithm,
    source: ColoringSource | None = None,
    *,
    p: float | None = None,
    trials: int | None = None,
    target_ci: float | None = None,
    chunk_size: int | None = None,
    min_trials: int | None = None,
    max_trials: int | None = None,
    seed: int | None = None,
    jobs: int = 1,
    executor: "ProcessPoolExecutor | ChunkPool | None" = None,
    coordinator=None,
    retries: int | None = None,
    chunk_timeout: float | None = None,
    retry_backoff: float | None = None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int = 1,
    resume=None,
    backend: str | None = None,
) -> Estimate:
    """:func:`stream_probes`, reduced to a plain
    :class:`~repro.core.estimator.Estimate` (``trials`` = trials used)."""
    return stream_probes(
        algorithm,
        source,
        p=p,
        trials=trials,
        target_ci=target_ci,
        chunk_size=chunk_size,
        min_trials=min_trials,
        max_trials=max_trials,
        seed=seed,
        jobs=jobs,
        executor=executor,
        coordinator=coordinator,
        retries=retries,
        chunk_timeout=chunk_timeout,
        retry_backoff=retry_backoff,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        resume=resume,
        backend=backend,
    ).estimate
