"""Streaming estimation engine: chunked adaptive Monte-Carlo over kernels.

The batched layer (:mod:`repro.core.batched`) evaluates one ``(trials, n)``
matrix per call, which caps trial counts by RAM and fixes precision up
front.  This module drives any (algorithm kernel × coloring source) pair in
fixed-size *trial chunks* instead: each chunk is sampled, run through
:func:`repro.core.batched.batched_or_sequential_run` and folded into an
exact running accumulator, so memory stays ``O(chunk_size · n)`` while the
trial count scales to ``10^7`` and beyond.

Two stopping modes are supported:

* **fixed** — run exactly ``trials`` trials (the default), chunked;
* **target_ci** — keep adding chunks until the normal-approximation 95%
  confidence half-width falls below ``target_ci``, guarded by
  ``min_trials``/``max_trials``.  Near a phase transition (e.g. the
  critical ``p`` of a probe-complexity curve) variance spikes and fixed
  trial counts sized for the hard cell waste work everywhere else; the
  adaptive mode spends trials only where the tolerance demands them.

Accumulation is a mergeable Welford/Chan-style moment accumulator
specialized to the domain: probe counts are small nonnegative integers, so
the engine accumulates an exact probe-count *histogram* per chunk
(:class:`MomentAccumulator`) and derives mean/variance from exact integer
sums.  Merged means are therefore bit-identical no matter how the trials
are chunked or which worker computed which chunk — no floating-point
summation-order drift.

Seeding guarantees (the "seed schedule"):

* Every chunk draws from streams derived only from ``(seed, start)`` where
  ``start`` is the chunk's absolute first trial index — never from which
  worker ran it or how many chunks preceded it.  Sequential and
  ``jobs=N`` runs are therefore byte-identical.
* Sources that declare a fixed RNG consumption per trial
  (:attr:`~repro.core.distributions.ColoringSource.uniforms_per_trial`)
  are sampled *trial-aligned*: the chunk starting at trial ``s`` uses a
  ``PCG64(seed)`` stream advanced by ``s × uniforms_per_trial`` draws, so
  trial ``t`` sees exactly the uniforms it would see in a single one-shot
  ``sample_matrix`` call from ``default_rng(seed)``.  For these sources
  the sampled inputs — and hence the means of algorithms whose kernels
  consume no randomness — are byte-identical to the one-shot batched path
  *and* invariant under the chunk size.
* Sources with data-dependent consumption (the ``integers``-based hard
  families) fall back to a per-chunk spawned stream keyed by ``start``:
  still deterministic and jobs-invariant, but the chunk layout becomes
  part of the schedule.
* Algorithm randomness (randomized kernels, the per-trial fallback) always
  comes from its own per-chunk stream keyed by ``start`` — never from the
  sample stream, so a chunk's algorithm draws cannot correlate with a
  later chunk's inputs.  Randomized algorithms are distribution-identical
  across chunk layouts (same caveat as batched-vs-sequential before).

Chunks shard across a ``ProcessPoolExecutor`` (``jobs > 1``); results are
merged in absolute chunk order and the ``target_ci`` stopping rule is
evaluated after each in-order merge, so speculative chunks computed past
the stopping point are discarded and the parallel stop point equals the
sequential one.
"""

from __future__ import annotations

import hashlib
import math
import pickle
import time
from collections import OrderedDict
from collections.abc import Iterator
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProbingAlgorithm
from repro.core.distributions import BernoulliSource, ColoringSource
from repro.core.estimator import Estimate
from repro.core.seeding import cell_sequence

#: Default number of trials per chunk: large enough to amortize numpy call
#: overhead, small enough that a chunk's ``(chunk, n)`` matrix stays cache-
#: and RAM-friendly at n ≈ 10^3.
DEFAULT_CHUNK_TRIALS = 4096

#: Default ``max_trials`` guard of the ``target_ci`` stopping mode.
DEFAULT_MAX_TRIALS = 1_000_000


@dataclass(frozen=True)
class ChunkStats:
    """Sufficient statistics of one evaluated chunk (what workers return)."""

    trials: int
    #: ``histogram[v]`` = number of trials whose probe count was ``v``.
    histogram: np.ndarray
    witness_red: int


class MomentAccumulator:
    """Mergeable running moments over integer probe counts.

    A Welford/Chan-style parallel accumulator specialized to the engine's
    domain: samples are small nonnegative integers, so instead of floating
    ``(count, mean, M2)`` triples it merges exact probe-count histograms
    and computes mean/variance from exact Python-integer sums.  The merge
    is associative and exact, which is what makes chunked, sharded and
    one-shot runs agree on the mean to the last bit.
    """

    __slots__ = ("count", "witness_red", "_histogram")

    def __init__(self) -> None:
        self.count = 0
        self.witness_red = 0
        self._histogram = np.zeros(0, dtype=np.int64)

    def merge(self, chunk: ChunkStats) -> None:
        """Fold one chunk's statistics into the running totals."""
        hist = np.asarray(chunk.histogram, dtype=np.int64)
        if hist.size > self._histogram.size:
            grown = np.zeros(hist.size, dtype=np.int64)
            grown[: self._histogram.size] = self._histogram
            self._histogram = grown
        self._histogram[: hist.size] += hist
        self.count += int(chunk.trials)
        self.witness_red += int(chunk.witness_red)

    @property
    def histogram(self) -> np.ndarray:
        """The accumulated probe-count histogram (index = probe count)."""
        return self._histogram

    def _exact_sums(self) -> tuple[int, int]:
        """Exact ``(Σ probes, Σ probes²)`` as arbitrary-precision ints."""
        total = 0
        total_sq = 0
        for value in np.nonzero(self._histogram)[0].tolist():
            count = int(self._histogram[value])
            total += count * value
            total_sq += count * value * value
        return total, total_sq

    @property
    def mean(self) -> float:
        """Exact sample mean (one correctly-rounded division)."""
        if self.count == 0:
            raise ValueError("no trials accumulated")
        total, _ = self._exact_sums()
        return total / self.count

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1) from exact integer sums."""
        if self.count <= 1:
            return 0.0
        total, total_sq = self._exact_sums()
        numerator = self.count * total_sq - total * total
        return math.sqrt(numerator / (self.count * (self.count - 1)))

    @property
    def ci95(self) -> float:
        """Half-width of the normal-approximation 95% confidence interval."""
        if self.count <= 1:
            return float("inf")
        return 1.96 * self.std / math.sqrt(self.count)


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one streaming estimation run.

    ``n_trials_used`` is the number of trials actually evaluated — equal to
    the requested ``trials`` in fixed mode, chosen by the stopping rule in
    ``target_ci`` mode.  ``histogram[v]`` counts trials with probe count
    ``v`` (exact).  ``seconds`` is wall clock and excluded from every
    determinism claim.
    """

    algorithm: str
    source: str
    mode: str
    mean: float
    std: float
    n_trials_used: int
    chunk_size: int
    chunks: int
    witness_red: int
    histogram: tuple[int, ...]
    target_ci: float | None
    reached_target: bool | None
    seconds: float

    @property
    def estimate(self) -> Estimate:
        """The run as a plain :class:`~repro.core.estimator.Estimate`."""
        return Estimate(mean=self.mean, std=self.std, trials=self.n_trials_used)

    @property
    def ci95(self) -> float:
        return self.estimate.ci95

    @property
    def stderr(self) -> float:
        return self.estimate.stderr

    @property
    def failure_rate(self) -> float:
        """Fraction of trials whose witness was red (no live quorum)."""
        return self.witness_red / self.n_trials_used


# -- chunk execution --------------------------------------------------------------


def _resolve_entropy(seed: int | None) -> int:
    """The run's entropy (fresh OS entropy when unseeded).

    The seed is used verbatim — ``PCG64(seed)`` must match the one-shot
    path's ``default_rng(seed)`` for *every* accepted seed, so no silent
    masking.  Negative seeds are rejected exactly like the one-shot
    batched path (``default_rng`` raises on them too).
    """
    if seed is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    seed = int(seed)
    if seed < 0:
        raise ValueError(f"seed must be a non-negative integer, got {seed}")
    return seed


def _chunk_sample_generator(
    source: ColoringSource, entropy: int, start: int
) -> np.random.Generator:
    """The sampling stream of the chunk starting at absolute trial ``start``.

    Trial-aligned (``PCG64(entropy)`` advanced past the preceding trials'
    draws) when the source declares a fixed per-trial consumption; a
    per-chunk spawned stream otherwise.
    """
    per_trial = source.uniforms_per_trial
    if per_trial is None:
        return np.random.default_rng(cell_sequence(entropy, "engine-sample", start))
    bit_generator = np.random.PCG64(entropy)
    if start and per_trial:
        bit_generator.advance(start * per_trial)
    return np.random.Generator(bit_generator)


def _chunk_algorithm_generator(entropy: int, start: int) -> np.random.Generator:
    """The algorithm-randomness stream of the chunk starting at ``start``."""
    return np.random.default_rng(cell_sequence(entropy, "engine-algorithm", start))


def _run_chunk(
    algorithm: ProbingAlgorithm,
    source: ColoringSource,
    entropy: int,
    start: int,
    size: int,
) -> ChunkStats:
    """Sample and evaluate one chunk; returns O(n) sufficient statistics."""
    from repro.core.batched import batched_or_sequential_run

    red = source.sample_matrix(
        source.n, size, _chunk_sample_generator(source, entropy, start)
    )
    probes, witness_green = batched_or_sequential_run(
        algorithm, red, _chunk_algorithm_generator(entropy, start)
    )
    return ChunkStats(
        trials=size,
        histogram=np.bincount(probes),
        witness_red=size - int(np.count_nonzero(witness_green)),
    )


def _pair_payload(algorithm: ProbingAlgorithm, source: ColoringSource) -> tuple[bytes, str]:
    """Pickle the (algorithm, source) pair once per run, plus a cache token.

    The parent serializes the pair a single time and ships the same bytes
    with every chunk task; workers deserialize once per token and then
    reuse the *same* objects for all their chunks, so the per-algorithm
    kernel scratch (:func:`repro.core.batched.kernel_scratch`) stays warm
    inside workers exactly as it does sequentially.
    """
    blob = pickle.dumps((algorithm, source), protocol=pickle.HIGHEST_PROTOCOL)
    return blob, hashlib.blake2s(blob, digest_size=16).hexdigest()


#: Worker-side cache of deserialized (algorithm, source) pairs, keyed by
#: the payload token; small LRU so long-lived shared pools don't accumulate
#: every pair they ever ran.
_WORKER_PAIRS: "OrderedDict[str, tuple[ProbingAlgorithm, ColoringSource]]" = (
    OrderedDict()
)
_WORKER_PAIRS_MAX = 8


def _run_chunk_task(payload) -> ChunkStats:
    """Top-level worker entry point (must be picklable for process pools)."""
    blob, token, entropy, start, size = payload
    pair = _WORKER_PAIRS.get(token)
    if pair is None:
        pair = pickle.loads(blob)
        _WORKER_PAIRS[token] = pair
        while len(_WORKER_PAIRS) > _WORKER_PAIRS_MAX:
            _WORKER_PAIRS.popitem(last=False)
    else:
        _WORKER_PAIRS.move_to_end(token)
    algorithm, source = pair
    return _run_chunk(algorithm, source, entropy, start, size)


# -- scheduling -------------------------------------------------------------------


class _StoppingRule:
    """When to stop merging chunks, shared by the sequential and sharded paths."""

    def __init__(
        self,
        trials: int | None,
        target_ci: float | None,
        min_trials: int,
        max_trials: int,
    ) -> None:
        self.trials = trials
        self.target_ci = target_ci
        self.min_trials = min_trials
        self.max_trials = max_trials

    def chunk_starts(self, chunk_size: int) -> Iterator[tuple[int, int]]:
        """Yield ``(start, size)`` chunks in absolute order."""
        total = self.trials if self.target_ci is None else self.max_trials
        start = 0
        while start < total:
            yield start, min(chunk_size, total - start)
            start += chunk_size

    def should_stop(self, accumulator: MomentAccumulator) -> bool:
        """Evaluate after each in-order merge (``target_ci`` mode only)."""
        if self.target_ci is None:
            return False
        if accumulator.count < self.min_trials:
            return False
        return accumulator.ci95 <= self.target_ci


def resolve_fixed_trials(
    trials: int | None, target_ci: float | None, default: int
) -> int | None:
    """The one trials/target_ci contract, shared by every entry point.

    Fixed mode (``target_ci is None``): ``trials`` defaults to ``default``
    and must be positive.  Adaptive mode: an explicit ``trials`` is a loud
    error (the stopping rule chooses the count; ``max_trials`` is the cap)
    and the resolved value is ``None``.
    """
    if target_ci is not None:
        if trials is not None:
            raise ValueError(
                "pass either trials (fixed mode) or target_ci (adaptive mode), "
                "not both; use max_trials to cap an adaptive run"
            )
        return None
    if trials is None:
        return default
    if trials < 1:
        raise ValueError("need at least one trial")
    return trials


def stream_probes(
    algorithm: ProbingAlgorithm,
    source: ColoringSource | None = None,
    *,
    p: float | None = None,
    trials: int | None = None,
    target_ci: float | None = None,
    chunk_size: int | None = None,
    min_trials: int | None = None,
    max_trials: int | None = None,
    seed: int | None = None,
    jobs: int = 1,
    executor: ProcessPoolExecutor | None = None,
) -> StreamResult:
    """Run the streaming engine for one (algorithm, source) pair.

    Exactly one of the stopping modes applies: with ``target_ci=None``
    (fixed mode) exactly ``trials`` trials run; with a ``target_ci``
    tolerance the engine adds chunks until the 95% CI half-width is at most
    the tolerance, evaluating the rule only after ``min_trials`` (default:
    one full chunk) and giving up at ``max_trials`` (default ``10^6``;
    ``reached_target`` reports which way it ended).  ``source`` defaults to
    the i.i.d. model at ``p``.  ``jobs > 1`` shards chunks across worker
    processes with results byte-identical to the sequential run (see the
    module docstring for the full seeding contract); callers issuing many
    engine runs (e.g. the sweep grid) may pass a shared ``executor`` so
    worker processes are spawned once, not per run — the engine then never
    shuts the pool down, it only cancels its own not-yet-started chunks.
    """
    if source is None:
        if p is None:
            raise ValueError("pass a failure probability p or a ColoringSource")
        source = BernoulliSource(algorithm.system.n, p)
    if source.n != algorithm.system.n:
        raise ValueError(
            f"source draws over n={source.n}, "
            f"algorithm runs on n={algorithm.system.n}"
        )
    trials = resolve_fixed_trials(trials, target_ci, default=1000)
    if target_ci is None:
        mode = "fixed"
    else:
        if target_ci <= 0:
            raise ValueError("target_ci must be positive")
        mode = "target_ci"
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_TRIALS if trials is None else min(
            trials, DEFAULT_CHUNK_TRIALS
        )
    if chunk_size < 1:
        raise ValueError("chunk_size must be at least one trial")
    if max_trials is None:
        max_trials = DEFAULT_MAX_TRIALS
    if min_trials is None:
        min_trials = min(chunk_size, max_trials)
    if not 1 <= min_trials <= max_trials:
        raise ValueError(
            f"need 1 <= min_trials ({min_trials}) <= max_trials ({max_trials})"
        )

    entropy = _resolve_entropy(seed)
    rule = _StoppingRule(trials, target_ci, min_trials, max_trials)
    accumulator = MomentAccumulator()
    start_time = time.perf_counter()
    chunks_merged = 0

    schedule = rule.chunk_starts(chunk_size)
    if jobs <= 1 and executor is None:
        for start, size in schedule:
            accumulator.merge(_run_chunk(algorithm, source, entropy, start, size))
            chunks_merged += 1
            if rule.should_stop(accumulator):
                break
    else:
        owned = None if executor is not None else ProcessPoolExecutor(max_workers=jobs)
        pool = executor if executor is not None else owned
        blob, token = _pair_payload(algorithm, source)
        try:
            window = 2 * max(jobs, 1)
            pending = []
            exhausted = False
            while True:
                while not exhausted and len(pending) < window:
                    item = next(schedule, None)
                    if item is None:
                        exhausted = True
                        break
                    start, size = item
                    pending.append(
                        pool.submit(_run_chunk_task, (blob, token, entropy, start, size))
                    )
                if not pending:
                    break
                accumulator.merge(pending.pop(0).result())
                chunks_merged += 1
                if rule.should_stop(accumulator):
                    # Speculative chunks past the stopping point are discarded,
                    # so the parallel stop point equals the sequential one.
                    # (Cancel only our own futures: the pool may be shared.)
                    for future in pending:
                        future.cancel()
                    break
        finally:
            if owned is not None:
                owned.shutdown(wait=False, cancel_futures=True)

    seconds = time.perf_counter() - start_time
    reached = None if target_ci is None else accumulator.ci95 <= target_ci
    return StreamResult(
        algorithm=algorithm.name,
        source=source.name,
        mode=mode,
        mean=accumulator.mean,
        std=accumulator.std,
        n_trials_used=accumulator.count,
        chunk_size=chunk_size,
        chunks=chunks_merged,
        witness_red=accumulator.witness_red,
        histogram=tuple(int(c) for c in accumulator.histogram),
        target_ci=target_ci,
        reached_target=reached,
        seconds=seconds,
    )


def stream_estimate(
    algorithm: ProbingAlgorithm,
    source: ColoringSource | None = None,
    *,
    p: float | None = None,
    trials: int | None = None,
    target_ci: float | None = None,
    chunk_size: int | None = None,
    min_trials: int | None = None,
    max_trials: int | None = None,
    seed: int | None = None,
    jobs: int = 1,
) -> Estimate:
    """:func:`stream_probes`, reduced to a plain
    :class:`~repro.core.estimator.Estimate` (``trials`` = trials used)."""
    return stream_probes(
        algorithm,
        source,
        p=p,
        trials=trials,
        target_ci=target_ci,
        chunk_size=chunk_size,
        min_trials=min_trials,
        max_trials=max_trials,
        seed=seed,
        jobs=jobs,
    ).estimate
