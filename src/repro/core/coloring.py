"""Colorings of quorum-system elements.

The paper models each element (processor) as being colored either *green*
(alive) or *red* (failed).  A :class:`Coloring` is a total assignment of
colors to the universe ``{1, ..., n}``.  The probabilistic model of the paper
colors each element red independently with probability ``p``; this module
provides that distribution as well as several structured distributions used
as "hard" inputs in the lower-bound arguments of Section 4.

Internally a coloring is a single integer bitmask (bit ``i`` set iff element
``i + 1`` is red; see :mod:`repro.core.bitmask`), which makes the hot
operations — membership, flips, monochromaticity — constant-factor word
operations.  The frozenset views remain available and are materialized
lazily.
"""

from __future__ import annotations

import bisect
import enum
import itertools
import random
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

from repro.core.bitmask import elements_of, full_mask, mask_of, validate_mask

#: Universe size above which :meth:`Coloring.random` switches from the
#: element-by-element draw to the binomial-count draw.  Kept modest so every
#: seeded small-``n`` experiment reproduces the exact historical stream.
_RANDOM_FAST_PATH_N = 512


class Color(enum.Enum):
    """Status of a processor: ``GREEN`` is alive, ``RED`` has failed."""

    GREEN = "green"
    RED = "red"

    def flipped(self) -> "Color":
        """Return the opposite color (the paper's ``¬Mode``)."""
        return Color.RED if self is Color.GREEN else Color.GREEN

    def __invert__(self) -> "Color":
        return self.flipped()


GREEN = Color.GREEN
RED = Color.RED


class Coloring(Mapping[int, Color]):
    """An immutable assignment of a color to every element of a universe.

    Parameters
    ----------
    n:
        Size of the universe ``{1, ..., n}``.
    red:
        The set of elements colored red; everything else is green.
    """

    __slots__ = ("_n", "_red_mask", "_red")

    def __init__(self, n: int, red: Iterable[int] = ()) -> None:
        if n < 0:
            raise ValueError(f"universe size must be nonnegative, got {n}")
        mask = 0
        for e in red:
            if not 1 <= e <= n:
                raise ValueError(f"element {e} outside universe 1..{n}")
            mask |= 1 << (e - 1)
        self._n = n
        self._red_mask = mask
        self._red: frozenset[int] | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_red_mask(cls, n: int, red_mask: int) -> "Coloring":
        """Build a coloring directly from an integer red mask.

        Bit ``i`` of ``red_mask`` corresponds to element ``i + 1``.
        """
        validate_mask(red_mask, n)
        coloring = cls.__new__(cls)
        coloring._n = n
        coloring._red_mask = red_mask
        coloring._red = None
        return coloring

    @classmethod
    def from_red_row(cls, row) -> "Coloring":
        """Build a coloring from a boolean numpy row (True = red).

        This is the bridge from :meth:`random_batch` samples back to
        individual colorings.
        """
        import numpy as np

        bits = np.asarray(row, dtype=bool)
        if bits.ndim != 1:
            raise ValueError("from_red_row expects a one-dimensional row")
        packed = np.packbits(bits, bitorder="little").tobytes()
        return cls.from_red_mask(bits.size, int.from_bytes(packed, "little"))

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, Color]) -> "Coloring":
        """Build a coloring from an explicit element -> color mapping."""
        if not mapping:
            return cls(0)
        n = max(mapping)
        if set(mapping) != set(range(1, n + 1)):
            raise ValueError("mapping must cover the full universe 1..n")
        red = [e for e, c in mapping.items() if c is Color.RED]
        return cls(n, red)

    @classmethod
    def all_green(cls, n: int) -> "Coloring":
        """The coloring in which every processor is alive."""
        return cls(n)

    @classmethod
    def all_red(cls, n: int) -> "Coloring":
        """The coloring in which every processor has failed."""
        return cls.from_red_mask(n, full_mask(n))

    @classmethod
    def random(cls, n: int, p: float, rng: random.Random | None = None) -> "Coloring":
        """Sample the paper's probabilistic model: each element is red with
        probability ``p``, independently.

        For small universes the sample is drawn element by element (keeping
        historical seeded streams intact); for large universes the red
        *count* is drawn from the exact binomial and a uniform ``r``-subset
        is sampled, which is ``O(r)`` instead of ``O(n)`` RNG calls.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"failure probability must be in [0, 1], got {p}")
        rng = rng or random.Random()
        if n <= _RANDOM_FAST_PATH_N:
            mask = 0
            for e in range(n):
                if rng.random() < p:
                    mask |= 1 << e
            return cls.from_red_mask(n, mask)
        import numpy as np

        r = int(np.random.default_rng(rng.getrandbits(64)).binomial(n, p))
        red = rng.sample(range(1, n + 1), r)
        return cls(n, red)

    @classmethod
    def random_batch(cls, n: int, p: float, size: int, rng=None):
        """Sample ``size`` i.i.d. colorings as a boolean matrix.

        Returns a ``(size, n)`` numpy bool array whose entry ``[t, i]`` is
        True when element ``i + 1`` is red in trial ``t``.  This is the
        native input format of the vectorized estimators in
        :mod:`repro.core.batched`.  ``rng`` may be ``None``, an int seed, a
        ``random.Random`` or a ``numpy.random.Generator``.

        Alias of :func:`repro.core.distributions.sample_bernoulli_matrix`,
        the single i.i.d. matrix-sampler implementation.
        """
        from repro.core.distributions import sample_bernoulli_matrix

        return sample_bernoulli_matrix(n, p, size, rng)

    @classmethod
    def with_exact_reds(
        cls, n: int, r: int, rng: random.Random | None = None
    ) -> "Coloring":
        """Sample a coloring with exactly ``r`` red elements, uniformly."""
        if not 0 <= r <= n:
            raise ValueError(f"red count {r} outside 0..{n}")
        rng = rng or random.Random()
        red = rng.sample(range(1, n + 1), r)
        return cls(n, red)

    # -- Mapping interface -----------------------------------------------------

    def __getitem__(self, element: int) -> Color:
        if not 1 <= element <= self._n:
            raise KeyError(element)
        return Color.RED if (self._red_mask >> (element - 1)) & 1 else Color.GREEN

    def __iter__(self) -> Iterator[int]:
        return iter(range(1, self._n + 1))

    def __len__(self) -> int:
        return self._n

    # -- queries ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Size of the universe."""
        return self._n

    @property
    def red_mask(self) -> int:
        """Integer mask of failed processors (bit ``i`` ⇔ element ``i + 1``)."""
        return self._red_mask

    @property
    def green_mask(self) -> int:
        """Integer mask of live processors."""
        return full_mask(self._n) & ~self._red_mask

    @property
    def red_elements(self) -> frozenset[int]:
        """The set of failed processors."""
        if self._red is None:
            self._red = elements_of(self._red_mask)
        return self._red

    @property
    def green_elements(self) -> frozenset[int]:
        """The set of live processors."""
        return elements_of(self.green_mask)

    def color_of(self, element: int) -> Color:
        """Color of a single element (same as ``coloring[element]``)."""
        return self[element]

    def is_green(self, element: int) -> bool:
        return self[element] is Color.GREEN

    def is_red(self, element: int) -> bool:
        return self[element] is Color.RED

    def monochromatic(self, elements: Iterable[int]) -> Color | None:
        """Return the common color of ``elements`` or ``None`` if mixed.

        An empty collection is vacuously monochromatic and reported as green.
        """
        mask = mask_of(elements)
        validate_mask(mask, self._n)
        return self.monochromatic_mask(mask)

    def monochromatic_mask(self, mask: int) -> Color | None:
        """Mask-native :meth:`monochromatic`."""
        red_part = mask & self._red_mask
        if red_part == 0:
            return Color.GREEN
        if red_part == mask:
            return Color.RED
        return None

    def flip(self, element: int) -> "Coloring":
        """Return a new coloring with the color of ``element`` toggled."""
        if not 1 <= element <= self._n:
            raise ValueError(f"element {element} outside universe 1..{self._n}")
        return Coloring.from_red_mask(self._n, self._red_mask ^ (1 << (element - 1)))

    def inverted(self) -> "Coloring":
        """Return the coloring with every color flipped."""
        return Coloring.from_red_mask(self._n, self.green_mask)

    def probability(self, p: float) -> float:
        """Probability of this coloring under the i.i.d. model with failure
        probability ``p``.
        """
        r = self._red_mask.bit_count()
        return (p**r) * ((1.0 - p) ** (self._n - r))

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Coloring):
            return NotImplemented
        return self._n == other._n and self._red_mask == other._red_mask

    def __hash__(self) -> int:
        return hash((self._n, self._red_mask))

    def __repr__(self) -> str:
        reds = ",".join(str(e) for e in sorted(self.red_elements))
        return f"Coloring(n={self._n}, red={{{reds}}})"


def as_numpy_generator(rng):
    """Coerce ``None`` / int seed / ``random.Random`` / numpy Generator to a
    numpy Generator, deterministically when seeded.

    Shared by the batch samplers here and the vectorized estimators in
    :mod:`repro.core.batched`.
    """
    import numpy as np

    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, random.Random):
        return np.random.default_rng(rng.getrandbits(64))
    return np.random.default_rng(rng)


def enumerate_colorings(n: int) -> Iterator[Coloring]:
    """Yield all ``2^n`` colorings of a universe of size ``n``.

    Intended for exact computations on small universes (``n <= ~20``).
    """
    universe = list(range(1, n + 1))
    for r in range(n + 1):
        for red in itertools.combinations(universe, r):
            yield Coloring(n, red)


def enumerate_colorings_with_reds(n: int, r: int) -> Iterator[Coloring]:
    """Yield all colorings of ``{1..n}`` with exactly ``r`` red elements."""
    for red in itertools.combinations(range(1, n + 1), r):
        yield Coloring(n, red)


@dataclass(frozen=True)
class WeightedColoring:
    """A coloring together with its probability in an input distribution."""

    coloring: Coloring
    probability: float


class ColoringDistribution:
    """A finite distribution over colorings of a fixed universe.

    Used for Yao-style lower bounds (Section 4), where a "hard" distribution
    over inputs is chosen and the best deterministic algorithm is analyzed
    against it, and for exact probabilistic-model computations on small
    universes.
    """

    def __init__(self, n: int, weighted: Iterable[WeightedColoring]) -> None:
        items = list(weighted)
        if not items:
            raise ValueError("distribution must have at least one coloring")
        total = sum(w.probability for w in items)
        if total <= 0:
            raise ValueError("total probability mass must be positive")
        for w in items:
            if w.coloring.n != n:
                raise ValueError("all colorings must share the same universe size")
            if w.probability < 0:
                raise ValueError("probabilities must be nonnegative")
        self._n = n
        self._items = [
            WeightedColoring(w.coloring, w.probability / total) for w in items
        ]
        cdf: list[float] = []
        acc = 0.0
        for item in self._items:
            acc += item.probability
            cdf.append(acc)
        self._cdf = cdf

    @property
    def n(self) -> int:
        return self._n

    @property
    def support(self) -> list[WeightedColoring]:
        """The (normalized) weighted colorings in the distribution."""
        return list(self._items)

    @property
    def cdf(self) -> list[float]:
        """Running probability sums over :attr:`support` (for CDF inversion)."""
        return list(self._cdf)

    def sample(self, rng: random.Random | None = None) -> Coloring:
        """Draw a coloring according to the distribution.

        One uniform draw inverted through the precomputed CDF
        (``O(log support)`` per draw); the vectorized counterpart is
        :class:`repro.core.distributions.FiniteSource`.
        """
        rng = rng or random.Random()
        index = bisect.bisect_left(self._cdf, rng.random())
        return self._items[min(index, len(self._items) - 1)].coloring

    def expectation(self, func) -> float:
        """Expected value of ``func(coloring)`` under the distribution."""
        return sum(w.probability * func(w.coloring) for w in self._items)

    @classmethod
    def product(cls, n: int, p: float) -> "ColoringDistribution":
        """The i.i.d. failure model as an explicit distribution.

        Enumerates all ``2^n`` colorings; only usable for small ``n``.
        """
        if n > 20:
            raise ValueError(
                "explicit product distribution is limited to n <= 20; "
                "use Coloring.random for larger universes"
            )
        weighted = [
            WeightedColoring(c, c.probability(p)) for c in enumerate_colorings(n)
        ]
        return cls(n, weighted)

    @classmethod
    def exact_reds(cls, n: int, r: int) -> "ColoringDistribution":
        """Uniform distribution over colorings with exactly ``r`` red elements.

        This is the hard distribution of Theorem 4.2 (with ``r = k + 1``).
        """
        weighted = [
            WeightedColoring(c, 1.0) for c in enumerate_colorings_with_reds(n, r)
        ]
        return cls(n, weighted)

    @classmethod
    def uniform(cls, colorings: Iterable[Coloring]) -> "ColoringDistribution":
        """Uniform distribution over an explicit collection of colorings."""
        items = [WeightedColoring(c, 1.0) for c in colorings]
        if not items:
            raise ValueError("need at least one coloring")
        return cls(items[0].coloring.n, items)
