"""Monte-Carlo estimation of probe complexities.

Large systems are out of reach of the exact solvers in
:mod:`repro.core.exact`, so the experiments estimate

* the **probabilistic probe complexity** of an algorithm — the expected
  number of probes when each element fails i.i.d. with probability ``p`` —
  by sampling colorings, and
* the **randomized worst-case probe complexity** — the maximum over inputs
  of the expected number of probes of a randomized algorithm — by estimating
  the expectation on each coloring of a supplied worst-case input family and
  taking the maximum.

All estimators are seeded and report normal-approximation confidence
intervals computed with numpy.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProbingAlgorithm
from repro.core.coloring import Coloring


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with uncertainty.

    ``mean`` is the point estimate, ``std`` the sample standard deviation,
    ``stderr`` the standard error of the mean and ``trials`` the sample
    size.  ``ci95`` is the half-width of the normal-approximation 95%
    confidence interval.
    """

    mean: float
    std: float
    trials: int

    @property
    def stderr(self) -> float:
        if self.trials <= 1:
            return float("inf") if self.trials == 0 else 0.0
        return self.std / np.sqrt(self.trials)

    @property
    def ci95(self) -> float:
        return 1.96 * self.stderr

    @property
    def low(self) -> float:
        """Lower end of the 95% confidence interval."""
        return self.mean - self.ci95

    @property
    def high(self) -> float:
        """Upper end of the 95% confidence interval."""
        return self.mean + self.ci95

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.ci95:.3f} (n={self.trials})"

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Estimate":
        array = np.asarray(list(samples), dtype=float)
        if array.size == 0:
            raise ValueError("cannot build an estimate from zero samples")
        std = float(array.std(ddof=1)) if array.size > 1 else 0.0
        return cls(mean=float(array.mean()), std=std, trials=int(array.size))


def estimate_average_probes(
    algorithm: ProbingAlgorithm,
    p: float | None = None,
    trials: int | None = None,
    seed: int | None = None,
    validate: bool = False,
    batched: bool = False,
    source=None,
    chunk_size: int | None = None,
    target_ci: float | None = None,
    min_trials: int | None = None,
    max_trials: int | None = None,
    jobs: int = 1,
    backend: str | None = None,
) -> Estimate:
    """Estimate the expected probe count under an input distribution.

    With a bare ``p``, each trial draws a fresh coloring from the i.i.d.
    model (every element red with probability ``p``) and a fresh stream of
    algorithm randomness — the historical behavior, seeded-stream
    compatible with every earlier release.  Passing a
    :class:`~repro.core.distributions.ColoringSource` as ``source``
    instead draws the trial inputs from that source, so any registered
    scenario (exact-count, correlated groups, the Yao hard families)
    estimates through the same entry point; ``p`` is ignored then.

    With ``batched=True`` — or any streaming parameter set — estimation
    runs through the streaming engine (:mod:`repro.core.engine`): the
    trials are evaluated in fixed-size chunks through the vectorized
    kernels of :mod:`repro.core.batched` (falling back to the per-trial
    loop for unsupported algorithms), optionally sharded across ``jobs``
    worker processes.  ``target_ci`` switches from fixed-``trials`` mode
    to adaptive CI-targeted stopping — the two are mutually exclusive
    (an explicit ``trials`` with ``target_ci`` raises; cap adaptive runs
    with ``max_trials`` instead) and the returned estimate's ``trials``
    is the count actually used.  For deterministic algorithms under
    stream-aligned sources the engine's mean is byte-identical to the
    one-shot batched path of old; randomized algorithms draw the same
    distribution from per-chunk streams, so per-seed values differ from
    the sequential path.  ``validate`` is not supported there.

    ``backend`` selects the engine's kernel backend (``numpy``,
    ``bitpacked`` or ``auto``, see
    :func:`repro.core.batched.resolve_backend`); setting it routes
    estimation through the streaming engine like the other engine knobs.
    """
    streaming = (
        target_ci is not None
        or chunk_size is not None
        or min_trials is not None
        or max_trials is not None
        or jobs != 1
        or backend is not None
    )
    from repro.core.engine import resolve_fixed_trials

    trials = resolve_fixed_trials(trials, target_ci, default=1000)
    if source is None and p is None:
        raise ValueError("pass a failure probability p or a ColoringSource")
    if batched or streaming:
        if validate:
            raise ValueError("validate=True requires the sequential path")
        from repro.core.engine import stream_estimate

        return stream_estimate(
            algorithm,
            source,
            p=p,
            trials=trials,
            target_ci=target_ci,
            chunk_size=chunk_size,
            min_trials=min_trials,
            max_trials=max_trials,
            seed=seed,
            jobs=jobs,
            backend=backend,
        )
    if source is not None:
        from repro.core.coloring import as_numpy_generator

        if source.n != algorithm.system.n:
            raise ValueError(
                f"source draws over n={source.n}, "
                f"algorithm runs on n={algorithm.system.n}"
            )
        generator = as_numpy_generator(seed)
        algorithm_rng = random.Random(int(generator.integers(2**63)))
        samples = []
        for _ in range(trials):
            run = algorithm.run_on(
                source.sample(generator), rng=algorithm_rng, validate=validate
            )
            samples.append(run.probes)
        return Estimate.from_samples(samples)
    rng = random.Random(seed)
    samples = []
    n = algorithm.system.n
    for _ in range(trials):
        coloring = Coloring.random(n, p, rng)
        run = algorithm.run_on(coloring, rng=rng, validate=validate)
        samples.append(run.probes)
    return Estimate.from_samples(samples)


def estimate_expected_probes_on(
    algorithm: ProbingAlgorithm,
    coloring: Coloring,
    trials: int = 1000,
    seed: int | None = None,
    validate: bool = False,
) -> Estimate:
    """Estimate the expected probe count of a randomized algorithm on one
    fixed input coloring.

    For a deterministic algorithm a single trial suffices and the estimate
    is exact (zero variance).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if not algorithm.randomized:
        run = algorithm.run_on(coloring, validate=validate)
        return Estimate(mean=float(run.probes), std=0.0, trials=1)
    rng = random.Random(seed)
    samples = []
    for _ in range(trials):
        run = algorithm.run_on(coloring, rng=rng, validate=validate)
        samples.append(run.probes)
    return Estimate.from_samples(samples)


@dataclass(frozen=True)
class WorstCaseEstimate:
    """Worst observed expected probe count over an input family."""

    worst_coloring: Coloring
    estimate: Estimate
    per_input: dict[Coloring, Estimate]


def estimate_worst_case_expected(
    algorithm: ProbingAlgorithm,
    colorings: Iterable[Coloring],
    trials_per_input: int = 500,
    seed: int | None = None,
) -> WorstCaseEstimate:
    """Estimate ``max_c E[probes on c]`` over a family of input colorings.

    This is how the randomized worst-case probe complexity (PCR) of an
    algorithm is measured empirically: the expectation is over the
    algorithm's randomness, the maximum over the supplied inputs (typically
    the paper's own worst-case families, or all colorings for small n).
    """
    colorings = list(colorings)
    if not colorings:
        raise ValueError("need at least one input coloring")
    per_input: dict[Coloring, Estimate] = {}
    master = random.Random(seed)
    for coloring in colorings:
        per_input[coloring] = estimate_expected_probes_on(
            algorithm,
            coloring,
            trials=trials_per_input,
            seed=master.randrange(2**63),
        )
    worst = max(per_input, key=lambda c: per_input[c].mean)
    return WorstCaseEstimate(worst, per_input[worst], per_input)


def estimate_average_under(
    algorithm: ProbingAlgorithm,
    sampler,
    trials: int = 1000,
    seed: int | None = None,
) -> Estimate:
    """Estimate expected probes when inputs come from an arbitrary sampler.

    ``sampler(rng)`` must return a :class:`Coloring`; used for the hard
    input distributions of the Yao-style lower-bound experiments.  When the
    input family has a batched matrix sampler (see
    :mod:`repro.analysis.yao`), prefer
    :func:`repro.core.batched.estimate_average_under_batched`, which runs
    the whole batch through the algorithm's vectorized kernel.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    rng = random.Random(seed)
    samples = []
    for _ in range(trials):
        coloring = sampler(rng)
        run = algorithm.run_on(coloring, rng=rng)
        samples.append(run.probes)
    return Estimate.from_samples(samples)
