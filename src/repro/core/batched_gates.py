"""Level-synchronous vectorized gate kernels for the Tree and HQS systems.

The recursive probing algorithms of Sections 3.3/3.4 and 4.3/4.4 walk a
gate tree top-down, but their probe counts admit a *bottom-up* formulation:
for every node the pair ``(value, probes)`` — the color the recursive call
would return and the number of probes it would spend — depends only on the
same pair at the node's children (and, for IR_Probe_HQS, grandchildren).
Evaluating one tree level at a time over a whole ``(trials, n)`` coloring
matrix therefore turns a batch of recursive evaluations into ``O(height)``
rounds of numpy arithmetic, one column slice per level, with per-level
masks implementing "skip the third child when the first two agree" and
per-trial index matrices implementing the uniform order choices of the
randomized variants.

Per-node recurrences (``e`` = the node's own color, ``C``/``P`` = child
value/probes, colors stored as booleans with ``True`` = red):

* **Probe_Tree** (Prop. 3.6): probe the root, recurse right, recurse left
  only on disagreement::

      P(v) = 1 + P(right) + [C(right) != e] * P(left)
      C(v) = e                if C(right) == e else C(left)

* **R_Probe_Tree** (Thm. 4.7): a uniform choice among (root, right)-then-
  left, (root, left)-then-right and (left, right)-then-root, drawn as a
  per-(trial, node) integer matrix.

* **Probe_HQS** (Thm. 3.8): evaluate the first two children of the 2-of-3
  gate, the third only on disagreement::

      P(v) = P(c1) + P(c2) + [C(c1) != C(c2)] * P(c3)
      C(v) = majority(C(c1), C(c2), C(c3))

* **R_Probe_HQS** (Fig. 7): the same gate rule after a uniform per-gate
  permutation of the three children (an index into the 6 permutations of
  ``(0, 1, 2)``, gathered with ``take_along_axis``).

* **IR_Probe_HQS** (Fig. 8): evaluate a random child ``r1``, peek at one
  random grandchild of a second random child ``r2``, then either finish
  ``r2`` or jump to ``r3`` depending on whether the peek agreed with
  ``r1``.  The level step therefore consumes *two* levels of bottom-up
  state: the children's standalone ``(value, probes)`` and the
  grandchildren's, from which the conditional finishing cost of ``r2``
  is assembled without ever evaluating it as a standalone subtree.

The deterministic kernels reproduce the recursive implementations
*trial-exactly* (identical probe count and witness color per row); the
randomized ones draw their order choices from the same distributions, so
they match in distribution but not per-seed.  Both claims are pinned by
``tests/core/test_batched_gates.py``.

Kernels follow the uniform signature ``kernel(algorithm, red, rng)`` and
are registered with :func:`repro.core.batched.register_kernel`; they are
not normally called directly — use :func:`repro.core.batched.batched_run`.
"""

from __future__ import annotations

import numpy as np

from repro.core.coloring import as_numpy_generator

#: The six permutations of ``(0, 1, 2)``; drawing a uniform row index gives
#: a uniform shuffle of a gate's three children, exactly like the
#: sequential ``rng.shuffle`` of a 3-list.
PERMUTATIONS_3 = np.array(
    [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]],
    dtype=np.intp,
)


# -- binary Tree system ------------------------------------------------------------


def _tree_leaf_level(
    algorithm, red: np.ndarray, height: int
) -> tuple[np.ndarray, np.ndarray]:
    """Initial ``(value, probes)`` arrays for the tree's leaf level.

    Heap node ``v`` is universe element ``v`` (column ``v - 1``); the
    leaves of a height-``h`` tree are nodes ``2^h .. 2^(h+1) - 1``.  The
    all-ones probe buffer is read-only in every level step, so it is
    reused across chunk invocations via the kernel scratch (except for
    height 0, where it is the returned result itself).
    """
    first = 1 << height
    value = red[:, first - 1 : 2 * first - 1]
    probes = _leaf_ones(algorithm, value.shape, height)
    return value, probes


def _leaf_ones(algorithm, shape: tuple[int, ...], height: int) -> np.ndarray:
    """Leaf-level probe counts: a reusable ones-buffer for nonzero heights."""
    from repro.core.batched import scratch_ones

    if height == 0:
        # The buffer would be returned to the caller directly; hand out a
        # fresh array rather than a view of the shared scratch.
        return np.ones(shape, dtype=np.int64)
    return scratch_ones(algorithm, shape)


def probe_tree_kernel(algorithm, red: np.ndarray, rng=None):
    """Algorithm Probe_Tree (Prop. 3.6), one vector step per tree level."""
    system = algorithm.system
    value, probes = _tree_leaf_level(algorithm, red, system.height)
    for depth in range(system.height - 1, -1, -1):
        lo = 1 << depth
        elem = red[:, lo - 1 : 2 * lo - 1]
        left_v, right_v = value[:, 0::2], value[:, 1::2]
        left_p, right_p = probes[:, 0::2], probes[:, 1::2]
        right_matches = right_v == elem
        value = np.where(right_matches, elem, left_v)
        probes = 1 + right_p + np.where(right_matches, 0, left_p)
    return probes[:, 0], ~value[:, 0]


def r_probe_tree_kernel(algorithm, red: np.ndarray, rng=None):
    """Algorithm R_Probe_Tree (Thm. 4.7): per-(trial, node) uniform choice
    among the three evaluation orders."""
    generator = as_numpy_generator(rng)
    system = algorithm.system
    value, probes = _tree_leaf_level(algorithm, red, system.height)
    for depth in range(system.height - 1, -1, -1):
        lo = 1 << depth
        elem = red[:, lo - 1 : 2 * lo - 1]
        left_v, right_v = value[:, 0::2], value[:, 1::2]
        left_p, right_p = probes[:, 0::2], probes[:, 1::2]
        choice = generator.integers(3, size=elem.shape)
        right_first = right_v == elem  # choice 0: (root, right) then left
        left_first = left_v == elem  # choice 1: (root, left) then right
        subtrees_agree = left_v == right_v  # choice 2: (left, right) then root
        value = np.select(
            [choice == 0, choice == 1],
            [
                np.where(right_first, elem, left_v),
                np.where(left_first, elem, right_v),
            ],
            default=np.where(subtrees_agree, left_v, elem),
        )
        probes = np.select(
            [choice == 0, choice == 1],
            [
                1 + right_p + np.where(right_first, 0, left_p),
                1 + left_p + np.where(left_first, 0, right_p),
            ],
            default=left_p + right_p + np.where(subtrees_agree, 0, 1),
        )
    return probes[:, 0], ~value[:, 0]


# -- HQS (ternary 2-of-3 gate tree) ---------------------------------------------------


def _hqs_gate_level(
    value: np.ndarray, probes: np.ndarray, generator: np.random.Generator | None
) -> tuple[np.ndarray, np.ndarray]:
    """One 2-then-3 gate level; ``generator`` draws the per-gate shuffle
    (``None`` for the deterministic left-to-right order)."""
    trials, width = value.shape
    gates = width // 3
    values = value.reshape(trials, gates, 3)
    costs = probes.reshape(trials, gates, 3)
    if generator is not None:
        order = PERMUTATIONS_3[generator.integers(6, size=(trials, gates))]
        values = np.take_along_axis(values, order, axis=2)
        costs = np.take_along_axis(costs, order, axis=2)
    first_two_agree = values[..., 0] == values[..., 1]
    new_value = np.where(first_two_agree, values[..., 0], values[..., 2])
    new_probes = (
        costs[..., 0] + costs[..., 1] + np.where(first_two_agree, 0, costs[..., 2])
    )
    return new_value, new_probes


def probe_hqs_kernel(algorithm, red: np.ndarray, rng=None):
    """Algorithm Probe_HQS (Thm. 3.8): deterministic 2-then-3 gates."""
    value = red
    probes = _leaf_ones(algorithm, red.shape, algorithm.system.height)
    for _ in range(algorithm.system.height):
        value, probes = _hqs_gate_level(value, probes, None)
    return probes[:, 0], ~value[:, 0]


def r_probe_hqs_kernel(algorithm, red: np.ndarray, rng=None):
    """Algorithm R_Probe_HQS (Fig. 7): uniformly shuffled 2-then-3 gates."""
    generator = as_numpy_generator(rng)
    value = red
    probes = _leaf_ones(algorithm, red.shape, algorithm.system.height)
    for _ in range(algorithm.system.height):
        value, probes = _hqs_gate_level(value, probes, generator)
    return probes[:, 0], ~value[:, 0]


def ir_probe_hqs_kernel(algorithm, red: np.ndarray, rng=None):
    """Algorithm IR_Probe_HQS (Fig. 8, Thm. 4.10).

    Nodes of height >= 2 peek at one random grandchild of the second chosen
    child, so each level step reads *two* levels of bottom-up state
    (children and grandchildren standalone evaluations); height-1 nodes use
    the plain randomized gate, exactly as in the recursive implementation.
    """
    generator = as_numpy_generator(rng)
    height = algorithm.system.height
    trials = red.shape[0]
    grand_value = red
    grand_probes = _leaf_ones(algorithm, red.shape, height)
    if height == 0:
        return grand_probes[:, 0], ~grand_value[:, 0]
    # Height-1 gates have leaf children: no grandchildren to peek at.
    value, probes = _hqs_gate_level(grand_value, grand_probes, generator)
    for depth in range(height - 2, -1, -1):
        gates = 3**depth
        child_v = value.reshape(trials, gates, 3)
        child_p = probes.reshape(trials, gates, 3)
        grand_v = grand_value.reshape(trials, gates, 3, 3)
        grand_p = grand_probes.reshape(trials, gates, 3, 3)

        order = PERMUTATIONS_3[generator.integers(6, size=(trials, gates))]
        r1, r2, r3 = order[..., 0:1], order[..., 1:2], order[..., 2:3]
        v1 = np.take_along_axis(child_v, r1, axis=2)[..., 0]
        p1 = np.take_along_axis(child_p, r1, axis=2)[..., 0]
        v2 = np.take_along_axis(child_v, r2, axis=2)[..., 0]
        v3 = np.take_along_axis(child_v, r3, axis=2)[..., 0]
        p3 = np.take_along_axis(child_p, r3, axis=2)[..., 0]

        # r2's three children, in a fresh uniform order; the first is the peek.
        r2_grand_v = np.take_along_axis(grand_v, r2[..., None], axis=2)[:, :, 0, :]
        r2_grand_p = np.take_along_axis(grand_p, r2[..., None], axis=2)[:, :, 0, :]
        grand_order = PERMUTATIONS_3[generator.integers(6, size=(trials, gates))]
        gv = np.take_along_axis(r2_grand_v, grand_order, axis=2)
        gp = np.take_along_axis(r2_grand_p, grand_order, axis=2)
        peek_v, peek_p = gv[..., 0], gp[..., 0]
        # Cost of finishing r2's gate after the peek: second grandchild,
        # plus the third when the first two disagree.
        finish_p = gp[..., 1] + np.where(gv[..., 0] == gv[..., 1], 0, gp[..., 2])

        peek_agrees = peek_v == v1
        grand_value, grand_probes = value, probes
        probes = p1 + peek_p + np.where(
            peek_agrees,
            # Step 5: finish r2; evaluate r3 only if r2 disagrees with r1.
            finish_p + np.where(v2 == v1, 0, p3),
            # Step 6: jump to r3; finish r2 only if r3 disagrees with r1.
            p3 + np.where(v3 == v1, 0, finish_p),
        )
        value = child_v.sum(axis=2) >= 2
    return probes[:, 0], ~value[:, 0]
