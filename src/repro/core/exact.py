"""Exact (optimal) probe complexities on small universes.

The probe complexity measures of Section 2.3 are defined as optima over all
probe strategy trees.  On small universes the optima can be computed exactly
by dynamic programming over *knowledge states*: the pair (elements known
green, elements known red).  A state is terminal when the knowledge already
settles the witness — the known-green set contains a quorum, or the
known-red set is a transversal.  Otherwise the algorithm must probe some
element, and

* for the deterministic worst case (``PC``) the adversary picks the worse
  outcome (minimax),
* for the probabilistic model (``PPC_p``) the outcome is green with
  probability ``q = 1 - p`` (expectimax),
* for Yao-style bounds the outcome probabilities are conditioned on an
  explicit input distribution.

These exact optima back the paper's ``Maj3`` worked example (PC = 3,
PPC_{1/2} = 5/2, PCR = 8/3) and the optimality claim for Probe_HQS
(Theorem 3.9), and serve as ground truth in the test-suite.

Knowledge states are represented as ``(green_mask, red_mask)`` integer
pairs (see :mod:`repro.core.bitmask`), so the settled test and the child
transitions are single word operations, and the DP caches live on the
solver *instance*: repeated queries on one solver — ``probe_complexity()``
followed by ``optimal_worst_case_tree()``, or
``probabilistic_probe_complexity`` at several values of ``p`` — reuse every
previously settled witness state instead of re-solving from scratch.

The state space has size ``3^n`` so the computations are intended for ``n``
up to roughly :data:`EXACT_LIMIT`.
"""

from __future__ import annotations

import itertools

from repro.core.coloring import Color, ColoringDistribution
from repro.core.strategy_tree import Leaf, ProbeNode, StrategyNode, StrategyTree
from repro.systems.base import QuorumSystem
from repro.systems.boolean import CharacteristicFunction

#: Hard cap on the universe size accepted by the exact solvers.  Up to
#: :data:`_TABLE_DP_LIMIT` the vectorized table sweep keeps queries in the
#: seconds range; up to :data:`_PACKED_DP_LIMIT` the word-batched mask-DP
#: (64 bit-sliced DP cells per ``uint64`` word, two rolling levels) keeps
#: ``PC`` solves inside workstation memory — the peak footprint is
#: ``2 * max_k C(n,k) * 2^k * (B + 1) / 8`` bytes with ``B = n.bit_length()``
#: value planes, roughly 0.06 GB at n = 18, 1 GB at n = 20, 9 GB at n = 22
#: and 70 GB at n = 24.  Beyond the packed limit the recursive dict DP is
#: used and both time and memory grow as ``3^n``, so treat the upper end as
#: headroom for structured Yao distributions and partial queries (where the
#: settled/consistency pruning bites), not routine full solves.
EXACT_LIMIT = 24

#: Universe-size cap for the vectorized full-table DP (memory-bound: the
#: table holds all ``3^n`` knowledge states as numpy float64 arrays).
_TABLE_DP_LIMIT = 15

#: Universe-size cap for the word-batched packed mask-DP used by
#: ``probe_complexity`` above :data:`_TABLE_DP_LIMIT` (memory bound above).
_PACKED_DP_LIMIT = 21

#: Sentinel distinguishing "not cached" from a cached ``None`` (unsettled).
_MISSING = object()


def _check_size(system: QuorumSystem) -> None:
    if system.n > EXACT_LIMIT:
        raise ValueError(
            f"exact probe-complexity computation is limited to n <= {EXACT_LIMIT}; "
            f"{system.name} has n = {system.n}"
        )


# -- word-batched mask-DP (bit-sliced PC over packed uint64 lanes) ----------------
#
# The packed DP re-indexes the 3^n knowledge states as (K, r): K the mask of
# *known* elements, r the red assignment within K, giving one array of 2^|K|
# DP cells per known-mask.  Cells are packed 64 per uint64 word along the
# red-assignment axis and PC values are stored *bit-sliced* (B = n.bit_length()
# planes per level, exactly the carry-save representation of
# :mod:`repro.core.bitpacked`), so max / min / +1 over 64 states cost a
# handful of word ops.  Probing element i from state (K, r) leads to
# (K | bit_i, r) on green and (K | bit_i, r | bit_i) on red; in the
# compressed indexing both children live in the child mask's array at lanes
# that differ only in bit ``pos`` (the rank of i within K | bit_i), so the
# child gather is an even/odd lane split along that bit — word-aligned
# slicing for pos >= 6 and a shift-compaction ladder inside each word for
# pos < 6.  Levels roll: computing level k (k elements known) needs only
# level k + 1, which bounds memory by the two largest adjacent levels
# instead of the whole 3^n table (see :data:`EXACT_LIMIT`).

_ALL_ONES = 0xFFFFFFFFFFFFFFFF


def _alternating_mask(block: int):
    """uint64 pattern of ``block`` one-bits then ``block`` zero-bits, repeated."""
    import numpy as np

    value = 0
    for t in range(64):
        if ((t // block) & 1) == 0:
            value |= 1 << t
    return np.uint64(value)


_ALT_MASKS = {1 << p: _alternating_mask(1 << p) for p in range(6)}


def _compress_even(words, p: int):
    """Compact the lanes whose bit ``p`` of the lane index is 0 (``p < 6``).

    Classic block-unzip: each word's kept 2^p-lane blocks end up contiguous
    in its low 32 bits (garbage above).  The odd lanes are obtained by
    pre-shifting the word right by ``2^p``.
    """
    import numpy as np

    block = 1 << p
    out = words & _ALT_MASKS[block]
    step = block
    while step < 32:
        out = (out | (out >> np.uint64(step))) & _ALT_MASKS[2 * step]
        step *= 2
    return out


def _split_lanes(plane, p: int):
    """Split a packed child plane into its (green, red) parent-lane planes.

    ``plane`` has shape ``(rows, child_words)`` over the child level's
    2^(k+1)-lane axis; the result planes have the parent's 2^k lanes:
    green keeps lanes with bit ``p`` of the lane index clear, red those with
    it set (the probed element's red bit sits at position ``p`` of the
    child's compressed index).
    """
    import numpy as np

    rows, child_words = plane.shape
    if child_words == 1:
        # The whole child level fits one word; both halves stay in-word.
        green = _compress_even(plane, p)
        red = _compress_even(plane >> np.uint64(1 << p), p)
        return green, red
    if p < 6:
        even = _compress_even(plane, p).reshape(rows, child_words // 2, 2)
        odd = _compress_even(plane >> np.uint64(1 << p), p).reshape(
            rows, child_words // 2, 2
        )
        thirty_two = np.uint64(32)
        green = even[:, :, 0] | (even[:, :, 1] << thirty_two)
        red = odd[:, :, 0] | (odd[:, :, 1] << thirty_two)
        return green, red
    block_words = 1 << (p - 6)
    view = plane.reshape(rows, child_words // (2 * block_words), 2, block_words)
    green = view[:, :, 0, :].reshape(rows, child_words // 2)
    red = view[:, :, 1, :].reshape(rows, child_words // 2)
    return np.ascontiguousarray(green), np.ascontiguousarray(red)


def _planes_ge(a, b):
    """Per-lane ``a >= b`` over two bit-sliced unsigned integers."""
    import numpy as np

    full = np.uint64(_ALL_ONES)
    gt = np.zeros_like(a[0])
    eq = np.full_like(a[0], full)
    for i in range(len(a) - 1, -1, -1):
        gt |= eq & a[i] & ~b[i]
        eq &= ~(a[i] ^ b[i])
    return gt | eq


def _planes_select(mask, a, b):
    """Per-lane ``a if mask else b`` over bit-sliced integers."""
    return [(x & mask) | (y & ~mask) for x, y in zip(a, b)]


def _planes_max(a, b):
    return _planes_select(_planes_ge(a, b), a, b)


def _planes_min_into(dest, cand) -> None:
    """``dest = min(dest, cand)`` per lane, in place."""
    keep = _planes_ge(cand, dest)  # dest <= cand -> keep dest
    for i in range(len(dest)):
        dest[i] = (dest[i] & keep) | (cand[i] & ~keep)


def _planes_incr(planes) -> None:
    """``planes += 1`` per lane, in place (fixed width; callers size the
    plane count so the carry can never leave the top plane)."""
    import numpy as np

    carry = np.full_like(planes[0], np.uint64(_ALL_ONES))
    for i in range(len(planes)):
        tmp = planes[i]
        planes[i] = tmp ^ carry
        carry = tmp & carry


class ExactSolver:
    """Dynamic-programming solver for optimal probe strategies.

    One solver instance holds per-(measure, parameter) DP caches plus a
    shared settled-witness cache, all keyed by ``(green_mask, red_mask)``
    knowledge states.  The caches persist across queries, so a solver is
    cheap to reuse and a fresh instance is only needed for a different
    system.
    """

    def __init__(self, system: QuorumSystem) -> None:
        _check_size(system)
        self._system = system
        self._full = (1 << system.n) - 1
        # Knowledge states are keyed by the single integer
        # ``(green_mask << n) | red_mask`` — int keys hash markedly faster
        # than tuples in the multi-million-state DP sweeps.
        # Settled-witness colors, shared by every measure below.
        self._settled: dict[int, Color | None] = {}
        # Deterministic worst-case values (PC).
        self._pc_values: dict[int, int] = {}
        # Expectimax values per failure probability p (PPC_p).
        self._ppc_values: dict[float, dict[int, float]] = {}
        # Per-distribution Yao DP caches; distributions are compared by
        # identity, and kept referenced so ids stay unique.
        self._yao_caches: list[tuple[ColoringDistribution, dict[int, float]]] = []
        # Lazy state tables for the vectorized full-table DP (n <= 15):
        # trit-coded knowledge states, their green/red masks and the settled
        # predicate.  Built once per solver and shared by PC and every PPC_p.
        self._state_tables = None
        self._pc_table_result: int | None = None
        self._ppc_table_results: dict[float, float] = {}
        # The 2^n characteristic-function table (bool per green mask) shared
        # by the trit-table DP and the packed mask-DP, plus the packed DP's
        # cached result.
        self._contains_table = None
        self._packed_pc_result: int | None = None

    # -- vectorized full-table DP ---------------------------------------------

    def _tables(self):
        """Build (or fetch) the trit-coded knowledge-state tables.

        State ``s`` encodes element ``i`` in base-3 digit ``i``: 0 unknown,
        1 known green, 2 known red.  The settled predicate factors through
        the two ``2^n`` mask tables — ``contains_quorum_mask`` of the green
        mask and of the complement of the red mask — so it costs ``2^n``
        characteristic-function calls, not ``3^n``.
        """
        if self._state_tables is not None:
            return self._state_tables
        import numpy as np

        n = self._system.n
        n3 = 3**n
        codes = np.arange(n3, dtype=np.int64)
        green_idx = np.zeros(n3, dtype=np.int32)
        red_idx = np.zeros(n3, dtype=np.int32)
        unknown_count = np.zeros(n3, dtype=np.int8)
        tmp = codes.copy()
        for i in range(n):
            digit = tmp % 3
            tmp //= 3
            green_idx |= (digit == 1).astype(np.int32) << i
            red_idx |= (digit == 2).astype(np.int32) << i
            unknown_count += digit == 0
        del tmp
        contains_table = self._contains_np_table()
        settled = contains_table[green_idx] | ~contains_table[self._full - red_idx]
        # Group codes by unknown count so each DP level is one fancy-index.
        levels = [codes[unknown_count == u] for u in range(n + 1)]
        self._state_tables = (levels, settled)
        return self._state_tables

    def _table_dp(self, combine):
        """Run the level-by-level DP over the full state table.

        ``combine(value_on_green, value_on_red)`` merges the two child-value
        arrays of the probed element (``max`` for PC, the expectimax blend
        for PPC).  Returns the root value (the no-knowledge state).
        """
        import numpy as np

        n = self._system.n
        levels, settled = self._tables()
        pow3 = [3**i for i in range(n)]
        value = np.zeros(3**n, dtype=np.float64)
        for u in range(1, n + 1):
            states = levels[u]
            active = states[~settled[states]]
            if active.size == 0:
                continue
            best = np.full(active.size, np.inf)
            for i in range(n):
                p3 = pow3[i]
                is_unknown = (active // p3) % 3 == 0
                idx = active[is_unknown]
                if idx.size == 0:
                    continue
                candidate = combine(value[idx + p3], value[idx + 2 * p3])
                best[is_unknown] = np.minimum(best[is_unknown], candidate)
            value[active] = 1.0 + best
        return float(value[0])

    def _contains_np_table(self):
        """The ``2^n`` bool table of ``contains_quorum_mask``, built once."""
        if self._contains_table is None:
            import numpy as np

            contains = self._system.contains_quorum_mask
            n = self._system.n
            self._contains_table = np.fromiter(
                (contains(mask) for mask in range(1 << n)), dtype=bool, count=1 << n
            )
        return self._contains_table

    # -- word-batched packed mask-DP (PC) --------------------------------------

    def _settled_words(self, masks, set_elems, k, words, contains_table):
        """Packed settled bits for every ``(K, r)`` state of level ``k``.

        Returns a ``(rows, words)`` uint64 array: bit ``r`` of row ``K`` is
        the settled predicate of red assignment ``r`` (compressed over K's
        set bits).  Computed in row blocks so the transient full-mask
        arrays stay bounded regardless of the level size.
        """
        import numpy as np

        from repro.core.bitpacked import _pack_rows

        full = self._full
        rows = masks.size
        lanes = 1 << k
        out = np.empty((rows, words), dtype=np.uint64)
        lane_idx = np.arange(lanes, dtype=np.int64)
        lane_sel = [np.flatnonzero((lane_idx >> j) & 1) for j in range(k)]
        bit_vals = (np.int64(1) << set_elems) if k else None
        block = max(1, (1 << 21) // lanes)
        for r0 in range(0, rows, block):
            mb = masks[r0 : r0 + block]
            rb = mb.size
            red_full = np.zeros((rb, lanes), dtype=np.int64)
            for j in range(k):
                red_full[:, lane_sel[j]] |= bit_vals[r0 : r0 + rb, j : j + 1]
            green_full = mb[:, None] ^ red_full
            st = contains_table[green_full] | ~contains_table[full ^ red_full]
            out[r0 : r0 + rb] = _pack_rows(st.T).T
        return out

    def _packed_pc(self) -> int:
        """PC via the word-batched mask-DP (see the module helpers above).

        Level ``k`` holds one bit-sliced value array per known-mask row;
        probing element ``i`` reads the child mask's array split along the
        probed element's lane bit, the adversary max and the strategy min
        run as bit-sliced comparator circuits, and only two adjacent levels
        are ever alive.
        """
        import numpy as np

        from repro.core.bitpacked import popcount64

        n = self._system.n
        contains_table = self._contains_np_table()
        width = n.bit_length()  # PC values live in [0, n]
        codes = np.arange(1 << n, dtype=np.int64)
        counts = popcount64(codes.astype(np.uint64))
        level_masks = [codes[counts == k] for k in range(n + 1)]
        # Level n: full knowledge always settles the witness, so value 0.
        top_words = max(1, (1 << n) >> 6)
        prev = [np.zeros((1, top_words), dtype=np.uint64) for _ in range(width)]
        for k in range(n - 1, -1, -1):
            masks = level_masks[k]
            rows = masks.size
            lanes = 1 << k
            words = max(1, lanes >> 6)
            child_masks = level_masks[k + 1]
            child_words = max(1, (lanes * 2) >> 6)
            bits = ((masks[:, None] >> np.arange(n)) & 1).astype(bool)
            set_elems = (
                np.nonzero(bits)[1].reshape(rows, k)
                if k
                else np.empty((rows, 0), dtype=np.int64)
            )
            unset_elems = np.nonzero(~bits)[1].reshape(rows, n - k)
            settled = self._settled_words(masks, set_elems, k, words, contains_table)
            running = [np.empty((rows, words), dtype=np.uint64) for _ in range(width)]
            for j in range(n - k):
                elem = unset_elems[:, j]
                bit = np.int64(1) << elem
                child = masks | bit
                child_rows = np.searchsorted(child_masks, child)
                pos = popcount64((child & (bit - 1)).astype(np.uint64))
                for p in np.unique(pos):
                    sel = np.flatnonzero(pos == p)
                    block = max(1, (1 << 21) // child_words)
                    for s0 in range(0, sel.size, block):
                        rows_sel = sel[s0 : s0 + block]
                        gathered = child_rows[rows_sel]
                        green = []
                        red = []
                        for plane in prev:
                            g, r = _split_lanes(plane[gathered], int(p))
                            green.append(g)
                            red.append(r)
                        cand = _planes_max(green, red)
                        if j == 0:
                            for b in range(width):
                                running[b][rows_sel] = cand[b]
                        else:
                            dest = [running[b][rows_sel] for b in range(width)]
                            _planes_min_into(dest, cand)
                            for b in range(width):
                                running[b][rows_sel] = dest[b]
            _planes_incr(running)
            live = ~settled
            for b in range(width):
                running[b] &= live
            prev = running
        root = 0
        for b in range(width):
            root |= int(prev[b][0, 0] & np.uint64(1)) << b
        return root

    def packed_probe_complexity(self) -> int:
        """``PC(S)`` via the word-batched mask-DP, regardless of ``n``.

        Bit-identical to :meth:`probe_complexity` (the tests cross-check it
        against the trit-table sweep and the dict DP); exposed separately
        so the packed path can be exercised and benchmarked at any size up
        to :data:`EXACT_LIMIT`.
        """
        if self._packed_pc_result is None:
            self._packed_pc_result = self._packed_pc()
        return self._packed_pc_result

    # The settled predicate (green contains a quorum / red is a transversal)
    # is deliberately inlined again inside the _pc_value and _ppc_value_fn
    # hot loops: a method call per DP state costs ~25% there.  Any change to
    # the witness rule must touch those two copies as well.
    def _settled_at(self, green: int, red: int) -> Color | None:
        key = (green << self._system.n) | red
        try:
            return self._settled[key]
        except KeyError:
            pass
        system = self._system
        if system.contains_quorum_mask(green):
            value: Color | None = Color.GREEN
        elif not system.contains_quorum_mask(self._full & ~red):
            value = Color.RED
        else:
            value = None
        self._settled[key] = value
        return value

    # -- deterministic worst case (PC) -------------------------------------------

    def _pc_value(self, green: int, red: int) -> int:
        memo = self._pc_values
        memo_get = memo.get
        settled_memo = self._settled
        contains = self._system.contains_quorum_mask
        full = self._full
        n = self._system.n
        _missing = _MISSING

        def value(green: int, red: int) -> int:
            key = (green << n) | red
            cached = memo_get(key)
            if cached is not None:
                return cached
            settled = settled_memo.get(key, _missing)
            if settled is _missing:
                if contains(green):
                    settled = Color.GREEN
                elif not contains(full & ~red):
                    settled = Color.RED
                else:
                    settled = None
                settled_memo[key] = settled
            if settled is not None:
                memo[key] = 0
                return 0
            best = n + 1
            m = full & ~(green | red)
            while m:
                bit = m & -m
                m ^= bit
                g2 = green | bit
                a = memo_get((g2 << n) | red)
                if a is None:
                    a = value(g2, red)
                r2 = red | bit
                b = memo_get((green << n) | r2)
                if b is None:
                    b = value(green, r2)
                outcome = a if a >= b else b
                if outcome < best:
                    best = outcome
                    if best == 0:  # both children settled; no probe beats 1
                        break
            result = 1 + best
            memo[key] = result
            return result

        return value(green, red)

    def probe_complexity(self) -> int:
        """The deterministic worst-case probe complexity ``PC(S)``."""
        if self._system.n <= _TABLE_DP_LIMIT:
            if self._pc_table_result is None:
                import numpy as np

                self._pc_table_result = round(self._table_dp(np.maximum))
            return self._pc_table_result
        if self._system.n <= _PACKED_DP_LIMIT:
            return self.packed_probe_complexity()
        return self._pc_value(0, 0)

    def is_evasive(self) -> bool:
        """True when ``PC(S) = n``, i.e. the system is evasive.

        The paper (Lemma 2.2, from [PW02]) notes that Maj, Wheel, CW and
        Tree are all evasive.
        """
        return self.probe_complexity() == self._system.n

    # -- probabilistic model (PPC_p) ------------------------------------------------

    def _ppc_value_fn(self, p: float):
        """The memoized expectimax value function at failure probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"failure probability must be in [0, 1], got {p}")
        memo = self._ppc_values.setdefault(p, {})
        memo_get = memo.get
        q = 1.0 - p
        settled_memo = self._settled
        contains = self._system.contains_quorum_mask
        full = self._full
        n = self._system.n
        inf = float("inf")
        _missing = _MISSING

        def value(green: int, red: int) -> float:
            key = (green << n) | red
            cached = memo_get(key)
            if cached is not None:
                return cached
            settled = settled_memo.get(key, _missing)
            if settled is _missing:
                if contains(green):
                    settled = Color.GREEN
                elif not contains(full & ~red):
                    settled = Color.RED
                else:
                    settled = None
                settled_memo[key] = settled
            if settled is not None:
                memo[key] = 0.0
                return 0.0
            best = inf
            m = full & ~(green | red)
            while m:
                bit = m & -m
                m ^= bit
                g2 = green | bit
                a = memo_get((g2 << n) | red)
                if a is None:
                    a = value(g2, red)
                r2 = red | bit
                b = memo_get((green << n) | r2)
                if b is None:
                    b = value(green, r2)
                outcome = q * a + p * b
                if outcome < best:
                    best = outcome
                    if best == 0.0:  # both children settled; optimal already
                        break
            result = 1.0 + best
            memo[key] = result
            return result

        return value

    def probabilistic_probe_complexity(self, p: float) -> float:
        """The optimal expected probe count ``PPC_p(S)`` in the i.i.d. model."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"failure probability must be in [0, 1], got {p}")
        if self._system.n <= _TABLE_DP_LIMIT:
            cached = self._ppc_table_results.get(p)
            if cached is None:
                q = 1.0 - p
                cached = self._table_dp(lambda on_green, on_red: q * on_green + p * on_red)
                self._ppc_table_results[p] = cached
            return cached
        return self._ppc_value_fn(p)(0, 0)

    def optimal_strategy_tree(self, p: float) -> StrategyTree:
        """An optimal strategy tree for the probabilistic model at ``p``."""
        value = self._ppc_value_fn(p)
        q = 1.0 - p

        def build(green: int, red: int) -> StrategyNode:
            settled = self._settled_at(green, red)
            if settled is not None:
                return Leaf(settled)
            remaining = green | red
            best_bit = 0
            best_cost = float("inf")
            m = self._full & ~remaining
            while m:
                bit = m & -m
                m ^= bit
                cost = q * value(green | bit, red) + p * value(green, red | bit)
                if cost < best_cost:
                    best_cost = cost
                    best_bit = bit
            return ProbeNode(
                element=best_bit.bit_length(),
                on_green=build(green | best_bit, red),
                on_red=build(green, red | best_bit),
            )

        return StrategyTree(self._system, build(0, 0))

    def optimal_worst_case_tree(self) -> StrategyTree:
        """A strategy tree achieving the deterministic worst-case optimum."""

        def build(green: int, red: int) -> StrategyNode:
            settled = self._settled_at(green, red)
            if settled is not None:
                return Leaf(settled)
            best_bit = 0
            best_cost = self._system.n + 1
            m = self._full & ~(green | red)
            while m:
                bit = m & -m
                m ^= bit
                cost = max(self._pc_value(green | bit, red), self._pc_value(green, red | bit))
                if cost < best_cost:
                    best_cost = cost
                    best_bit = bit
            return ProbeNode(
                element=best_bit.bit_length(),
                on_green=build(green | best_bit, red),
                on_red=build(green, red | best_bit),
            )

        return StrategyTree(self._system, build(0, 0))

    # -- best deterministic strategy under an input distribution (Yao) ---------------

    def best_deterministic_under(self, distribution: ColoringDistribution) -> float:
        """Minimum expected probes of a deterministic strategy under ``distribution``.

        By Yao's principle (Section 4) this is a lower bound on the
        randomized worst-case probe complexity ``PCR(S)`` for any input
        distribution.  The strategy must still terminate with a proper
        witness (a monochromatic certificate among probed elements), exactly
        as in the paper's model.
        """
        if distribution.n != self._system.n:
            raise ValueError("distribution universe does not match the system")
        memo: dict[int, float] | None = None
        for known, cache in self._yao_caches:
            if known is distribution:
                memo = cache
                break
        if memo is None:
            memo = {}
            self._yao_caches.append((distribution, memo))
        # (green_mask_of_coloring, red_mask_of_coloring, probability) rows.
        support = [
            (w.coloring.green_mask, w.coloring.red_mask, w.probability)
            for w in distribution.support
        ]
        settled = self._settled_at
        full = self._full
        n = self._system.n

        def value(green: int, red: int) -> float:
            key = (green << n) | red
            try:
                return memo[key]
            except KeyError:
                pass
            if settled(green, red) is not None:
                memo[key] = 0.0
                return 0.0
            consistent = [
                row
                for row in support
                if green & ~row[0] == 0 and red & ~row[1] == 0
            ]
            total = sum(row[2] for row in consistent)
            if total == 0:
                # Unreachable knowledge state under this distribution; its
                # cost never contributes to the expectation.
                memo[key] = 0.0
                return 0.0
            best = float("inf")
            m = full & ~(green | red)
            while m:
                bit = m & -m
                m ^= bit
                green_mass = sum(row[2] for row in consistent if row[0] & bit)
                prob_green = green_mass / total
                cost = (
                    1.0
                    + prob_green * value(green | bit, red)
                    + (1.0 - prob_green) * value(green, red | bit)
                )
                if cost < best:
                    best = cost
            memo[key] = best
            return best

        return value(0, 0)


# -- convenience wrappers --------------------------------------------------------------


def probe_complexity(system: QuorumSystem) -> int:
    """Exact deterministic worst-case probe complexity ``PC(S)``."""
    return ExactSolver(system).probe_complexity()


def probabilistic_probe_complexity(system: QuorumSystem, p: float = 0.5) -> float:
    """Exact probabilistic probe complexity ``PPC_p(S)``."""
    return ExactSolver(system).probabilistic_probe_complexity(p)


def yao_lower_bound(system: QuorumSystem, distribution: ColoringDistribution) -> float:
    """Yao lower bound on ``PCR(S)`` from an explicit hard distribution."""
    return ExactSolver(system).best_deterministic_under(distribution)


def permutation_algorithm_worst_expected(system: QuorumSystem) -> float:
    """Exact worst-case expected probes of the uniform random-permutation
    algorithm.

    The algorithm draws a uniformly random order of the universe and probes
    in that order until a witness is found.  For each input coloring the
    expected probe count is averaged over all ``n!`` permutations exactly,
    and the maximum over all ``2^n`` colorings is returned.  This matches the
    paper's ``Maj3`` example, where the value is ``8/3``, and the analysis of
    Algorithm R_Probe_Maj (Theorem 4.2).

    The inner loop shares one memoized settled-witness cache across all
    permutations and colorings, so identical probe prefixes (which dominate
    the ``n! × 2^n`` sweep) cost a dictionary lookup each.

    Only feasible for very small systems (``n <= 8`` or so).
    """
    if system.n > 8:
        raise ValueError("exact permutation analysis is limited to n <= 8")
    f = CharacteristicFunction(system)
    n = system.n
    universe = range(1, n + 1)
    orders = list(itertools.permutations(universe))
    worst = 0.0
    for red_size in range(n + 1):
        for red in itertools.combinations(universe, red_size):
            red_mask = 0
            for e in red:
                red_mask |= 1 << (e - 1)
            total = 0
            for order in orders:
                total += _probes_in_order_mask(f, red_mask, order)
            expected = total / len(orders)
            worst = max(worst, expected)
    return worst


def _probes_in_order_mask(
    f: CharacteristicFunction, red_mask: int, order: tuple[int, ...]
) -> int:
    green = 0
    red = 0
    settled = f.witness_settled_mask
    for i, element in enumerate(order, start=1):
        bit = 1 << (element - 1)
        if red_mask & bit:
            red |= bit
        else:
            green |= bit
        if settled(green, red) is not None:
            return i
    return len(order)
