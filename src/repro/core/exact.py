"""Exact (optimal) probe complexities on small universes.

The probe complexity measures of Section 2.3 are defined as optima over all
probe strategy trees.  On small universes the optima can be computed exactly
by dynamic programming over *knowledge states*: the pair (elements known
green, elements known red).  A state is terminal when the knowledge already
settles the witness — the known-green set contains a quorum, or the
known-red set is a transversal.  Otherwise the algorithm must probe some
element, and

* for the deterministic worst case (``PC``) the adversary picks the worse
  outcome (minimax),
* for the probabilistic model (``PPC_p``) the outcome is green with
  probability ``q = 1 - p`` (expectimax),
* for Yao-style bounds the outcome probabilities are conditioned on an
  explicit input distribution.

These exact optima back the paper's ``Maj3`` worked example (PC = 3,
PPC_{1/2} = 5/2, PCR = 8/3) and the optimality claim for Probe_HQS
(Theorem 3.9), and serve as ground truth in the test-suite.

The state space has size ``3^n`` so the computations are intended for
``n`` up to roughly 14.
"""

from __future__ import annotations

import itertools
from functools import lru_cache

from repro.core.coloring import Color, Coloring, ColoringDistribution
from repro.core.strategy_tree import Leaf, ProbeNode, StrategyNode, StrategyTree
from repro.systems.base import QuorumSystem
from repro.systems.boolean import CharacteristicFunction

#: Hard cap on the universe size accepted by the exact solvers.
EXACT_LIMIT = 16


def _check_size(system: QuorumSystem) -> None:
    if system.n > EXACT_LIMIT:
        raise ValueError(
            f"exact probe-complexity computation is limited to n <= {EXACT_LIMIT}; "
            f"{system.name} has n = {system.n}"
        )


class ExactSolver:
    """Dynamic-programming solver for optimal probe strategies.

    One solver instance caches knowledge-state values per (system, model)
    combination; create a fresh instance per query.
    """

    def __init__(self, system: QuorumSystem) -> None:
        _check_size(system)
        self._system = system
        self._f = CharacteristicFunction(system)
        self._universe = tuple(sorted(system.universe))

    # -- deterministic worst case (PC) -------------------------------------------

    def probe_complexity(self) -> int:
        """The deterministic worst-case probe complexity ``PC(S)``."""

        @lru_cache(maxsize=None)
        def value(green: frozenset[int], red: frozenset[int]) -> int:
            if self._f.witness_settled(green, red) is not None:
                return 0
            remaining = [e for e in self._universe if e not in green and e not in red]
            return 1 + min(
                max(value(green | {e}, red), value(green, red | {e}))
                for e in remaining
            )

        return value(frozenset(), frozenset())

    def is_evasive(self) -> bool:
        """True when ``PC(S) = n``, i.e. the system is evasive.

        The paper (Lemma 2.2, from [PW02]) notes that Maj, Wheel, CW and
        Tree are all evasive.
        """
        return self.probe_complexity() == self._system.n

    # -- probabilistic model (PPC_p) ------------------------------------------------

    def probabilistic_probe_complexity(self, p: float) -> float:
        """The optimal expected probe count ``PPC_p(S)`` in the i.i.d. model."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"failure probability must be in [0, 1], got {p}")
        q = 1.0 - p

        @lru_cache(maxsize=None)
        def value(green: frozenset[int], red: frozenset[int]) -> float:
            if self._f.witness_settled(green, red) is not None:
                return 0.0
            remaining = [e for e in self._universe if e not in green and e not in red]
            return 1.0 + min(
                q * value(green | {e}, red) + p * value(green, red | {e})
                for e in remaining
            )

        return value(frozenset(), frozenset())

    def optimal_strategy_tree(self, p: float) -> StrategyTree:
        """An optimal strategy tree for the probabilistic model at ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"failure probability must be in [0, 1], got {p}")
        q = 1.0 - p

        @lru_cache(maxsize=None)
        def value(green: frozenset[int], red: frozenset[int]) -> float:
            if self._f.witness_settled(green, red) is not None:
                return 0.0
            remaining = [e for e in self._universe if e not in green and e not in red]
            return 1.0 + min(
                q * value(green | {e}, red) + p * value(green, red | {e})
                for e in remaining
            )

        def build(green: frozenset[int], red: frozenset[int]) -> StrategyNode:
            settled = self._f.witness_settled(green, red)
            if settled is not None:
                return Leaf(settled)
            remaining = [e for e in self._universe if e not in green and e not in red]
            best = min(
                remaining,
                key=lambda e: q * value(green | {e}, red) + p * value(green, red | {e}),
            )
            return ProbeNode(
                element=best,
                on_green=build(green | {best}, red),
                on_red=build(green, red | {best}),
            )

        return StrategyTree(self._system, build(frozenset(), frozenset()))

    def optimal_worst_case_tree(self) -> StrategyTree:
        """A strategy tree achieving the deterministic worst-case optimum."""

        @lru_cache(maxsize=None)
        def value(green: frozenset[int], red: frozenset[int]) -> int:
            if self._f.witness_settled(green, red) is not None:
                return 0
            remaining = [e for e in self._universe if e not in green and e not in red]
            return 1 + min(
                max(value(green | {e}, red), value(green, red | {e}))
                for e in remaining
            )

        def build(green: frozenset[int], red: frozenset[int]) -> StrategyNode:
            settled = self._f.witness_settled(green, red)
            if settled is not None:
                return Leaf(settled)
            remaining = [e for e in self._universe if e not in green and e not in red]
            best = min(
                remaining,
                key=lambda e: max(value(green | {e}, red), value(green, red | {e})),
            )
            return ProbeNode(
                element=best,
                on_green=build(green | {best}, red),
                on_red=build(green, red | {best}),
            )

        return StrategyTree(self._system, build(frozenset(), frozenset()))

    # -- best deterministic strategy under an input distribution (Yao) ---------------

    def best_deterministic_under(self, distribution: ColoringDistribution) -> float:
        """Minimum expected probes of a deterministic strategy under ``distribution``.

        By Yao's principle (Section 4) this is a lower bound on the
        randomized worst-case probe complexity ``PCR(S)`` for any input
        distribution.  The strategy must still terminate with a proper
        witness (a monochromatic certificate among probed elements), exactly
        as in the paper's model.
        """
        if distribution.n != self._system.n:
            raise ValueError("distribution universe does not match the system")
        support = distribution.support

        @lru_cache(maxsize=None)
        def value(green: frozenset[int], red: frozenset[int]) -> float:
            if self._f.witness_settled(green, red) is not None:
                return 0.0
            consistent = [
                w
                for w in support
                if green <= w.coloring.green_elements
                and red <= w.coloring.red_elements
            ]
            total = sum(w.probability for w in consistent)
            if total == 0:
                # Unreachable knowledge state under this distribution; its
                # cost never contributes to the expectation.
                return 0.0
            remaining = [e for e in self._universe if e not in green and e not in red]
            best = float("inf")
            for e in remaining:
                green_mass = sum(
                    w.probability for w in consistent if w.coloring.is_green(e)
                )
                prob_green = green_mass / total
                cost = (
                    1.0
                    + prob_green * value(green | {e}, red)
                    + (1.0 - prob_green) * value(green, red | {e})
                )
                best = min(best, cost)
            return best

        return value(frozenset(), frozenset())


# -- convenience wrappers --------------------------------------------------------------


def probe_complexity(system: QuorumSystem) -> int:
    """Exact deterministic worst-case probe complexity ``PC(S)``."""
    return ExactSolver(system).probe_complexity()


def probabilistic_probe_complexity(system: QuorumSystem, p: float = 0.5) -> float:
    """Exact probabilistic probe complexity ``PPC_p(S)``."""
    return ExactSolver(system).probabilistic_probe_complexity(p)


def yao_lower_bound(system: QuorumSystem, distribution: ColoringDistribution) -> float:
    """Yao lower bound on ``PCR(S)`` from an explicit hard distribution."""
    return ExactSolver(system).best_deterministic_under(distribution)


def permutation_algorithm_worst_expected(system: QuorumSystem) -> float:
    """Exact worst-case expected probes of the uniform random-permutation
    algorithm.

    The algorithm draws a uniformly random order of the universe and probes
    in that order until a witness is found.  For each input coloring the
    expected probe count is averaged over all ``n!`` permutations exactly,
    and the maximum over all ``2^n`` colorings is returned.  This matches the
    paper's ``Maj3`` example, where the value is ``8/3``, and the analysis of
    Algorithm R_Probe_Maj (Theorem 4.2).

    Only feasible for very small systems (``n <= 7`` or so).
    """
    if system.n > 8:
        raise ValueError("exact permutation analysis is limited to n <= 8")
    f = CharacteristicFunction(system)
    universe = sorted(system.universe)
    worst = 0.0
    for red_size in range(system.n + 1):
        for red in itertools.combinations(universe, red_size):
            coloring = Coloring(system.n, red)
            total = 0.0
            count = 0
            for order in itertools.permutations(universe):
                probes = _probes_in_order(f, coloring, order)
                total += probes
                count += 1
            expected = total / count
            worst = max(worst, expected)
    return worst


def _probes_in_order(
    f: CharacteristicFunction, coloring: Coloring, order: tuple[int, ...]
) -> int:
    green: set[int] = set()
    red: set[int] = set()
    for i, element in enumerate(order, start=1):
        if coloring[element] is Color.GREEN:
            green.add(element)
        else:
            red.add(element)
        if f.witness_settled(frozenset(green), frozenset(red)) is not None:
            return i
    return len(order)
