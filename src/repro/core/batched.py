"""Vectorized Monte-Carlo estimation over coloring batches.

The per-trial estimators in :mod:`repro.core.estimator` construct a fresh
:class:`~repro.core.coloring.Coloring`, a fresh oracle and a fresh Python
probe loop for every sample.  For the paper's structured algorithms the
whole trial batch can instead be evaluated with numpy: a batch of colorings
is one boolean matrix (``True`` = red, column ``i`` ⇔ element ``i + 1``,
the same convention as :meth:`Coloring.random_batch`), and the probe count
of every trial falls out of cumulative-sum / argmax / per-level gate
arithmetic over that matrix.

Kernels are looked up in a registry keyed by the *exact* algorithm class
and a **backend** (:func:`register_kernel`); a subclass overrides probing
behavior, so it never inherits its parent's kernel and must register its
own.  The default ``numpy`` backend evaluates bool matrices; the
``bitpacked`` backend (:mod:`repro.core.bitpacked`) evaluates 64 trials
per ``uint64`` word for the deterministic algorithms, bit-identically;
the optional ``compiled`` backend (:mod:`repro.core.compiled`) fuses the
same bit-sliced recurrences into numba-jitted loops and requires numba.
:func:`resolve_backend` maps a requested backend — including the ``auto``
policy, which prefers ``compiled`` → ``bitpacked`` → ``numpy`` — to a
concrete one, rejecting the packed backends loudly for randomized
algorithms.  Registered out of the box under ``numpy``:

* :class:`~repro.algorithms.majority.ProbeMaj` — fixed-order scan until one
  color reaches the quorum size (cumulative counts + argmax);
* :class:`~repro.algorithms.majority.RProbeMaj` — the same scan after a
  per-trial uniform permutation;
* :class:`~repro.algorithms.crumbling_walls.ProbeCW` — the top-down wall
  scan of Fig. 5, one vector step per row;
* :class:`~repro.algorithms.crumbling_walls.RProbeCW` — the bottom-up
  randomized scan of Theorem 4.4, one vector step per row over the
  still-active trials;
* the five gate-tree algorithms — Probe_Tree, R_Probe_Tree, Probe_HQS,
  R_Probe_HQS and IR_Probe_HQS — through the level-synchronous engine of
  :mod:`repro.core.batched_gates`.

Every deterministic kernel reproduces the sequential algorithm's probe
count *exactly* for a given input matrix, and the randomized ones draw
from the same distribution over probe orders, which the equivalence tests
assert trial-by-trial.  ``estimate_average_probes_batched`` transparently
falls back to the per-trial loop for algorithms without a kernel.
"""

from __future__ import annotations

import os
import random
import weakref
from collections.abc import Callable

import numpy as np

from repro.algorithms.base import ProbingAlgorithm
from repro.algorithms.crumbling_walls import ProbeCW, RProbeCW
from repro.algorithms.hqs import IRProbeHQS, ProbeHQS, RProbeHQS
from repro.algorithms.majority import ProbeMaj, RProbeMaj
from repro.algorithms.tree import ProbeTree, RProbeTree
from repro.core.batched_gates import (
    ir_probe_hqs_kernel,
    probe_hqs_kernel,
    probe_tree_kernel,
    r_probe_hqs_kernel,
    r_probe_tree_kernel,
)
from repro.core.coloring import Coloring, as_numpy_generator as as_generator
from repro.core.distributions import (
    BernoulliSource,
    ColoringSource,
    sample_bernoulli_matrix,
)
from repro.core.estimator import Estimate

#: A batched kernel: ``(algorithm, red, rng) -> (probes, witness_green)``
#: over an already-validated ``(trials, n)`` bool matrix (``numpy``
#: backend) or a :class:`~repro.core.bitpacked.PackedColorings`
#: (``bitpacked`` backend).
BatchedKernel = Callable[
    [ProbingAlgorithm, np.ndarray, object], tuple[np.ndarray, np.ndarray]
]

#: Concrete kernel backends a kernel can be registered under.
BACKENDS = ("numpy", "bitpacked", "compiled")

#: What callers may request: a concrete backend or the ``auto`` policy.
BACKEND_CHOICES = ("numpy", "bitpacked", "compiled", "auto")

#: ``auto`` stays on numpy below this many trials: the bit-sliced kernels
#: amortize their per-element Python loop over the 64-trial words, so tiny
#: batches don't cover the fixed per-column cost.  The same threshold gates
#: the compiled backend, whose first call additionally pays a JIT warmup.
#: Override per-process with :func:`set_auto_backend_min_trials` or the
#: ``REPRO_AUTO_BACKEND_MIN_TRIALS`` environment variable.
AUTO_BITPACKED_MIN_TRIALS = 8192

#: Environment variable overriding the ``auto`` backend trial threshold.
AUTO_BACKEND_MIN_TRIALS_ENV = "REPRO_AUTO_BACKEND_MIN_TRIALS"

_AUTO_MIN_TRIALS_OVERRIDE: int | None = None


def set_auto_backend_min_trials(value: int | None) -> None:
    """Set (or with ``None`` clear) the process-wide ``auto`` trial threshold.

    Takes precedence over the ``REPRO_AUTO_BACKEND_MIN_TRIALS`` environment
    variable; the CLI's ``--auto-backend-min-trials`` flag lands here.
    """
    global _AUTO_MIN_TRIALS_OVERRIDE
    if value is not None and value < 0:
        raise ValueError(f"auto-backend trial threshold must be >= 0, got {value}")
    _AUTO_MIN_TRIALS_OVERRIDE = value


def auto_backend_min_trials() -> int:
    """The trial count at which ``auto`` switches off the numpy backend.

    Resolution order: :func:`set_auto_backend_min_trials` override, then the
    ``REPRO_AUTO_BACKEND_MIN_TRIALS`` environment variable, then the
    :data:`AUTO_BITPACKED_MIN_TRIALS` default.  A malformed or negative
    environment value fails loudly rather than silently repinning ``auto``.
    """
    if _AUTO_MIN_TRIALS_OVERRIDE is not None:
        return _AUTO_MIN_TRIALS_OVERRIDE
    raw = os.environ.get(AUTO_BACKEND_MIN_TRIALS_ENV)
    if raw is None:
        return AUTO_BITPACKED_MIN_TRIALS
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{AUTO_BACKEND_MIN_TRIALS_ENV}={raw!r} is not an integer"
        ) from None
    if value < 0:
        raise ValueError(
            f"{AUTO_BACKEND_MIN_TRIALS_ENV} must be >= 0, got {value}"
        )
    return value

_KERNELS: dict[tuple[type, str], BatchedKernel] = {}


def register_kernel(
    algorithm_cls: type, kernel: BatchedKernel, backend: str = "numpy"
) -> BatchedKernel:
    """Register a vectorized kernel for an algorithm class under a backend.

    Dispatch is by exact type — subclasses change probing behavior, so they
    must register their own kernel rather than silently inheriting one.
    Returns the kernel so future in-module kernels can keep registration
    next to their definition.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown kernel backend {backend!r}; expected one of {BACKENDS}")
    _KERNELS[(algorithm_cls, backend)] = kernel
    return kernel


def kernel_for(
    algorithm: ProbingAlgorithm, backend: str = "numpy"
) -> BatchedKernel | None:
    """The registered kernel for this algorithm under ``backend``, or ``None``."""
    return _KERNELS.get((type(algorithm), backend))


def resolve_backend(
    algorithm: ProbingAlgorithm, backend: str, trials: int | None = None
) -> str:
    """Resolve a requested backend (or the ``auto`` policy) to a concrete one.

    ``bitpacked`` and ``compiled`` are *demands*: they fail loudly when the
    algorithm is randomized (the packed kernels have no per-trial RNG
    contract — the numpy path is not a silent substitute), when no kernel
    is registered, or — for ``compiled`` — when numba is not importable.
    ``auto`` prefers ``compiled`` → ``bitpacked`` → ``numpy``: it picks the
    fastest backend that is available for the algorithm when the run is
    large enough (``trials`` of at least :func:`auto_backend_min_trials`;
    ``None`` — adaptive runs — counts as large), and falls back to
    ``numpy`` otherwise.
    """
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKEND_CHOICES}"
        )
    if backend == "numpy":
        return "numpy"
    randomized = getattr(algorithm, "randomized", False)
    if backend == "compiled":
        if randomized:
            raise ValueError(
                f"backend 'compiled' supports deterministic algorithms only; "
                f"{algorithm.name} is randomized (run it with backend='numpy')"
            )
        if kernel_for(algorithm, backend="compiled") is None:
            raise ValueError(
                f"no compiled kernel registered for {algorithm.name}"
            )
        from repro.core import compiled as _compiled_mod

        if not _compiled_mod.NUMBA_AVAILABLE:
            raise ValueError(
                "backend 'compiled' requires numba, which is not installed; "
                "install numba or request backend='auto' to fall back to "
                "the bitpacked backend"
            )
        return "compiled"
    has_packed = kernel_for(algorithm, backend="bitpacked") is not None
    if backend == "bitpacked":
        if randomized:
            raise ValueError(
                f"backend 'bitpacked' supports deterministic algorithms only; "
                f"{algorithm.name} is randomized (run it with backend='numpy')"
            )
        if not has_packed:
            raise ValueError(
                f"no bitpacked kernel registered for {algorithm.name}"
            )
        return "bitpacked"
    if randomized:
        return "numpy"
    if trials is not None and trials < auto_backend_min_trials():
        return "numpy"
    from repro.core import compiled as _compiled_mod

    if (
        _compiled_mod.NUMBA_AVAILABLE
        and kernel_for(algorithm, backend="compiled") is not None
    ):
        return "compiled"
    if has_packed:
        return "bitpacked"
    return "numpy"


#: Per-algorithm-instance scratch space for kernel precomputation (probe
#: orders, sorted wall-row column arrays, reusable ones-buffers).  Keyed
#: weakly by the algorithm object so the streaming engine's chunk loop —
#: which invokes the same kernel hundreds of times on one algorithm —
#: rebuilds these exactly once instead of once per chunk, and the cache
#: dies with the algorithm.
_KERNEL_SCRATCH: "weakref.WeakKeyDictionary[ProbingAlgorithm, dict]" = (
    weakref.WeakKeyDictionary()
)


def kernel_scratch(algorithm: ProbingAlgorithm) -> dict:
    """The (created-on-demand) scratch dict for ``algorithm``."""
    scratch = _KERNEL_SCRATCH.get(algorithm)
    if scratch is None:
        scratch = {}
        _KERNEL_SCRATCH[algorithm] = scratch
    return scratch


def scratch_ones(algorithm: ProbingAlgorithm, shape: tuple[int, ...]) -> np.ndarray:
    """A cached all-ones int64 array of ``shape``.

    The returned buffer is shared across calls and is read-only — writing
    to it raises, so a kernel that mutates its leaf-level probe counts
    fails loudly instead of corrupting every later chunk.
    """
    scratch = kernel_scratch(algorithm)
    ones = scratch.get("ones")
    if ones is None or ones.shape != shape:
        ones = np.ones(shape, dtype=np.int64)
        ones.flags.writeable = False
        scratch["ones"] = ones
    return ones


def sample_red_matrix(n: int, p: float, trials: int, rng=None) -> np.ndarray:
    """Sample ``trials`` i.i.d. colorings as a ``(trials, n)`` bool matrix.

    Alias of :func:`repro.core.distributions.sample_bernoulli_matrix` (the
    single i.i.d. implementation); prefer drawing through a
    :class:`~repro.core.distributions.ColoringSource` so non-i.i.d.
    scenarios reach the same kernels.
    """
    return sample_bernoulli_matrix(n, p, trials, rng)


def supports_batched(algorithm: ProbingAlgorithm, backend: str = "numpy") -> bool:
    """True when a vectorized kernel exists for this algorithm and backend."""
    return kernel_for(algorithm, backend) is not None


def batched_run(
    algorithm: ProbingAlgorithm, red: np.ndarray, rng=None
) -> tuple[np.ndarray, np.ndarray]:
    """Run every trial of ``red`` through the algorithm's vectorized kernel.

    Returns ``(probes, witness_green)``: the per-trial probe counts and
    witness colors.  Raises :class:`TypeError` when no kernel exists; use
    :func:`supports_batched` or :func:`batched_or_sequential_run` when the
    algorithm may be arbitrary.
    """
    red = np.asarray(red, dtype=bool)
    if red.ndim != 2 or red.shape[1] != algorithm.system.n:
        raise ValueError(
            f"red matrix must have shape (trials, {algorithm.system.n})"
        )
    kernel = kernel_for(algorithm)
    if kernel is None:
        raise TypeError(f"no batched kernel for {algorithm.name}")
    return kernel(algorithm, red, rng)


def batched_or_sequential_run(
    algorithm: ProbingAlgorithm, red: np.ndarray, rng=None
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`batched_run`, falling back to the per-trial loop."""
    if supports_batched(algorithm):
        return batched_run(algorithm, red, rng)
    return _sequential_run(algorithm, red, rng)


def _sequential_run(
    algorithm: ProbingAlgorithm, red: np.ndarray, rng=None
) -> tuple[np.ndarray, np.ndarray]:
    fallback_rng = rng if isinstance(rng, random.Random) else random.Random(
        int(as_generator(rng).integers(2**63))
    )
    probes = np.empty(red.shape[0], dtype=np.int64)
    witness_green = np.empty(red.shape[0], dtype=bool)
    for t in range(red.shape[0]):
        run = algorithm.run_on(Coloring.from_red_row(red[t]), rng=fallback_rng)
        probes[t] = run.probes
        witness_green[t] = run.witness.is_green
    return probes, witness_green


# -- majority / crumbling-wall kernels --------------------------------------------


def _probe_maj_kernel(algorithm, red, rng=None):
    scratch = kernel_scratch(algorithm)
    columns = scratch.get("maj_columns")
    if columns is None:
        columns = np.asarray(algorithm.order, dtype=np.intp) - 1
        scratch["maj_columns"] = columns
    return _majority_scan_kernel(algorithm.system.quorum_size, red[:, columns])


def _r_probe_maj_kernel(algorithm, red, rng=None):
    generator = as_generator(rng)
    scratch = kernel_scratch(algorithm)
    keys = scratch.get("maj_keys")
    if keys is None or keys.shape != red.shape:
        keys = np.empty(red.shape, dtype=np.float64)
        scratch["maj_keys"] = keys
    generator.random(out=keys)
    order = keys.argsort(axis=1)
    permuted = np.take_along_axis(red, order, axis=1)
    return _majority_scan_kernel(algorithm.system.quorum_size, permuted)


def _majority_scan_kernel(
    target: int, red_in_order: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-order majority scan: stop when either color reaches ``target``.

    ``red_in_order`` is the red matrix with columns already arranged in
    probe order.  Only the majority color can ever reach the quorum size
    ``target = (n + 1) / 2``, so the stopping color is the majority color.
    """
    trials, n = red_in_order.shape
    cum_red = np.cumsum(red_in_order, axis=1)
    cum_green = np.arange(1, n + 1) - cum_red
    stopped = (cum_red >= target) | (cum_green >= target)
    probes = stopped.argmax(axis=1) + 1
    witness_green = cum_red[:, -1] < target
    return probes.astype(np.int64), witness_green


def _cw_row_columns(algorithm) -> list[np.ndarray]:
    """Per-wall-row sorted 0-based column arrays, built once per algorithm.

    Rebuilding these (``sorted`` + ``asarray`` per row) used to dominate
    small-chunk invocations of the CW kernels; the streaming engine calls
    the kernel once per chunk, so the arrays are cached in the algorithm's
    kernel scratch and reused across chunks.
    """
    scratch = kernel_scratch(algorithm)
    columns = scratch.get("cw_columns")
    if columns is None:
        columns = [
            np.asarray(sorted(row), dtype=np.intp) - 1
            for row in algorithm.system.rows
        ]
        scratch["cw_columns"] = columns
    return columns


def _probe_cw_dispatch(algorithm, red, rng=None):
    shuffle = algorithm.within_row_order == "random"
    generator = as_generator(rng) if shuffle else None
    return _probe_cw_kernel(red, _cw_row_columns(algorithm), generator)


def _probe_cw_kernel(
    red: np.ndarray,
    row_columns: list[np.ndarray],
    generator: np.random.Generator | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm Probe_CW (Fig. 5), one vector step per wall row.

    Maintains the per-trial mode; in each row the probe count is the
    position of the first element matching the mode, or the whole row width
    (upon which the mode flips).  ``generator`` is set when the in-row order
    is randomized (the order-ablation variant).
    """
    trials = red.shape[0]
    first = row_columns[0][0]
    mode_red = red[:, first].copy()
    probes = np.ones(trials, dtype=np.int64)
    for columns in row_columns[1:]:
        width = columns.size
        row_red = red[:, columns]
        if generator is not None:
            order = generator.random(row_red.shape).argsort(axis=1)
            row_red = np.take_along_axis(row_red, order, axis=1)
        matches_mode = row_red == mode_red[:, None]
        found = matches_mode.any(axis=1)
        first_match = matches_mode.argmax(axis=1)
        probes += np.where(found, first_match + 1, width)
        mode_red ^= ~found
    return probes, ~mode_red


def _r_probe_cw_dispatch(algorithm, red, rng=None):
    return _r_probe_cw_kernel(red, _cw_row_columns(algorithm), as_generator(rng))


def _r_probe_cw_kernel(
    red: np.ndarray,
    row_columns: list[np.ndarray],
    generator: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Algorithm R_Probe_CW (Theorem 4.4), bottom-up over active trials.

    Each row is probed in a fresh uniform order until both colors have been
    seen; a trial stops at its first monochromatic row.  The probe count in
    a both-colors row is one past the later of the two first-occurrence
    positions.
    """
    trials = red.shape[0]
    probes = np.zeros(trials, dtype=np.int64)
    witness_green = np.zeros(trials, dtype=bool)
    active = np.arange(trials)
    for columns in reversed(row_columns):
        width = columns.size
        row_red = red[np.ix_(active, columns)]
        if width > 1:
            order = generator.random(row_red.shape).argsort(axis=1)
            row_red = np.take_along_axis(row_red, order, axis=1)
        any_red = row_red.any(axis=1)
        any_green = ~row_red.all(axis=1)
        both = any_red & any_green
        first_red = row_red.argmax(axis=1)
        first_green = (~row_red).argmax(axis=1)
        probes[active] += np.where(
            both, np.maximum(first_red, first_green) + 1, width
        )
        finished = active[~both]
        witness_green[finished] = any_green[~both]
        active = active[both]
        if active.size == 0:
            break
    if active.size:  # pragma: no cover - impossible when the top row has width 1
        raise RuntimeError("R_Probe_CW scanned all rows without a monochromatic row")
    return probes, witness_green


register_kernel(ProbeMaj, _probe_maj_kernel)
register_kernel(RProbeMaj, _r_probe_maj_kernel)
register_kernel(ProbeCW, _probe_cw_dispatch)
register_kernel(RProbeCW, _r_probe_cw_dispatch)
register_kernel(ProbeTree, probe_tree_kernel)
register_kernel(RProbeTree, r_probe_tree_kernel)
register_kernel(ProbeHQS, probe_hqs_kernel)
register_kernel(RProbeHQS, r_probe_hqs_kernel)
register_kernel(IRProbeHQS, ir_probe_hqs_kernel)

# The bitpacked and compiled backends register their kernels on import;
# importing here (after the registry and scratch helpers exist — both
# modules import back into this one) makes every backend available as soon
# as the registry is.  The compiled module always registers its kernels —
# their pure-Python forms are exercised by tests even without numba — but
# ``resolve_backend`` only hands out ``"compiled"`` when numba is present.
from repro.core import bitpacked as _bitpacked  # noqa: E402,F401  (registration side effect)
from repro.core import compiled as _compiled  # noqa: E402,F401  (registration side effect)


# -- estimators -------------------------------------------------------------------


def estimate_average_probes_batched(
    algorithm: ProbingAlgorithm,
    p: float,
    trials: int = 1000,
    seed: int | None = None,
) -> Estimate:
    """Vectorized counterpart of
    :func:`repro.core.estimator.estimate_average_probes`.

    Samples the whole trial batch as one boolean matrix and evaluates the
    algorithm's kernel over it; statistically equivalent to the per-trial
    loop (identical probe-count distribution) but orders of magnitude
    faster on large universes.
    """
    return estimate_average_source_batched(
        algorithm, BernoulliSource(algorithm.system.n, p), trials=trials, seed=seed
    )


def estimate_average_source_batched(
    algorithm: ProbingAlgorithm,
    source: ColoringSource,
    trials: int = 1000,
    seed: int | None = None,
) -> Estimate:
    """Estimate expected probes when inputs come from a
    :class:`~repro.core.distributions.ColoringSource`.

    The whole trial batch is drawn with ``source.sample_matrix`` and
    evaluated through the algorithm's vectorized kernel, so *any*
    registered scenario — exact-count, correlated groups, the Yao hard
    families — runs at batched speed, not just the i.i.d. model.

    This is the one-shot building block: it materializes the full
    ``(trials, n)`` matrix.  For large trial counts, adaptive stopping
    or process sharding, use the streaming engine
    (:func:`repro.core.engine.stream_probes`), whose chunked means are
    byte-identical to this path for deterministic kernels under
    stream-aligned sources.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    generator = as_generator(seed)
    red = source.sample_matrix(algorithm.system.n, trials, generator)
    probes, _ = batched_or_sequential_run(algorithm, red, generator)
    return Estimate.from_samples(probes)


def estimate_average_under_batched(
    algorithm: ProbingAlgorithm,
    matrix_sampler,
    trials: int = 1000,
    seed: int | None = None,
) -> Estimate:
    """Vectorized counterpart of
    :func:`repro.core.estimator.estimate_average_under`.

    ``matrix_sampler(trials, generator)`` must return a ``(trials, n)``
    bool red matrix — e.g. the batched Yao hard-distribution samplers of
    :mod:`repro.analysis.yao` wrapped in a ``functools.partial``.  The
    whole batch then runs through the algorithm's kernel at once.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    generator = as_generator(seed)
    red = matrix_sampler(trials, generator)
    probes, _ = batched_or_sequential_run(algorithm, red, generator)
    return Estimate.from_samples(probes)


def estimate_expected_probes_on_batched(
    algorithm: ProbingAlgorithm,
    coloring: Coloring,
    trials: int = 1000,
    seed: int | None = None,
) -> Estimate:
    """Vectorized counterpart of
    :func:`repro.core.estimator.estimate_expected_probes_on`.

    Replicates one fixed input coloring across the batch; only the
    algorithm's randomness varies between trials.  Deterministic algorithms
    are evaluated once, exactly as in the sequential version.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if not algorithm.randomized:
        run = algorithm.run_on(coloring)
        return Estimate(mean=float(run.probes), std=0.0, trials=1)
    generator = as_generator(seed)
    row = np.zeros(coloring.n, dtype=bool)
    for e in coloring.red_elements:
        row[e - 1] = True
    red = np.broadcast_to(row, (trials, coloring.n))
    probes, _ = batched_or_sequential_run(algorithm, red, generator)
    return Estimate.from_samples(probes)
