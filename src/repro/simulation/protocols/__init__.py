"""The two motivating applications built on quorum probing: mutual
exclusion and replicated storage."""

from repro.simulation.protocols.mutex import (
    AcquisitionResult,
    MutexStats,
    QuorumMutex,
    run_mutex_workload,
)
from repro.simulation.protocols.replication import (
    OperationResult,
    ReplicatedRegister,
    StoreStats,
    run_replication_workload,
)

__all__ = [
    "AcquisitionResult",
    "MutexStats",
    "QuorumMutex",
    "run_mutex_workload",
    "OperationResult",
    "ReplicatedRegister",
    "StoreStats",
    "run_replication_workload",
]
