"""Quorum-based mutual exclusion over the simulated cluster.

This is the first motivating application mentioned in the paper's
introduction: a client may enter the critical section only after collecting
permission (a lock) from every member of some quorum; pairwise intersection
of quorums guarantees mutual exclusion.  When processors can fail, the
client must first *probe* for a live quorum — which is exactly the problem
the paper studies — and only then try to lock its members.

The implementation is intentionally sequential (requests are processed one
at a time by a coordinator loop): the point of the example is to measure how
much probing work different coteries and probing algorithms require per
critical-section entry under failures, not to model message-level
concurrency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algorithms.base import ProbingAlgorithm
from repro.core.coloring import Color
from repro.simulation.cluster import ClusterProbeOracle, SimulatedCluster


@dataclass(frozen=True)
class AcquisitionResult:
    """Outcome of one critical-section request."""

    client: str
    acquired: bool
    probes: int
    elapsed: float
    quorum: frozenset[int] | None
    reason: str = ""


@dataclass
class MutexStats:
    """Aggregate statistics of a mutual-exclusion run."""

    attempts: int = 0
    successes: int = 0
    failures_no_quorum: int = 0
    failures_contention: int = 0
    total_probes: int = 0
    total_time: float = 0.0
    history: list[AcquisitionResult] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0

    @property
    def probes_per_attempt(self) -> float:
        return self.total_probes / self.attempts if self.attempts else 0.0


class QuorumMutex:
    """A lock manager granting the critical section through quorum consensus.

    Parameters
    ----------
    cluster:
        The simulated cluster whose nodes hold the locks.
    prober:
        The probing algorithm used to find a live quorum (any algorithm from
        :mod:`repro.algorithms`); its system defines the coterie in use.
    seed:
        Seed for the prober's randomness.
    """

    def __init__(
        self,
        cluster: SimulatedCluster,
        prober: ProbingAlgorithm,
        seed: int | None = None,
    ) -> None:
        if prober.system.n != cluster.n:
            raise ValueError("prober's quorum system does not match the cluster size")
        self._cluster = cluster
        self._prober = prober
        self._rng = random.Random(seed)
        self._locks: dict[int, str] = {}
        self._holder: str | None = None
        self._held_quorum: frozenset[int] = frozenset()
        self.stats = MutexStats()

    @property
    def holder(self) -> str | None:
        """Client currently inside the critical section, if any."""
        return self._holder

    # -- client operations ---------------------------------------------------------------

    def acquire(self, client: str) -> AcquisitionResult:
        """Attempt to enter the critical section.

        The client probes for a live quorum; if one exists and none of its
        members is locked by another client, it locks all of them and enters
        the critical section.
        """
        self.stats.attempts += 1
        start = self._cluster.now
        oracle = ClusterProbeOracle(self._cluster)
        run = self._prober.run(oracle, rng=self._rng)
        probes = oracle.probe_count
        elapsed = self._cluster.now - start
        self.stats.total_probes += probes
        self.stats.total_time += elapsed

        if run.witness.color is Color.RED:
            result = AcquisitionResult(
                client, False, probes, elapsed, None, reason="no live quorum"
            )
            self.stats.failures_no_quorum += 1
            self.stats.history.append(result)
            return result

        quorum = run.witness.elements
        blocked = [e for e in quorum if self._locks.get(e, client) != client]
        if blocked:
            result = AcquisitionResult(
                client,
                False,
                probes,
                elapsed,
                quorum,
                reason=f"members {sorted(blocked)} locked by another client",
            )
            self.stats.failures_contention += 1
            self.stats.history.append(result)
            return result

        for e in quorum:
            self._locks[e] = client
        self._holder = client
        self._held_quorum = quorum
        self.stats.successes += 1
        result = AcquisitionResult(client, True, probes, elapsed, quorum)
        self.stats.history.append(result)
        return result

    def release(self, client: str) -> None:
        """Leave the critical section and release all locks held by ``client``."""
        if self._holder != client:
            raise RuntimeError(f"{client} does not hold the critical section")
        for e in list(self._locks):
            if self._locks[e] == client:
                del self._locks[e]
        self._holder = None
        self._held_quorum = frozenset()

    # -- invariant ------------------------------------------------------------------------

    def assert_mutual_exclusion(self, other: "QuorumMutex") -> None:
        """Check that two lock managers over the same coterie cannot both be held.

        Because any two quorums intersect, the lock tables of two holders
        would have to share an element; used by the tests and examples as a
        safety check.
        """
        if self._holder is not None and other._holder is not None:
            overlap = self._held_quorum & other._held_quorum
            if not overlap:
                raise AssertionError(
                    "two clients hold disjoint quorums: mutual exclusion violated"
                )


def run_mutex_workload(
    mutex: QuorumMutex,
    clients: list[str],
    requests: int,
    failure_rate_between_requests: float = 0.0,
    seed: int | None = None,
) -> MutexStats:
    """Drive a simple closed-loop workload against a :class:`QuorumMutex`.

    Clients take turns requesting the critical section; a successful holder
    immediately releases before the next request.  Between requests each
    node crashes with probability ``failure_rate_between_requests`` and
    recovers with the same probability, exercising the probing layer under a
    changing failure pattern.
    """
    rng = random.Random(seed)
    cluster = mutex._cluster
    for i in range(requests):
        client = clients[i % len(clients)]
        result = mutex.acquire(client)
        if result.acquired:
            mutex.release(client)
        for e in range(1, cluster.n + 1):
            if rng.random() < failure_rate_between_requests:
                if cluster.is_up(e):
                    cluster.fail(e)
                else:
                    cluster.recover(e)
    return mutex.stats
