"""Quorum-replicated read/write register over the simulated cluster.

The second motivating application from the paper's introduction: a data item
is replicated on every processor; a write stores (value, version) on all
members of some live quorum, a read collects (value, version) pairs from all
members of some live quorum and returns the value with the highest version.
Quorum intersection guarantees that a read always observes the latest
completed write — provided a live quorum can be found, which is again the
probing problem studied by the paper.

Probing and data access are measured separately so the examples can show how
much of the operation cost is spent *finding* a live quorum with different
coteries and probing algorithms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algorithms.base import ProbingAlgorithm
from repro.core.coloring import Color
from repro.simulation.cluster import ClusterProbeOracle, SimulatedCluster


@dataclass
class Replica:
    """Per-node replica state."""

    value: object = None
    version: int = 0


@dataclass(frozen=True)
class OperationResult:
    """Outcome of one read or write."""

    kind: str
    ok: bool
    value: object
    version: int
    probes: int
    accesses: int
    elapsed: float
    reason: str = ""


@dataclass
class StoreStats:
    """Aggregate statistics of a replicated-register run."""

    reads: int = 0
    writes: int = 0
    failed_operations: int = 0
    total_probes: int = 0
    total_accesses: int = 0
    stale_reads: int = 0
    history: list[OperationResult] = field(default_factory=list)

    @property
    def operations(self) -> int:
        return self.reads + self.writes

    @property
    def probes_per_operation(self) -> float:
        return self.total_probes / self.operations if self.operations else 0.0


class ReplicatedRegister:
    """A single replicated register with quorum reads and writes."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        prober: ProbingAlgorithm,
        seed: int | None = None,
    ) -> None:
        if prober.system.n != cluster.n:
            raise ValueError("prober's quorum system does not match the cluster size")
        self._cluster = cluster
        self._prober = prober
        self._rng = random.Random(seed)
        self._replicas = {e: Replica() for e in range(1, cluster.n + 1)}
        self._next_version = 1
        self._last_committed_version = 0
        self._last_committed_value: object = None
        self.stats = StoreStats()

    # -- quorum discovery -------------------------------------------------------------------

    def _find_live_quorum(self) -> tuple[frozenset[int] | None, int, float]:
        start = self._cluster.now
        oracle = ClusterProbeOracle(self._cluster)
        run = self._prober.run(oracle, rng=self._rng)
        elapsed = self._cluster.now - start
        if run.witness.color is Color.RED:
            return None, oracle.probe_count, elapsed
        return run.witness.elements, oracle.probe_count, elapsed

    # -- operations --------------------------------------------------------------------------

    def write(self, value: object) -> OperationResult:
        """Write ``value`` to all members of a live quorum."""
        self.stats.writes += 1
        quorum, probes, elapsed = self._find_live_quorum()
        self.stats.total_probes += probes
        if quorum is None:
            self.stats.failed_operations += 1
            result = OperationResult(
                "write", False, None, 0, probes, 0, elapsed, reason="no live quorum"
            )
            self.stats.history.append(result)
            return result
        version = self._next_version
        self._next_version += 1
        accesses = 0
        for e in quorum:
            self._replicas[e].value = value
            self._replicas[e].version = version
            accesses += 1
        self.stats.total_accesses += accesses
        self._last_committed_version = version
        self._last_committed_value = value
        result = OperationResult("write", True, value, version, probes, accesses, elapsed)
        self.stats.history.append(result)
        return result

    def read(self) -> OperationResult:
        """Read from all members of a live quorum; return the freshest value."""
        self.stats.reads += 1
        quorum, probes, elapsed = self._find_live_quorum()
        self.stats.total_probes += probes
        if quorum is None:
            self.stats.failed_operations += 1
            result = OperationResult(
                "read", False, None, 0, probes, 0, elapsed, reason="no live quorum"
            )
            self.stats.history.append(result)
            return result
        accesses = 0
        best_version = 0
        best_value: object = None
        for e in quorum:
            replica = self._replicas[e]
            accesses += 1
            if replica.version > best_version:
                best_version = replica.version
                best_value = replica.value
        self.stats.total_accesses += accesses
        if best_version < self._last_committed_version:
            # Can only happen if a write quorum and a read quorum failed to
            # intersect — i.e. if the quorum system were broken.
            self.stats.stale_reads += 1
        result = OperationResult("read", True, best_value, best_version, probes, accesses, elapsed)
        self.stats.history.append(result)
        return result

    # -- consistency check --------------------------------------------------------------------

    @property
    def last_committed(self) -> tuple[object, int]:
        """Value and version of the last successful write."""
        return self._last_committed_value, self._last_committed_version


def run_replication_workload(
    register: ReplicatedRegister,
    operations: int,
    write_fraction: float = 0.3,
    failure_rate_between_ops: float = 0.0,
    seed: int | None = None,
) -> StoreStats:
    """Drive a mixed read/write workload against a replicated register.

    Between operations, each node independently toggles (crash or recover)
    with probability ``failure_rate_between_ops``.
    """
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be in [0, 1]")
    rng = random.Random(seed)
    cluster = register._cluster
    counter = 0
    for _ in range(operations):
        if rng.random() < write_fraction:
            counter += 1
            register.write(f"value-{counter}")
        else:
            register.read()
        for e in range(1, cluster.n + 1):
            if rng.random() < failure_rate_between_ops:
                if cluster.is_up(e):
                    cluster.fail(e)
                else:
                    cluster.recover(e)
    return register.stats
