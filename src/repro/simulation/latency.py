"""Latency models for probe RPCs in the simulated cluster."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod


class LatencyModel(ABC):
    """Distribution of the round-trip time of a single probe RPC."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one round-trip latency (time units)."""

    def mean(self) -> float:
        """Expected round-trip latency (used in analytic summaries)."""
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every probe takes exactly ``value`` time units."""

    def __init__(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError("latency must be nonnegative")
        self._value = value

    def sample(self, rng: random.Random) -> float:
        return self._value

    def mean(self) -> float:
        return self._value


class UniformLatency(LatencyModel):
    """Round-trip latency uniform in ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self._low = low
        self._high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self._low, self._high)

    def mean(self) -> float:
        return (self._low + self._high) / 2.0


class ExponentialLatency(LatencyModel):
    """Exponentially distributed latency with the given mean."""

    def __init__(self, mean: float = 1.0) -> None:
        if mean <= 0:
            raise ValueError("mean latency must be positive")
        self._mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self._mean)

    def mean(self) -> float:
        return self._mean
