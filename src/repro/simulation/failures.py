"""Failure models for the simulated cluster.

The paper's probabilistic model colors every element red independently with
probability ``p``; that is :class:`BernoulliFailures`.  The worst-case model
corresponds to an adversarially chosen red set
(:class:`AdversarialFailures`), and the hard distributions of Section 4 are
exactly-``r``-failures style models (:class:`FixedCountFailures`).  For the
application examples, :class:`CrashRecoveryProcess` additionally drives
crash/repair dynamics over simulated time, and
:class:`CorrelatedGroupFailures` fails whole groups (a rack, a wall row, a
subtree) together to illustrate behaviour outside the i.i.d. assumption.

Every model also converts to a batched
:class:`~repro.core.distributions.ColoringSource` via :meth:`FailureModel.as_source`,
so cluster-style scenarios reach the vectorized kernels of
:mod:`repro.core.batched` instead of per-trial Python loops; custom
subclasses inherit a (slow but correct) scalar-loop fallback source.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.core.coloring import Coloring
from repro.core.distributions import (
    AdversarialSource,
    BernoulliSource,
    ColoringSource,
    CorrelatedGroupsSource,
    FixedCountSource,
)


class FailureModel(ABC):
    """Generator of failure snapshots (one red set per draw)."""

    @abstractmethod
    def sample_failed(self, n: int, rng: random.Random) -> frozenset[int]:
        """Draw the set of failed (red) elements for a universe of size ``n``."""

    def sample_coloring(self, n: int, rng: random.Random) -> Coloring:
        """Draw a full coloring (red = failed)."""
        return Coloring(n, self.sample_failed(n, rng))

    def as_source(self, n: int) -> ColoringSource:
        """This model as a :class:`~repro.core.distributions.ColoringSource`.

        The built-in models return their vectorized counterpart; the base
        implementation wraps :meth:`sample_failed` in a per-trial loop so
        any custom model still plugs into batched consumers (slowly).
        """
        return _ScalarModelSource(self, n)


class _ScalarModelSource(ColoringSource):
    """Fallback source looping a model's scalar :meth:`sample_failed`."""

    name = "failure_model"

    def __init__(self, model: FailureModel, n: int) -> None:
        self._model = model
        self._n = n
        self.name = f"failure_model:{type(model).__name__}"

    @property
    def n(self) -> int:
        return self._n

    def _sample_matrix(self, trials, generator):
        import numpy as np

        rng = random.Random(int(generator.integers(2**63)))
        red = np.zeros((trials, self._n), dtype=bool)
        for t in range(trials):
            for element in self._model.sample_failed(self._n, rng):
                red[t, element - 1] = True
        return red

    def sample(self, rng=None):
        from repro.core.coloring import as_numpy_generator

        generator = as_numpy_generator(rng)
        scalar_rng = random.Random(int(generator.integers(2**63)))
        return self._model.sample_coloring(self._n, scalar_rng)


class BernoulliFailures(FailureModel):
    """Each node fails independently with probability ``p`` (the paper's model)."""

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"failure probability must be in [0, 1], got {p}")
        self.p = p

    def sample_failed(self, n: int, rng: random.Random) -> frozenset[int]:
        return frozenset(e for e in range(1, n + 1) if rng.random() < self.p)

    def as_source(self, n: int) -> ColoringSource:
        return BernoulliSource(n, self.p)


class FixedCountFailures(FailureModel):
    """Exactly ``count`` uniformly chosen nodes fail."""

    def __init__(self, count: int) -> None:
        if count < 0:
            raise ValueError("failure count must be nonnegative")
        self.count = count

    def sample_failed(self, n: int, rng: random.Random) -> frozenset[int]:
        if self.count > n:
            raise ValueError(f"cannot fail {self.count} of {n} nodes")
        return frozenset(rng.sample(range(1, n + 1), self.count))

    def as_source(self, n: int) -> ColoringSource:
        if self.count > n:
            raise ValueError(f"cannot fail {self.count} of {n} nodes")
        return FixedCountSource(n, self.count)


class AdversarialFailures(FailureModel):
    """A fixed, adversarially chosen set of failed nodes."""

    def __init__(self, failed: Iterable[int]) -> None:
        self.failed = frozenset(failed)

    def sample_failed(self, n: int, rng: random.Random) -> frozenset[int]:
        if any(not 1 <= e <= n for e in self.failed):
            raise ValueError("failed set contains elements outside the universe")
        return self.failed

    def as_source(self, n: int) -> ColoringSource:
        return AdversarialSource(n, self.failed)


class CorrelatedGroupFailures(FailureModel):
    """Whole groups of nodes fail together.

    Each group (e.g. a rack, a crumbling-wall row, a subtree) fails with
    probability ``group_p``; nodes outside any group never fail.  Used to
    illustrate how probe complexity degrades when the independence
    assumption of the probabilistic model is violated.
    """

    def __init__(self, groups: Sequence[Iterable[int]], group_p: float) -> None:
        if not 0.0 <= group_p <= 1.0:
            raise ValueError(f"group failure probability must be in [0, 1], got {group_p}")
        self.groups = [frozenset(g) for g in groups]
        self.group_p = group_p

    def sample_failed(self, n: int, rng: random.Random) -> frozenset[int]:
        failed: set[int] = set()
        for group in self.groups:
            if any(not 1 <= e <= n for e in group):
                raise ValueError("group contains elements outside the universe")
            if rng.random() < self.group_p:
                failed.update(group)
        return frozenset(failed)

    def as_source(self, n: int) -> ColoringSource:
        return CorrelatedGroupsSource(n, self.groups, self.group_p)


class CrashRecoveryProcess:
    """A continuous-time Markov crash/repair process per node.

    Each node alternates between up and down states: an up node crashes
    after an exponential time with rate ``crash_rate``, a down node recovers
    after an exponential time with rate ``recovery_rate``.  The stationary
    failure probability is ``crash_rate / (crash_rate + recovery_rate)``,
    which plays the role of the paper's ``p`` when the process is sampled at
    a random time.
    """

    def __init__(self, crash_rate: float, recovery_rate: float) -> None:
        if crash_rate < 0 or recovery_rate <= 0:
            raise ValueError("need crash_rate >= 0 and recovery_rate > 0")
        self.crash_rate = crash_rate
        self.recovery_rate = recovery_rate

    @property
    def stationary_failure_probability(self) -> float:
        """Long-run probability that a node is down."""
        return self.crash_rate / (self.crash_rate + self.recovery_rate)

    def initial_failed(self, n: int, rng: random.Random) -> frozenset[int]:
        """Sample the stationary distribution as the initial state."""
        p = self.stationary_failure_probability
        return frozenset(e for e in range(1, n + 1) if rng.random() < p)

    def next_transition(self, is_up: bool, rng: random.Random) -> float:
        """Time until the next state change of a node currently up/down."""
        rate = self.crash_rate if is_up else self.recovery_rate
        if rate == 0:
            return float("inf")
        return rng.expovariate(rate)
