"""Distributed-system simulation substrate: discrete-event cluster, failure
and latency models, Monte-Carlo batch runner and the motivating application
protocols."""

from repro.simulation.cluster import ClusterProbeOracle, NodeState, SimulatedCluster
from repro.simulation.events import EventSimulator
from repro.simulation.failures import (
    AdversarialFailures,
    BernoulliFailures,
    CorrelatedGroupFailures,
    CrashRecoveryProcess,
    FailureModel,
    FixedCountFailures,
)
from repro.simulation.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)
from repro.simulation.montecarlo import BatchResult, TrialResult, run_cluster_trials
from repro.simulation.protocols import (
    QuorumMutex,
    ReplicatedRegister,
    run_mutex_workload,
    run_replication_workload,
)

__all__ = [
    "ClusterProbeOracle",
    "NodeState",
    "SimulatedCluster",
    "EventSimulator",
    "AdversarialFailures",
    "BernoulliFailures",
    "CorrelatedGroupFailures",
    "CrashRecoveryProcess",
    "FailureModel",
    "FixedCountFailures",
    "ConstantLatency",
    "ExponentialLatency",
    "LatencyModel",
    "UniformLatency",
    "BatchResult",
    "TrialResult",
    "run_cluster_trials",
    "QuorumMutex",
    "ReplicatedRegister",
    "run_mutex_workload",
    "run_replication_workload",
]
