"""Batched Monte-Carlo trial runner over the simulated cluster.

Bridges the complexity experiments and the systems substrate: for each trial
a fresh failure snapshot is drawn, a cluster is configured accordingly, the
probing algorithm runs against a :class:`ClusterProbeOracle`, and the probe
count / elapsed simulated time / witness color are recorded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.algorithms.base import ProbingAlgorithm
from repro.core.distributions import BernoulliSource, ColoringSource
from repro.core.estimator import Estimate
from repro.core.seeding import cell_seed
from repro.simulation.cluster import ClusterProbeOracle, SimulatedCluster
from repro.simulation.failures import FailureModel
from repro.simulation.latency import ConstantLatency, LatencyModel


@dataclass(frozen=True)
class TrialResult:
    """One Monte-Carlo trial against the simulated cluster."""

    probes: int
    elapsed: float
    witness_green: bool


@dataclass(frozen=True)
class BatchResult:
    """Aggregated outcome of a Monte-Carlo batch."""

    probes: Estimate
    elapsed: Estimate
    availability_failure_rate: float
    trials: int

    def __str__(self) -> str:
        return (
            f"probes {self.probes}, time {self.elapsed}, "
            f"F_p ≈ {self.availability_failure_rate:.3f} over {self.trials} trials"
        )


def run_cluster_trials(
    algorithm: ProbingAlgorithm,
    failure_model: FailureModel,
    trials: int = 500,
    latency: LatencyModel | None = None,
    seed: int | None = None,
    validate: bool = False,
) -> BatchResult:
    """Run ``trials`` independent probing episodes against fresh clusters.

    Returns estimates of the probe count and elapsed simulated time, plus
    the empirical availability failure rate (fraction of trials whose
    witness was red), which should match ``F_p(S)``.

    Each trial derives its cluster seed and algorithm stream from the
    batch seed keyed by the trial index (:func:`repro.core.seeding.cell_seed`),
    so any single trial reproduces in isolation — cell-by-cell, like the
    experiment drivers — instead of depending on every earlier trial's
    draws.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    latency = latency or ConstantLatency(1.0)
    results: list[TrialResult] = []
    system = algorithm.system
    for trial in range(trials):
        cluster = SimulatedCluster(
            system.n,
            failure_model=failure_model,
            latency=latency,
            seed=cell_seed(seed, trial, "cluster"),
        )
        oracle = ClusterProbeOracle(cluster)
        rng = random.Random(cell_seed(seed, trial, "algorithm"))
        run = algorithm.run(oracle, rng=rng)
        if validate:
            run.witness.validate(system, cluster.snapshot_coloring())
        results.append(
            TrialResult(
                probes=oracle.probe_count,
                elapsed=oracle.elapsed,
                witness_green=run.witness.is_green,
            )
        )
    probes = Estimate.from_samples([r.probes for r in results])
    elapsed = Estimate.from_samples([r.elapsed for r in results])
    failure_rate = float(np.mean([0.0 if r.witness_green else 1.0 for r in results]))
    return BatchResult(
        probes=probes,
        elapsed=elapsed,
        availability_failure_rate=failure_rate,
        trials=trials,
    )


def run_batched_trials(
    algorithm: ProbingAlgorithm,
    p: float | None = None,
    trials: int | None = None,
    latency: LatencyModel | None = None,
    seed: int | None = None,
    source: ColoringSource | FailureModel | None = None,
    chunk_size: int | None = None,
    target_ci: float | None = None,
    min_trials: int | None = None,
    max_trials: int | None = None,
    jobs: int = 1,
) -> BatchResult:
    """Vectorized counterpart of :func:`run_cluster_trials`.

    Runs through the streaming engine (:mod:`repro.core.engine`): the
    failure batch is sampled and evaluated in trial chunks through the
    registered kernels of :mod:`repro.core.batched` — including the
    level-synchronous Tree/HQS gate kernels of
    :mod:`repro.core.batched_gates` — falling back to a per-trial loop for
    algorithms without a kernel.  Memory stays O(chunk), ``jobs > 1``
    shards chunks across processes, and ``target_ci`` switches to the
    adaptive CI-targeted stopping mode — mutually exclusive with an
    explicit ``trials`` (cap adaptive runs with ``max_trials``); the
    returned ``trials`` is the count actually used.

    Snapshots come from ``source`` — a
    :class:`~repro.core.distributions.ColoringSource` or a
    :class:`~repro.simulation.failures.FailureModel` (converted via
    :meth:`~repro.simulation.failures.FailureModel.as_source`) — so
    exact-count, correlated-group and adversarial clusters run batched,
    not just the i.i.d. model; a bare ``p`` remains shorthand for
    Bernoulli failures.  The elapsed-time estimate uses the latency
    model's *mean* per probe — the batched path trades per-probe latency
    sampling for throughput; use :func:`run_cluster_trials` when latency
    jitter matters.
    """
    from repro.core.engine import resolve_fixed_trials, stream_probes

    trials = resolve_fixed_trials(trials, target_ci, default=500)

    if source is None:
        if p is None:
            raise ValueError("pass a failure probability p or a source")
        source = BernoulliSource(algorithm.system.n, p)
    elif isinstance(source, FailureModel):
        source = source.as_source(algorithm.system.n)

    latency = latency or ConstantLatency(1.0)
    result = stream_probes(
        algorithm,
        source,
        trials=trials,
        target_ci=target_ci,
        chunk_size=chunk_size,
        min_trials=min_trials,
        max_trials=max_trials,
        seed=seed,
        jobs=jobs,
    )
    probe_estimate = result.estimate
    per_probe = latency.mean()
    elapsed = Estimate(
        mean=probe_estimate.mean * per_probe,
        std=probe_estimate.std * per_probe,
        trials=result.n_trials_used,
    )
    return BatchResult(
        probes=probe_estimate,
        elapsed=elapsed,
        availability_failure_rate=result.failure_rate,
        trials=result.n_trials_used,
    )
