"""A simulated cluster of processors that probing algorithms can run against.

The cluster owns one node per universe element, an up/down state per node, a
latency model for probe RPCs and (optionally) a crash/recovery process that
keeps changing node states over simulated time.  The
:class:`ClusterProbeOracle` adapter exposes the cluster through the same
``ProbeOracle`` protocol used by the complexity experiments, so the paper's
algorithms run unchanged against the simulated distributed system, and the
application protocols (mutual exclusion, replication) measure both probe
counts and elapsed simulated time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.core.coloring import Color, Coloring
from repro.core.seeding import cell_sequence
from repro.simulation.events import EventSimulator
from repro.simulation.failures import CrashRecoveryProcess, FailureModel
from repro.simulation.latency import ConstantLatency, LatencyModel


@dataclass
class NodeState:
    """Runtime state of one simulated processor."""

    element: int
    up: bool = True
    probes_served: int = 0
    crashes: int = 0
    recoveries: int = 0


class SimulatedCluster:
    """A set of processors with up/down state, probe RPCs and failures.

    Parameters
    ----------
    n:
        Number of processors (universe size).
    failure_model:
        Optional snapshot failure model used to draw the initial up/down
        states (e.g. :class:`~repro.simulation.failures.BernoulliFailures`
        for the paper's probabilistic model).
    latency:
        Round-trip latency model for probe RPCs.
    dynamics:
        Optional :class:`CrashRecoveryProcess`; when given, crash and repair
        events are scheduled on the internal event simulator and node states
        evolve over simulated time.
    seed:
        Seed for all cluster-internal randomness.  The initial failure
        snapshot is drawn from its own parameter-keyed stream
        (:func:`repro.core.seeding.cell_sequence` on ``(seed,
        "initial-failures")``) through the failure model's
        :class:`~repro.core.distributions.ColoringSource`, independent of
        the latency/dynamics stream — so the same seed reproduces the same
        snapshot no matter how many latency draws follow, cell-by-cell
        like the experiment drivers.
    """

    def __init__(
        self,
        n: int,
        failure_model: FailureModel | None = None,
        latency: LatencyModel | None = None,
        dynamics: CrashRecoveryProcess | None = None,
        seed: int | None = None,
    ) -> None:
        if n < 1:
            raise ValueError("cluster needs at least one node")
        self._n = n
        self._rng = random.Random(seed)
        self._latency = latency or ConstantLatency(1.0)
        self._simulator = EventSimulator()
        self._nodes = {e: NodeState(e) for e in range(1, n + 1)}
        self._dynamics = dynamics
        self._total_probes = 0
        if failure_model is not None:
            snapshot_rng = np.random.default_rng(
                cell_sequence(seed, "initial-failures")
                if seed is not None
                else None
            )
            for e in failure_model.as_source(n).sample(snapshot_rng).red_elements:
                self._nodes[e].up = False
        if dynamics is not None:
            for e in range(1, n + 1):
                self._schedule_transition(e)

    # -- basic accessors -------------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    @property
    def simulator(self) -> EventSimulator:
        """The underlying discrete-event simulator (exposes the clock)."""
        return self._simulator

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._simulator.now

    @property
    def total_probes(self) -> int:
        """Total probe RPCs served by the cluster since creation."""
        return self._total_probes

    def node(self, element: int) -> NodeState:
        """Runtime state of one node."""
        self._check_element(element)
        return self._nodes[element]

    def is_up(self, element: int) -> bool:
        """Whether a node is currently up (without counting a probe)."""
        self._check_element(element)
        return self._nodes[element].up

    def snapshot_coloring(self) -> Coloring:
        """The current global state as a coloring (red = down)."""
        return Coloring(self._n, [e for e, s in self._nodes.items() if not s.up])

    def live_elements(self) -> frozenset[int]:
        """Elements currently up."""
        return frozenset(e for e, s in self._nodes.items() if s.up)

    # -- state changes ------------------------------------------------------------------

    def fail(self, element: int) -> None:
        """Crash a node immediately."""
        self._check_element(element)
        state = self._nodes[element]
        if state.up:
            state.up = False
            state.crashes += 1

    def recover(self, element: int) -> None:
        """Repair a node immediately."""
        self._check_element(element)
        state = self._nodes[element]
        if not state.up:
            state.up = True
            state.recoveries += 1

    def apply_coloring(self, coloring: Coloring) -> None:
        """Force the cluster state to match a coloring (red = down)."""
        if coloring.n != self._n:
            raise ValueError("coloring size does not match the cluster")
        for e in range(1, self._n + 1):
            self._nodes[e].up = coloring.is_green(e)

    # -- probing ----------------------------------------------------------------------------

    def probe(self, element: int) -> Color:
        """Execute one probe RPC: advances the clock and returns the status."""
        self._check_element(element)
        delay = self._latency.sample(self._rng)
        # Process any crash/recovery events that happen while the RPC is in
        # flight, then advance the clock to the RPC's completion time.
        self._simulator.run_until(self._simulator.now + delay)
        state = self._nodes[element]
        state.probes_served += 1
        self._total_probes += 1
        return Color.GREEN if state.up else Color.RED

    def _check_element(self, element: int) -> None:
        if not 1 <= element <= self._n:
            raise ValueError(f"element {element} outside universe 1..{self._n}")

    # -- crash/recovery dynamics ----------------------------------------------------------------

    def _schedule_transition(self, element: int) -> None:
        assert self._dynamics is not None
        state = self._nodes[element]
        delay = self._dynamics.next_transition(state.up, self._rng)
        if delay == float("inf"):
            return

        def flip() -> None:
            if state.up:
                state.up = False
                state.crashes += 1
            else:
                state.up = True
                state.recoveries += 1
            self._schedule_transition(element)

        self._simulator.schedule(delay, flip)


class ClusterProbeOracle:
    """Adapter exposing a :class:`SimulatedCluster` as a probe oracle.

    Like :class:`~repro.core.oracle.ColoringOracle`, repeated probes of the
    same element are served from cache — the complexity measure of the paper
    counts distinct probed elements.  (Under crash/recovery dynamics this
    means the oracle reports the status observed at first probe, which is
    exactly the "state of the system at query time" semantics the paper
    assumes.)
    """

    def __init__(self, cluster: SimulatedCluster) -> None:
        self._cluster = cluster
        self._known: dict[int, Color] = {}
        self._sequence: list[int] = []
        self._start_time = cluster.now

    @property
    def n(self) -> int:
        return self._cluster.n

    def probe(self, element: int) -> Color:
        if element in self._known:
            return self._known[element]
        color = self._cluster.probe(element)
        self._known[element] = color
        self._sequence.append(element)
        return color

    @property
    def probe_count(self) -> int:
        return len(self._known)

    @property
    def known(self) -> dict[int, Color]:
        return dict(self._known)

    @property
    def sequence(self) -> list[int]:
        return list(self._sequence)

    @property
    def elapsed(self) -> float:
        """Simulated time spent by the probes issued through this oracle."""
        return self._cluster.now - self._start_time
