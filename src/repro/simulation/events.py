"""A minimal discrete-event simulator.

The probing model of the paper is synchronous and cost is measured in
probes, but the motivating scenario is a distributed system in which probes
are RPCs with latency and processors crash and recover over time.  This
module provides the small event-driven kernel used by
:mod:`repro.simulation.cluster`: a clock, an event queue ordered by time,
and helpers to schedule one-shot and periodic events.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventSimulator:
    """Event queue plus simulation clock."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._counter = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still scheduled (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        event = _ScheduledEvent(self._now + delay, next(self._counter), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> _ScheduledEvent:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError("cannot schedule events in the past")
        return self.schedule(time - self._now, callback)

    @staticmethod
    def cancel(event: _ScheduledEvent) -> None:
        """Cancel a previously scheduled event (it will be skipped)."""
        event.cancelled = True

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events`` were executed)."""
        executed = 0
        while self.step():
            executed += 1
            if max_events is not None and executed >= max_events:
                break
        return executed

    def run_until(self, time: float) -> int:
        """Run all events scheduled up to and including ``time``."""
        executed = 0
        while self._queue:
            upcoming = self._queue[0]
            if upcoming.cancelled:
                heapq.heappop(self._queue)
                continue
            if upcoming.time > time:
                break
            self.step()
            executed += 1
        self._now = max(self._now, time)
        return executed

    def advance(self, delay: float) -> float:
        """Advance the clock by ``delay`` without executing events.

        Used by synchronous callers (e.g. a blocking probe RPC) to account
        for elapsed time.  Returns the new clock value.
        """
        if delay < 0:
            raise ValueError("cannot advance time backwards")
        self._now += delay
        return self._now
