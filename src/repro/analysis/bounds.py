"""Closed-form probe-complexity bounds from the paper, keyed by system and model.

Every row of Table 1 and every per-section theorem is represented as a
:class:`Bound` object carrying the formula as stated in the paper, an
evaluation function (instantiating ``Θ``/``O`` constants explicitly, which is
recorded in ``notes``), and whether the bound is exact, an upper bound or a
lower bound.  The benchmark harness compares measured probe counts against
these objects and reports both sides.
"""

from __future__ import annotations

import enum
import math
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.systems.crumbling_walls import CrumblingWall, TriangSystem
from repro.systems.hqs import HQS
from repro.systems.majority import MajoritySystem
from repro.systems.tree import TreeSystem
from repro.systems.wheel import WheelSystem


class Model(enum.Enum):
    """Which complexity measure a bound refers to."""

    PROBABILISTIC = "probabilistic"  # PPC_p, deterministic algorithm, i.i.d. failures
    RANDOMIZED = "randomized"  # PCR, randomized algorithm, worst-case input
    DETERMINISTIC = "deterministic"  # PC, deterministic algorithm, worst-case input


class Direction(enum.Enum):
    """Whether the bound is from below, from above, or exact."""

    LOWER = "lower"
    UPPER = "upper"
    EXACT = "exact"


@dataclass(frozen=True)
class Bound:
    """A closed-form bound from the paper.

    ``value(n, p)`` evaluates the bound for a system with ``n`` elements at
    failure probability ``p`` (ignored for worst-case-model bounds).
    Asymptotic statements are instantiated with explicit constants; the
    constant choices are documented in ``notes`` and only the *shape* of the
    comparison (growth exponent, who dominates) is asserted by the tests.
    """

    source: str
    formula: str
    direction: Direction
    value: Callable[[int, float], float]
    asymptotic: bool = False
    notes: str = ""


@dataclass(frozen=True)
class SystemBounds:
    """All paper bounds that apply to one system family."""

    family: str
    bounds: dict[tuple[Model, Direction], Bound] = field(default_factory=dict)

    def get(self, model: Model, direction: Direction) -> Bound | None:
        return self.bounds.get((model, direction))


# -- helpers for the parameters appearing in the formulas ---------------------------------


def triang_rows(n: int) -> int:
    """Number of rows ``k`` of the Triang system with ``n = k(k+1)/2`` elements."""
    k = int((math.sqrt(8 * n + 1) - 1) / 2)
    if k * (k + 1) // 2 != n:
        raise ValueError(f"n={n} is not a triangular number")
    return k


def hqs_height(n: int) -> int:
    """Height ``h = log3 n`` of an HQS with ``n = 3^h`` elements."""
    h = round(math.log(n, 3))
    if 3**h != n:
        raise ValueError(f"n={n} is not a power of 3")
    return h


def tree_height(n: int) -> int:
    """Height ``h`` of a Tree system with ``n = 2^(h+1) − 1`` elements."""
    h = (n + 1).bit_length() - 2
    if 2 ** (h + 1) - 1 != n:
        raise ValueError(f"n={n} is not of the form 2^(h+1) − 1")
    return h


#: The exponent ``log3 2.5 ≈ 0.8340`` of Theorem 3.8 / Corollary 4.13.
HQS_PPC_EXPONENT = math.log(2.5, 3)
#: The exponent ``log3 2 ≈ 0.6309`` of Theorem 3.8 for ``p < 1/2``.
HQS_PPC_BIASED_EXPONENT = math.log(2.0, 3)
#: The exponent ``log3 (8/3) ≈ 0.8928`` of Proposition 4.9 (R_Probe_HQS).
HQS_PCR_BOPPANA_EXPONENT = math.log(8.0 / 3.0, 3)
#: The exponent ``log9 (189.5/27) ≈ 0.8867`` of Theorem 4.10 (IR_Probe_HQS).
HQS_PCR_IMPROVED_EXPONENT = math.log(189.5 / 27.0, 9)
#: The exponent ``log2 1.5 ≈ 0.585`` of Corollary 3.7 (Probe_Tree at p = 1/2).
TREE_PPC_EXPONENT = math.log(1.5, 2)


def tree_ppc_exponent(p: float) -> float:
    """The exponent ``log2 (1 + p)`` of Proposition 3.6 (for ``p ≤ 1/2``)."""
    effective = min(p, 1.0 - p)
    return math.log(1.0 + effective, 2)


# -- per-system bound tables ------------------------------------------------------------------


def majority_bounds() -> SystemBounds:
    """Bounds for the Majority system (Prop. 3.2, Thm. 4.2)."""

    def ppc(n: int, p: float) -> float:
        q = 1.0 - p
        if abs(p - 0.5) < 1e-12:
            return n - math.sqrt(n)
        return n / (2.0 * max(q, p))

    def pcr(n: int, p: float) -> float:
        return n - (n - 1) / (n + 3)

    bounds = {
        (Model.PROBABILISTIC, Direction.EXACT): Bound(
            source="Proposition 3.2",
            formula="n − Θ(√n)  (p = 1/2);  n / (2q)  (p < 1/2)",
            direction=Direction.EXACT,
            value=ppc,
            asymptotic=True,
            notes="Θ(√n) instantiated as √n",
        ),
        (Model.RANDOMIZED, Direction.EXACT): Bound(
            source="Theorem 4.2",
            formula="n − (n − 1)/(n + 3)",
            direction=Direction.EXACT,
            value=pcr,
        ),
        (Model.DETERMINISTIC, Direction.EXACT): Bound(
            source="Lemma 2.2",
            formula="n (evasive)",
            direction=Direction.EXACT,
            value=lambda n, p: float(n),
        ),
    }
    return SystemBounds("Maj", bounds)


def crumbling_wall_bounds(widths: list[int] | None = None) -> SystemBounds:
    """Bounds for a general crumbling wall (Thm. 3.3, Thm. 4.4, Thm. 4.6).

    When ``widths`` is provided the randomized bounds use the exact per-row
    formula; otherwise the coarser ``(m + n + 2k)/2`` form is used with
    ``m = max width`` unavailable and approximated by ``n − k + 1``.
    """

    def rows_of(n: int) -> int:
        if widths is not None:
            return len(widths)
        raise ValueError("row count unknown; supply widths")

    def ppc_upper(n: int, p: float) -> float:
        return 2.0 * rows_of(n) - 1.0

    def pcr_upper(n: int, p: float) -> float:
        from repro.algorithms.crumbling_walls import probe_cw_row_bound

        if widths is None:
            raise ValueError("randomized CW bound needs the row widths")
        return probe_cw_row_bound(widths)

    def pcr_lower(n: int, p: float) -> float:
        return (n + rows_of(n)) / 2.0

    bounds = {
        (Model.PROBABILISTIC, Direction.UPPER): Bound(
            source="Theorem 3.3",
            formula="2k − 1",
            direction=Direction.UPPER,
            value=ppc_upper,
        ),
        (Model.RANDOMIZED, Direction.UPPER): Bound(
            source="Theorem 4.4",
            formula="max_j { n_j + Σ_{i>j} ((n_i+1)/2 + 1/n_i) } ≤ (m + n + 2k)/2",
            direction=Direction.UPPER,
            value=pcr_upper,
        ),
        (Model.RANDOMIZED, Direction.LOWER): Bound(
            source="Theorem 4.6",
            formula="(n + k)/2",
            direction=Direction.LOWER,
            value=pcr_lower,
        ),
        (Model.DETERMINISTIC, Direction.EXACT): Bound(
            source="Lemma 2.2",
            formula="n (evasive)",
            direction=Direction.EXACT,
            value=lambda n, p: float(n),
        ),
    }
    return SystemBounds("CW", bounds)


def triang_bounds() -> SystemBounds:
    """Bounds for the Triang system (Cor. 3.5, Cor. 4.5(1), Thm. 4.6)."""

    def ppc_upper(n: int, p: float) -> float:
        return 2.0 * triang_rows(n) - 1.0

    def ppc_lower(n: int, p: float) -> float:
        k = triang_rows(n)
        q = 1.0 - p
        if abs(p - 0.5) < 1e-12:
            return 2.0 * k - 2.0 * math.sqrt(k)
        return k / max(q, p)

    def pcr_upper(n: int, p: float) -> float:
        k = triang_rows(n)
        return (n + k) / 2.0 + math.log2(k)

    def pcr_lower(n: int, p: float) -> float:
        k = triang_rows(n)
        return (n + k) / 2.0

    bounds = {
        (Model.PROBABILISTIC, Direction.UPPER): Bound(
            source="Corollary 3.5",
            formula="2k − 1",
            direction=Direction.UPPER,
            value=ppc_upper,
        ),
        (Model.PROBABILISTIC, Direction.LOWER): Bound(
            source="Lemma 3.1 (Table 1)",
            formula="2k − Θ(√k)",
            direction=Direction.LOWER,
            value=ppc_lower,
            asymptotic=True,
            notes="Θ(√k) instantiated as 2√k",
        ),
        (Model.RANDOMIZED, Direction.UPPER): Bound(
            source="Corollary 4.5(1)",
            formula="(n + k)/2 + log k",
            direction=Direction.UPPER,
            value=pcr_upper,
        ),
        (Model.RANDOMIZED, Direction.LOWER): Bound(
            source="Theorem 4.6",
            formula="(n + k)/2",
            direction=Direction.LOWER,
            value=pcr_lower,
        ),
        (Model.DETERMINISTIC, Direction.EXACT): Bound(
            source="Lemma 2.2",
            formula="n (evasive)",
            direction=Direction.EXACT,
            value=lambda n, p: float(n),
        ),
    }
    return SystemBounds("Triang", bounds)


def wheel_bounds() -> SystemBounds:
    """Bounds for the Wheel system (Cor. 3.4, Cor. 4.5(2))."""
    bounds = {
        (Model.PROBABILISTIC, Direction.UPPER): Bound(
            source="Corollary 3.4",
            formula="3",
            direction=Direction.UPPER,
            value=lambda n, p: 3.0,
        ),
        (Model.RANDOMIZED, Direction.EXACT): Bound(
            source="Corollary 4.5(2)",
            formula="n − 1",
            direction=Direction.EXACT,
            value=lambda n, p: float(n - 1),
        ),
        (Model.DETERMINISTIC, Direction.EXACT): Bound(
            source="Lemma 2.2",
            formula="n (evasive)",
            direction=Direction.EXACT,
            value=lambda n, p: float(n),
        ),
    }
    return SystemBounds("Wheel", bounds)


def tree_bounds() -> SystemBounds:
    """Bounds for the Tree system (Prop. 3.6, Cor. 3.7, Thm. 4.7, Thm. 4.8)."""

    def ppc_upper(n: int, p: float) -> float:
        return float(n) ** tree_ppc_exponent(p)

    def pcr_upper(n: int, p: float) -> float:
        return 5.0 * n / 6.0 + 1.0 / 6.0

    def pcr_lower(n: int, p: float) -> float:
        return 2.0 * (n + 1) / 3.0

    bounds = {
        (Model.PROBABILISTIC, Direction.UPPER): Bound(
            source="Proposition 3.6 / Corollary 3.7",
            formula="O(n^{log2(1+p)}) ≤ O(n^0.585)",
            direction=Direction.UPPER,
            value=ppc_upper,
            asymptotic=True,
            notes="constant instantiated as 1",
        ),
        (Model.RANDOMIZED, Direction.UPPER): Bound(
            source="Theorem 4.7",
            formula="5n/6 + 1/6",
            direction=Direction.UPPER,
            value=pcr_upper,
        ),
        (Model.RANDOMIZED, Direction.LOWER): Bound(
            source="Theorem 4.8",
            formula="2(n + 1)/3",
            direction=Direction.LOWER,
            value=pcr_lower,
        ),
        (Model.DETERMINISTIC, Direction.EXACT): Bound(
            source="Lemma 2.2",
            formula="n (evasive)",
            direction=Direction.EXACT,
            value=lambda n, p: float(n),
        ),
    }
    return SystemBounds("Tree", bounds)


def hqs_bounds() -> SystemBounds:
    """Bounds for HQS (Thm. 3.8, Thm. 3.9, Prop. 4.9, Thm. 4.10, Cor. 4.13)."""

    def ppc_exact(n: int, p: float) -> float:
        h = hqs_height(n)
        if abs(p - 0.5) < 1e-12:
            return 2.5**h
        return float(n) ** HQS_PPC_BIASED_EXPONENT

    def pcr_upper(n: int, p: float) -> float:
        h = hqs_height(n)
        return (189.5 / 27.0) ** (h / 2.0)

    def pcr_lower(n: int, p: float) -> float:
        h = hqs_height(n)
        return 2.5**h

    bounds = {
        (Model.PROBABILISTIC, Direction.EXACT): Bound(
            source="Theorem 3.8 / Theorem 3.9",
            formula="n^{log3 2.5} = n^0.834 (p = 1/2);  O(n^{log3 2}) (p < 1/2)",
            direction=Direction.EXACT,
            value=ppc_exact,
            asymptotic=True,
            notes="p = 1/2 value is exactly 2.5^h; biased constant instantiated as 1",
        ),
        (Model.RANDOMIZED, Direction.UPPER): Bound(
            source="Theorem 4.10",
            formula="O(n^0.887), recursion g(h) = (189.5/27) g(h−2)",
            direction=Direction.UPPER,
            value=pcr_upper,
            asymptotic=True,
            notes="constant instantiated as 1",
        ),
        (Model.RANDOMIZED, Direction.LOWER): Bound(
            source="Corollary 4.13",
            formula="Ω(n^{log3 2.5}) = Ω(n^0.834)",
            direction=Direction.LOWER,
            value=pcr_lower,
            asymptotic=True,
            notes="constant instantiated as 1 (equals the p=1/2 optimum)",
        ),
    }
    return SystemBounds("HQS", bounds)


def generic_lower_bound_ppc(min_quorum_size: int, p: float) -> float:
    """Lemma 3.1: ``PPC_p ≥ 2c − Θ(√c)`` at ``p = 1/2``, else ``c/q``."""
    c = min_quorum_size
    q = 1.0 - p
    if abs(p - 0.5) < 1e-12:
        return 2.0 * c - 2.0 * math.sqrt(c)
    return c / max(q, p)


def generic_lower_bound_pcr(max_quorum_size: int) -> float:
    """Theorem 4.1: ``PCR ≥ m`` where ``m`` is the largest quorum size."""
    return float(max_quorum_size)


def bounds_for(system) -> SystemBounds:
    """Look up the paper's bound table for a concrete system instance."""
    if isinstance(system, MajoritySystem):
        return majority_bounds()
    if isinstance(system, TriangSystem):
        return triang_bounds()
    if isinstance(system, WheelSystem):
        return wheel_bounds()
    if isinstance(system, CrumblingWall):
        return crumbling_wall_bounds(system.widths)
    if isinstance(system, TreeSystem):
        return tree_bounds()
    if isinstance(system, HQS):
        return hqs_bounds()
    raise KeyError(f"the paper states no bounds for {type(system).__name__}")
