"""The paper's technical lemmas (Section 2.4 and Appendix A).

Each lemma is provided both as the closed-form expression stated in the
paper and, where meaningful, as an exact combinatorial computation (dynamic
program or direct expectation) so the test-suite can verify the closed form
against ground truth, and the benchmark harness can compare simulated
processes against both.

* ``Lemma 2.4`` — expected exit time of a right/up random walk from an
  ``N × N`` grid.
* ``Lemma 2.5`` — the product bound ``Π (a + c·bⁱ) ≤ e^{Bc/a} · aʰ``.
* ``Fact 2.6``  — the solution of the linear recursion
  ``f(h) = b_h + a_h · f(h − 1)``.
* ``Fact 2.7`` / ``Lemma 2.8`` — urn expectations: trials until the first /
  j-th red element when drawing without replacement.
* ``Lemma 2.9`` — trials until both colors have been seen.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from fractions import Fraction


# -- Lemma 2.4: random-walk exit time ---------------------------------------------------


def grid_walk_exit_time_exact(n: int, p: float) -> float:
    """Exact expected exit time of the grid random walk of Lemma 2.4.

    The walk starts at ``(0, 0)`` and repeatedly moves right with
    probability ``p`` or up with probability ``q = 1 − p``; it stops upon
    reaching ``x = n`` or ``y = n``.  The expectation is computed exactly by
    observing that the walk stops at step ``t`` iff after ``t`` steps one
    coordinate first reaches ``n``; equivalently,
    ``E[T] = Σ_{t ≥ 0} P(T > t)`` where ``P(T > t)`` is the probability that
    after ``t`` steps both coordinates are below ``n``.
    """
    _check_walk_args(n, p)
    q = 1.0 - p
    expectation = 0.0
    # After t steps the position is (R, t - R) with R ~ Binomial(t, p).
    # Both coordinates below n requires R <= n-1 and t - R <= n-1.  The
    # binomial terms are evaluated in log space so large grids do not
    # overflow.
    for t in range(2 * n - 1):
        prob_alive = 0.0
        low = max(0, t - (n - 1))
        high = min(n - 1, t)
        for r in range(low, high + 1):
            prob_alive += binomial_pmf(t, r, p)
        expectation += prob_alive
    return expectation


def binomial_pmf(trials: int, successes: int, prob: float) -> float:
    """Numerically safe Binomial(trials, prob) pmf at ``successes``.

    Uses log-gamma so that large ``trials`` (where ``comb`` exceeds float
    range) remain representable.
    """
    if not 0 <= successes <= trials:
        return 0.0
    if prob <= 0.0:
        return 1.0 if successes == 0 else 0.0
    if prob >= 1.0:
        return 1.0 if successes == trials else 0.0
    log_comb = (
        math.lgamma(trials + 1)
        - math.lgamma(successes + 1)
        - math.lgamma(trials - successes + 1)
    )
    log_pmf = (
        log_comb
        + successes * math.log(prob)
        + (trials - successes) * math.log(1.0 - prob)
    )
    return math.exp(log_pmf)


def grid_walk_exit_time_bound(n: int, p: float) -> float:
    """The closed-form estimate of Lemma 2.4.

    ``2N − Θ(√N)`` for ``p = q = 1/2`` (instantiated with the random-walk
    constant ``√(2N/π)`` for the expected absolute displacement) and
    ``N / q`` for ``p < q``.
    """
    _check_walk_args(n, p)
    q = 1.0 - p
    if math.isclose(p, 0.5):
        return 2.0 * n - math.sqrt(2.0 * n / math.pi)
    if p < q:
        return n / q
    # Symmetric case p > q: the walk exits through the right border.
    return n / p


def _check_walk_args(n: int, p: float) -> None:
    if n < 1:
        raise ValueError("grid size must be at least 1")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"step probability must be in [0, 1], got {p}")


# -- Lemma 2.5: product bound --------------------------------------------------------------


def product_value(a: float, b: float, c: float, h: int) -> float:
    """The exact product ``Π_{i=1..h} (a + c·bⁱ)`` of Lemma 2.5."""
    _check_product_args(a, b, c, h)
    result = 1.0
    for i in range(1, h + 1):
        result *= a + c * (b**i)
    return result


def product_bound(a: float, b: float, c: float, h: int) -> float:
    """The upper bound ``e^{Bc/a} · aʰ`` of Lemma 2.5, with ``B = 1/(1−b)``."""
    _check_product_args(a, b, c, h)
    big_b = 1.0 / (1.0 - b)
    return math.exp(big_b * c / a) * (a**h)


def _check_product_args(a: float, b: float, c: float, h: int) -> None:
    if h < 0:
        raise ValueError("h must be nonnegative")
    if not 0.0 < b < 1.0:
        raise ValueError("Lemma 2.5 requires 0 < b < 1")
    if a <= 0 or c < 0:
        raise ValueError("Lemma 2.5 requires a > 0 and c >= 0")


# -- Fact 2.6: linear recursion solver --------------------------------------------------------


def solve_recursion(
    f0: float,
    a: Sequence[float] | Callable[[int], float],
    b: Sequence[float] | Callable[[int], float],
    h: int,
) -> float:
    """Solve ``f(i) = b_i + a_i · f(i − 1)`` for ``f(h)`` given ``f(0) = f0``.

    ``a`` and ``b`` may be sequences indexed from 1 (so ``a[0]`` is ``a_1``)
    or callables mapping ``i`` to the coefficient.  This is Fact 2.6,
    evaluated by direct iteration (which is also the closed form's value).
    """
    if h < 0:
        raise ValueError("h must be nonnegative")
    a_of = _coefficient(a)
    b_of = _coefficient(b)
    value = f0
    for i in range(1, h + 1):
        value = b_of(i) + a_of(i) * value
    return value


def solve_constant_recursion(f0: float, a: float, b: float, h: int) -> float:
    """Closed form of Fact 2.6 with constant coefficients:
    ``f(h) = f(0)·aʰ + b·Σ_{i<h} aⁱ``.
    """
    if h < 0:
        raise ValueError("h must be nonnegative")
    if math.isclose(a, 1.0):
        return f0 + b * h
    geometric = (a**h - 1.0) / (a - 1.0)
    return f0 * (a**h) + b * geometric


def _coefficient(
    coeff: Sequence[float] | Callable[[int], float],
) -> Callable[[int], float]:
    if callable(coeff):
        return coeff
    values = list(coeff)
    return lambda i: values[i - 1]


# -- Fact 2.7 / Lemma 2.8: urn expectations ---------------------------------------------------


def expected_trials_first_red(r: int, g: int) -> Fraction:
    """Fact 2.7: expected draws (without replacement) to the first red.

    For an urn with ``r`` red and ``g`` green elements the expectation is
    ``(r + g + 1) / (r + 1)``.
    """
    _check_urn(r, g)
    if r == 0:
        raise ValueError("the urn must contain at least one red element")
    return Fraction(r + g + 1, r + 1)


def expected_trials_jth_red(r: int, g: int, j: int) -> Fraction:
    """Lemma 2.8: expected draws to the ``j``-th red element,
    ``j (n + 1) / (r + 1)`` with ``n = r + g``.
    """
    _check_urn(r, g)
    if not 1 <= j <= r:
        raise ValueError(f"j must be between 1 and r={r}, got {j}")
    n = r + g
    return Fraction(j * (n + 1), r + 1)


def expected_trials_jth_red_exact(r: int, g: int, j: int) -> Fraction:
    """Exact expectation for Lemma 2.8 by direct summation over positions.

    The ``j``-th red sits at position ``t`` with probability
    ``C(t−1, j−1)·C(n−t, r−j) / C(n, r)``; the expectation of ``t`` is
    computed from this distribution and should equal
    :func:`expected_trials_jth_red`.
    """
    _check_urn(r, g)
    if not 1 <= j <= r:
        raise ValueError(f"j must be between 1 and r={r}, got {j}")
    n = r + g
    total = Fraction(0)
    denom = math.comb(n, r)
    for t in range(j, n - (r - j) + 1):
        ways = math.comb(t - 1, j - 1) * math.comb(n - t, r - j)
        total += Fraction(t * ways, denom)
    return total


def expected_trials_both_colors(r: int, g: int) -> Fraction:
    """Lemma 2.9: expected draws until both colors have been seen,
    ``1 + r/(g + 1) + g/(r + 1)``.
    """
    _check_urn(r, g)
    if r == 0 or g == 0:
        raise ValueError("Lemma 2.9 requires both colors present in the urn")
    return 1 + Fraction(r, g + 1) + Fraction(g, r + 1)


def expected_trials_both_colors_exact(r: int, g: int) -> Fraction:
    """Exact expectation for Lemma 2.9 by conditioning on run lengths.

    The process stops at ``t + 1`` when the first ``t`` draws are
    monochromatic and draw ``t + 1`` differs; summing
    ``E[T] = Σ_{t ≥ 0} P(T > t)`` where ``P(T > t)`` is the probability the
    first ``t`` draws are monochromatic.
    """
    _check_urn(r, g)
    if r == 0 or g == 0:
        raise ValueError("Lemma 2.9 requires both colors present in the urn")
    n = r + g
    expectation = Fraction(0)
    for t in range(0, n):
        mono = Fraction(0)
        if t <= r:
            mono += Fraction(math.comb(r, t), math.comb(n, t))
        if t <= g:
            mono += Fraction(math.comb(g, t), math.comb(n, t))
        if t == 0:
            mono = Fraction(1)
        expectation += mono
    return expectation


def _check_urn(r: int, g: int) -> None:
    if r < 0 or g < 0:
        raise ValueError("urn counts must be nonnegative")
    if r + g == 0:
        raise ValueError("the urn must be nonempty")
