"""Yao's-principle machinery for randomized lower bounds (Section 4).

Yao's theorem reduces lower-bounding randomized algorithms to exhibiting a
*hard input distribution* on which every deterministic algorithm is slow in
expectation.  The paper uses three such distributions:

* **Theorem 4.2 (Majority)** — uniform over colorings with exactly
  ``k + 1`` red and ``k`` green elements (``n = 2k + 1``); the closed-form
  value is ``n − (n − 1)/(n + 3)``.
* **Theorem 4.6 (Crumbling walls)** — uniform over colorings with exactly
  one green element in every row; the value is ``(n + k)/2``.
* **Theorem 4.8 (Tree)** — all nodes at depth ``< h − 1`` are green; in
  every height-1 bottom subtree exactly two of the three nodes are red,
  uniformly and independently; the value is ``2(n + 1)/3``.

Each distribution is provided both as a sampler (for Monte-Carlo
experiments on large systems) and as an explicit
:class:`~repro.core.coloring.ColoringDistribution` (for exact best-
deterministic computations on small systems via
:meth:`repro.core.exact.ExactSolver.best_deterministic_under`).
"""

from __future__ import annotations

import itertools
import random

from repro.core.coloring import Coloring, ColoringDistribution, WeightedColoring
from repro.systems.crumbling_walls import CrumblingWall
from repro.systems.majority import MajoritySystem
from repro.systems.tree import TreeSystem


# -- Majority (Theorem 4.2) -------------------------------------------------------------------


def majority_hard_sampler(system: MajoritySystem):
    """Sampler for the hard distribution of Theorem 4.2."""
    reds = system.quorum_size  # k + 1

    def sample(rng: random.Random) -> Coloring:
        return Coloring.with_exact_reds(system.n, reds, rng)

    return sample


def majority_hard_distribution(system: MajoritySystem) -> ColoringDistribution:
    """Explicit hard distribution of Theorem 4.2 (small ``n`` only)."""
    return ColoringDistribution.exact_reds(system.n, system.quorum_size)


def majority_lower_bound(n: int) -> float:
    """The closed-form Yao bound of Theorem 4.2: ``n − (n − 1)/(n + 3)``."""
    if n % 2 == 0:
        raise ValueError("Majority requires odd n")
    return n - (n - 1) / (n + 3)


# -- Crumbling walls (Theorem 4.6) ---------------------------------------------------------------


def cw_hard_sampler(system: CrumblingWall):
    """Sampler for the hard distribution of Theorem 4.6.

    Exactly one uniformly chosen element of every row is green; all other
    elements are red.
    """

    def sample(rng: random.Random) -> Coloring:
        green = {rng.choice(sorted(row)) for row in system.rows}
        red = system.universe - green
        return Coloring(system.n, red)

    return sample


def cw_hard_distribution(system: CrumblingWall) -> ColoringDistribution:
    """Explicit hard distribution of Theorem 4.6 (small walls only)."""
    row_choices = [sorted(row) for row in system.rows]
    colorings = []
    for greens in itertools.product(*row_choices):
        red = system.universe - frozenset(greens)
        colorings.append(Coloring(system.n, red))
    return ColoringDistribution.uniform(colorings)


def cw_lower_bound(system: CrumblingWall) -> float:
    """The closed-form Yao bound of Theorem 4.6: ``(n + k)/2``."""
    return (system.n + system.num_rows) / 2.0


# -- Tree (Theorem 4.8) ------------------------------------------------------------------------


def tree_hard_sampler(system: TreeSystem):
    """Sampler for the hard distribution of Theorem 4.8.

    Every node of depth at most ``h − 2`` is green.  The ``(n + 1)/4``
    height-1 subtrees hanging at depth ``h − 1`` each have exactly two of
    their three nodes (parent plus two leaves) colored red, the green one
    chosen uniformly and independently per subtree.

    Requires height at least 1 (so that height-1 subtrees exist).
    """
    if system.height < 1:
        raise ValueError("the Theorem 4.8 distribution needs height >= 1")
    subtree_roots = [
        v for v in range(1, system.n + 1) if system.depth_of(v) == system.height - 1
    ]

    def sample(rng: random.Random) -> Coloring:
        red: set[int] = set()
        for root in subtree_roots:
            left, right = system.children(root)
            trio = [root, left, right]
            green_one = rng.choice(trio)
            red.update(v for v in trio if v != green_one)
        return Coloring(system.n, red)

    return sample


def tree_hard_distribution(system: TreeSystem) -> ColoringDistribution:
    """Explicit hard distribution of Theorem 4.8 (small trees only)."""
    if system.height < 1:
        raise ValueError("the Theorem 4.8 distribution needs height >= 1")
    subtree_roots = [
        v for v in range(1, system.n + 1) if system.depth_of(v) == system.height - 1
    ]
    trios = []
    for root in subtree_roots:
        left, right = system.children(root)
        trios.append([root, left, right])
    colorings = []
    for greens in itertools.product(*[range(3) for _ in trios]):
        red: set[int] = set()
        for trio, green_index in zip(trios, greens):
            red.update(v for i, v in enumerate(trio) if i != green_index)
        colorings.append(Coloring(system.n, red))
    return ColoringDistribution.uniform(colorings)


def tree_lower_bound(n: int) -> float:
    """The closed-form Yao bound of Theorem 4.8: ``2(n + 1)/3``."""
    return 2.0 * (n + 1) / 3.0


def tree_subtree_expected_probes() -> float:
    """Expected probes within one hard-distribution subtree (the ``8/3`` of
    Theorem 4.8's proof): the algorithm must find the two red nodes among
    three, and the green node is equally likely to be probed first, second
    or third.
    """
    return (3 + 3 + 2) / 3.0


# -- generic helpers ---------------------------------------------------------------------------


def yao_bound_via_exact(system, distribution: ColoringDistribution) -> float:
    """Exact best-deterministic expected cost under ``distribution``.

    Thin wrapper over :class:`repro.core.exact.ExactSolver` kept here so the
    lower-bound experiments read naturally; only usable on small universes.
    """
    from repro.core.exact import ExactSolver

    return ExactSolver(system).best_deterministic_under(distribution)
