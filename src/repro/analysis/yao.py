"""Yao's-principle machinery for randomized lower bounds (Section 4).

Yao's theorem reduces lower-bounding randomized algorithms to exhibiting a
*hard input distribution* on which every deterministic algorithm is slow in
expectation.  The paper uses three such distributions:

* **Theorem 4.2 (Majority)** — uniform over colorings with exactly
  ``k + 1`` red and ``k`` green elements (``n = 2k + 1``); the closed-form
  value is ``n − (n − 1)/(n + 3)``.
* **Theorem 4.6 (Crumbling walls)** — uniform over colorings with exactly
  one green element in every row; the value is ``(n + k)/2``.
* **Theorem 4.8 (Tree)** — all nodes at depth ``< h − 1`` are green; in
  every height-1 bottom subtree exactly two of the three nodes are red,
  uniformly and independently; the value is ``2(n + 1)/3``.

Each distribution comes in four forms:

* a :class:`~repro.core.distributions.ColoringSource`
  (``MajorityHardSource`` / ``CWHardSource`` / ``TreeHardSource``),
  registered in the coloring-source registry as ``majority_hard`` /
  ``cw_hard`` / ``tree_hard`` so experiment drivers, the sweep runner and
  the CLI resolve it by name like any other scenario;
* a *sampler* closure (``*_hard_sampler``) drawing one
  :class:`~repro.core.coloring.Coloring` per call over a
  ``random.Random``, for the historical per-trial Monte-Carlo loops — all
  row/subtree precomputation is hoisted out of the closure so the
  per-sample cost is the draw itself;
* a *matrix sampler* (``*_hard_matrix``) drawing a whole trial batch as a
  ``(trials, n)`` numpy bool red matrix, the native input of the batched
  kernels in :mod:`repro.core.batched` /
  :mod:`repro.core.batched_gates` — now a thin delegate of the source;
* an explicit :class:`~repro.core.coloring.ColoringDistribution`
  (``*_hard_distribution``) for exact best-deterministic computations on
  small systems via
  :meth:`repro.core.exact.ExactSolver.best_deterministic_under`.
"""

from __future__ import annotations

import itertools
import random

import numpy as np

from repro.core.coloring import Coloring, ColoringDistribution
from repro.core.distributions import (
    ColoringSource,
    FixedCountSource,
    register_source,
    require_system,
)
from repro.systems.crumbling_walls import CrumblingWall
from repro.systems.majority import MajoritySystem
from repro.systems.tree import TreeSystem


# -- Majority (Theorem 4.2) -------------------------------------------------------------------


def majority_hard_sampler(system: MajoritySystem):
    """Sampler for the hard distribution of Theorem 4.2."""
    reds = system.quorum_size  # k + 1

    def sample(rng: random.Random) -> Coloring:
        return Coloring.with_exact_reds(system.n, reds, rng)

    return sample


class MajorityHardSource(FixedCountSource):
    """Theorem 4.2 hard distribution as a registered coloring source.

    Uniform over colorings with exactly ``k + 1`` red elements — the
    exact-count source with the count pinned to the quorum size.
    """

    name = "majority_hard"

    def __init__(self, system: MajoritySystem) -> None:
        super().__init__(system.n, system.quorum_size)


def majority_hard_matrix(
    system: MajoritySystem, trials: int, rng=None
) -> np.ndarray:
    """Batched Theorem 4.2 sampler: ``trials`` uniform ``(k + 1)``-red rows."""
    return MajorityHardSource(system).sample_matrix(system.n, trials, rng)


def majority_hard_distribution(system: MajoritySystem) -> ColoringDistribution:
    """Explicit hard distribution of Theorem 4.2 (small ``n`` only)."""
    return ColoringDistribution.exact_reds(system.n, system.quorum_size)


def majority_lower_bound(n: int) -> float:
    """The closed-form Yao bound of Theorem 4.2: ``n − (n − 1)/(n + 3)``."""
    if n % 2 == 0:
        raise ValueError("Majority requires odd n")
    return n - (n - 1) / (n + 3)


# -- Crumbling walls (Theorem 4.6) ---------------------------------------------------------------


def cw_hard_sampler(system: CrumblingWall):
    """Sampler for the hard distribution of Theorem 4.6.

    Exactly one uniformly chosen element of every row is green; all other
    elements are red.  The sorted row lists are precomputed once, so each
    sample costs one RNG draw per row.
    """
    sorted_rows = [sorted(row) for row in system.rows]

    def sample(rng: random.Random) -> Coloring:
        green = {rng.choice(row) for row in sorted_rows}
        red = system.universe - green
        return Coloring(system.n, red)

    return sample


class CWHardSource(ColoringSource):
    """Theorem 4.6 hard distribution as a registered coloring source.

    All elements red except exactly one uniformly chosen green per wall
    row; the sorted column arrays are precomputed once at construction.
    """

    name = "cw_hard"

    def __init__(self, system: CrumblingWall) -> None:
        self._n = system.n
        self._columns = [
            np.asarray(sorted(row), dtype=np.intp) - 1 for row in system.rows
        ]

    @property
    def n(self) -> int:
        return self._n

    def _sample_matrix(self, trials, generator):
        red = np.ones((trials, self._n), dtype=bool)
        rows_idx = np.arange(trials)
        for columns in self._columns:
            green = columns[generator.integers(columns.size, size=trials)]
            red[rows_idx, green] = False
        return red


def cw_hard_matrix(system: CrumblingWall, trials: int, rng=None) -> np.ndarray:
    """Batched Theorem 4.6 sampler: all red except one uniform green per row."""
    return CWHardSource(system).sample_matrix(system.n, trials, rng)


def cw_hard_distribution(system: CrumblingWall) -> ColoringDistribution:
    """Explicit hard distribution of Theorem 4.6 (small walls only)."""
    row_choices = [sorted(row) for row in system.rows]
    colorings = []
    for greens in itertools.product(*row_choices):
        red = system.universe - frozenset(greens)
        colorings.append(Coloring(system.n, red))
    return ColoringDistribution.uniform(colorings)


def cw_lower_bound(system: CrumblingWall) -> float:
    """The closed-form Yao bound of Theorem 4.6: ``(n + k)/2``."""
    return (system.n + system.num_rows) / 2.0


# -- Tree (Theorem 4.8) ------------------------------------------------------------------------


def _tree_hard_trios(system: TreeSystem) -> list[list[int]]:
    """The ``(root, left, right)`` trios of the height-1 bottom subtrees."""
    if system.height < 1:
        raise ValueError("the Theorem 4.8 distribution needs height >= 1")
    trios = []
    for root in range(1, system.n + 1):
        if system.depth_of(root) == system.height - 1:
            left, right = system.children(root)
            trios.append([root, left, right])
    return trios


def tree_hard_sampler(system: TreeSystem):
    """Sampler for the hard distribution of Theorem 4.8.

    Every node of depth at most ``h − 2`` is green.  The ``(n + 1)/4``
    height-1 subtrees hanging at depth ``h − 1`` each have exactly two of
    their three nodes (parent plus two leaves) colored red, the green one
    chosen uniformly and independently per subtree.  The subtree trios are
    derived once, outside the per-sample closure.

    Requires height at least 1 (so that height-1 subtrees exist).
    """
    trios = _tree_hard_trios(system)

    def sample(rng: random.Random) -> Coloring:
        red: set[int] = set()
        for trio in trios:
            green_one = rng.choice(trio)
            red.update(v for v in trio if v != green_one)
        return Coloring(system.n, red)

    return sample


class TreeHardSource(ColoringSource):
    """Theorem 4.8 hard distribution as a registered coloring source.

    Every node above the bottom height-1 subtrees is green; each bottom
    ``(root, left, right)`` trio has exactly two red members, the green one
    chosen uniformly and independently per subtree.  The trios are derived
    once at construction.
    """

    name = "tree_hard"

    def __init__(self, system: TreeSystem) -> None:
        self._n = system.n
        self._trios = np.asarray(_tree_hard_trios(system), dtype=np.intp) - 1  # (m, 3)

    @property
    def n(self) -> int:
        return self._n

    def _sample_matrix(self, trials, generator):
        trios = self._trios
        red = np.zeros((trials, self._n), dtype=bool)
        red[:, trios.ravel()] = True
        choice = generator.integers(3, size=(trials, trios.shape[0]))
        green = trios[np.arange(trios.shape[0])[None, :], choice]  # (trials, m)
        red[np.arange(trials)[:, None], green] = False
        return red


def tree_hard_matrix(system: TreeSystem, trials: int, rng=None) -> np.ndarray:
    """Batched Theorem 4.8 sampler.

    Starts all green, reddens every bottom-subtree trio and then clears one
    uniformly chosen member per ``(trial, trio)``.
    """
    return TreeHardSource(system).sample_matrix(system.n, trials, rng)


def tree_hard_distribution(system: TreeSystem) -> ColoringDistribution:
    """Explicit hard distribution of Theorem 4.8 (small trees only)."""
    trios = _tree_hard_trios(system)
    colorings = []
    for greens in itertools.product(*[range(3) for _ in trios]):
        red: set[int] = set()
        for trio, green_index in zip(trios, greens):
            red.update(v for i, v in enumerate(trio) if i != green_index)
        colorings.append(Coloring(system.n, red))
    return ColoringDistribution.uniform(colorings)


def tree_lower_bound(n: int) -> float:
    """The closed-form Yao bound of Theorem 4.8: ``2(n + 1)/3``."""
    return 2.0 * (n + 1) / 3.0


def tree_subtree_expected_probes() -> float:
    """Expected probes within one hard-distribution subtree (the ``8/3`` of
    Theorem 4.8's proof): the algorithm must find the two red nodes among
    three, and the green node is equally likely to be probed first, second
    or third.
    """
    return (3 + 3 + 2) / 3.0


register_source(
    "majority_hard",
    lambda system, p: MajorityHardSource(
        require_system(system, MajoritySystem, "majority_hard")
    ),
    "Thm 4.2 hard distribution: uniform colorings with exactly k+1 reds",
)
register_source(
    "cw_hard",
    lambda system, p: CWHardSource(
        require_system(system, CrumblingWall, "cw_hard")
    ),
    "Thm 4.6 hard distribution: one uniform green per wall row, rest red",
)
register_source(
    "tree_hard",
    lambda system, p: TreeHardSource(
        require_system(system, TreeSystem, "tree_hard")
    ),
    "Thm 4.8 hard distribution: two of three red in every bottom subtree",
)


# -- generic helpers ---------------------------------------------------------------------------


def yao_bound_via_exact(system, distribution: ColoringDistribution) -> float:
    """Exact best-deterministic expected cost under ``distribution``.

    Thin wrapper over :class:`repro.core.exact.ExactSolver` kept here so the
    lower-bound experiments read naturally; only usable on small universes.
    """
    from repro.core.exact import ExactSolver

    return ExactSolver(system).best_deterministic_under(distribution)
