"""First-exit random-walk processes (Lemma 2.4 and Proposition 3.2).

The expected probe count of majority-style probing is governed by a
two-dimensional random walk: probing a green element is a step right,
probing a red element is a step up, and the process stops when either
coordinate reaches the target ``N`` (a monochromatic set of size ``N`` has
been collected).  This module provides a simulator for the process and exact
/ asymptotic expectations, used both to validate Lemma 2.4 and to predict
the Majority results of Proposition 3.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.analysis.lemmas import (
    binomial_pmf,
    grid_walk_exit_time_bound,
    grid_walk_exit_time_exact,
)
from repro.core.estimator import Estimate


@dataclass(frozen=True)
class WalkOutcome:
    """Result of one grid-walk run: exit time and which border was hit."""

    steps: int
    exited_right: bool

    @property
    def exited_top(self) -> bool:
        return not self.exited_right


class GridRandomWalk:
    """The ``N × N`` first-exit walk of Lemma 2.4.

    At each step the walk moves right with probability ``p`` (collecting a
    green element) and up with probability ``q = 1 − p`` (collecting a red
    element); it stops when either coordinate reaches ``N``.
    """

    def __init__(self, n: int, p: float) -> None:
        if n < 1:
            raise ValueError("grid size must be at least 1")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"step probability must be in [0, 1], got {p}")
        self._n = n
        self._p = p

    @property
    def n(self) -> int:
        return self._n

    @property
    def p(self) -> float:
        return self._p

    def run(self, rng: random.Random | None = None) -> WalkOutcome:
        """Simulate one walk until exit."""
        rng = rng or random.Random()
        right = 0
        up = 0
        steps = 0
        while right < self._n and up < self._n:
            steps += 1
            if rng.random() < self._p:
                right += 1
            else:
                up += 1
        return WalkOutcome(steps=steps, exited_right=right >= self._n)

    def simulate_expected_exit_time(
        self, trials: int = 2000, seed: int | None = None
    ) -> Estimate:
        """Monte-Carlo estimate of the expected exit time."""
        if trials < 1:
            raise ValueError("need at least one trial")
        rng = random.Random(seed)
        samples = [self.run(rng).steps for _ in range(trials)]
        return Estimate.from_samples(samples)

    def expected_exit_time_exact(self) -> float:
        """Exact expectation (Lemma 2.4 ground truth)."""
        return grid_walk_exit_time_exact(self._n, self._p)

    def expected_exit_time_bound(self) -> float:
        """Closed-form estimate of Lemma 2.4."""
        return grid_walk_exit_time_bound(self._n, self._p)


def majority_expected_probes_exact(n: int, p: float) -> float:
    """Exact expected probes of (R_)Probe_Maj in the i.i.d. model.

    Probing stops when ``(n + 1) / 2`` elements of one color have been
    collected; because every element is i.i.d., the probe count is exactly
    the exit time of the grid walk with ``N = (n + 1)/2``, *truncated at n
    probes* (the universe is finite, so the walk can never take more than
    ``n`` steps).  The truncation is handled by noting that after ``n``
    probes one color always has at least ``(n+1)/2`` elements.
    """
    if n < 1 or n % 2 == 0:
        raise ValueError("Majority requires an odd universe size")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"failure probability must be in [0, 1], got {p}")
    target = (n + 1) // 2
    q = 1.0 - p
    # E[T] = sum_{t>=0} P(T > t); T > t iff after t probes both color counts
    # are below the target.  For t >= n this is impossible.
    expectation = 0.0
    for t in range(min(2 * target - 1, n)):
        low = max(0, t - (target - 1))
        high = min(target - 1, t)
        prob_alive = 0.0
        for greens in range(low, high + 1):
            prob_alive += binomial_pmf(t, greens, q)
        expectation += prob_alive
    return expectation


def majority_expected_probes_bound(n: int, p: float) -> float:
    """Proposition 3.2's closed form: ``n − Θ(√n)`` at ``p = 1/2``, else ``n/(2q)``."""
    if n < 1 or n % 2 == 0:
        raise ValueError("Majority requires an odd universe size")
    q = 1.0 - p
    if abs(p - 0.5) < 1e-12:
        return n - np.sqrt(n)
    if p < 0.5:
        return n / (2.0 * q)
    return n / (2.0 * p)


