"""Finite-size scaling fits for the asymptotic claims of the paper.

Several of the paper's results are asymptotic — ``O(n^0.585)`` for
Probe_Tree, ``n^0.834`` for Probe_HQS, ``n − Θ(√n)`` for Majority.  The
reproduction checks these by measuring probe counts across geometrically
increasing system sizes and fitting:

* a power law ``cost ≈ A · n^α`` on log–log axes (``fit_power_law``), so
  the measured exponent ``α`` can be compared against the paper's;
* a square-root correction ``cost ≈ n − A·√n + B`` (``fit_sqrt_correction``)
  for the Majority-style ``n − Θ(√n)`` statements.

All fits are ordinary least squares on numpy arrays and return the fitted
parameters together with the coefficient of determination ``R²``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``cost = A · n^alpha``."""

    exponent: float
    prefactor: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted cost at size ``n``."""
        return self.prefactor * (n**self.exponent)


@dataclass(frozen=True)
class SqrtCorrectionFit:
    """Result of fitting ``cost = n − A·√n + B``."""

    sqrt_coefficient: float
    offset: float
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted cost at size ``n``."""
        return n - self.sqrt_coefficient * np.sqrt(n) + self.offset


def fit_power_law(sizes: Sequence[float], costs: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log cost = alpha · log n + log A``."""
    x = np.asarray(list(sizes), dtype=float)
    y = np.asarray(list(costs), dtype=float)
    _check_xy(x, y)
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fitting requires positive sizes and costs")
    log_x = np.log(x)
    log_y = np.log(y)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    return PowerLawFit(
        exponent=float(slope),
        prefactor=float(np.exp(intercept)),
        r_squared=_r_squared(log_y, predicted),
    )


def fit_sqrt_correction(
    sizes: Sequence[float], costs: Sequence[float]
) -> SqrtCorrectionFit:
    """Least-squares fit of ``n − cost = A·√n − B`` (the Θ(√n) deficit)."""
    x = np.asarray(list(sizes), dtype=float)
    y = np.asarray(list(costs), dtype=float)
    _check_xy(x, y)
    deficit = x - y
    design = np.column_stack([np.sqrt(x), -np.ones_like(x)])
    coeffs, *_ = np.linalg.lstsq(design, deficit, rcond=None)
    predicted = design @ coeffs
    return SqrtCorrectionFit(
        sqrt_coefficient=float(coeffs[0]),
        offset=float(coeffs[1]),
        r_squared=_r_squared(deficit, predicted),
    )


def fit_linear(sizes: Sequence[float], costs: Sequence[float]) -> tuple[float, float, float]:
    """Ordinary least-squares line ``cost = slope · n + intercept``.

    Returns ``(slope, intercept, r_squared)``; used for the linear-regime
    results (e.g. R_Probe_Tree's ``5n/6``).
    """
    x = np.asarray(list(sizes), dtype=float)
    y = np.asarray(list(costs), dtype=float)
    _check_xy(x, y)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    return float(slope), float(intercept), _r_squared(y, predicted)


def _check_xy(x: np.ndarray, y: np.ndarray) -> None:
    if x.size != y.size:
        raise ValueError("sizes and costs must have the same length")
    if x.size < 2:
        raise ValueError("need at least two data points to fit")


def _r_squared(actual: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((actual - predicted) ** 2))
    total = float(np.sum((actual - np.mean(actual)) ** 2))
    if total == 0.0:
        return 1.0
    return 1.0 - residual / total
