"""Availability ``F_p(S)`` of the paper's systems (Fact 2.3 and the
recursions used in Sections 3.3 and 3.4).

``F_p(S)`` is the probability that no live quorum exists when each element
fails independently with probability ``p``.  The paper's Tree and HQS
analyses rely on recursive expressions / bounds for these probabilities:

* Tree: ``F_p(h) ≤ (p + 1/2)^h`` for ``p ≤ 1/2`` (used in Prop. 3.6);
* HQS:  ``F_p(h) ≤ p (3p − 2p²)^h`` for ``p < 1/2`` (used in Thm. 3.8),
  and ``F_{1/2}(h) = 1/2`` exactly for every height.

This module provides the exact recursions (not just the bounds) together
with binomial formulas for Majority and crumbling walls, so the experiments
can report paper-bound versus exact versus simulated availability.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def _check_p(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"failure probability must be in [0, 1], got {p}")


# -- Majority ----------------------------------------------------------------------------


def majority_availability(n: int, p: float) -> float:
    """``F_p(Maj)``: probability that fewer than ``(n+1)/2`` elements are live."""
    if n % 2 == 0:
        raise ValueError("Majority requires odd n")
    _check_p(p)
    q = 1.0 - p
    need = (n + 1) // 2
    return sum(
        math.comb(n, g) * (q**g) * (p ** (n - g)) for g in range(0, need)
    )


# -- Crumbling walls ---------------------------------------------------------------------


def crumbling_wall_availability(widths: Sequence[int], p: float) -> float:
    """``F_p`` of an ``(n_1, ..., n_k)``-CW, by the row recursion.

    Let ``A_i`` be the probability that the sub-wall of the first ``i`` rows
    has a live quorum.  Scanning rows top-down: the sub-wall of rows
    ``1..i`` has a live quorum iff either rows ``1..i−1`` do and row ``i``
    has at least one live element, or row ``i`` is entirely live.
    """
    _check_p(p)
    widths = list(widths)
    if not widths:
        raise ValueError("need at least one row")
    q = 1.0 - p
    live_prob = 0.0  # probability the wall of rows scanned so far is available
    for i, width in enumerate(widths):
        all_live = q**width
        some_live = 1.0 - p**width
        if i == 0:
            live_prob = all_live
        else:
            live_prob = live_prob * some_live + (1.0 - live_prob) * all_live
    return 1.0 - live_prob


# -- Tree -------------------------------------------------------------------------------


def tree_availability(height: int, p: float) -> float:
    """Exact ``F_p`` of the Tree system of a given height, by recursion.

    A subtree of height ``h`` has a live quorum iff (both child subtrees do)
    or (the root is live and at least one child subtree does).  A height-0
    subtree is available iff its single node is live.
    """
    if height < 0:
        raise ValueError("height must be nonnegative")
    _check_p(p)
    q = 1.0 - p
    available = q  # height 0
    for _ in range(height):
        both = available * available
        one = 2.0 * available * (1.0 - available)
        available = both + q * one
    return 1.0 - available


def tree_availability_bound(height: int, p: float) -> float:
    """The bound ``F_p(h) ≤ (p + 1/2)^h`` used in Proposition 3.6 (p ≤ 1/2)."""
    if height < 0:
        raise ValueError("height must be nonnegative")
    _check_p(p)
    effective = min(p, 1.0 - p)
    return (effective + 0.5) ** height


# -- HQS --------------------------------------------------------------------------------


def hqs_availability(height: int, p: float) -> float:
    """Exact ``F_p`` of the HQS of a given height, by the 2-of-3 recursion.

    A gate evaluates to live iff at least two of its three children do; a
    leaf is live with probability ``q = 1 − p``.
    """
    if height < 0:
        raise ValueError("height must be nonnegative")
    _check_p(p)
    live = 1.0 - p
    for _ in range(height):
        live = live**3 + 3.0 * live**2 * (1.0 - live)
    return 1.0 - live


def hqs_availability_bound(height: int, p: float) -> float:
    """The bound ``F_p(h) ≤ p (3p − 2p²)^h`` used in Theorem 3.8 (p < 1/2)."""
    if height < 0:
        raise ValueError("height must be nonnegative")
    _check_p(p)
    return p * (3.0 * p - 2.0 * p * p) ** height


# -- Fact 2.3 -----------------------------------------------------------------------------


def satisfies_fact_2_3(fp: float, f1mp: float, p: float) -> bool:
    """Check the two parts of Fact 2.3 on a pair of availability values.

    Part (1): ``F_p ≤ p`` for ``p ≤ 1/2``; part (2): ``F_p + F_{1−p} = 1``.
    """
    _check_p(p)
    part2 = math.isclose(fp + f1mp, 1.0, abs_tol=1e-9)
    part1 = fp <= p + 1e-9 if p <= 0.5 else True
    return part1 and part2
