"""repro — a reproduction of "Average probe complexity in quorum systems"
(Hassin & Peleg, PODC 2001 / JCSS 2006).

The package provides:

* :mod:`repro.systems` — the quorum-system constructions studied in the
  paper (Majority, Wheel, Crumbling Walls/Triang, Tree, HQS) plus grid and
  composition substrates;
* :mod:`repro.core` — colorings, probe oracles, witnesses, strategy trees,
  exact optimal probe-complexity solvers and Monte-Carlo estimators;
* :mod:`repro.algorithms` — every probing algorithm analyzed in the paper
  (Probe_CW, Probe_Tree, Probe_HQS, R_Probe_Maj, R_Probe_CW, R_Probe_Tree,
  R_Probe_HQS, IR_Probe_HQS) plus generic baselines;
* :mod:`repro.analysis` — the paper's closed-form bounds, technical lemmas,
  availability recursions, Yao-principle machinery and finite-size scaling
  fits;
* :mod:`repro.simulation` — a discrete-event simulated cluster with failure
  models and the two motivating applications (quorum mutual exclusion,
  quorum-replicated storage);
* :mod:`repro.experiments` — drivers regenerating Table 1 and every
  per-theorem experiment listed in DESIGN.md.
"""

from repro.core import (
    Color,
    Coloring,
    ColoringOracle,
    Estimate,
    Witness,
    estimate_average_probes,
    probabilistic_probe_complexity,
    probe_complexity,
)
from repro.algorithms import (
    IRProbeHQS,
    ProbeCW,
    ProbeHQS,
    ProbeMaj,
    ProbeTree,
    RProbeCW,
    RProbeHQS,
    RProbeMaj,
    RProbeTree,
    default_deterministic_algorithm,
    default_randomized_algorithm,
)
from repro.systems import (
    HQS,
    CrumblingWall,
    GridSystem,
    MajoritySystem,
    QuorumSystem,
    TreeSystem,
    TriangSystem,
    WheelSystem,
)

__version__ = "1.0.0"

__all__ = [
    "Color",
    "Coloring",
    "ColoringOracle",
    "Estimate",
    "Witness",
    "estimate_average_probes",
    "probabilistic_probe_complexity",
    "probe_complexity",
    "IRProbeHQS",
    "ProbeCW",
    "ProbeHQS",
    "ProbeMaj",
    "ProbeTree",
    "RProbeCW",
    "RProbeHQS",
    "RProbeMaj",
    "RProbeTree",
    "default_deterministic_algorithm",
    "default_randomized_algorithm",
    "HQS",
    "CrumblingWall",
    "GridSystem",
    "MajoritySystem",
    "QuorumSystem",
    "TreeSystem",
    "TriangSystem",
    "WheelSystem",
    "__version__",
]
