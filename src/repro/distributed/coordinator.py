"""Coordinator side of the networked chunk-lease protocol.

A :class:`Coordinator` listens for workers (they dial in with
``repro-probe worker --connect HOST:PORT``) and :func:`distributed_drive`
plugs the connected pool into the streaming engine as a third execution
backend beside in-process and ``ProcessPoolExecutor`` — the engine's
``ChunkLedger`` retry/backoff semantics, stopping rules, checkpoints and
merge order are all reused unchanged, so a distributed run is
byte-identical to ``jobs=1``.

Concurrency model: one daemon accept thread per listening socket and one
daemon reader thread per worker push events (``connect``/``disconnect``/
``result``/``error``/``heartbeat``) onto a queue; the *drive loop* — the
caller's thread, inside :func:`repro.core.engine.stream_probes` — is the
only consumer and the only place leases are granted, expired, merged or
retried.  All determinism-relevant state is therefore single-threaded.

Failure handling, per lease:

* worker ``error`` frame — charge that chunk's retry budget, re-lease it;
* worker disconnect (EOF, reset, corrupt frame) — charge and re-lease
  every chunk that worker held;
* missed heartbeats (``lease_timeout`` with no beat) — the worker is hung
  or partitioned: drop its connection and re-lease its chunks (if it was
  merely partitioned it reconnects as a fresh worker);
* all workers gone — compute chunks locally in-process
  (``local_fallback``, the default) so the run degrades down to
  ``jobs=1`` behavior instead of dying; with the fallback disabled, raise
  :class:`AllWorkersLostError`.

Late or duplicated results are harmless: results are keyed by the run id
and the chunk's absolute start trial, chunks are deterministic in
``(seed, start)``, and a result for an unknown or already-completed lease
is discarded.
"""

from __future__ import annotations

import itertools
import queue
import socket
import threading
import time

import numpy as np

from repro.core import engine
from repro.distributed import protocol


class DistributedError(RuntimeError):
    """Base class of coordinator-side distributed-execution failures."""


class AllWorkersLostError(DistributedError):
    """Every worker is gone and the local fallback is disabled."""


class WorkerChunkError(DistributedError):
    """A worker's kernel raised while computing a leased chunk."""


class _Lease:
    """One outstanding chunk lease (drive-loop private)."""

    __slots__ = ("start", "size", "worker", "deadline", "stats")

    def __init__(self, start: int, size: int) -> None:
        self.start = start
        self.size = size
        self.worker: "WorkerLink | None" = None
        self.deadline: float | None = None
        self.stats = None


class WorkerLink:
    """One connected worker: socket, reader thread, per-connection state."""

    def __init__(
        self,
        sock: socket.socket,
        name: str,
        ident: int,
        coordinator: "Coordinator",
    ) -> None:
        self._sock = sock
        self.name = name
        self.ident = ident
        self._coordinator = coordinator
        self._send_lock = threading.Lock()
        #: Pair tokens already shipped over this connection.
        self.tokens: set[str] = set()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"repro-worker-link-{ident}", daemon=True
        )

    def start_reader(self) -> None:
        self._reader.start()

    def _read_loop(self) -> None:
        while True:
            try:
                message = protocol.recv_message(self._sock)
            except (OSError, protocol.FrameError) as error:
                self._coordinator._reader_lost(self, error)
                return
            if message is None:
                self._coordinator._reader_lost(
                    self, ConnectionError(f"worker {self.name} closed its connection")
                )
                return
            self._coordinator._events.put((message["type"], self, message))

    def send(self, message: dict) -> bool:
        """Send one frame; on failure close the link (the reader then
        reports the disconnect) and return False."""
        try:
            with self._send_lock:
                protocol.send_message(self._sock, message)
            return True
        except OSError:
            self.close()
            return False

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - double close
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WorkerLink {self.ident} {self.name}>"


#: Default seconds a lease may go without a heartbeat before its worker is
#: declared hung/partitioned and the chunk is reassigned.
DEFAULT_LEASE_TIMEOUT = 10.0


class Coordinator:
    """Accept workers and own the connection state shared across runs.

    Like :class:`~repro.core.engine.ChunkPool`, one coordinator is meant to
    outlive many engine runs (a sweep reuses it for every cell); run ids
    keep late results of finished runs from leaking into the next one.
    ``bind`` is one ``(host, port)`` pair, a ``"HOST:PORT"`` string, or a
    list of either (one listening socket per address; port 0 binds an
    ephemeral port — read the chosen one back from :attr:`addresses`).
    """

    def __init__(
        self,
        bind=None,
        *,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        local_fallback: bool = True,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self.lease_timeout = lease_timeout
        self.local_fallback = local_fallback
        #: Leases revoked and reassigned because their worker died, hung or
        #: partitioned (cumulative across runs; the engine diffs it per run).
        self.reassignments = 0
        self._events: "queue.Queue[tuple]" = queue.Queue()
        self._lock = threading.Lock()
        self._workers: dict[int, WorkerLink] = {}
        self._idents = itertools.count(1)
        self._runs = itertools.count(1)
        self._closed = False
        binds = bind if isinstance(bind, list) else [bind or ("127.0.0.1", 0)]
        self._listeners: list[socket.socket] = []
        try:
            for entry in binds:
                address = (
                    protocol.parse_hostport(entry) if isinstance(entry, str) else entry
                )
                listener = socket.create_server(address, backlog=16)
                # A blocking accept() would pin the kernel-side socket (and
                # its port) past close(); wake periodically so the accept
                # thread exits and the port is actually released.
                listener.settimeout(0.25)
                self._listeners.append(listener)
        except BaseException:
            self.close()
            raise
        #: The actually-bound ``(host, port)`` addresses (ports resolved).
        self.addresses = [sock.getsockname()[:2] for sock in self._listeners]
        self._accepters = [
            threading.Thread(
                target=self._accept_loop,
                args=(listener,),
                name="repro-coordinator-accept",
                daemon=True,
            )
            for listener in self._listeners
        ]
        for thread in self._accepters:
            thread.start()

    # -- worker membership (thread-safe) ------------------------------------------

    @property
    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def live_workers(self) -> list[WorkerLink]:
        with self._lock:
            return list(self._workers.values())

    def wait_for_workers(self, count: int, timeout: float = 60.0) -> None:
        """Block until ``count`` workers are connected.

        Raises ``TimeoutError`` naming the shortfall — starting a
        distributed run with fewer workers than expected should be a
        decision, not an accident.
        """
        deadline = time.monotonic() + timeout
        while self.worker_count < count:
            if self._closed:
                raise DistributedError("coordinator is closed")
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"waited {timeout:g}s for {count} worker(s); "
                    f"only {self.worker_count} connected"
                )
            time.sleep(0.05)

    def _accept_loop(self, listener: socket.socket) -> None:
        while not self._closed:
            try:
                sock, _ = listener.accept()
            except TimeoutError:
                continue  # periodic wake-up to observe close()
            except OSError:
                return  # listener closed
            try:
                sock.settimeout(5.0)
                hello = protocol.recv_message(sock)
                if (
                    hello is None
                    or hello.get("type") != "hello"
                    or hello.get("protocol") != protocol.PROTOCOL_VERSION
                ):
                    raise protocol.FrameError("bad handshake")
                protocol.send_message(sock, protocol.welcome_message())
                sock.settimeout(None)
            except (OSError, protocol.FrameError):
                try:
                    sock.close()
                except OSError:  # pragma: no cover
                    pass
                continue
            link = WorkerLink(
                sock, str(hello.get("worker", "?")), next(self._idents), self
            )
            with self._lock:
                if self._closed:
                    link.close()
                    return
                self._workers[link.ident] = link
            self._events.put(("connect", link, None))
            link.start_reader()

    def _reader_lost(self, link: WorkerLink, error: BaseException) -> None:
        self._discard(link)
        self._events.put(("disconnect", link, error))

    def _discard(self, link: WorkerLink) -> None:
        with self._lock:
            self._workers.pop(link.ident, None)
        link.close()

    # -- drive-loop plumbing ------------------------------------------------------

    def _next_run_id(self) -> int:
        return next(self._runs)

    def _next_event(self, timeout: float):
        try:
            return self._events.get(timeout=timeout)
        except queue.Empty:
            return None

    def _send_lease(
        self, link: WorkerLink, token: str, blob: bytes, run: int, entropy: int, lease: _Lease
    ) -> bool:
        """Grant ``lease`` to ``link`` (shipping the pair first if new)."""
        if token not in link.tokens:
            if not link.send(protocol.pair_message(token, blob)):
                return False
            link.tokens.add(token)
        if not link.send(
            protocol.lease_message(run, token, entropy, lease.start, lease.size)
        ):
            return False
        lease.worker = link
        lease.deadline = time.monotonic() + self.lease_timeout
        return True

    def close(self) -> None:
        """Shut down: tell workers to exit, close every socket."""
        self._closed = True
        for listener in getattr(self, "_listeners", ()):
            try:
                listener.close()
            except OSError:  # pragma: no cover
                pass
        for link in self.live_workers():
            link.send(protocol.shutdown_message())
            self._discard(link)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _stats_from_result(payload: dict):
    """Validate a ``result`` frame into :class:`~repro.core.engine.ChunkStats`."""
    try:
        trials = int(payload["trials"])
        witness_red = int(payload["witness_red"])
        histogram = np.asarray(
            [int(count) for count in payload["histogram"]], dtype=np.int64
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ValueError(f"malformed chunk result: {error}") from None
    if (
        trials < 1
        or not 0 <= witness_red <= trials
        or histogram.size == 0
        or bool((histogram < 0).any())
        or int(histogram.sum()) != trials
    ):
        raise ValueError(
            f"inconsistent chunk result for trial {payload.get('start')}: "
            f"trials={trials}, witness_red={witness_red}, "
            f"histogram sum={int(histogram.sum()) if histogram.size else 0}"
        )
    return engine.ChunkStats(trials=trials, histogram=histogram, witness_red=witness_red)


def _find_lease(pending: list[_Lease], start) -> _Lease | None:
    for lease in pending:
        if lease.start == start:
            return lease
    return None


def distributed_drive(
    algorithm,
    source,
    entropy: int,
    schedule,
    ledger,
    coordinator: Coordinator,
    *,
    absorb,
    backend: str = "numpy",
) -> None:
    """Drive one engine run over the coordinator's workers.

    The exact analogue of :func:`repro.core.engine._sharded_drive`:
    ``pending`` is the live lease list in absolute chunk order, merges
    only happen at its head, failures charge the shared
    :class:`~repro.core.engine.ChunkLedger` (which re-raises the original
    error on budget exhaustion), and returning on an adaptive stop simply
    abandons speculative leases — their results arrive tagged with this
    run's id and are discarded by the next run.
    """
    blob, token = engine._pair_payload(algorithm, source, backend)
    run_id = coordinator._next_run_id()
    pending: list[_Lease] = []
    exhausted = False

    def fail_lease(lease: _Lease, error: BaseException) -> None:
        lease.worker = None
        lease.deadline = None
        ledger.record_failure(lease.start, error)

    def drop_worker(link: WorkerLink, error: BaseException) -> None:
        coordinator._discard(link)
        lost = [
            lease
            for lease in pending
            if lease.worker is link and lease.stats is None
        ]
        for lease in lost:
            coordinator.reassignments += 1
            fail_lease(lease, error)
        if lost:
            engine._sleep(ledger.backoff_seconds(lost[0].start))

    while True:
        # 1. Merge completed leases at the head — absolute chunk order, so
        #    the accumulator folds exactly like a sequential run.
        while pending and pending[0].stats is not None:
            lease = pending.pop(0)
            if absorb(lease.start, lease.size, lease.stats):
                return
        # 2. Keep a bounded window of leases outstanding.
        workers = coordinator.live_workers()
        window = 2 * max(1, len(workers)) + 2
        while not exhausted and len(pending) < window:
            item = next(schedule, None)
            if item is None:
                exhausted = True
                break
            pending.append(_Lease(item[0], item[1]))
        if not pending:
            return
        # 3. Assign unleased chunks to the least-loaded live workers.
        if workers:
            load = {link.ident: 0 for link in workers}
            by_ident = {link.ident: link for link in workers}
            for lease in pending:
                if lease.worker is not None and lease.worker.ident in load:
                    load[lease.worker.ident] += 1
            for lease in pending:
                if lease.stats is not None or lease.worker is not None:
                    continue
                ident = min(load, key=lambda i: (load[i], i))
                if not coordinator._send_lease(
                    by_ident[ident], token, blob, run_id, entropy, lease
                ):
                    break  # link just died; its disconnect event is queued
                load[ident] += 1
        elif pending[0].worker is None and pending[0].stats is None:
            # Every worker is gone and the head chunk is unowned: degrade
            # to in-process execution (or fail loudly when asked to).
            if not coordinator.local_fallback:
                raise AllWorkersLostError(
                    "all distributed workers are gone and the local fallback "
                    f"is disabled; {coordinator.reassignments} lease(s) were "
                    "reassigned before the pool emptied"
                )
            head = pending[0]
            while True:
                try:
                    head.stats = engine._run_chunk(
                        algorithm, source, entropy, head.start, head.size, backend
                    )
                    break
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    ledger.record_failure(head.start, error)
                    engine._sleep(ledger.backoff_seconds(head.start))
            continue
        # 4. Wait for the next protocol event, bounded by the nearest
        #    lease deadline so expiries are noticed promptly.
        now = time.monotonic()
        deadlines = [
            lease.deadline
            for lease in pending
            if lease.deadline is not None and lease.stats is None
        ]
        timeout = min(
            0.25, max(0.02, min((d - now for d in deadlines), default=0.25))
        )
        event = coordinator._next_event(timeout)
        if event is not None:
            kind, link, payload = event
            if kind == "disconnect":
                drop_worker(link, payload)
            elif kind == "result" and payload.get("run") == run_id:
                lease = _find_lease(pending, payload.get("start"))
                if lease is not None and lease.stats is None:
                    try:
                        lease.stats = _stats_from_result(payload)
                    except ValueError as error:
                        drop_worker(link, DistributedError(str(error)))
                    else:
                        lease.worker = None
                        lease.deadline = None
            elif kind == "error" and payload.get("run") == run_id:
                lease = _find_lease(pending, payload.get("start"))
                if lease is not None and lease.stats is None:
                    fail_lease(
                        lease,
                        WorkerChunkError(
                            f"worker {link.name} failed chunk at trial "
                            f"{lease.start}: {payload.get('error', 'unknown error')}"
                        ),
                    )
                    engine._sleep(ledger.backoff_seconds(lease.start))
            elif kind == "heartbeat" and payload.get("run") == run_id:
                lease = _find_lease(pending, payload.get("start"))
                if lease is not None and lease.worker is link:
                    lease.deadline = time.monotonic() + coordinator.lease_timeout
            # "connect" needs no handling: step 3 assigns next iteration.
        # 5. Expire leases whose worker missed its heartbeats: hung or
        #    partitioned — only dropping the connection reclaims the chunk.
        now = time.monotonic()
        for lease in list(pending):
            if (
                lease.stats is None
                and lease.worker is not None
                and lease.deadline is not None
                and now > lease.deadline
            ):
                drop_worker(
                    lease.worker,
                    TimeoutError(
                        f"lease for chunk at trial {lease.start} missed "
                        f"heartbeats for {coordinator.lease_timeout:g}s"
                    ),
                )
