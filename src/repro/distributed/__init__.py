"""Networked chunk-lease execution: coordinator/worker protocol over TCP.

The distributed backend generalizes ``jobs=N`` across machines while
keeping the engine's determinism contract: a distributed run is
byte-identical to ``jobs=1`` under worker crashes, hangs, partitions and
corrupt frames.  See the README's "Distributed workers" section for the
wire format and failure matrix.
"""

from repro.distributed.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    AllWorkersLostError,
    Coordinator,
    DistributedError,
    WorkerChunkError,
    distributed_drive,
)
from repro.distributed.protocol import PROTOCOL_VERSION, FrameError, parse_hostport
from repro.distributed.worker import (
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_RECONNECT_FOR,
    run_worker,
    shutdown_workers,
    spawn_local_workers,
)

__all__ = [
    "AllWorkersLostError",
    "Coordinator",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_RECONNECT_FOR",
    "DistributedError",
    "FrameError",
    "PROTOCOL_VERSION",
    "WorkerChunkError",
    "distributed_drive",
    "parse_hostport",
    "run_worker",
    "shutdown_workers",
    "spawn_local_workers",
]
