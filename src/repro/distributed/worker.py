"""Networked chunk-lease worker.

A worker dials the coordinator (``repro-probe worker --connect
HOST:PORT``), then serves leases until the coordinator says ``shutdown``
or disappears: for every ``lease`` frame it runs the exact same
:func:`repro.core.engine._run_chunk` the in-process and process-pool
backends run — same ``(seed, start)``-keyed streams, same histogram
reduction — so a chunk's bytes do not depend on which machine computed it.
While a chunk computes, a daemon thread heartbeats the lease so the
coordinator can tell "slow" from "dead".

Failure behavior mirrors the fault model the reproduction studies:

* a kernel exception is reported as an ``error`` frame (the coordinator
  charges the chunk's retry budget and re-leases it);
* a lost/corrupt connection triggers reconnection with a bounded window
  (``reconnect_for`` seconds of failed attempts before giving up), and the
  worker keeps its deserialized pair cache across reconnects;
* fault injection (:mod:`repro.testing.faults`) reaches every interesting
  point: ``"chunk"`` faults fire inside the kernel (``kill`` = worker
  crash), ``"worker-heartbeat"`` delays suppress heartbeats (partition/
  hang), ``"worker-send"`` drops the connection or corrupts the result
  frame.
"""

from __future__ import annotations

import os
import pickle
import socket
import subprocess
import sys
import threading
import time
from collections import OrderedDict
from pathlib import Path

from repro.distributed import protocol
from repro.testing.faults import take_fault

#: Default seconds between lease heartbeats while a chunk computes.
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: Default window of failed (re)connection attempts before the worker
#: gives up, in seconds.  Reset after every successful connect.
DEFAULT_RECONNECT_FOR = 10.0

#: Deserialized (algorithm, source) pairs kept per worker, like the
#: process-pool worker cache in :mod:`repro.core.engine`.
_PAIR_CACHE_MAX = 8


def default_worker_name() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def run_worker(
    address: tuple[str, int] | str,
    *,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    reconnect_for: float = DEFAULT_RECONNECT_FOR,
    connect_timeout: float = 5.0,
    name: str | None = None,
) -> int:
    """Serve chunk leases to the coordinator at ``address``; returns an exit code.

    0 — served until a clean shutdown (a ``shutdown`` frame or the
    coordinator closing the connection at a frame boundary), or the
    reconnect window ran out after having served;
    1 — never managed to connect at all.
    """
    if isinstance(address, str):
        address = protocol.parse_hostport(address)
    if heartbeat_interval <= 0:
        raise ValueError("heartbeat_interval must be positive")
    name = name or default_worker_name()
    from repro.signals import trap_as_keyboard_interrupt

    with trap_as_keyboard_interrupt():
        return _run_worker_loop(
            address, heartbeat_interval, reconnect_for, connect_timeout, name
        )


def _run_worker_loop(
    address: tuple[str, int],
    heartbeat_interval: float,
    reconnect_for: float,
    connect_timeout: float,
    name: str,
) -> int:
    """The dial/serve/reconnect loop of :func:`run_worker`.

    Runs under a SIGTERM/SIGINT trap: a supervisor's stop request raises
    ``KeyboardInterrupt`` out of whatever blocking call is active, the
    ``finally`` below closes the socket cleanly (the coordinator sees EOF
    at a frame boundary, not a silent lease-expiry timeout), and the
    worker exits 0 like a served-to-completion run.
    """
    pairs: "OrderedDict[str, tuple]" = OrderedDict()
    connected_once = False
    window_end = time.monotonic() + max(0.0, reconnect_for)
    while True:
        try:
            sock = socket.create_connection(address, timeout=connect_timeout)
        except OSError:
            if time.monotonic() >= window_end:
                return 0 if connected_once else 1
            time.sleep(0.1)
            continue
        try:
            sock.settimeout(None)
            protocol.send_message(sock, protocol.hello_message(name))
            welcome = protocol.recv_message(sock)
            if welcome is None or welcome.get("type") != "welcome":
                raise protocol.FrameError(
                    f"coordinator at {address[0]}:{address[1]} did not welcome us"
                )
            connected_once = True
            # A successful connect restores the full reconnect budget.
            window_end = time.monotonic() + max(0.0, reconnect_for)
            _serve(sock, pairs, heartbeat_interval)
            return 0
        except KeyboardInterrupt:
            return 0
        except (OSError, protocol.FrameError):
            if time.monotonic() >= window_end:
                return 0 if connected_once else 1
            time.sleep(0.1)
        finally:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close() on a dead socket
                pass


def _serve(sock: socket.socket, pairs: "OrderedDict[str, tuple]", interval: float) -> None:
    """One connection's serve loop; returns on shutdown or clean EOF."""
    send_lock = threading.Lock()
    while True:
        message = protocol.recv_message(sock)
        if message is None or message["type"] == "shutdown":
            return
        kind = message["type"]
        if kind == "pair":
            pairs[message["token"]] = pickle.loads(protocol.pair_blob(message))
            pairs.move_to_end(message["token"])
            while len(pairs) > _PAIR_CACHE_MAX:
                pairs.popitem(last=False)
        elif kind == "lease":
            _serve_lease(sock, send_lock, message, pairs, interval)
        # Unknown frame types are ignored: a newer coordinator may add
        # advisory messages without breaking older workers.


def _serve_lease(
    sock: socket.socket,
    send_lock: threading.Lock,
    message: dict,
    pairs: "OrderedDict[str, tuple]",
    interval: float,
) -> None:
    from repro.core.engine import _run_chunk, _unpack_pair

    run = int(message["run"])
    start = int(message["start"])
    size = int(message["size"])
    pair = pairs.get(message["token"])
    if pair is None:
        # Protocol breach (the coordinator sends the pair before its first
        # lease); report instead of guessing.
        with send_lock:
            protocol.send_message(
                sock,
                protocol.error_message(
                    run, start, f"unknown pair token {message['token']!r}"
                ),
            )
        return
    algorithm, source, backend = _unpack_pair(pair)
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(sock, send_lock, run, start, interval, stop),
        daemon=True,
    )
    beat.start()
    try:
        # The same chunk evaluation every backend runs — including its
        # "chunk"-site faults, so an injected kill dies here like SIGKILL.
        stats = _run_chunk(
            algorithm, source, int(message["entropy"]), start, size, backend
        )
    except Exception as error:
        stop.set()
        beat.join()
        with send_lock:
            protocol.send_message(
                sock,
                protocol.error_message(run, start, f"{type(error).__name__}: {error}"),
            )
        return
    finally:
        stop.set()
    beat.join()
    fault = take_fault("worker-send", start)
    if fault is not None and fault.action == "drop":
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        raise ConnectionResetError(
            f"injected drop-connection fault before sending chunk {start}"
        )
    result = protocol.result_message(
        run,
        start,
        int(stats.trials),
        [int(count) for count in stats.histogram],
        int(stats.witness_red),
    )
    with send_lock:
        if fault is not None and fault.action == "corrupt":
            protocol.send_corrupt_message(sock, result)
        else:
            protocol.send_message(sock, result)


def _heartbeat_loop(
    sock: socket.socket,
    send_lock: threading.Lock,
    run: int,
    start: int,
    interval: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval):
        fault = take_fault("worker-heartbeat", start, actions=("delay",))
        if fault is not None and stop.wait(fault.seconds):
            return  # beats suppressed for the fault window; chunk finished
        try:
            with send_lock:
                protocol.send_message(sock, protocol.heartbeat_message(run, start))
        except OSError:
            return


# -- loopback helpers (CLI --spawn-workers, tests, CI) ----------------------------


def spawn_local_workers(
    count: int,
    address: tuple[str, int],
    *,
    heartbeat_interval: float | None = None,
    reconnect_for: float | None = None,
) -> list[subprocess.Popen]:
    """Spawn ``count`` loopback worker processes dialing ``address``.

    The workers inherit the environment — including an active
    ``REPRO_FAULTS`` plan, so injected worker faults fire inside real
    processes — with ``PYTHONPATH`` extended so the spawned interpreter
    finds this package even when it is not installed.
    """
    if count < 1:
        raise ValueError("need at least one worker to spawn")
    package_root = Path(__file__).resolve().parent.parent.parent
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(package_root), env.get("PYTHONPATH", "")])
    )
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "--connect",
        f"{address[0]}:{address[1]}",
    ]
    if heartbeat_interval is not None:
        command += ["--heartbeat-interval", repr(float(heartbeat_interval))]
    if reconnect_for is not None:
        command += ["--reconnect-for", repr(float(reconnect_for))]
    return [subprocess.Popen(command, env=env) for _ in range(count)]


def shutdown_workers(processes: list[subprocess.Popen], timeout: float = 10.0) -> None:
    """Reap spawned workers: wait briefly for a clean exit, then terminate."""
    deadline = time.monotonic() + timeout
    for process in processes:
        try:
            process.wait(timeout=max(0.1, deadline - time.monotonic()))
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                process.kill()
                process.wait()
