"""Wire format of the coordinator/worker chunk-lease protocol.

One frame = an 8-byte header (``>II``: payload length, CRC-32 of the
payload) followed by a UTF-8 JSON object with a string ``"type"`` field.
The CRC catches corrupted frames *as a protocol event*: a receiver raises
:class:`FrameError` (a ``ConnectionError``), so both sides treat a corrupt
frame exactly like a lost connection — the coordinator drops the worker
and reassigns its leases, the worker reconnects.  Binary payloads (the
pickled ``(algorithm, source)`` pair) travel base64-encoded inside the
JSON.

Message flow (see README, "Distributed workers", for the lifecycle):

=============  =========  ====================================================
type           direction  meaning
=============  =========  ====================================================
``hello``      w → c      handshake: worker name + protocol version
``welcome``    c → w      handshake accepted
``pair``       c → w      pickled (algorithm, source) pair, keyed by ``token``
``lease``      c → w      compute the chunk ``(entropy, start, size)``
``heartbeat``  w → c      still computing ``start`` (run-scoped)
``result``     w → c      exact chunk statistics: histogram + witness count
``error``      w → c      the chunk's kernel raised; coordinator retries it
``shutdown``   c → w      no more work ever; worker exits cleanly
=============  =========  ====================================================

``lease``/``heartbeat``/``result``/``error`` carry the coordinator's run
id, so results of a superseded run (e.g. speculative chunks computed past
an adaptive stop) are recognizable as stale and discarded — the
distributed analogue of the sharded path cancelling its own futures.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
import zlib

#: Version negotiated in the hello/welcome handshake; bumped on any
#: incompatible frame or message change.
PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">II")

#: Upper bound on a single frame's payload.  Generous (pair blobs are
#: kilobytes, histograms smaller), but it turns a garbled length prefix
#: into a clean :class:`FrameError` instead of an attempted huge read.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ConnectionError):
    """A malformed, corrupt (CRC mismatch), truncated or oversized frame."""


def send_message(sock: socket.socket, message: dict) -> None:
    """Serialize ``message`` as one length-prefixed, CRC-tagged frame."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    sock.sendall(_HEADER.pack(len(data), zlib.crc32(data)) + data)


def send_corrupt_message(sock: socket.socket, message: dict) -> None:
    """Send ``message`` with one payload byte flipped (fault injection).

    The header's CRC describes the *original* payload, so the receiver's
    check must fail — this is the ``"corrupt"`` fault action's transport.
    """
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    header = _HEADER.pack(len(data), zlib.crc32(data))
    sock.sendall(header + bytes([data[0] ^ 0xFF]) + data[1:])


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; ``None`` on EOF at the first byte."""
    data = bytearray()
    while len(data) < count:
        piece = sock.recv(count - len(data))
        if not piece:
            if not data:
                return None
            raise FrameError(
                f"connection closed mid-frame ({len(data)}/{count} bytes)"
            )
        data += piece
    return bytes(data)


def recv_message(sock: socket.socket) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary.

    Raises :class:`FrameError` on a truncated header/payload, an
    implausible length, a CRC mismatch, or a payload that is not a typed
    JSON object.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    length, checksum = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise FrameError("connection closed mid-frame (missing payload)")
    if zlib.crc32(payload) != checksum:
        raise FrameError("corrupt frame: CRC-32 mismatch")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FrameError(f"corrupt frame: {error}") from None
    if not isinstance(message, dict) or not isinstance(message.get("type"), str):
        raise FrameError("frame payload is not a typed JSON object")
    return message


# -- message constructors ---------------------------------------------------------
# Both endpoints build messages through these, so field names live in one
# place.


def hello_message(worker: str) -> dict:
    return {"type": "hello", "protocol": PROTOCOL_VERSION, "worker": worker}


def welcome_message() -> dict:
    return {"type": "welcome", "protocol": PROTOCOL_VERSION}


def pair_message(token: str, blob: bytes) -> dict:
    return {
        "type": "pair",
        "token": token,
        "blob": base64.b64encode(blob).decode("ascii"),
    }


def pair_blob(message: dict) -> bytes:
    """The pickled pair carried by a ``pair`` message."""
    return base64.b64decode(message["blob"])


def lease_message(run: int, token: str, entropy: int, start: int, size: int) -> dict:
    return {
        "type": "lease",
        "run": run,
        "token": token,
        "entropy": entropy,
        "start": start,
        "size": size,
    }


def heartbeat_message(run: int, start: int) -> dict:
    return {"type": "heartbeat", "run": run, "start": start}


def result_message(
    run: int, start: int, trials: int, histogram: list[int], witness_red: int
) -> dict:
    return {
        "type": "result",
        "run": run,
        "start": start,
        "trials": trials,
        "histogram": histogram,
        "witness_red": witness_red,
    }


def error_message(run: int, start: int, error: str) -> dict:
    return {"type": "error", "run": run, "start": start, "error": error}


def shutdown_message() -> dict:
    return {"type": "shutdown"}


def parse_hostport(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (port may be 0 for an ephemeral bind)."""
    host, separator, port_text = text.strip().rpartition(":")
    if not separator or not host:
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"expected HOST:PORT, got {text!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in {text!r}")
    return host, port
