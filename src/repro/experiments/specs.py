"""Built-in :class:`~repro.experiments.registry.ExperimentSpec` registrations.

One registration per experiment formerly hard-wired into the CLI's
``experiment`` ladder (``maj3``, ``majority``, ``crumbling-walls``,
``tree``, ``hqs``, ``randomized``, ``lemmas``, ``availability``,
``ablations``), plus ``table1`` and the ``(p, n)`` sweep cells.  The module
is imported for its side effects by the registry on first lookup.

Adapters are thin: they compose the historical driver functions exactly the
way the old CLI did, so a registered run at a fixed seed reproduces the
pre-registry rows.  ``seed=None`` (the schema default) means "use every
driver's historical default seed"; an explicit seed is forwarded to all
component drivers, which derive independent per-cell streams from it (see
:mod:`repro.experiments.seeding`).
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_cw_order_ablation,
    run_generic_baseline_ablation,
    run_hqs_ablation,
)
from repro.experiments.availability import run_availability_experiment
from repro.experiments.crumbling_walls import (
    run_cw_independence_of_n,
    run_probe_cw_bound,
    run_randomized_cw,
)
from repro.experiments.hqs import (
    run_probe_hqs_optimality,
    run_probe_hqs_scaling,
    run_randomized_hqs,
)
from repro.experiments.lemmas import run_urn_experiment, run_walk_experiment
from repro.experiments.maj3 import run_maj3_experiment
from repro.experiments.majority import (
    run_probabilistic_majority,
    run_randomized_majority,
)
from repro.experiments.registry import (
    DriverResult,
    ExperimentSpec,
    ParamSpec,
    register,
)
from repro.experiments.report import Row
from repro.experiments.sweep import run_sweep
from repro.experiments.table1 import Table1Sizes, run_table1
from repro.experiments.tree import run_probe_tree_scaling, run_randomized_tree


def _seed_kw(seed: int | None) -> dict:
    """Forward an explicit seed, or let drivers use their historic defaults."""
    return {} if seed is None else {"seed": seed}


def _trials_param(default: int = 800) -> ParamSpec:
    return ParamSpec("trials", "int", default, "Monte-Carlo trials per driver")


def _seed_param() -> ParamSpec:
    return ParamSpec(
        "seed", "seed", None, "experiment seed (default: per-driver historic seeds)"
    )


def _distribution_param() -> ParamSpec:
    return ParamSpec(
        "distribution",
        "str",
        "bernoulli",
        "registered coloring source (see `repro-probe distributions`)",
    )


def _fit_lines(fits) -> tuple[str, ...]:
    return tuple(
        f"fitted exponent at p={p}: {fit.exponent:.3f}" for p, fit in fits.items()
    )


def _drive_maj3() -> DriverResult:
    return DriverResult(rows=run_maj3_experiment())


def _drive_majority(trials: int, seed: int | None) -> DriverResult:
    return DriverResult(rows=run_probabilistic_majority(trials=trials, **_seed_kw(seed)))


def _drive_crumbling_walls(trials: int, seed: int | None) -> DriverResult:
    rows = run_probe_cw_bound(trials=trials, **_seed_kw(seed))
    rows += run_cw_independence_of_n(trials=trials, **_seed_kw(seed))
    return DriverResult(rows=rows)


def _drive_tree(trials: int, seed: int | None, distribution: str) -> DriverResult:
    rows, fits = run_probe_tree_scaling(
        trials=trials, distribution=distribution, **_seed_kw(seed)
    )
    return DriverResult(rows=rows, extra=_fit_lines(fits))


def _drive_hqs(trials: int, seed: int | None, distribution: str) -> DriverResult:
    from repro.core.distributions import canonical_source_name

    rows, fits = run_probe_hqs_scaling(
        trials=trials, distribution=distribution, **_seed_kw(seed)
    )
    if canonical_source_name(distribution) == "bernoulli":
        rows += run_probe_hqs_optimality()
    return DriverResult(rows=rows, extra=_fit_lines(fits))


def _drive_randomized(trials: int, seed: int | None) -> DriverResult:
    rows = run_randomized_majority(trials=trials, **_seed_kw(seed))
    rows += run_randomized_cw(trials=trials, **_seed_kw(seed))
    rows += run_randomized_tree(trials=trials, **_seed_kw(seed))
    rows += run_randomized_hqs(trials=trials, **_seed_kw(seed))
    return DriverResult(rows=rows)


def _drive_lemmas(trials: int, seed: int | None) -> DriverResult:
    rows = run_walk_experiment(trials=trials, **_seed_kw(seed))
    rows += run_urn_experiment(trials=trials, **_seed_kw(seed))
    return DriverResult(rows=rows)


def _drive_availability(trials: int, seed: int | None) -> DriverResult:
    return DriverResult(rows=run_availability_experiment(trials=trials, **_seed_kw(seed)))


def _drive_ablations(trials: int, seed: int | None) -> DriverResult:
    rows = run_cw_order_ablation(trials=trials, **_seed_kw(seed))
    rows += run_hqs_ablation(trials=trials, **_seed_kw(seed))
    rows += run_generic_baseline_ablation(trials=trials, **_seed_kw(seed))
    return DriverResult(rows=rows)


def _drive_table1(
    maj_n: int,
    triang_depth: int,
    tree_height: int,
    hqs_height: int,
    trials: int,
    seed: int | None,
) -> DriverResult:
    sizes = Table1Sizes(
        maj_n=maj_n,
        triang_depth=triang_depth,
        tree_height=tree_height,
        hqs_height=hqs_height,
    )
    return DriverResult(rows=run_table1(sizes=sizes, trials=trials, **_seed_kw(seed)))


def _drive_sweep(
    system: str,
    sizes: tuple[int, ...],
    ps: tuple[float, ...],
    trials: int | None,
    seed: int | None,
    randomized: bool,
    distribution: str,
    chunk_size: int,
    target_ci: float | None,
    max_trials: int,
) -> DriverResult:
    # trials stays None unless explicitly overridden, so run_sweep applies
    # the fixed-mode default AND raises loudly on trials + target_ci —
    # the same contract as every other entry point.
    result = run_sweep(
        system,
        sizes=sizes,
        ps=ps,
        trials=trials,
        seed=0 if seed is None else seed,
        randomized=randomized,
        distribution=distribution,
        chunk_size=chunk_size or None,
        target_ci=target_ci,
        max_trials=max_trials or None,
    )
    # Degraded grids: failed cells carry no measurement, so they become
    # extra lines rather than rows with fabricated zeros.
    measured = [cell for cell in result.cells if cell.status == "ok"]
    rows = [
        Row(
            experiment=f"sweep-{system}",
            system=cell.system,
            quantity=f"avg probes ({result.algorithm})",
            measured=cell.mean,
            paper=None,
            relation="~",
            params={
                "size": cell.size,
                "n": cell.n,
                "p": cell.p,
                "trials": cell.trials,
                "n_trials_used": cell.n_trials_used,
                "ci95": round(cell.ci95, 6),
            },
            note=f"±{cell.ci95:.2f}",
        )
        for cell in measured
    ]
    kernel = all(cell.batched_kernel for cell in measured)
    extra = [
        f"{len(result.cells)} cells via "
        f"{'vectorized kernel' if kernel else 'per-trial fallback'}",
    ]
    if target_ci is not None:
        used = sum(cell.n_trials_used for cell in measured)
        extra.append(
            f"adaptive stopping (ci95 <= {target_ci:g}) used {used} trials"
        )
    extra.extend(
        f"FAILED cell (size={cell.size}, p={cell.p:g}): {cell.error}"
        for cell in result.failed_cells
    )
    return DriverResult(rows=rows, extra=tuple(extra))


def _sweep_spec(system: str, sizes: tuple[int, ...], ps: tuple[float, ...], tag: str):
    return ExperimentSpec(
        id=f"sweep-{system}",
        title=f"(p, n) sweep: {system} scaling grid",
        driver=_drive_sweep,
        params=(
            ParamSpec("system", "str", system, "system family (factory name)"),
            ParamSpec("sizes", "int_list", sizes, "size knobs (heights/rows/n)"),
            ParamSpec("ps", "float_list", ps, "failure probabilities"),
            ParamSpec(
                "trials",
                "int",
                None,
                "trials per cell (default 1000; mutually exclusive with target_ci)",
            ),
            ParamSpec("seed", "seed", None, "sweep seed (default 0)"),
            ParamSpec("randomized", "bool", False, "use the randomized algorithm"),
            _distribution_param(),
            ParamSpec("chunk_size", "int", 0, "engine chunk size (0 = auto)"),
            ParamSpec(
                "target_ci",
                "float",
                None,
                "adaptive stop: 95% CI half-width tolerance (unset = fixed trials)",
            ),
            ParamSpec(
                "max_trials", "int", 0, "target_ci trial cap (0 = engine default)"
            ),
        ),
        tags=("sweep", "scaling", tag),
        description=(
            "Streaming Monte-Carlo grid over (p, size): chunked engine runs "
            "on per-cell seeded streams, optional CI-targeted stopping."
        ),
    )


register(
    ExperimentSpec(
        id="maj3",
        title="Maj3 worked example (Section 2.3)",
        driver=_drive_maj3,
        params=(),
        tags=("exact", "worked-example"),
        description="PC = 3, PPC_1/2 = 5/2, PCR = 8/3, all recomputed exactly.",
    )
)
register(
    ExperimentSpec(
        id="majority",
        title="Proposition 3.2: Probe_Maj under i.i.d. failures",
        driver=_drive_majority,
        params=(_trials_param(), _seed_param()),
        tags=("probabilistic", "majority"),
        description="Average probes of Probe_Maj vs n − Θ(√n) and n/(2q).",
    )
)
register(
    ExperimentSpec(
        id="crumbling-walls",
        title="Theorem 3.3: Probe_CW vs 2k − 1",
        driver=_drive_crumbling_walls,
        params=(_trials_param(), _seed_param()),
        tags=("probabilistic", "crumbling-walls"),
        description="2k − 1 bound, corollaries and independence of n.",
    )
)
register(
    ExperimentSpec(
        id="tree",
        title="Proposition 3.6: Probe_Tree scaling",
        driver=_drive_tree,
        params=(_trials_param(), _seed_param(), _distribution_param()),
        tags=("probabilistic", "scaling", "tree"),
        description="O(n^{log2(1+p)}) power law with exponent fits.",
    )
)
register(
    ExperimentSpec(
        id="hqs",
        title="Theorem 3.8: Probe_HQS scaling + optimality",
        driver=_drive_hqs,
        params=(_trials_param(), _seed_param(), _distribution_param()),
        tags=("probabilistic", "scaling", "hqs"),
        description="2.5^h growth, exponent fits and exact-solver optimality check.",
    )
)
register(
    ExperimentSpec(
        id="randomized",
        title="Section 4: randomized worst-case bounds",
        driver=_drive_randomized,
        params=(_trials_param(), _seed_param()),
        tags=("randomized",),
        description="R_Probe_* on the paper's hard input families vs Yao bounds.",
    )
)
register(
    ExperimentSpec(
        id="lemmas",
        title="Technical lemmas 2.4 / 2.8 / 2.9",
        driver=_drive_lemmas,
        params=(_trials_param(), _seed_param()),
        tags=("lemmas",),
        description="Grid-walk exit times and urn processes vs closed forms.",
    )
)
register(
    ExperimentSpec(
        id="availability",
        title="Availability and Fact 2.3",
        driver=_drive_availability,
        params=(_trials_param(), _seed_param()),
        tags=("availability",),
        description="Recursions vs enumeration vs Monte-Carlo, Fact 2.3 identities.",
    )
)
register(
    ExperimentSpec(
        id="ablations",
        title="Design-choice ablations",
        driver=_drive_ablations,
        params=(_trials_param(), _seed_param()),
        tags=("ablation",),
        description="Probing-order, laziness and generic-baseline ablations.",
    )
)
register(
    ExperimentSpec(
        id="table1",
        title="Table 1: measured vs paper bounds",
        driver=_drive_table1,
        params=(
            ParamSpec("maj_n", "int", 101, "Majority universe size"),
            ParamSpec("triang_depth", "int", 12, "Triang rows"),
            ParamSpec("tree_height", "int", 7, "Tree height"),
            ParamSpec("hqs_height", "int", 4, "HQS height"),
            ParamSpec("trials", "int", 1000, "Monte-Carlo trials per cell"),
            _seed_param(),
        ),
        tags=("table1", "summary"),
        description="Every cell of the paper's Table 1 at configurable sizes.",
    )
)
register(_sweep_spec("tree", (3, 5, 7, 9), (0.1, 0.3, 0.5), "tree"))
register(_sweep_spec("hqs", (2, 3, 4, 5), (0.25, 0.5), "hqs"))
