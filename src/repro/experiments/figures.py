"""ASCII renderings of the paper's illustrative figures (Figs. 1–3).

The paper's Figures 1, 2 and 3 show an example quorum (shaded) in the
Triang, Tree and HQS systems respectively.  These functions render the same
pictures as text, marking the elements of a chosen quorum with ``[x]`` and
the rest with ``( )``; they back the ``fig1-3`` experiment entry and the
quickstart example.
"""

from __future__ import annotations

from repro.systems.crumbling_walls import CrumblingWall
from repro.systems.hqs import HQS
from repro.systems.tree import TreeSystem


def _mark(element: int, quorum: frozenset[int]) -> str:
    return f"[{element:>2}]" if element in quorum else f"({element:>2})"


def render_crumbling_wall(
    wall: CrumblingWall, quorum: frozenset[int] | None = None
) -> str:
    """Figure 1 style: one row per line, quorum elements bracketed."""
    quorum = quorum if quorum is not None else next(iter(wall.quorums()))
    if not all(e in wall.universe for e in quorum):
        raise ValueError("quorum contains elements outside the wall")
    lines = [f"{wall.name}: quorum = {sorted(quorum)}"]
    for index, row in enumerate(wall.rows, start=1):
        cells = " ".join(_mark(e, quorum) for e in sorted(row))
        lines.append(f"row {index:>2}: {cells}")
    return "\n".join(lines)


def render_tree(tree: TreeSystem, quorum: frozenset[int] | None = None) -> str:
    """Figure 2 style: one tree level per line, quorum elements bracketed."""
    quorum = quorum if quorum is not None else next(iter(tree.quorums()))
    if not all(e in tree.universe for e in quorum):
        raise ValueError("quorum contains elements outside the tree")
    lines = [f"{tree.name}: quorum = {sorted(quorum)}"]
    for depth in range(tree.height + 1):
        nodes = [v for v in range(1, tree.n + 1) if tree.depth_of(v) == depth]
        pad = " " * (2 ** (tree.height - depth) - 1)
        cells = pad + (" " * len(pad)).join(_mark(v, quorum) for v in nodes)
        lines.append(f"level {depth}: {cells}")
    return "\n".join(lines)


def render_hqs(hqs: HQS, quorum: frozenset[int] | None = None) -> str:
    """Figure 3 style: the ternary gate tree with quorum leaves bracketed."""
    quorum = quorum if quorum is not None else next(iter(hqs.quorums()))
    if not all(e in hqs.universe for e in quorum):
        raise ValueError("quorum contains elements outside the system")
    lines = [f"{hqs.name}: quorum = {sorted(quorum)} (size {len(quorum)})"]
    lines.append(f"gate tree of height {hqs.height}; internal nodes are 2-of-3 majority gates")
    leaves = " ".join(_mark(e, quorum) for e in sorted(hqs.universe))
    lines.append(f"leaves : {leaves}")
    # Show, per internal level, which gates are "won" by the quorum (at
    # least two children supported).
    supported = {hqs.element_to_leaf(e) for e in quorum}
    for depth in range(hqs.height - 1, -1, -1):
        nodes = [
            v
            for v in range(hqs._first_leaf)  # internal nodes only
            if hqs.node_depth(v) == depth
        ]
        marks = []
        next_supported = set()
        for v in nodes:
            votes = sum(1 for child in hqs.children(v) if child in supported)
            won = votes >= 2
            if won:
                next_supported.add(v)
            marks.append("[*]" if won else "( )")
        supported |= next_supported
        lines.append(f"gates at depth {depth}: " + " ".join(marks))
    return "\n".join(lines)


def render_all_figures() -> str:
    """Render the three paper figures on the paper's own example sizes."""
    from repro.systems.crumbling_walls import TriangSystem

    parts = [
        "Figure 1 — Triang system (a quorum is bracketed)",
        render_crumbling_wall(TriangSystem(4)),
        "",
        "Figure 2 — Tree system (a quorum is bracketed)",
        render_tree(TreeSystem(2)),
        "",
        "Figure 3 — HQS (the quorum {1,2,5,6}-style minterm is bracketed)",
        render_hqs(HQS(2)),
    ]
    return "\n".join(parts)
