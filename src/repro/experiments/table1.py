"""Regeneration of the paper's Table 1.

Table 1 summarizes, for Maj, Triang, Tree and HQS, the lower and upper
bounds on probe complexity in (a) the probabilistic model at ``p = 1/2`` and
(b) the worst-case model with randomized algorithms.  This driver measures
our implementation of the paper's algorithm for every cell —

* probabilistic model: average probes over i.i.d. colorings at ``p = 1/2``;
* randomized model: expected probes on the paper's worst-case / hard input
  family for that system —

and reports the measurement next to the paper's lower and upper bound
formulas instantiated at the same ``n``, so every cell of the table can be
checked for the *shape* claim (measurement sandwiched between the bounds, or
matching the exact expression).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.crumbling_walls import ProbeCW, RProbeCW, probe_cw_row_bound
from repro.algorithms.hqs import IRProbeHQS, ProbeHQS
from repro.algorithms.majority import ProbeMaj, RProbeMaj
from repro.algorithms.tree import ProbeTree, RProbeTree
from repro.analysis.bounds import generic_lower_bound_ppc
from repro.analysis.walks import majority_expected_probes_exact
from repro.analysis.yao import (
    cw_hard_sampler,
    cw_lower_bound,
    majority_hard_sampler,
    majority_lower_bound,
    tree_hard_sampler,
    tree_lower_bound,
)
from repro.core.estimator import estimate_average_probes, estimate_average_under
from repro.experiments.hqs import probe_hqs_expected_exact, worst_case_family_sampler
from repro.experiments.report import Row
from repro.experiments.seeding import cell_seed
from repro.systems.crumbling_walls import TriangSystem
from repro.systems.hqs import HQS
from repro.systems.majority import MajoritySystem
from repro.systems.tree import TreeSystem


@dataclass(frozen=True)
class Table1Sizes:
    """Instance sizes used for the Table 1 regeneration."""

    maj_n: int = 101
    triang_depth: int = 12
    tree_height: int = 7
    hqs_height: int = 5

    @property
    def triang_n(self) -> int:
        return self.triang_depth * (self.triang_depth + 1) // 2

    @property
    def tree_n(self) -> int:
        return 2 ** (self.tree_height + 1) - 1

    @property
    def hqs_n(self) -> int:
        return 3**self.hqs_height


def run_table1(
    sizes: Table1Sizes | None = None,
    trials: int = 2000,
    seed: int = 1001,
) -> list[Row]:
    """Regenerate every cell of Table 1 at the configured sizes."""
    sizes = sizes or Table1Sizes()
    rows: list[Row] = []
    rows.extend(_maj_cells(sizes, trials, seed))
    rows.extend(_triang_cells(sizes, trials, seed))
    rows.extend(_tree_cells(sizes, trials, seed))
    rows.extend(_hqs_cells(sizes, trials, seed))
    return rows


def _maj_cells(sizes: Table1Sizes, trials: int, seed: int) -> list[Row]:
    n = sizes.maj_n
    system = MajoritySystem(n)
    ppc = estimate_average_probes(
        ProbeMaj(system), 0.5, trials=trials, seed=cell_seed(seed, "maj-ppc", n)
    )
    pcr = estimate_average_under(
        RProbeMaj(system),
        majority_hard_sampler(system),
        trials=trials,
        seed=cell_seed(seed, "maj-pcr", n),
    )
    exact_ppc = majority_expected_probes_exact(n, 0.5)
    exact_pcr = majority_lower_bound(n)
    return [
        Row("table1", "Maj", "probabilistic p=1/2 (lower n-Θ(√n))", ppc.mean,
            paper=exact_ppc, relation="~", params={"n": n},
            note="lower/upper coincide: n - Θ(√n)"),
        Row("table1", "Maj", "probabilistic p=1/2 (upper n-Θ(√n))", ppc.mean,
            paper=float(n), relation="<=", params={"n": n},
            note=f"exact finite-n value {exact_ppc:.2f}"),
        Row("table1", "Maj", "randomized (lower n-1+o(1))", pcr.mean,
            paper=exact_pcr, relation="~", params={"n": n},
            note="n-(n-1)/(n+3), Thm 4.2"),
        Row("table1", "Maj", "randomized (upper n-1+o(1))", pcr.mean,
            paper=float(n), relation="<=", params={"n": n},
            tolerance=pcr.ci95),
    ]


def _triang_cells(sizes: Table1Sizes, trials: int, seed: int) -> list[Row]:
    depth = sizes.triang_depth
    system = TriangSystem(depth)
    n, k = system.n, depth
    ppc = estimate_average_probes(
        ProbeCW(system), 0.5, trials=trials, seed=cell_seed(seed, "triang-ppc", n)
    )
    pcr = estimate_average_under(
        RProbeCW(system),
        cw_hard_sampler(system),
        trials=trials,
        seed=cell_seed(seed, "triang-pcr", n),
    )
    return [
        Row("table1", "Triang", "probabilistic p=1/2 (lower 2k-Θ(√k))", ppc.mean,
            paper=generic_lower_bound_ppc(k, 0.5), relation=">=",
            params={"n": n, "k": k}, tolerance=ppc.ci95),
        Row("table1", "Triang", "probabilistic p=1/2 (upper 2k-1)", ppc.mean,
            paper=2.0 * k - 1.0, relation="<=", params={"n": n, "k": k},
            tolerance=ppc.ci95),
        Row("table1", "Triang", "randomized (lower (n+k)/2)", pcr.mean,
            paper=cw_lower_bound(system), relation=">=", params={"n": n, "k": k},
            tolerance=pcr.ci95),
        Row("table1", "Triang", "randomized (upper (n+k)/2+log k)", pcr.mean,
            paper=probe_cw_row_bound(system.widths), relation="<=",
            params={"n": n, "k": k},
            note="Thm 4.4 per-row bound (≤ (n+k)/2 + log k)",
            tolerance=pcr.ci95),
    ]


def _tree_cells(sizes: Table1Sizes, trials: int, seed: int) -> list[Row]:
    height = sizes.tree_height
    system = TreeSystem(height)
    n = system.n
    ppc = estimate_average_probes(
        ProbeTree(system), 0.5, trials=trials, seed=cell_seed(seed, "tree-ppc", n)
    )
    pcr = estimate_average_under(
        RProbeTree(system),
        tree_hard_sampler(system),
        trials=trials,
        seed=cell_seed(seed, "tree-pcr", n),
    )
    return [
        Row("table1", "Tree", "probabilistic p=1/2 (no lower bound in paper)", ppc.mean,
            paper=None, relation="~", params={"n": n, "h": height}),
        Row("table1", "Tree", "probabilistic p=1/2 (upper O(n^0.585))", ppc.mean,
            paper=3.0 * float(n) ** 0.585, relation="<=",
            params={"n": n, "h": height},
            note="constant instantiated as 3", tolerance=ppc.ci95),
        Row("table1", "Tree", "randomized (lower 2n/3)", pcr.mean,
            paper=tree_lower_bound(n), relation=">=", params={"n": n, "h": height},
            tolerance=pcr.ci95),
        Row("table1", "Tree", "randomized (upper 5n/6)", pcr.mean,
            paper=5.0 * n / 6.0 + 1.0 / 6.0, relation="<=",
            params={"n": n, "h": height}, tolerance=pcr.ci95),
    ]


def _hqs_cells(sizes: Table1Sizes, trials: int, seed: int) -> list[Row]:
    height = sizes.hqs_height
    system = HQS(height)
    n = system.n
    ppc = estimate_average_probes(
        ProbeHQS(system), 0.5, trials=trials, seed=cell_seed(seed, "hqs-ppc", n)
    )
    pcr = estimate_average_under(
        IRProbeHQS(system),
        worst_case_family_sampler(system),
        trials=trials,
        seed=cell_seed(seed, "hqs-pcr", n),
    )
    exact_ppc = probe_hqs_expected_exact(height, 0.5)  # = 2.5^h = n^0.834
    return [
        Row("table1", "HQS", "probabilistic p=1/2 (lower Ω(n^0.834))", ppc.mean,
            paper=0.9 * exact_ppc, relation=">=", params={"n": n, "h": height},
            note="lower bound = optimal value 2.5^h (Thm 3.9), slack 10%",
            tolerance=ppc.ci95),
        Row("table1", "HQS", "probabilistic p=1/2 (upper O(n^0.834))", ppc.mean,
            paper=1.1 * exact_ppc, relation="<=", params={"n": n, "h": height},
            note="upper bound = 2.5^h (Thm 3.8), slack 10%", tolerance=ppc.ci95),
        Row("table1", "HQS", "randomized (lower Ω(n^0.834))", pcr.mean,
            paper=0.9 * exact_ppc, relation=">=", params={"n": n, "h": height},
            note="Cor 4.13", tolerance=pcr.ci95),
        Row("table1", "HQS", "randomized (upper O(n^0.887))", pcr.mean,
            paper=1.2 * (189.5 / 27.0) ** (height / 2.0) * 2.0, relation="<=",
            params={"n": n, "h": height},
            note="Thm 4.10 recursion value, constant instantiated",
            tolerance=pcr.ci95),
    ]


def render_table1(rows: list[Row]) -> str:
    """Render the regenerated Table 1 grouped like the paper's layout."""
    from repro.experiments.report import render_table

    order = {"Maj": 0, "Triang": 1, "Tree": 2, "HQS": 3}
    ordered = sorted(rows, key=lambda r: (order.get(r.system, 99), r.quantity))
    return render_table(
        ordered,
        title="Table 1 — probe complexity: measured vs paper bounds "
        "(probabilistic model at p=1/2 and randomized worst-case model)",
    )
