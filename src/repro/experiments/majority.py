"""Majority experiments: Proposition 3.2 (probabilistic) and Theorem 4.2
(randomized worst case).

* ``prop3.2-maj`` measures the average probe count of Probe_Maj under
  i.i.d. failures across a sweep of ``n`` and ``p`` and compares against the
  closed forms ``n − Θ(√n)`` (p = 1/2) and ``n/(2q)`` (p < 1/2), plus the
  exact finite-``n`` expectation from the grid-walk analysis.
* ``thm4.2-maj-rand`` measures the worst-case expected probes of
  R_Probe_Maj (the maximum is attained on inputs with exactly ``k + 1`` red
  elements, as shown in the theorem's proof) and compares against the exact
  value ``n − (n − 1)/(n + 3)``; the same value is obtained as a Yao lower
  bound from the hard distribution.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.algorithms.majority import ProbeMaj, RProbeMaj
from repro.analysis.fitting import fit_sqrt_correction
from repro.analysis.walks import (
    majority_expected_probes_bound,
    majority_expected_probes_exact,
)
from repro.analysis.yao import majority_hard_sampler, majority_lower_bound
from repro.core.coloring import Coloring
from repro.core.estimator import estimate_average_probes, estimate_average_under
from repro.experiments.report import Row
from repro.experiments.seeding import cell_seed
from repro.systems.majority import MajoritySystem

DEFAULT_SIZES = (11, 25, 51, 101, 201)
DEFAULT_PS = (0.5, 0.3, 0.1)


def run_probabilistic_majority(
    sizes: Sequence[int] = DEFAULT_SIZES,
    ps: Sequence[float] = DEFAULT_PS,
    trials: int = 2000,
    seed: int = 2001,
    batched: bool = True,
) -> list[Row]:
    """Measured PPC of Probe_Maj versus Proposition 3.2.

    Uses the vectorized estimator by default; pass ``batched=False`` for
    the per-trial path.  Every ``(n, p)`` cell samples from its own stream
    derived from ``(seed, n, p)`` (see :mod:`repro.experiments.seeding`),
    so cells are independent and reproduce regardless of grid shape.
    """
    rows: list[Row] = []
    for n in sizes:
        system = MajoritySystem(n)
        algorithm = ProbeMaj(system)
        for p in ps:
            estimate = estimate_average_probes(
                algorithm, p, trials=trials, seed=cell_seed(seed, n, p), batched=batched
            )
            rows.append(
                Row(
                    experiment="prop3.2-maj",
                    system=system.name,
                    quantity="avg probes (Probe_Maj)",
                    measured=estimate.mean,
                    paper=majority_expected_probes_exact(n, p),
                    relation="~",
                    params={"n": n, "p": p, "trials": trials},
                    note=f"closed form {majority_expected_probes_bound(n, p):.2f}, ±{estimate.ci95:.2f}",
                )
            )
    return rows


def majority_sqrt_deficit_fit(
    sizes: Sequence[int] = (25, 51, 101, 201, 401),
    trials: int = 3000,
    seed: int = 7,
    batched: bool = True,
):
    """Fit the ``n − measured ≈ A√n`` deficit at ``p = 1/2`` (the Θ(√n) term)."""
    costs = []
    for n in sizes:
        algorithm = ProbeMaj(MajoritySystem(n))
        estimate = estimate_average_probes(
            algorithm, 0.5, trials=trials, seed=cell_seed(seed, n, 0.5), batched=batched
        )
        costs.append(estimate.mean)
    return fit_sqrt_correction([float(n) for n in sizes], costs)


def run_randomized_majority(
    sizes: Sequence[int] = (5, 9, 21, 51, 101),
    trials: int = 3000,
    seed: int = 4002,
) -> list[Row]:
    """Measured randomized worst-case probes of R_Probe_Maj versus Theorem 4.2."""
    rows: list[Row] = []
    for n in sizes:
        system = MajoritySystem(n)
        algorithm = RProbeMaj(system)
        k = (n - 1) // 2

        # Worst-case input family: exactly k+1 red elements (Thm 4.2 proof).
        worst_input = Coloring(n, range(1, k + 2))
        rng = random.Random(cell_seed(seed, n, "worst"))
        samples = [
            algorithm.run_on(worst_input, rng=rng).probes for _ in range(trials)
        ]
        measured_upper = sum(samples) / len(samples)

        # Yao lower bound: expected probes on the hard distribution.
        lower_estimate = estimate_average_under(
            algorithm,
            majority_hard_sampler(system),
            trials=trials,
            seed=cell_seed(seed, n, "yao"),
        )

        exact_value = majority_lower_bound(n)
        rows.append(
            Row(
                experiment="thm4.2-maj-rand",
                system=system.name,
                quantity="E[probes] on worst input (r=k+1)",
                measured=measured_upper,
                paper=exact_value,
                relation="~",
                params={"n": n, "trials": trials},
                note="should match n-(n-1)/(n+3) up to sampling error",
            )
        )
        rows.append(
            Row(
                experiment="thm4.2-maj-rand",
                system=system.name,
                quantity="E[probes] on hard distribution (Yao)",
                measured=lower_estimate.mean,
                paper=exact_value,
                relation="~",
                params={"n": n, "trials": trials},
                note=f"±{lower_estimate.ci95:.2f}",
            )
        )
    return rows
