"""Unified experiment runner: resolve specs, run, fan out, write artifacts.

One pipeline for every registered experiment
(:mod:`repro.experiments.registry`):

* :func:`run_experiment` resolves an :class:`ExperimentSpec`, merges
  parameter overrides into the declared schema and invokes the driver;
* :func:`run_experiments` runs a selection of specs, optionally fanning
  them out across worker processes (``jobs > 1``) — results are returned
  in request order and are bit-identical to a sequential run, because
  every spec derives its own per-cell seeded streams
  (:mod:`repro.experiments.seeding`) and no state is shared;
* :func:`write_artifact` / :func:`load_artifact` serialize a run as one
  JSON artifact with a common schema (kind ``"experiment"``): rows +
  resolved params + environment metadata.  Artifacts are deliberately free
  of wall-clock fields so that re-runs at the same seed — sequential or
  parallel — are byte-identical (see README, "Artifact schema").
"""

from __future__ import annotations

import platform
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.checkpoint import (
    atomic_write_json,
    check_schema_version,
    load_json_payload,
    remove_stale_tmp,
    required_field,
)
from repro.experiments.registry import get_spec
from repro.experiments.report import Row, row_from_dict, row_to_dict, violations

#: Version of the unified artifact JSON schema.  Version 2 added the
#: ``status``/``error`` fields (degraded runs); version 3 adds the
#: ``recovery`` counters (chunk retries / pool respawns / distributed
#: lease reassignments observed by the run's engine calls); version 4
#: adds the ``backend`` kernel-backend knob the run was invoked with.
#: Older artifacts still load, with ``"ok"`` status, empty recovery and
#: backend ``"numpy"``.
ARTIFACT_SCHEMA_VERSION = 4

#: ``kind`` field of unified experiment artifacts.
ARTIFACT_KIND = "experiment"


def environment_metadata() -> dict[str, str]:
    """Deterministic (per host) environment fingerprint stored in artifacts."""
    import numpy

    from repro import __version__

    return {
        "package": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
    }


@dataclass(frozen=True)
class RunResult:
    """A completed experiment run: resolved inputs, rows and metadata.

    ``status`` is ``"ok"`` for a run that completed and ``"failed"`` for
    one whose driver raised under :func:`run_experiments`' degraded mode;
    a failed run records the error (``"Type: message"``) in ``error`` and
    carries no rows.

    ``recovery`` sums the engine's fault-recovery counters over every
    streaming run the experiment issued (see
    :func:`repro.core.engine.collect_recovery`); like ``environment`` it
    describes the execution, not the result — a recovered run's rows are
    byte-identical to a fault-free run's.

    ``backend`` records the kernel-backend knob the run was invoked with
    (``"numpy"``, ``"bitpacked"`` or ``"auto"``; an ``auto`` run resolves
    per engine call, see :func:`repro.core.batched.resolve_backend`).
    Also an execution field: deterministic kernels produce byte-identical
    rows under every backend.
    """

    spec_id: str
    title: str
    tags: tuple[str, ...]
    params: dict[str, Any]
    rows: tuple[Row, ...]
    extra: tuple[str, ...]
    environment: dict[str, str]
    status: str = "ok"
    error: str = ""
    recovery: dict[str, int] = field(default_factory=dict)
    backend: str = "numpy"

    @property
    def violation_rows(self) -> list[Row]:
        return violations(list(self.rows))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready artifact payload (deterministic: no wall-clock fields)."""
        return {
            "kind": ARTIFACT_KIND,
            "schema": ARTIFACT_SCHEMA_VERSION,
            "id": self.spec_id,
            "title": self.title,
            "tags": list(self.tags),
            "params": {k: _jsonable(v) for k, v in self.params.items()},
            "environment": dict(self.environment),
            "rows": [row_to_dict(row) for row in self.rows],
            "extra": list(self.extra),
            "violations": len(self.violation_rows),
            "status": self.status,
            "error": self.error,
            "recovery": dict(self.recovery),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], path: str | Path = "<payload>"
    ) -> "RunResult":
        kind = payload.get("kind")
        if kind != ARTIFACT_KIND:
            raise ValueError(
                f"{path}: expected kind {ARTIFACT_KIND!r}, found {kind!r}"
            )
        check_schema_version(payload, ARTIFACT_SCHEMA_VERSION, path, legacy_ok=True)
        return cls(
            spec_id=required_field(payload, "id", path),
            title=required_field(payload, "title", path),
            tags=tuple(payload.get("tags", ())),
            params={k: _untuple(v) for k, v in payload.get("params", {}).items()},
            rows=tuple(row_from_dict(row) for row in payload.get("rows", ())),
            extra=tuple(payload.get("extra", ())),
            environment=dict(payload.get("environment", {})),
            status=payload.get("status", "ok"),
            error=payload.get("error", ""),
            recovery={
                key: int(value)
                for key, value in payload.get("recovery", {}).items()
            },
            backend=payload.get("backend", "numpy"),
        )


def _jsonable(value: Any) -> Any:
    return list(value) if isinstance(value, tuple) else value


def _untuple(value: Any) -> Any:
    """Invert :func:`_jsonable`: JSON arrays come back as tuples."""
    return tuple(value) if isinstance(value, list) else value


def run_experiment(
    experiment_id: str,
    overrides: Mapping[str, Any] | None = None,
    strict: bool = True,
    backend: str | None = None,
) -> RunResult:
    """Resolve and run one registered experiment.

    ``overrides`` replace declared parameter defaults; with ``strict=False``
    override names a spec does not declare are ignored, so one shared
    override set (e.g. ``trials=20``) can be applied across many specs.

    ``backend`` sets the ambient kernel backend for every engine call the
    driver issues (see :func:`repro.core.engine.default_backend`); drivers
    need no backend plumbing of their own.  A run that mixes deterministic
    and randomized algorithms should use ``"auto"`` rather than
    ``"bitpacked"`` — the latter raises on randomized algorithms.
    """
    from repro.core.engine import collect_recovery, default_backend

    spec = get_spec(experiment_id)
    with default_backend("numpy" if backend is None else backend):
        with collect_recovery() as recovery:
            params, result = spec.run(overrides, strict=strict)
    return RunResult(
        spec_id=spec.id,
        title=spec.title,
        tags=spec.tags,
        params=params,
        rows=result.rows,
        extra=result.extra,
        environment=environment_metadata(),
        recovery=dict(recovery),
        backend="numpy" if backend is None else backend,
    )


def _run_for_pool(
    experiment_id: str,
    overrides: dict[str, Any] | None,
    backend: str | None = None,
) -> RunResult:
    """Top-level worker entry point (must be picklable for process pools)."""
    return run_experiment(experiment_id, overrides, strict=False, backend=backend)


def failed_result(experiment_id: str, error: BaseException) -> RunResult:
    """A ``status="failed"`` placeholder for an experiment whose run raised."""
    spec = get_spec(experiment_id)
    return RunResult(
        spec_id=spec.id,
        title=spec.title,
        tags=spec.tags,
        params={},
        rows=(),
        extra=(),
        environment=environment_metadata(),
        status="failed",
        error=f"{type(error).__name__}: {error}",
    )


def run_experiments(
    experiment_ids: Sequence[str],
    overrides: Mapping[str, Any] | None = None,
    jobs: int = 1,
    fail_fast: bool = False,
    backend: str | None = None,
) -> list[RunResult]:
    """Run several experiments, optionally across ``jobs`` processes.

    Results come back in request order.  Parallel runs are bit-identical to
    sequential ones: specs share no RNG state, and every Monte-Carlo cell
    draws from its own parameter-keyed stream.

    Degraded mode (the default): an experiment whose driver raises does
    not abort the batch — its slot comes back as a ``status="failed"``
    result carrying the error, and the remaining experiments run normally
    (they share no state).  Pass ``fail_fast=True`` to re-raise the first
    error instead.  Unknown experiment ids always raise up front, before
    anything runs.
    """
    ids = list(experiment_ids)
    shared = dict(overrides or {})
    for experiment_id in ids:
        # Input errors are not runtime faults: unknown ids and unparseable
        # parameter values raise up front, before anything runs, even in
        # degraded mode.
        get_spec(experiment_id).resolve_params(shared, strict=False)

    def guarded(run_one, experiment_id: str) -> RunResult:
        if fail_fast:
            return run_one()
        try:
            return run_one()
        except KeyboardInterrupt:
            raise
        except Exception as error:
            return failed_result(experiment_id, error)

    if jobs <= 1 or len(ids) <= 1:
        return [
            guarded(lambda i=i: _run_for_pool(i, shared, backend), i) for i in ids
        ]
    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        futures = [
            pool.submit(_run_for_pool, experiment_id, shared, backend)
            for experiment_id in ids
        ]
        return [
            guarded(future.result, experiment_id)
            for future, experiment_id in zip(futures, ids)
        ]


def artifact_path(result: RunResult, directory: str | Path) -> Path:
    """Canonical artifact location for ``result`` under ``directory``."""
    return Path(directory) / f"{result.spec_id}.json"


def write_artifact(result: RunResult, path: str | Path) -> Path:
    """Write one run's JSON artifact atomically and return its path.

    Atomic (tmp + fsync + ``os.replace``): a crash mid-write never leaves
    a truncated artifact under the target name.  Stale ``*.tmp`` files an
    earlier crash left beside the target are logged and removed first.
    """
    remove_stale_tmp(path)
    return atomic_write_json(path, result.to_dict())


def write_artifacts(results: Sequence[RunResult], directory: str | Path) -> list[Path]:
    """Write one ``<id>.json`` artifact per result under ``directory``."""
    return [write_artifact(result, artifact_path(result, directory)) for result in results]


def load_artifact(path: str | Path) -> RunResult:
    """Load an artifact written by :func:`write_artifact`.

    Strict: corrupt JSON, a wrong ``kind``, a newer schema version or a
    missing field all fail with a message naming the file and the field —
    never a raw ``KeyError``.
    """
    return RunResult.from_dict(load_json_payload(path, ARTIFACT_KIND), path)
