"""Unified experiment runner: resolve specs, run, fan out, write artifacts.

One pipeline for every registered experiment
(:mod:`repro.experiments.registry`):

* :func:`run_experiment` resolves an :class:`ExperimentSpec`, merges
  parameter overrides into the declared schema and invokes the driver;
* :func:`run_experiments` runs a selection of specs, optionally fanning
  them out across worker processes (``jobs > 1``) — results are returned
  in request order and are bit-identical to a sequential run, because
  every spec derives its own per-cell seeded streams
  (:mod:`repro.experiments.seeding`) and no state is shared;
* :func:`write_artifact` / :func:`load_artifact` serialize a run as one
  JSON artifact with a common schema (kind ``"experiment"``): rows +
  resolved params + environment metadata.  Artifacts are deliberately free
  of wall-clock fields so that re-runs at the same seed — sequential or
  parallel — are byte-identical (see README, "Artifact schema").
"""

from __future__ import annotations

import json
import platform
from collections.abc import Mapping, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.experiments.registry import get_spec
from repro.experiments.report import Row, row_from_dict, row_to_dict, violations

#: Version of the unified artifact JSON schema.
ARTIFACT_SCHEMA_VERSION = 1

#: ``kind`` field of unified experiment artifacts.
ARTIFACT_KIND = "experiment"


def environment_metadata() -> dict[str, str]:
    """Deterministic (per host) environment fingerprint stored in artifacts."""
    import numpy

    from repro import __version__

    return {
        "package": __version__,
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "machine": platform.machine(),
    }


@dataclass(frozen=True)
class RunResult:
    """A completed experiment run: resolved inputs, rows and metadata."""

    spec_id: str
    title: str
    tags: tuple[str, ...]
    params: dict[str, Any]
    rows: tuple[Row, ...]
    extra: tuple[str, ...]
    environment: dict[str, str]

    @property
    def violation_rows(self) -> list[Row]:
        return violations(list(self.rows))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready artifact payload (deterministic: no wall-clock fields)."""
        return {
            "kind": ARTIFACT_KIND,
            "schema": ARTIFACT_SCHEMA_VERSION,
            "id": self.spec_id,
            "title": self.title,
            "tags": list(self.tags),
            "params": {k: _jsonable(v) for k, v in self.params.items()},
            "environment": dict(self.environment),
            "rows": [row_to_dict(row) for row in self.rows],
            "extra": list(self.extra),
            "violations": len(self.violation_rows),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        if payload.get("kind") != ARTIFACT_KIND:
            raise ValueError(f"not an experiment artifact (kind={payload.get('kind')!r})")
        return cls(
            spec_id=payload["id"],
            title=payload["title"],
            tags=tuple(payload.get("tags", ())),
            params={k: _untuple(v) for k, v in payload.get("params", {}).items()},
            rows=tuple(row_from_dict(row) for row in payload.get("rows", ())),
            extra=tuple(payload.get("extra", ())),
            environment=dict(payload.get("environment", {})),
        )


def _jsonable(value: Any) -> Any:
    return list(value) if isinstance(value, tuple) else value


def _untuple(value: Any) -> Any:
    """Invert :func:`_jsonable`: JSON arrays come back as tuples."""
    return tuple(value) if isinstance(value, list) else value


def run_experiment(
    experiment_id: str,
    overrides: Mapping[str, Any] | None = None,
    strict: bool = True,
) -> RunResult:
    """Resolve and run one registered experiment.

    ``overrides`` replace declared parameter defaults; with ``strict=False``
    override names a spec does not declare are ignored, so one shared
    override set (e.g. ``trials=20``) can be applied across many specs.
    """
    spec = get_spec(experiment_id)
    params, result = spec.run(overrides, strict=strict)
    return RunResult(
        spec_id=spec.id,
        title=spec.title,
        tags=spec.tags,
        params=params,
        rows=result.rows,
        extra=result.extra,
        environment=environment_metadata(),
    )


def _run_for_pool(experiment_id: str, overrides: dict[str, Any] | None) -> RunResult:
    """Top-level worker entry point (must be picklable for process pools)."""
    return run_experiment(experiment_id, overrides, strict=False)


def run_experiments(
    experiment_ids: Sequence[str],
    overrides: Mapping[str, Any] | None = None,
    jobs: int = 1,
) -> list[RunResult]:
    """Run several experiments, optionally across ``jobs`` processes.

    Results come back in request order.  Parallel runs are bit-identical to
    sequential ones: specs share no RNG state, and every Monte-Carlo cell
    draws from its own parameter-keyed stream.
    """
    ids = list(experiment_ids)
    for experiment_id in ids:
        get_spec(experiment_id)  # fail fast on unknown ids, before forking
    shared = dict(overrides or {})
    if jobs <= 1 or len(ids) <= 1:
        return [_run_for_pool(experiment_id, shared) for experiment_id in ids]
    with ProcessPoolExecutor(max_workers=min(jobs, len(ids))) as pool:
        futures = [pool.submit(_run_for_pool, experiment_id, shared) for experiment_id in ids]
        return [future.result() for future in futures]


def artifact_path(result: RunResult, directory: str | Path) -> Path:
    """Canonical artifact location for ``result`` under ``directory``."""
    return Path(directory) / f"{result.spec_id}.json"


def write_artifact(result: RunResult, path: str | Path) -> Path:
    """Write one run's JSON artifact and return its path."""
    destination = Path(path)
    destination.parent.mkdir(parents=True, exist_ok=True)
    destination.write_text(json.dumps(result.to_dict(), indent=2) + "\n")
    return destination


def write_artifacts(results: Sequence[RunResult], directory: str | Path) -> list[Path]:
    """Write one ``<id>.json`` artifact per result under ``directory``."""
    return [write_artifact(result, artifact_path(result, directory)) for result in results]


def load_artifact(path: str | Path) -> RunResult:
    """Load an artifact written by :func:`write_artifact`."""
    return RunResult.from_dict(json.loads(Path(path).read_text()))
