"""Tree-system experiments: Proposition 3.6 / Corollary 3.7 (Probe_Tree) and
Theorems 4.7 / 4.8 (R_Probe_Tree).

The probabilistic claim is a sub-linear power law: Probe_Tree probes
``O(n^{log2(1+p)})`` elements on average (``O(n^0.585)`` at ``p = 1/2``),
even though deterministically all ``n`` elements may have to be probed.  We
check the exponent by a log–log fit across tree heights.  The randomized
claims bracket R_Probe_Tree's worst-case expected probes between
``2(n+1)/3`` (Yao bound on the hard distribution of Theorem 4.8) and
``5n/6 + 1/6``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms.tree import ProbeTree, RProbeTree
from repro.analysis.fitting import PowerLawFit, fit_power_law
from repro.analysis.bounds import tree_ppc_exponent
from repro.analysis.yao import tree_hard_sampler, tree_lower_bound
from repro.core.estimator import estimate_average_probes, estimate_average_under
from repro.experiments.report import Row
from repro.experiments.seeding import cell_seed
from repro.systems.tree import TreeSystem

DEFAULT_HEIGHTS = (3, 4, 5, 6, 7, 8)


def _hard_input_estimator(algorithm, system, trials, seed, batched):
    """Estimate on the Theorem 4.8 hard distribution, streamed or per-trial."""
    if batched:
        from repro.analysis.yao import TreeHardSource
        from repro.core.engine import stream_estimate

        return stream_estimate(
            algorithm, TreeHardSource(system), trials=trials, seed=seed
        )
    return estimate_average_under(
        algorithm, tree_hard_sampler(system), trials=trials, seed=seed
    )


def run_probe_tree_scaling(
    heights: Sequence[int] = DEFAULT_HEIGHTS,
    ps: Sequence[float] = (0.5, 0.3, 0.1),
    trials: int = 1500,
    seed: int = 23,
    batched: bool = True,
    distribution: str = "bernoulli",
) -> tuple[list[Row], dict[float, PowerLawFit]]:
    """Measured Probe_Tree averages and per-``p`` power-law exponent fits.

    ``distribution`` names a registered coloring source
    (:func:`repro.core.distributions.build_source`); the
    ``O(n^{log2(1+p)})`` law is a statement about the i.i.d. model, so
    non-Bernoulli runs report measurements (and fits) without a paper
    reference.
    """
    from repro.core.distributions import build_source, canonical_source_name

    distribution = canonical_source_name(distribution)
    bernoulli = distribution == "bernoulli"
    rows: list[Row] = []
    fits: dict[float, PowerLawFit] = {}
    for p in ps:
        sizes: list[float] = []
        costs: list[float] = []
        for height in heights:
            system = TreeSystem(height)
            estimate = estimate_average_probes(
                ProbeTree(system),
                p,
                trials=trials,
                seed=cell_seed(seed, system.n, p),
                batched=batched,
                source=None if bernoulli else build_source(distribution, system, p),
            )
            sizes.append(float(system.n))
            costs.append(estimate.mean)
            rows.append(
                Row(
                    experiment="prop3.6-tree",
                    system=system.name,
                    quantity="avg probes (Probe_Tree)",
                    measured=estimate.mean,
                    paper=float(system.n) ** tree_ppc_exponent(p) if bernoulli else None,
                    relation="~",
                    params={"n": system.n, "h": height, "p": p},
                    note=(
                        f"paper exponent {tree_ppc_exponent(p):.3f}, ±{estimate.ci95:.2f}"
                        if bernoulli
                        else f"{distribution} inputs; ±{estimate.ci95:.2f}"
                    ),
                )
            )
        fit = fit_power_law(sizes, costs)
        fits[p] = fit
        rows.append(
            Row(
                experiment="prop3.6-tree",
                system="Tree (fit)",
                quantity=f"fitted exponent at p={p}",
                measured=fit.exponent,
                paper=tree_ppc_exponent(p) if bernoulli else None,
                relation="~",
                params={"heights": tuple(heights), "p": p},
                note=f"R^2 = {fit.r_squared:.4f}"
                + ("" if bernoulli else f"; {distribution} inputs"),
            )
        )
    return rows, fits


def run_randomized_tree(
    heights: Sequence[int] = (3, 5, 7, 9),
    trials: int = 2000,
    seed: int = 29,
    batched: bool = True,
) -> list[Row]:
    """R_Probe_Tree on the hard distribution of Theorem 4.8 versus bounds."""
    rows: list[Row] = []
    for height in heights:
        system = TreeSystem(height)
        algorithm = RProbeTree(system)
        n = system.n
        estimate = _hard_input_estimator(
            algorithm, system, trials, seed + height, batched
        )
        rows.append(
            Row(
                experiment="thm4.7-tree-rand",
                system=system.name,
                quantity="E[probes] on hard inputs (R_Probe_Tree)",
                measured=estimate.mean,
                paper=5.0 * n / 6.0 + 1.0 / 6.0,
                relation="<=",
                params={"n": n, "h": height},
                note=f"Thm 4.7 upper bound; ±{estimate.ci95:.2f}",
            )
        )
        rows.append(
            Row(
                experiment="thm4.7-tree-rand",
                system=system.name,
                quantity="E[probes] on hard inputs (R_Probe_Tree)",
                measured=estimate.mean,
                paper=tree_lower_bound(n),
                relation=">=",
                params={"n": n, "h": height},
                note="Thm 4.8 Yao lower bound 2(n+1)/3",
            )
        )
    return rows


def run_deterministic_vs_randomized_tree(
    heights: Sequence[int] = (3, 5, 7),
    trials: int = 2000,
    seed: int = 31,
    batched: bool = True,
) -> list[Row]:
    """Head-to-head on the hard inputs: Probe_Tree (deterministic order) vs
    R_Probe_Tree, illustrating the constant-factor randomized advantage in
    the worst-case model."""
    rows: list[Row] = []
    for height in heights:
        system = TreeSystem(height)
        det = _hard_input_estimator(
            ProbeTree(system), system, trials, seed + height, batched
        )
        rand = _hard_input_estimator(
            RProbeTree(system), system, trials, seed + height, batched
        )
        rows.append(
            Row(
                experiment="thm4.7-tree-rand",
                system=system.name,
                quantity="hard-input probes: deterministic / randomized",
                measured=det.mean / rand.mean,
                paper=None,
                relation="~",
                params={"n": system.n, "h": height},
                note=f"det {det.mean:.1f} vs rand {rand.mean:.1f}",
            )
        )
    return rows
