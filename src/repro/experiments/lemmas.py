"""Experiments for the technical lemmas (Lemma 2.4, 2.8, 2.9).

These back the ``lemma2.4-walk`` and ``lemma2.8-2.9-urn`` experiment ids:
simulate the random-walk and urn processes, compare against both the exact
expectations and the paper's closed forms.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.analysis.lemmas import (
    expected_trials_both_colors,
    expected_trials_jth_red,
    grid_walk_exit_time_bound,
    grid_walk_exit_time_exact,
)
from repro.analysis.walks import GridRandomWalk
from repro.core.estimator import Estimate
from repro.experiments.report import Row
from repro.experiments.seeding import cell_seed


def run_walk_experiment(
    sizes: Sequence[int] = (10, 50, 200, 1000),
    ps: Sequence[float] = (0.5, 0.3),
    trials: int = 2000,
    seed: int = 43,
) -> list[Row]:
    """Lemma 2.4: simulated grid-walk exit times vs exact and closed form."""
    rows: list[Row] = []
    for n in sizes:
        for p in ps:
            walk = GridRandomWalk(n, p)
            simulated = walk.simulate_expected_exit_time(
                trials=trials, seed=cell_seed(seed, n, p)
            )
            exact = grid_walk_exit_time_exact(n, p)
            rows.append(
                Row(
                    experiment="lemma2.4-walk",
                    system="grid walk",
                    quantity="E[exit time]",
                    measured=simulated.mean,
                    paper=exact,
                    relation="~",
                    params={"N": n, "p": p},
                    note=f"closed form {grid_walk_exit_time_bound(n, p):.2f}, ±{simulated.ci95:.2f}",
                )
            )
    return rows


def simulate_urn_jth_red(
    r: int, g: int, j: int, trials: int = 4000, seed: int = 47
) -> Estimate:
    """Simulate Lemma 2.8's urn process: draws until the j-th red element."""
    rng = random.Random(seed)
    population = ["red"] * r + ["green"] * g
    samples = []
    for _ in range(trials):
        order = population[:]
        rng.shuffle(order)
        reds_seen = 0
        for position, color in enumerate(order, start=1):
            if color == "red":
                reds_seen += 1
                if reds_seen == j:
                    samples.append(position)
                    break
    return Estimate.from_samples(samples)


def simulate_urn_both_colors(
    r: int, g: int, trials: int = 4000, seed: int = 53
) -> Estimate:
    """Simulate Lemma 2.9's urn process: draws until both colors appear."""
    rng = random.Random(seed)
    population = ["red"] * r + ["green"] * g
    samples = []
    for _ in range(trials):
        order = population[:]
        rng.shuffle(order)
        first = order[0]
        for position, color in enumerate(order, start=1):
            if color != first:
                samples.append(position)
                break
        else:
            samples.append(len(order))
    return Estimate.from_samples(samples)


def run_urn_experiment(
    cases: Sequence[tuple[int, int]] = ((3, 5), (10, 10), (20, 5), (1, 30)),
    trials: int = 4000,
    seed: int = 59,
) -> list[Row]:
    """Lemmas 2.8 and 2.9: simulated urn expectations vs closed forms."""
    rows: list[Row] = []
    for r, g in cases:
        j = (r + 1) // 2
        sim_j = simulate_urn_jth_red(
            r, g, j, trials=trials, seed=cell_seed(seed, r, g, "jth")
        )
        rows.append(
            Row(
                experiment="lemma2.8-2.9-urn",
                system="urn",
                quantity=f"E[draws to {j}th red]",
                measured=sim_j.mean,
                paper=float(expected_trials_jth_red(r, g, j)),
                relation="~",
                params={"r": r, "g": g, "j": j},
                note=f"±{sim_j.ci95:.2f}",
            )
        )
        sim_both = simulate_urn_both_colors(
            r, g, trials=trials, seed=cell_seed(seed, r, g, "both")
        )
        rows.append(
            Row(
                experiment="lemma2.8-2.9-urn",
                system="urn",
                quantity="E[draws to see both colors]",
                measured=sim_both.mean,
                paper=float(expected_trials_both_colors(r, g)),
                relation="~",
                params={"r": r, "g": g},
                note=f"±{sim_both.ci95:.2f}",
            )
        )
    return rows
