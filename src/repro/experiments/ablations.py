"""Design-choice ablations.

The paper's algorithms embody specific design decisions — Probe_CW scans
top-down and keeps a single representative per row, Probe_HQS evaluates only
two children when they agree, IR_Probe_HQS peeks at a grandchild before
committing to a child.  These ablations quantify how much each choice
matters by comparing the paper's algorithm against natural alternatives
under the same workloads:

* ``ablation-cw-order``   — Probe_CW vs a randomized within-row order vs the
  bottom-up R_Probe_CW vs generic sequential/random scans, all in the
  probabilistic model;
* ``ablation-hqs``        — Probe_HQS (lazy third child) vs a naive
  evaluate-all-three-children strategy vs the two randomized variants;
* ``ablation-generic``    — the universal candidate-quorum baseline vs the
  specialised algorithms, showing why per-structure algorithms matter.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms.crumbling_walls import ProbeCW, RProbeCW
from repro.algorithms.generic import CandidateQuorumProbe, RandomScan, SequentialScan
from repro.algorithms.hqs import IRProbeHQS, ProbeHQS, RProbeHQS
from repro.algorithms.base import ProbeRun, ProbingAlgorithm
from repro.core.estimator import estimate_average_probes
from repro.core.oracle import ProbeOracle
from repro.core.witness import Witness
from repro.core.coloring import Color
from repro.experiments.report import Row
from repro.experiments.seeding import cell_seed
from repro.systems.crumbling_walls import TriangSystem
from repro.systems.hqs import HQS


class EagerProbeHQS(ProbingAlgorithm):
    """Ablation baseline: evaluate *all three* children of every gate.

    This removes Probe_HQS's laziness (skipping the third child when the
    first two agree); it always probes every leaf, i.e. ``n`` probes, and
    serves as the "no short-circuit" control.
    """

    def __init__(self, system: HQS) -> None:
        if not isinstance(system, HQS):
            raise TypeError("EagerProbeHQS requires an HQS system")
        super().__init__(system)

    def run(self, oracle: ProbeOracle, rng=None) -> ProbeRun:
        system: HQS = self._system
        probes = 0
        sequence = []

        def evaluate(node: int) -> tuple[Color, frozenset[int]]:
            nonlocal probes
            if system.is_leaf_node(node):
                element = system.leaf_to_element(node)
                color = oracle.probe(element)
                probes += 1
                sequence.append(element)
                return color, frozenset({element})
            children = [evaluate(child) for child in system.children(node)]
            greens = [c for c in children if c[0] is Color.GREEN]
            reds = [c for c in children if c[0] is Color.RED]
            winners = greens if len(greens) >= 2 else reds
            value = winners[0][0]
            support = winners[0][1] | winners[1][1]
            return value, support

        value, support = evaluate(system.root)
        return ProbeRun(Witness(value, support), probes, tuple(sequence))


def run_cw_order_ablation(
    depth: int = 12,
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    trials: int = 1500,
    seed: int = 67,
) -> list[Row]:
    """Probe_CW vs alternative probing orders on Triang(depth)."""
    system = TriangSystem(depth)
    variants: list[tuple[str, ProbingAlgorithm]] = [
        ("Probe_CW (paper, lexicographic rows)", ProbeCW(system)),
        ("Probe_CW (random within-row order)", ProbeCW(system, within_row_order="random")),
        ("R_Probe_CW (bottom-up randomized)", RProbeCW(system)),
        ("SequentialScan (element order)", SequentialScan(system)),
        ("RandomScan (uniform order)", RandomScan(system)),
    ]
    rows: list[Row] = []
    for p in ps:
        # One stream per (p) cell, shared by all variants: common random
        # numbers keep the variant comparison paired while cells stay
        # independent of each other.
        p_seed = cell_seed(seed, system.n, p)
        for label, algorithm in variants:
            estimate = estimate_average_probes(algorithm, p, trials=trials, seed=p_seed)
            rows.append(
                Row(
                    experiment="ablation-cw-order",
                    system=system.name,
                    quantity=f"avg probes [{label}]",
                    measured=estimate.mean,
                    paper=2.0 * depth - 1.0,
                    relation="~",
                    params={"n": system.n, "k": depth, "p": p},
                    note=f"±{estimate.ci95:.2f}; paper bound applies to Probe_CW only",
                )
            )
    return rows


def run_hqs_ablation(
    heights: Sequence[int] = (2, 3, 4),
    p: float = 0.5,
    trials: int = 1500,
    seed: int = 71,
) -> list[Row]:
    """Probe_HQS vs the eager baseline and the randomized variants."""
    rows: list[Row] = []
    for height in heights:
        system = HQS(height)
        variants: list[tuple[str, ProbingAlgorithm, float | None]] = [
            ("Probe_HQS (lazy, paper)", ProbeHQS(system), 2.5**height),
            ("EagerProbeHQS (no short-circuit)", EagerProbeHQS(system), float(system.n)),
            ("R_Probe_HQS (random 2-of-3)", RProbeHQS(system), None),
            ("IR_Probe_HQS (grandchild peek)", IRProbeHQS(system), None),
        ]
        height_seed = cell_seed(seed, height, p)
        for label, algorithm, paper_value in variants:
            estimate = estimate_average_probes(algorithm, p, trials=trials, seed=height_seed)
            rows.append(
                Row(
                    experiment="ablation-hqs",
                    system=system.name,
                    quantity=f"avg probes [{label}]",
                    measured=estimate.mean,
                    paper=paper_value,
                    relation="~",
                    params={"n": system.n, "h": height, "p": p},
                    note=f"±{estimate.ci95:.2f}",
                )
            )
    return rows


def run_generic_baseline_ablation(
    trials: int = 1000,
    seed: int = 73,
) -> list[Row]:
    """The universal candidate-quorum strategy vs the specialised algorithms."""
    rows: list[Row] = []
    cases: list[tuple[ProbingAlgorithm, ProbingAlgorithm]] = [
        (ProbeCW(TriangSystem(10)), CandidateQuorumProbe(TriangSystem(10))),
        (ProbeHQS(HQS(3)), CandidateQuorumProbe(HQS(3))),
    ]
    for specialised, generic in cases:
        for p in (0.3, 0.5):
            pair_seed = cell_seed(seed, specialised.system.name, p)
            spec = estimate_average_probes(specialised, p, trials=trials, seed=pair_seed)
            gen = estimate_average_probes(generic, p, trials=trials, seed=pair_seed)
            rows.append(
                Row(
                    experiment="ablation-generic",
                    system=specialised.system.name,
                    quantity=f"{specialised.name} vs CandidateQuorumProbe",
                    measured=spec.mean,
                    paper=gen.mean,
                    relation="~",
                    params={"p": p},
                    note=f"generic baseline {gen.mean:.1f} ± {gen.ci95:.1f}",
                )
            )
    return rows
