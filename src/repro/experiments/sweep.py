"""Streaming ``(p, n)`` sweep runner.

Drives the streaming estimation engine (:mod:`repro.core.engine`) across a
grid of failure probabilities and system sizes — one chunked Monte-Carlo
run per cell, optionally sharded across processes and/or stopped
adaptively at a target CI half-width — and serializes the whole sweep as a
single JSON artifact.  This is how the paper's scaling curves — the
``O(n^0.585)`` Probe_Tree and ``n^0.834`` Probe_HQS power laws, and the
randomized-vs-deterministic gaps — are regenerated at sizes the per-trial
loops cannot reach.

Every cell runs on its own seed (derived from the sweep seed and the
cell's ``(size, p)`` values via :func:`repro.core.seeding.cell_seed`), so
results are independent of grid iteration order and any sub-grid — prefix
or not — can be reproduced in isolation.

Cell inputs come from a registered coloring source
(:mod:`repro.core.distributions`): the default ``bernoulli`` reproduces
the paper's i.i.d. model, while ``distribution="fixed_count"``,
``"correlated_groups"``, ``"cw_hard"``-style names sweep any other
registered scenario batched, with the ``p`` axis as the scenario's
intensity knob.
"""

from __future__ import annotations

import datetime
import time
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.algorithms import (
    default_deterministic_algorithm,
    default_randomized_algorithm,
)
from repro.core.batched import supports_batched
from repro.core.checkpoint import (
    atomic_write_json,
    check_schema_version,
    load_json_payload,
    remove_stale_tmp,
    required_field,
)
from repro.core.distributions import build_source, canonical_source_name
from repro.core.engine import (
    ChunkPool,
    RunDeadlineExceeded,
    RunInterrupted,
    resolve_fixed_trials,
    stream_probes,
)
from repro.experiments.seeding import cell_seed
from repro.systems import build_system

#: ``kind`` field of sweep artifacts.
SWEEP_KIND = "p_sweep"

#: Version of the sweep artifact JSON schema.  Version 1 added the
#: per-cell ``status``/``error`` fields (degraded grids); version 2 adds
#: the per-cell recovery counters (``retries_used``/``pool_respawns``/
#: ``worker_reassignments``); version 3 adds the per-cell resolved kernel
#: ``backend``.  Older artifacts still load, with every cell ``"ok"``
#: (v0), all recovery counters zero (v0/v1) and backend ``"numpy"``
#: (v0-v2).
SWEEP_SCHEMA_VERSION = 3

#: ``kind`` field of sweep checkpoint files (grid-level resume).
SWEEP_CHECKPOINT_KIND = "sweep_checkpoint"

#: Version of the sweep checkpoint JSON schema.
SWEEP_CHECKPOINT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SweepCell:
    """One ``(size, p)`` grid cell of a sweep.

    ``n_trials_used`` is the count the streaming engine actually
    evaluated; in fixed mode ``trials`` is the requested count (equal to
    ``n_trials_used``), under ``target_ci`` no count was requested and
    ``trials`` records ``n_trials_used`` too, so the field is always the
    number of trials behind the cell's statistics.

    ``status`` is ``"ok"`` for a measured cell and ``"failed"`` for a cell
    whose run raised; a failed cell carries the error (``"Type: message"``)
    in ``error`` and zeros in every statistic — consumers must filter on
    ``status``, not on magic values.

    The recovery counters record how bumpy the cell's run was —
    ``retries_used`` chunk retries, ``pool_respawns`` process-pool
    respawns, ``worker_reassignments`` distributed lease reassignments —
    and are excluded from every determinism claim (like ``seconds``): a
    recovered cell's statistics are byte-identical to a fault-free run's.
    """

    system: str
    size: int
    n: int
    p: float
    mean: float
    std: float
    ci95: float
    trials: int
    batched_kernel: bool
    seconds: float
    n_trials_used: int = 0
    status: str = "ok"
    error: str = ""
    retries_used: int = 0
    pool_respawns: int = 0
    worker_reassignments: int = 0
    #: Resolved kernel backend the cell ran on ("numpy" or "bitpacked");
    #: an execution detail like ``seconds`` — cell statistics are
    #: byte-identical across backends for deterministic kernels.
    backend: str = "numpy"


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: the grid definition plus one cell per point."""

    system: str
    algorithm: str
    randomized: bool
    sizes: tuple[int, ...]
    ps: tuple[float, ...]
    trials: int
    seed: int
    cells: tuple[SweepCell, ...]
    distribution: str = "bernoulli"
    target_ci: float | None = None

    def cell(self, size: int, p: float) -> SweepCell:
        """The cell measured at ``(size, p)``."""
        for cell in self.cells:
            if cell.size == size and cell.p == p:
                return cell
        raise KeyError(f"no sweep cell at size={size}, p={p}")

    @property
    def failed_cells(self) -> tuple[SweepCell, ...]:
        """The cells whose runs raised (degraded-grid mode)."""
        return tuple(cell for cell in self.cells if cell.status != "ok")

    def to_dict(self) -> dict:
        """JSON-ready representation (the artifact payload)."""
        return {
            "kind": SWEEP_KIND,
            "schema": SWEEP_SCHEMA_VERSION,
            "system": self.system,
            "algorithm": self.algorithm,
            "randomized": self.randomized,
            "distribution": self.distribution,
            "target_ci": self.target_ci,
            "sizes": list(self.sizes),
            "ps": list(self.ps),
            "trials": self.trials,
            "seed": self.seed,
            "cells": [asdict(cell) for cell in self.cells],
        }


@dataclass(frozen=True)
class SweepCheckpoint:
    """Durable grid-resume state: the sweep's configuration + finished cells.

    ``config`` pins everything that determines a cell's bytes (system,
    grid, resolved trials/tolerance, seed, distribution, chunking);
    ``cells`` holds the ``"ok"`` cells measured so far — failed cells are
    *not* checkpointed, so a resume re-runs them.  Because every cell's
    seed depends only on its own ``(size, p)``, a resumed grid is
    byte-identical to an uninterrupted one (``seconds`` aside).
    """

    config: dict
    cells: tuple[SweepCell, ...]
    complete: bool = False

    def to_payload(self) -> dict:
        return {
            "kind": SWEEP_CHECKPOINT_KIND,
            "schema": SWEEP_CHECKPOINT_SCHEMA_VERSION,
            "config": dict(self.config),
            "complete": self.complete,
            "cells": [asdict(cell) for cell in self.cells],
        }


def save_sweep_checkpoint(path: str | Path, checkpoint: SweepCheckpoint) -> Path:
    """Write a sweep checkpoint atomically (tmp + fsync + ``os.replace``).

    Stale ``*.tmp`` leftovers of a crashed earlier write are logged and
    removed first (:func:`repro.core.checkpoint.remove_stale_tmp`).
    """
    remove_stale_tmp(path)
    return atomic_write_json(path, checkpoint.to_payload())


def load_sweep_checkpoint(path: str | Path) -> SweepCheckpoint:
    """Load a sweep checkpoint; strict about kind, schema and fields."""
    payload = load_json_payload(path, SWEEP_CHECKPOINT_KIND)
    check_schema_version(payload, SWEEP_CHECKPOINT_SCHEMA_VERSION, path)
    return SweepCheckpoint(
        config=dict(required_field(payload, "config", path)),
        cells=tuple(
            SweepCell(**cell) for cell in required_field(payload, "cells", path)
        ),
        complete=bool(required_field(payload, "complete", path)),
    )


def run_sweep(
    system_name: str,
    sizes: Sequence[int],
    ps: Sequence[float],
    trials: int | None = None,
    seed: int = 0,
    randomized: bool = False,
    distribution: str = "bernoulli",
    chunk_size: int | None = None,
    target_ci: float | None = None,
    min_trials: int | None = None,
    max_trials: int | None = None,
    jobs: int = 1,
    fail_fast: bool = False,
    retries: int | None = None,
    chunk_timeout: float | None = None,
    coordinator=None,
    checkpoint_path: str | Path | None = None,
    resume: "SweepCheckpoint | str | Path | None" = None,
    backend: str | None = None,
    stop_event=None,
    run_timeout: float | None = None,
) -> SweepResult:
    """Run a streaming Monte-Carlo sweep over the ``(sizes, ps)`` grid.

    ``backend`` selects every cell's kernel backend (``numpy``,
    ``bitpacked`` or ``auto``, see
    :func:`repro.core.batched.resolve_backend`); like ``jobs`` it is an
    execution knob — deterministic cells are byte-identical across
    backends — and each cell records the backend it resolved to.  Note
    ``backend="bitpacked"`` on a randomized sweep fails loudly (degraded
    to per-cell failures unless ``fail_fast``).

    ``system_name`` and ``sizes`` use the conventions of
    :func:`repro.systems.build_system` (size knob = tree/HQS height,
    universe size for Majority, ...).  ``randomized`` selects the paper's
    randomized algorithm for the system instead of the deterministic one.
    ``distribution`` names a registered coloring source
    (:func:`repro.core.distributions.build_source`) drawn batched in every
    cell — ``fixed_count``, ``correlated_groups``, the Yao hard families —
    with the grid's ``p`` axis as the scenario's intensity knob.

    Every cell runs through the streaming engine
    (:func:`repro.core.engine.stream_probes`) on its own seed stream:
    memory stays O(``chunk_size``) per cell, ``jobs > 1`` shards each
    cell's chunks across worker processes (byte-identical to sequential)
    and ``target_ci`` switches from fixed-``trials`` mode to adaptive
    CI-targeted stopping — mutually exclusive with an explicit ``trials``
    (cap adaptive runs with ``max_trials``); near-critical cells then get
    the trials their variance demands while easy cells stop early, and
    both each cell's ``trials`` and ``n_trials_used`` record the count
    actually evaluated (the result's grid-level ``trials`` is 0).
    Algorithms without a registered kernel transparently fall back to the
    per-trial loop, so the sweep works — slowly — for any system.

    Degraded grids: a cell whose run raises does not abort the sweep — the
    failure is recorded in that cell's ``status``/``error`` fields and the
    remaining cells run normally (each cell's seed depends only on its own
    ``(size, p)``, so surviving cells are byte-identical to a clean
    sub-grid run).  Pass ``fail_fast=True`` to restore strict abort-on-
    first-error behavior.

    Grid-level resume: ``checkpoint_path`` persists a
    :class:`SweepCheckpoint` atomically after every measured cell, and
    ``resume`` (a checkpoint path or loaded checkpoint) skips the cells it
    already holds — the run configuration must match the checkpoint's, and
    a mismatch is a loud error naming the differing settings.  A
    ``coordinator`` (:class:`repro.distributed.Coordinator`) runs every
    cell over networked workers instead of a local pool.

    Cooperative control (the serving layer's drain/deadline hooks):
    ``stop_event`` and ``run_timeout`` are threaded into every cell's
    engine run and also checked between cells.  Unlike an ordinary cell
    failure they are *not* recorded as degraded cells — the grid
    checkpoint is written with the cells measured so far and
    :class:`~repro.core.engine.RunInterrupted` /
    :class:`~repro.core.engine.RunDeadlineExceeded` propagates, so a
    drained sweep resumes from its completed cells, byte-identically.
    ``run_timeout`` bounds the whole grid's wall clock, not one cell's.
    """
    trials = resolve_fixed_trials(trials, target_ci, default=1000)
    if run_timeout is not None and run_timeout <= 0:
        raise ValueError("run_timeout must be positive (None disables it)")
    deadline_at = None if run_timeout is None else time.monotonic() + run_timeout
    if not sizes or not ps:
        raise ValueError("sweep needs at least one size and one p")
    if coordinator is not None and jobs > 1:
        raise ValueError(
            "a distributed coordinator replaces the process pool; pass "
            "either coordinator or jobs > 1, not both"
        )
    # Canonical name: aliases like "iid" render and serialize as the
    # source they resolve to, so artifact consumers compare one spelling.
    distribution = canonical_source_name(distribution)
    # Everything that pins a cell's bytes, for checkpoint config matching.
    config = {
        "system": system_name,
        "sizes": [int(s) for s in sizes],
        "ps": [float(p) for p in ps],
        "trials": trials,
        "target_ci": target_ci,
        "seed": int(seed),
        "randomized": bool(randomized),
        "distribution": distribution,
        "chunk_size": chunk_size,
        "min_trials": min_trials,
        "max_trials": max_trials,
    }
    completed: dict[tuple[int, float], SweepCell] = {}
    if resume is not None:
        state = (
            resume
            if isinstance(resume, SweepCheckpoint)
            else load_sweep_checkpoint(resume)
        )
        mismatched = sorted(
            key
            for key in config.keys() | state.config.keys()
            if config.get(key) != state.config.get(key)
        )
        if mismatched:
            raise ValueError(
                "sweep checkpoint was written by a different run; "
                f"these settings differ: {', '.join(mismatched)}"
            )
        completed = {(cell.size, float(cell.p)): cell for cell in state.cells}
    cells: list[SweepCell] = []
    algorithm_name = ""
    # One worker pool for the whole grid: spawning processes per cell would
    # dwarf small cells' compute.  A ChunkPool, not a raw executor, so a
    # worker crash recovered inside one cell leaves the pool usable by the
    # next.
    executor = (
        ChunkPool(max_workers=jobs) if jobs > 1 and coordinator is None else None
    )

    def write_checkpoint(complete: bool) -> None:
        if checkpoint_path is None:
            return
        save_sweep_checkpoint(
            checkpoint_path,
            SweepCheckpoint(
                config=config,
                cells=tuple(cell for cell in cells if cell.status == "ok"),
                complete=complete,
            ),
        )

    def failed_cell(size: int, n: int, p: float, error: Exception) -> SweepCell:
        return SweepCell(
            system=system_name,
            size=int(size),
            n=n,
            p=float(p),
            mean=0.0,
            std=0.0,
            ci95=0.0,
            trials=0,
            batched_kernel=False,
            seconds=0.0,
            n_trials_used=0,
            status="failed",
            error=f"{type(error).__name__}: {error}",
        )

    try:
        for size in sizes:
            try:
                system = build_system(system_name, size)
                algorithm = (
                    default_randomized_algorithm(system)
                    if randomized
                    else default_deterministic_algorithm(system)
                )
            except Exception as error:
                if fail_fast:
                    raise
                # The whole row is unbuildable: every p of this size fails.
                cells.extend(failed_cell(size, 0, p, error) for p in ps)
                write_checkpoint(complete=False)
                continue
            algorithm_name = algorithm.name
            for p in ps:
                done = completed.get((int(size), float(p)))
                if done is not None:
                    # Measured before the interruption; its seed depended
                    # only on (size, p), so the recorded cell is the cell.
                    cells.append(done)
                    continue
                # Drain/deadline land between cells too: the checkpoint
                # already holds every finished cell, so raising here loses
                # no work and the interruption is not a degraded cell.
                if stop_event is not None and stop_event.is_set():
                    write_checkpoint(complete=False)
                    raise RunInterrupted(
                        f"sweep stopped before cell (size={size}, p={p:g})"
                    )
                remaining = None
                if deadline_at is not None:
                    remaining = deadline_at - time.monotonic()
                    if remaining <= 0:
                        write_checkpoint(complete=False)
                        raise RunDeadlineExceeded(
                            f"sweep exceeded run_timeout={run_timeout}s "
                            f"before cell (size={size}, p={p:g})"
                        )
                try:
                    source = build_source(distribution, system, p)
                    result = stream_probes(
                        algorithm,
                        source,
                        trials=trials,
                        target_ci=target_ci,
                        chunk_size=chunk_size,
                        min_trials=min_trials,
                        max_trials=max_trials,
                        seed=cell_seed(seed, int(size), float(p)),
                        jobs=jobs,
                        executor=executor,
                        coordinator=coordinator,
                        retries=retries,
                        chunk_timeout=chunk_timeout,
                        backend=backend,
                        stop_event=stop_event,
                        run_timeout=remaining,
                    )
                except (RunInterrupted, RunDeadlineExceeded):
                    write_checkpoint(complete=False)
                    raise
                except Exception as error:
                    if fail_fast:
                        raise
                    cells.append(failed_cell(size, system.n, p, error))
                    write_checkpoint(complete=False)
                    continue
                cells.append(
                    SweepCell(
                        system=system.name,
                        size=size,
                        n=system.n,
                        p=float(p),
                        mean=result.mean,
                        std=result.std,
                        ci95=result.ci95,
                        trials=result.n_trials_used if trials is None else trials,
                        batched_kernel=supports_batched(algorithm),
                        seconds=result.seconds,
                        n_trials_used=result.n_trials_used,
                        retries_used=result.retries_used,
                        pool_respawns=result.pool_respawns,
                        worker_reassignments=result.worker_reassignments,
                        backend=result.backend,
                    )
                )
                write_checkpoint(complete=False)
    finally:
        if executor is not None:
            executor.shutdown(wait=False)
    write_checkpoint(complete=True)
    return SweepResult(
        system=system_name,
        algorithm=algorithm_name,
        randomized=randomized,
        sizes=tuple(int(s) for s in sizes),
        ps=tuple(float(p) for p in ps),
        trials=0 if trials is None else trials,
        seed=seed,
        cells=tuple(cells),
        distribution=distribution,
        target_ci=target_ci,
    )


def resume_sweep(
    path: str | Path,
    *,
    jobs: int = 1,
    fail_fast: bool = False,
    retries: int | None = None,
    chunk_timeout: float | None = None,
    coordinator=None,
    checkpoint_path: str | Path | None = None,
    backend: str | None = None,
    stop_event=None,
    run_timeout: float | None = None,
) -> SweepResult:
    """Continue a checkpointed sweep from its own serialized state.

    The checkpoint's ``config`` carries the full grid definition, so no
    other description of the sweep is needed — this is what
    ``repro-probe sweep --resume`` calls.  By default the continued run
    keeps checkpointing to the same file.  Execution knobs (``jobs``,
    ``retries``, ...) may differ from the interrupted run's: they do not
    affect a cell's bytes.
    """
    state = load_sweep_checkpoint(path)
    config = state.config
    return run_sweep(
        config["system"],
        config["sizes"],
        config["ps"],
        trials=config["trials"],
        seed=config["seed"],
        randomized=config["randomized"],
        distribution=config["distribution"],
        chunk_size=config["chunk_size"],
        target_ci=config["target_ci"],
        min_trials=config["min_trials"],
        max_trials=config["max_trials"],
        jobs=jobs,
        fail_fast=fail_fast,
        retries=retries,
        chunk_timeout=chunk_timeout,
        coordinator=coordinator,
        checkpoint_path=Path(path) if checkpoint_path is None else checkpoint_path,
        resume=state,
        backend=backend,
        stop_event=stop_event,
        run_timeout=run_timeout,
    )


def render_sweep(result: SweepResult) -> str:
    """Plain-text table of a sweep: one row per size, one column per p."""
    inputs = (
        "" if result.distribution == "bernoulli" else f", {result.distribution} inputs"
    )
    budget = (
        f"{result.trials} trials/cell"
        if result.target_ci is None
        else f"target ci95 {result.target_ci:g}"
    )
    header = (
        f"{result.algorithm} sweep "
        f"({budget}, seed {result.seed}{inputs})"
    )
    lines = [header, ""]
    lines.append(
        f"{'system':<16} {'n':>6} " + " ".join(f"p={p:<11g}" for p in result.ps)
    )
    for size in result.sizes:
        cells = [result.cell(size, p) for p in result.ps]
        lines.append(
            f"{cells[0].system:<16} {cells[0].n:>6} "
            + " ".join(
                f"{c.mean:8.2f}±{c.ci95:<5.2f}"
                if c.status == "ok"
                else f"{'FAILED':>8} {'':<5}"
                for c in cells
            )
        )
    measured = [c for c in result.cells if c.status == "ok"]
    kernel = all(c.batched_kernel for c in measured)
    total = sum(c.seconds for c in measured)
    lines.append("")
    lines.append(
        f"{len(result.cells)} cells in {total:.3f}s "
        f"({'vectorized kernel' if kernel else 'per-trial fallback in use'})"
    )
    backends = sorted({c.backend for c in measured})
    if backends:
        lines.append(f"backend: {', '.join(backends)}")
    if result.target_ci is not None:
        used = sum(c.n_trials_used for c in measured)
        lines.append(f"adaptive stopping used {used} trials across the grid")
    retried = sum(c.retries_used for c in measured)
    respawned = sum(c.pool_respawns for c in measured)
    reassigned = sum(c.worker_reassignments for c in measured)
    if retried or respawned or reassigned:
        lines.append(
            f"recovery: {retried} chunk retries, {respawned} pool respawns, "
            f"{reassigned} lease reassignments"
        )
    for cell in result.failed_cells:
        lines.append(f"FAILED cell (size={cell.size}, p={cell.p:g}): {cell.error}")
    return "\n".join(lines)


def write_sweep_artifact(result: SweepResult, path: str | Path) -> Path:
    """Write the sweep's JSON artifact atomically and return its path.

    Atomic (tmp + fsync + ``os.replace``): a crash mid-write never leaves
    a truncated artifact under the target name.
    """
    payload = result.to_dict()
    payload["created"] = (
        datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")
    )
    remove_stale_tmp(path)
    return atomic_write_json(path, payload)


def load_sweep_artifact(path: str | Path) -> SweepResult:
    """Load a sweep artifact written by :func:`write_sweep_artifact`.

    Strict: corrupt JSON, a wrong ``kind``, a newer schema version or a
    missing field all fail with a message naming the file and the field —
    never a raw ``KeyError``.  Pre-``schema`` (version-0) artifacts load
    as all-``"ok"`` grids.
    """
    payload = load_json_payload(path, SWEEP_KIND)
    check_schema_version(payload, SWEEP_SCHEMA_VERSION, path, legacy_ok=True)
    # Legacy (pre-engine) artifacts: every cell used exactly its requested
    # trial count and had no adaptive-stopping tolerance.
    cells = tuple(
        SweepCell(**{"n_trials_used": cell.get("trials", 0), **cell})
        for cell in required_field(payload, "cells", path)
    )
    return SweepResult(
        system=required_field(payload, "system", path),
        algorithm=required_field(payload, "algorithm", path),
        randomized=required_field(payload, "randomized", path),
        sizes=tuple(required_field(payload, "sizes", path)),
        ps=tuple(required_field(payload, "ps", path)),
        trials=required_field(payload, "trials", path),
        seed=required_field(payload, "seed", path),
        cells=cells,
        distribution=payload.get("distribution", "bernoulli"),
        target_ci=payload.get("target_ci"),
    )
