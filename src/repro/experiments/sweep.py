"""Batched ``(p, n)`` sweep runner.

Drives the vectorized kernels of :mod:`repro.core.batched` across a grid of
failure probabilities and system sizes, one Monte-Carlo batch per cell, and
serializes the whole sweep as a single JSON artifact.  This is how the
paper's scaling curves — the ``O(n^0.585)`` Probe_Tree and ``n^0.834``
Probe_HQS power laws, and the randomized-vs-deterministic gaps — are
regenerated at sizes the per-trial loops cannot reach.

Every cell draws from its own seeded stream (a ``SeedSequence`` keyed by
the sweep seed and the cell's ``(size, p)`` values), so results are
independent of grid iteration order and any sub-grid — prefix or not —
can be reproduced in isolation.

Cell inputs come from a registered coloring source
(:mod:`repro.core.distributions`): the default ``bernoulli`` reproduces
the paper's i.i.d. model, while ``distribution="fixed_count"``,
``"correlated_groups"``, ``"cw_hard"``-style names sweep any other
registered scenario batched, with the ``p`` axis as the scenario's
intensity knob.
"""

from __future__ import annotations

import datetime
import json
import time
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.algorithms import (
    default_deterministic_algorithm,
    default_randomized_algorithm,
)
from repro.core.batched import batched_or_sequential_run, supports_batched
from repro.core.distributions import build_source, canonical_source_name
from repro.core.estimator import Estimate
from repro.experiments.seeding import cell_generator
from repro.systems import build_system


@dataclass(frozen=True)
class SweepCell:
    """One ``(size, p)`` grid cell of a sweep."""

    system: str
    size: int
    n: int
    p: float
    mean: float
    std: float
    ci95: float
    trials: int
    batched_kernel: bool
    seconds: float


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: the grid definition plus one cell per point."""

    system: str
    algorithm: str
    randomized: bool
    sizes: tuple[int, ...]
    ps: tuple[float, ...]
    trials: int
    seed: int
    cells: tuple[SweepCell, ...]
    distribution: str = "bernoulli"

    def cell(self, size: int, p: float) -> SweepCell:
        """The cell measured at ``(size, p)``."""
        for cell in self.cells:
            if cell.size == size and cell.p == p:
                return cell
        raise KeyError(f"no sweep cell at size={size}, p={p}")

    def to_dict(self) -> dict:
        """JSON-ready representation (the artifact payload)."""
        return {
            "kind": "p_sweep",
            "system": self.system,
            "algorithm": self.algorithm,
            "randomized": self.randomized,
            "distribution": self.distribution,
            "sizes": list(self.sizes),
            "ps": list(self.ps),
            "trials": self.trials,
            "seed": self.seed,
            "cells": [asdict(cell) for cell in self.cells],
        }


def _cell_generator(seed: int, size: int, p: float) -> np.random.Generator:
    """The seeded per-cell stream: keyed by sweep seed and the cell's
    ``(size, p)`` values, so a cell reproduces bit-identically no matter
    which grid it is part of.  Delegates to the shared
    :mod:`repro.experiments.seeding` helpers (same key encoding as before:
    two's complement for ints, IEEE-754 bits for ``p``)."""
    return cell_generator(seed, int(size), float(p))


def run_sweep(
    system_name: str,
    sizes: Sequence[int],
    ps: Sequence[float],
    trials: int = 1000,
    seed: int = 0,
    randomized: bool = False,
    distribution: str = "bernoulli",
) -> SweepResult:
    """Run a batched Monte-Carlo sweep over the ``(sizes, ps)`` grid.

    ``system_name`` and ``sizes`` use the conventions of
    :func:`repro.systems.build_system` (size knob = tree/HQS height,
    universe size for Majority, ...).  ``randomized`` selects the paper's
    randomized algorithm for the system instead of the deterministic one.
    ``distribution`` names a registered coloring source
    (:func:`repro.core.distributions.build_source`) drawn batched in every
    cell — ``fixed_count``, ``correlated_groups``, the Yao hard families —
    with the grid's ``p`` axis as the scenario's intensity knob.
    Algorithms without a registered kernel transparently fall back to the
    per-trial loop, so the sweep works — slowly — for any system.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if not sizes or not ps:
        raise ValueError("sweep needs at least one size and one p")
    # Canonical name: aliases like "iid" render and serialize as the
    # source they resolve to, so artifact consumers compare one spelling.
    distribution = canonical_source_name(distribution)
    cells: list[SweepCell] = []
    algorithm_name = ""
    for size in sizes:
        system = build_system(system_name, size)
        algorithm = (
            default_randomized_algorithm(system)
            if randomized
            else default_deterministic_algorithm(system)
        )
        algorithm_name = algorithm.name
        for p in ps:
            source = build_source(distribution, system, p)
            generator = _cell_generator(seed, size, p)
            start = time.perf_counter()
            red = source.sample_matrix(system.n, trials, generator)
            probes, _ = batched_or_sequential_run(algorithm, red, generator)
            elapsed = time.perf_counter() - start
            estimate = Estimate.from_samples(probes)
            cells.append(
                SweepCell(
                    system=system.name,
                    size=size,
                    n=system.n,
                    p=float(p),
                    mean=estimate.mean,
                    std=estimate.std,
                    ci95=estimate.ci95,
                    trials=trials,
                    batched_kernel=supports_batched(algorithm),
                    seconds=elapsed,
                )
            )
    return SweepResult(
        system=system_name,
        algorithm=algorithm_name,
        randomized=randomized,
        sizes=tuple(int(s) for s in sizes),
        ps=tuple(float(p) for p in ps),
        trials=trials,
        seed=seed,
        cells=tuple(cells),
        distribution=distribution,
    )


def render_sweep(result: SweepResult) -> str:
    """Plain-text table of a sweep: one row per size, one column per p."""
    inputs = (
        "" if result.distribution == "bernoulli" else f", {result.distribution} inputs"
    )
    header = (
        f"{result.algorithm} sweep "
        f"({result.trials} trials/cell, seed {result.seed}{inputs})"
    )
    lines = [header, ""]
    lines.append(
        f"{'system':<16} {'n':>6} " + " ".join(f"p={p:<11g}" for p in result.ps)
    )
    for size in result.sizes:
        cells = [result.cell(size, p) for p in result.ps]
        lines.append(
            f"{cells[0].system:<16} {cells[0].n:>6} "
            + " ".join(f"{c.mean:8.2f}±{c.ci95:<5.2f}" for c in cells)
        )
    kernel = all(c.batched_kernel for c in result.cells)
    total = sum(c.seconds for c in result.cells)
    lines.append("")
    lines.append(
        f"{len(result.cells)} cells in {total:.3f}s "
        f"({'vectorized kernel' if kernel else 'per-trial fallback in use'})"
    )
    return "\n".join(lines)


def write_sweep_artifact(result: SweepResult, path: str | Path) -> Path:
    """Write the sweep's JSON artifact and return its path."""
    destination = Path(path)
    payload = result.to_dict()
    payload["created"] = (
        datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")
    )
    destination.write_text(json.dumps(payload, indent=2) + "\n")
    return destination


def load_sweep_artifact(path: str | Path) -> SweepResult:
    """Load a sweep artifact written by :func:`write_sweep_artifact`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "p_sweep":
        raise ValueError(f"{path} is not a p_sweep artifact")
    cells = tuple(SweepCell(**cell) for cell in payload["cells"])
    return SweepResult(
        system=payload["system"],
        algorithm=payload["algorithm"],
        randomized=payload["randomized"],
        sizes=tuple(payload["sizes"]),
        ps=tuple(payload["ps"]),
        trials=payload["trials"],
        seed=payload["seed"],
        cells=cells,
        distribution=payload.get("distribution", "bernoulli"),
    )
