"""Streaming ``(p, n)`` sweep runner.

Drives the streaming estimation engine (:mod:`repro.core.engine`) across a
grid of failure probabilities and system sizes — one chunked Monte-Carlo
run per cell, optionally sharded across processes and/or stopped
adaptively at a target CI half-width — and serializes the whole sweep as a
single JSON artifact.  This is how the paper's scaling curves — the
``O(n^0.585)`` Probe_Tree and ``n^0.834`` Probe_HQS power laws, and the
randomized-vs-deterministic gaps — are regenerated at sizes the per-trial
loops cannot reach.

Every cell runs on its own seed (derived from the sweep seed and the
cell's ``(size, p)`` values via :func:`repro.core.seeding.cell_seed`), so
results are independent of grid iteration order and any sub-grid — prefix
or not — can be reproduced in isolation.

Cell inputs come from a registered coloring source
(:mod:`repro.core.distributions`): the default ``bernoulli`` reproduces
the paper's i.i.d. model, while ``distribution="fixed_count"``,
``"correlated_groups"``, ``"cw_hard"``-style names sweep any other
registered scenario batched, with the ``p`` axis as the scenario's
intensity knob.
"""

from __future__ import annotations

import datetime
import json
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.algorithms import (
    default_deterministic_algorithm,
    default_randomized_algorithm,
)
from repro.core.batched import supports_batched
from repro.core.distributions import build_source, canonical_source_name
from repro.core.engine import resolve_fixed_trials, stream_probes
from repro.experiments.seeding import cell_seed
from repro.systems import build_system


@dataclass(frozen=True)
class SweepCell:
    """One ``(size, p)`` grid cell of a sweep.

    ``n_trials_used`` is the count the streaming engine actually
    evaluated; in fixed mode ``trials`` is the requested count (equal to
    ``n_trials_used``), under ``target_ci`` no count was requested and
    ``trials`` records ``n_trials_used`` too, so the field is always the
    number of trials behind the cell's statistics.
    """

    system: str
    size: int
    n: int
    p: float
    mean: float
    std: float
    ci95: float
    trials: int
    batched_kernel: bool
    seconds: float
    n_trials_used: int = 0


@dataclass(frozen=True)
class SweepResult:
    """A completed sweep: the grid definition plus one cell per point."""

    system: str
    algorithm: str
    randomized: bool
    sizes: tuple[int, ...]
    ps: tuple[float, ...]
    trials: int
    seed: int
    cells: tuple[SweepCell, ...]
    distribution: str = "bernoulli"
    target_ci: float | None = None

    def cell(self, size: int, p: float) -> SweepCell:
        """The cell measured at ``(size, p)``."""
        for cell in self.cells:
            if cell.size == size and cell.p == p:
                return cell
        raise KeyError(f"no sweep cell at size={size}, p={p}")

    def to_dict(self) -> dict:
        """JSON-ready representation (the artifact payload)."""
        return {
            "kind": "p_sweep",
            "system": self.system,
            "algorithm": self.algorithm,
            "randomized": self.randomized,
            "distribution": self.distribution,
            "target_ci": self.target_ci,
            "sizes": list(self.sizes),
            "ps": list(self.ps),
            "trials": self.trials,
            "seed": self.seed,
            "cells": [asdict(cell) for cell in self.cells],
        }


def run_sweep(
    system_name: str,
    sizes: Sequence[int],
    ps: Sequence[float],
    trials: int | None = None,
    seed: int = 0,
    randomized: bool = False,
    distribution: str = "bernoulli",
    chunk_size: int | None = None,
    target_ci: float | None = None,
    min_trials: int | None = None,
    max_trials: int | None = None,
    jobs: int = 1,
) -> SweepResult:
    """Run a streaming Monte-Carlo sweep over the ``(sizes, ps)`` grid.

    ``system_name`` and ``sizes`` use the conventions of
    :func:`repro.systems.build_system` (size knob = tree/HQS height,
    universe size for Majority, ...).  ``randomized`` selects the paper's
    randomized algorithm for the system instead of the deterministic one.
    ``distribution`` names a registered coloring source
    (:func:`repro.core.distributions.build_source`) drawn batched in every
    cell — ``fixed_count``, ``correlated_groups``, the Yao hard families —
    with the grid's ``p`` axis as the scenario's intensity knob.

    Every cell runs through the streaming engine
    (:func:`repro.core.engine.stream_probes`) on its own seed stream:
    memory stays O(``chunk_size``) per cell, ``jobs > 1`` shards each
    cell's chunks across worker processes (byte-identical to sequential)
    and ``target_ci`` switches from fixed-``trials`` mode to adaptive
    CI-targeted stopping — mutually exclusive with an explicit ``trials``
    (cap adaptive runs with ``max_trials``); near-critical cells then get
    the trials their variance demands while easy cells stop early, and
    both each cell's ``trials`` and ``n_trials_used`` record the count
    actually evaluated (the result's grid-level ``trials`` is 0).
    Algorithms without a registered kernel transparently fall back to the
    per-trial loop, so the sweep works — slowly — for any system.
    """
    trials = resolve_fixed_trials(trials, target_ci, default=1000)
    if not sizes or not ps:
        raise ValueError("sweep needs at least one size and one p")
    # Canonical name: aliases like "iid" render and serialize as the
    # source they resolve to, so artifact consumers compare one spelling.
    distribution = canonical_source_name(distribution)
    cells: list[SweepCell] = []
    algorithm_name = ""
    # One worker pool for the whole grid: spawning processes per cell would
    # dwarf small cells' compute.
    executor = ProcessPoolExecutor(max_workers=jobs) if jobs > 1 else None
    try:
        for size in sizes:
            system = build_system(system_name, size)
            algorithm = (
                default_randomized_algorithm(system)
                if randomized
                else default_deterministic_algorithm(system)
            )
            algorithm_name = algorithm.name
            for p in ps:
                source = build_source(distribution, system, p)
                result = stream_probes(
                    algorithm,
                    source,
                    trials=trials,
                    target_ci=target_ci,
                    chunk_size=chunk_size,
                    min_trials=min_trials,
                    max_trials=max_trials,
                    seed=cell_seed(seed, int(size), float(p)),
                    jobs=jobs,
                    executor=executor,
                )
                cells.append(
                    SweepCell(
                        system=system.name,
                        size=size,
                        n=system.n,
                        p=float(p),
                        mean=result.mean,
                        std=result.std,
                        ci95=result.ci95,
                        trials=result.n_trials_used if trials is None else trials,
                        batched_kernel=supports_batched(algorithm),
                        seconds=result.seconds,
                        n_trials_used=result.n_trials_used,
                    )
                )
    finally:
        if executor is not None:
            executor.shutdown()
    return SweepResult(
        system=system_name,
        algorithm=algorithm_name,
        randomized=randomized,
        sizes=tuple(int(s) for s in sizes),
        ps=tuple(float(p) for p in ps),
        trials=0 if trials is None else trials,
        seed=seed,
        cells=tuple(cells),
        distribution=distribution,
        target_ci=target_ci,
    )


def render_sweep(result: SweepResult) -> str:
    """Plain-text table of a sweep: one row per size, one column per p."""
    inputs = (
        "" if result.distribution == "bernoulli" else f", {result.distribution} inputs"
    )
    budget = (
        f"{result.trials} trials/cell"
        if result.target_ci is None
        else f"target ci95 {result.target_ci:g}"
    )
    header = (
        f"{result.algorithm} sweep "
        f"({budget}, seed {result.seed}{inputs})"
    )
    lines = [header, ""]
    lines.append(
        f"{'system':<16} {'n':>6} " + " ".join(f"p={p:<11g}" for p in result.ps)
    )
    for size in result.sizes:
        cells = [result.cell(size, p) for p in result.ps]
        lines.append(
            f"{cells[0].system:<16} {cells[0].n:>6} "
            + " ".join(f"{c.mean:8.2f}±{c.ci95:<5.2f}" for c in cells)
        )
    kernel = all(c.batched_kernel for c in result.cells)
    total = sum(c.seconds for c in result.cells)
    lines.append("")
    lines.append(
        f"{len(result.cells)} cells in {total:.3f}s "
        f"({'vectorized kernel' if kernel else 'per-trial fallback in use'})"
    )
    if result.target_ci is not None:
        used = sum(c.n_trials_used for c in result.cells)
        lines.append(f"adaptive stopping used {used} trials across the grid")
    return "\n".join(lines)


def write_sweep_artifact(result: SweepResult, path: str | Path) -> Path:
    """Write the sweep's JSON artifact and return its path."""
    destination = Path(path)
    payload = result.to_dict()
    payload["created"] = (
        datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")
    )
    destination.write_text(json.dumps(payload, indent=2) + "\n")
    return destination


def load_sweep_artifact(path: str | Path) -> SweepResult:
    """Load a sweep artifact written by :func:`write_sweep_artifact`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("kind") != "p_sweep":
        raise ValueError(f"{path} is not a p_sweep artifact")
    # Legacy (pre-engine) artifacts: every cell used exactly its requested
    # trial count and had no adaptive-stopping tolerance.
    cells = tuple(
        SweepCell(**{"n_trials_used": cell.get("trials", 0), **cell})
        for cell in payload["cells"]
    )
    return SweepResult(
        system=payload["system"],
        algorithm=payload["algorithm"],
        randomized=payload["randomized"],
        sizes=tuple(payload["sizes"]),
        ps=tuple(payload["ps"]),
        trials=payload["trials"],
        seed=payload["seed"],
        cells=cells,
        distribution=payload.get("distribution", "bernoulli"),
        target_ci=payload.get("target_ci"),
    )
