"""Crumbling-wall experiments: Theorem 3.3 (Probe_CW), Corollaries 3.4/3.5,
Theorem 4.4 / Corollary 4.5 (R_Probe_CW) and the Yao bound of Theorem 4.6.

The headline claim reproduced here is that the probabilistic probe
complexity of a crumbling wall depends only on the number of rows ``k`` and
not on the number of elements ``n`` (≤ 2k − 1 probes on average), even
though the deterministic worst-case probe complexity is ``n``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.algorithms.crumbling_walls import ProbeCW, RProbeCW, probe_cw_row_bound
from repro.analysis.bounds import generic_lower_bound_ppc
from repro.analysis.yao import cw_hard_sampler, cw_lower_bound
from repro.core.batched import estimate_expected_probes_on_batched
from repro.core.estimator import (
    estimate_average_probes,
    estimate_average_under,
)
from repro.core.coloring import Coloring
from repro.experiments.report import Row
from repro.experiments.seeding import cell_seed
from repro.systems.crumbling_walls import CrumblingWall, TriangSystem, uniform_wall


def run_probe_cw_bound(
    walls: Sequence[CrumblingWall] | None = None,
    ps: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
    trials: int = 2000,
    seed: int = 11,
    batched: bool = True,
) -> list[Row]:
    """Measured average probes of Probe_CW versus the ``2k − 1`` bound."""
    if walls is None:
        walls = [
            CrumblingWall([1, 3, 3, 3]),
            TriangSystem(8),
            TriangSystem(15),
            uniform_wall(rows=10, width=20),
            uniform_wall(rows=10, width=100),
        ]
    rows: list[Row] = []
    for wall in walls:
        algorithm = ProbeCW(wall)
        k = wall.num_rows
        for p in ps:
            estimate = estimate_average_probes(
                algorithm,
                p,
                trials=trials,
                seed=cell_seed(seed, wall.name, wall.n, p),
                batched=batched,
            )
            rows.append(
                Row(
                    experiment="thm3.3-cw",
                    system=wall.name,
                    quantity="avg probes (Probe_CW)",
                    measured=estimate.mean,
                    paper=2.0 * k - 1.0,
                    relation="<=",
                    params={"n": wall.n, "k": k, "p": p},
                    note=f"±{estimate.ci95:.2f}",
                    tolerance=estimate.ci95,
                )
            )
    return rows


def run_wheel_and_triang_corollaries(
    trials: int = 4000, seed: int = 13, batched: bool = True
) -> list[Row]:
    """Corollary 3.4 (Wheel ≤ 3) and Corollary 3.5 (Triang vs. lower bound)."""
    rows: list[Row] = []
    for n in (10, 50, 200):
        wall = CrumblingWall([1, n - 1], name=f"Wheel({n})")
        estimate = estimate_average_probes(
            ProbeCW(wall), 0.5, trials=trials, seed=cell_seed(seed, wall.name, n), batched=batched
        )
        rows.append(
            Row(
                experiment="thm3.3-cw",
                system=f"Wheel({n})",
                quantity="avg probes (Probe_CW)",
                measured=estimate.mean,
                paper=3.0,
                relation="<=",
                params={"n": n, "p": 0.5},
                note="Corollary 3.4",
                tolerance=estimate.ci95,
            )
        )
    for depth in (8, 15, 25):
        triang = TriangSystem(depth)
        estimate = estimate_average_probes(
            ProbeCW(triang), 0.5, trials=trials, seed=cell_seed(seed, triang.name, depth), batched=batched
        )
        rows.append(
            Row(
                experiment="thm3.3-cw",
                system=triang.name,
                quantity="avg probes (Probe_CW)",
                measured=estimate.mean,
                paper=2.0 * depth - 1.0,
                relation="<=",
                params={"n": triang.n, "k": depth, "p": 0.5},
                note="Corollary 3.5 upper",
                tolerance=estimate.ci95,
            )
        )
        rows.append(
            Row(
                experiment="thm3.3-cw",
                system=triang.name,
                quantity="avg probes (Probe_CW)",
                measured=estimate.mean,
                paper=generic_lower_bound_ppc(depth, 0.5),
                relation=">=",
                params={"n": triang.n, "k": depth, "p": 0.5},
                note="Lemma 3.1 lower (2k - 2sqrt(k))",
            )
        )
    return rows


def run_cw_independence_of_n(
    widths_per_row: Sequence[int] = (5, 20, 100, 500),
    rows_count: int = 8,
    trials: int = 1500,
    seed: int = 17,
    batched: bool = True,
) -> list[Row]:
    """Fix the number of rows, grow the row width: average probes stay flat."""
    rows: list[Row] = []
    for width in widths_per_row:
        wall = uniform_wall(rows=rows_count, width=width)
        estimate = estimate_average_probes(
            ProbeCW(wall), 0.5, trials=trials, seed=cell_seed(seed, rows_count, width), batched=batched
        )
        rows.append(
            Row(
                experiment="thm3.3-cw",
                system=wall.name,
                quantity="avg probes (Probe_CW), fixed k",
                measured=estimate.mean,
                paper=2.0 * rows_count - 1.0,
                relation="<=",
                params={"n": wall.n, "k": rows_count, "width": width, "p": 0.5},
                note="independent of n",
                tolerance=estimate.ci95,
            )
        )
    return rows


def run_randomized_cw(
    depths: Sequence[int] = (5, 8, 12),
    trials: int = 2000,
    seed: int = 19,
) -> list[Row]:
    """R_Probe_CW versus Theorem 4.4 / Corollary 4.5 / Theorem 4.6."""
    rows: list[Row] = []
    for depth in depths:
        triang = TriangSystem(depth)
        algorithm = RProbeCW(triang)
        n, k = triang.n, depth

        # Upper bound: worst case is attained on the hard inputs with one
        # green per row (forcing the scan to climb to the top row).
        hard_estimate = estimate_average_under(
            algorithm, cw_hard_sampler(triang), trials=trials, seed=cell_seed(seed, triang.name, depth)
        )
        row_bound = probe_cw_row_bound(triang.widths)
        rows.append(
            Row(
                experiment="thm4.4-cw-rand",
                system=triang.name,
                quantity="E[probes] on hard inputs (R_Probe_CW)",
                measured=hard_estimate.mean,
                paper=row_bound,
                relation="<=",
                params={"n": n, "k": k},
                note=f"Thm 4.4 row bound; Cor 4.5 bound {(n + k) / 2 + _log2(k):.2f}",
                tolerance=hard_estimate.ci95,
            )
        )
        rows.append(
            Row(
                experiment="thm4.4-cw-rand",
                system=triang.name,
                quantity="E[probes] on hard inputs (R_Probe_CW)",
                measured=hard_estimate.mean,
                paper=cw_lower_bound(triang),
                relation=">=",
                params={"n": n, "k": k},
                note="Thm 4.6 Yao lower bound (n+k)/2",
            )
        )

    # Corollary 4.5(2): Wheel has PCR = n - 1; the worst input for
    # R_Probe_CW is all elements green except the hub (forcing the rim scan).
    for n in (8, 16, 32):
        wheel_wall = CrumblingWall([1, n - 1], name=f"Wheel({n})")
        algorithm = RProbeCW(wheel_wall)
        worst = Coloring(n, red=[1])
        estimate = estimate_expected_probes_on_batched(
            algorithm, worst, trials=trials, seed=cell_seed(seed, "wheel", n)
        )
        rows.append(
            Row(
                experiment="thm4.4-cw-rand",
                system=f"Wheel({n})",
                quantity="E[probes], hub failed (R_Probe_CW)",
                measured=estimate.mean,
                paper=float(n - 1),
                relation="~",
                params={"n": n},
                note="Corollary 4.5(2): PCR(Wheel) = n - 1",
            )
        )

    return rows


def _log2(value: float) -> float:
    import math

    return math.log2(value)
