"""Per-cell seeded streams shared by every experiment driver.

The implementation lives in :mod:`repro.core.seeding` (so that lower
layers like :mod:`repro.simulation` can derive cell streams without
importing the experiments package); this module remains the historical
import location for the drivers and re-exports the helpers unchanged.
See the core module's docstring for the key-encoding contract.
"""

from __future__ import annotations

from repro.core.seeding import cell_generator, cell_seed, cell_sequence

__all__ = ["cell_generator", "cell_seed", "cell_sequence"]
