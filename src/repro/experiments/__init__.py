"""Experiment drivers regenerating every table and figure of the paper.

Each driver returns a list of :class:`~repro.experiments.report.Row`
objects; ``render_table`` turns them into plain text.  The mapping from
driver to paper artifact is documented in DESIGN.md (per-experiment index)
and EXPERIMENTS.md (measured results).

Drivers are registered declaratively (:mod:`repro.experiments.registry` /
:mod:`repro.experiments.specs`) and executed through the unified runner
(:mod:`repro.experiments.runner`), which resolves parameter overrides,
fans experiments across processes and writes one JSON artifact per run;
:mod:`repro.experiments.seeding` supplies the per-cell seeded streams
every driver uses.
"""

from repro.experiments.ablations import (
    EagerProbeHQS,
    run_cw_order_ablation,
    run_generic_baseline_ablation,
    run_hqs_ablation,
)
from repro.experiments.availability import run_availability_experiment
from repro.experiments.crumbling_walls import (
    run_cw_independence_of_n,
    run_probe_cw_bound,
    run_randomized_cw,
    run_wheel_and_triang_corollaries,
)
from repro.experiments.figures import (
    render_all_figures,
    render_crumbling_wall,
    render_hqs,
    render_tree,
)
from repro.experiments.hqs import (
    hqs_family_p_matrix,
    probe_hqs_expected_exact,
    run_probe_hqs_optimality,
    run_probe_hqs_scaling,
    run_randomized_hqs,
    worst_case_family_sampler,
)
from repro.experiments.lemmas import run_urn_experiment, run_walk_experiment
from repro.experiments.maj3 import maj3_strategy_tree_summary, run_maj3_experiment
from repro.experiments.majority import (
    majority_sqrt_deficit_fit,
    run_probabilistic_majority,
    run_randomized_majority,
)
from repro.experiments.registry import (
    DriverResult,
    ExperimentSpec,
    ParamSpec,
    all_specs,
    all_tags,
    experiment_ids,
    get_spec,
    register,
    specs_for_tag,
)
from repro.experiments.report import (
    Row,
    render_table,
    row_from_dict,
    row_to_dict,
    violations,
)
from repro.experiments.runner import (
    RunResult,
    load_artifact,
    run_experiment,
    run_experiments,
    write_artifact,
    write_artifacts,
)
from repro.experiments.seeding import cell_generator, cell_seed
from repro.experiments.sweep import (
    SweepCell,
    SweepResult,
    load_sweep_artifact,
    render_sweep,
    run_sweep,
    write_sweep_artifact,
)
from repro.experiments.table1 import Table1Sizes, render_table1, run_table1
from repro.experiments.tree import (
    run_deterministic_vs_randomized_tree,
    run_probe_tree_scaling,
    run_randomized_tree,
)

__all__ = [
    "EagerProbeHQS",
    "run_cw_order_ablation",
    "run_generic_baseline_ablation",
    "run_hqs_ablation",
    "run_availability_experiment",
    "run_cw_independence_of_n",
    "run_probe_cw_bound",
    "run_randomized_cw",
    "run_wheel_and_triang_corollaries",
    "render_all_figures",
    "render_crumbling_wall",
    "render_hqs",
    "render_tree",
    "hqs_family_p_matrix",
    "probe_hqs_expected_exact",
    "run_probe_hqs_optimality",
    "run_probe_hqs_scaling",
    "run_randomized_hqs",
    "worst_case_family_sampler",
    "run_urn_experiment",
    "run_walk_experiment",
    "maj3_strategy_tree_summary",
    "run_maj3_experiment",
    "majority_sqrt_deficit_fit",
    "run_probabilistic_majority",
    "run_randomized_majority",
    "Row",
    "render_table",
    "row_from_dict",
    "row_to_dict",
    "violations",
    "DriverResult",
    "ExperimentSpec",
    "ParamSpec",
    "all_specs",
    "all_tags",
    "experiment_ids",
    "get_spec",
    "register",
    "specs_for_tag",
    "RunResult",
    "load_artifact",
    "run_experiment",
    "run_experiments",
    "write_artifact",
    "write_artifacts",
    "cell_generator",
    "cell_seed",
    "SweepCell",
    "SweepResult",
    "load_sweep_artifact",
    "render_sweep",
    "run_sweep",
    "write_sweep_artifact",
    "Table1Sizes",
    "render_table1",
    "run_table1",
    "run_deterministic_vs_randomized_tree",
    "run_probe_tree_scaling",
    "run_randomized_tree",
]
