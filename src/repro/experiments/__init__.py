"""Experiment drivers regenerating every table and figure of the paper.

Each driver returns a list of :class:`~repro.experiments.report.Row`
objects; ``render_table`` turns them into plain text.  The mapping from
driver to paper artifact is documented in DESIGN.md (per-experiment index)
and EXPERIMENTS.md (measured results).
"""

from repro.experiments.ablations import (
    EagerProbeHQS,
    run_cw_order_ablation,
    run_generic_baseline_ablation,
    run_hqs_ablation,
)
from repro.experiments.availability import run_availability_experiment
from repro.experiments.crumbling_walls import (
    run_cw_independence_of_n,
    run_probe_cw_bound,
    run_randomized_cw,
    run_wheel_and_triang_corollaries,
)
from repro.experiments.figures import (
    render_all_figures,
    render_crumbling_wall,
    render_hqs,
    render_tree,
)
from repro.experiments.hqs import (
    hqs_family_p_matrix,
    probe_hqs_expected_exact,
    run_probe_hqs_optimality,
    run_probe_hqs_scaling,
    run_randomized_hqs,
    worst_case_family_sampler,
)
from repro.experiments.lemmas import run_urn_experiment, run_walk_experiment
from repro.experiments.maj3 import maj3_strategy_tree_summary, run_maj3_experiment
from repro.experiments.majority import (
    majority_sqrt_deficit_fit,
    run_probabilistic_majority,
    run_randomized_majority,
)
from repro.experiments.report import Row, render_table, violations
from repro.experiments.sweep import (
    SweepCell,
    SweepResult,
    load_sweep_artifact,
    render_sweep,
    run_sweep,
    write_sweep_artifact,
)
from repro.experiments.table1 import Table1Sizes, render_table1, run_table1
from repro.experiments.tree import (
    run_deterministic_vs_randomized_tree,
    run_probe_tree_scaling,
    run_randomized_tree,
)

__all__ = [
    "EagerProbeHQS",
    "run_cw_order_ablation",
    "run_generic_baseline_ablation",
    "run_hqs_ablation",
    "run_availability_experiment",
    "run_cw_independence_of_n",
    "run_probe_cw_bound",
    "run_randomized_cw",
    "run_wheel_and_triang_corollaries",
    "render_all_figures",
    "render_crumbling_wall",
    "render_hqs",
    "render_tree",
    "hqs_family_p_matrix",
    "probe_hqs_expected_exact",
    "run_probe_hqs_optimality",
    "run_probe_hqs_scaling",
    "run_randomized_hqs",
    "worst_case_family_sampler",
    "run_urn_experiment",
    "run_walk_experiment",
    "maj3_strategy_tree_summary",
    "run_maj3_experiment",
    "majority_sqrt_deficit_fit",
    "run_probabilistic_majority",
    "run_randomized_majority",
    "Row",
    "render_table",
    "violations",
    "SweepCell",
    "SweepResult",
    "load_sweep_artifact",
    "render_sweep",
    "run_sweep",
    "write_sweep_artifact",
    "Table1Sizes",
    "render_table1",
    "run_table1",
    "run_deterministic_vs_randomized_tree",
    "run_probe_tree_scaling",
    "run_randomized_tree",
]
