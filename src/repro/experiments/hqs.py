"""HQS experiments: Theorem 3.8 / 3.9 (Probe_HQS) and Proposition 4.9 /
Theorem 4.10 / Corollary 4.13 (R_Probe_HQS, IR_Probe_HQS).

The probabilistic claim is that Probe_HQS probes ``2.5^h = n^{0.834}``
elements on average at ``p = 1/2`` — *more* than the uniform quorum size
``2^h = n^{0.63}`` — and that no algorithm can do better (Theorem 3.9).  We
check the exact ``2.5^h`` growth, verify optimality against the exact
knowledge-state solver on small instances, and compare the two randomized
variants on the worst-case family ``P`` of Lemma 4.11.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

import numpy as np

from repro.algorithms.hqs import IRProbeHQS, ProbeHQS, RProbeHQS
from repro.analysis.bounds import (
    HQS_PCR_BOPPANA_EXPONENT,
    HQS_PCR_IMPROVED_EXPONENT,
    HQS_PPC_EXPONENT,
)
from repro.analysis.fitting import PowerLawFit, fit_power_law
from repro.core.coloring import Coloring
from repro.core.distributions import (
    ColoringSource,
    build_source,
    canonical_source_name,
    register_source,
    require_system,
)
from repro.core.estimator import estimate_average_probes, estimate_average_under
from repro.core.exact import ExactSolver
from repro.experiments.report import Row
from repro.experiments.seeding import cell_seed
from repro.systems.hqs import HQS


def probe_hqs_expected_exact(height: int, p: float) -> float:
    """Exact expected probes of Probe_HQS by the paper's recursion.

    ``T(h) = 2 T(h−1) + 2 F(h−1) (1 − F(h−1)) T(h−1)`` with ``T(0) = 1``,
    where ``F(h)`` is the probability a height-``h`` subtree evaluates to
    red (Theorem 3.8).  At ``p = 1/2`` this is exactly ``2.5^h``.
    """
    from repro.analysis.availability import hqs_availability

    t = 1.0
    for h in range(1, height + 1):
        f = hqs_availability(h - 1, p)
        t = (2.0 + 2.0 * f * (1.0 - f)) * t
    return t


def run_probe_hqs_scaling(
    heights: Sequence[int] = (2, 3, 4, 5, 6),
    ps: Sequence[float] = (0.5, 0.25),
    trials: int = 1500,
    seed: int = 37,
    batched: bool = True,
    distribution: str = "bernoulli",
) -> tuple[list[Row], dict[float, PowerLawFit]]:
    """Measured Probe_HQS averages vs ``2.5^h`` and the exponent fits.

    ``distribution`` names a registered coloring source
    (:func:`repro.core.distributions.build_source`); the recursion values
    of Theorem 3.8 only apply to the default i.i.d. model, so non-Bernoulli
    runs report measurements (and fits) without a paper reference.
    """
    distribution = canonical_source_name(distribution)
    bernoulli = distribution == "bernoulli"
    rows: list[Row] = []
    fits: dict[float, PowerLawFit] = {}
    for p in ps:
        sizes: list[float] = []
        costs: list[float] = []
        for height in heights:
            system = HQS(height)
            estimate = estimate_average_probes(
                ProbeHQS(system),
                p,
                trials=trials,
                seed=cell_seed(seed, system.n, p),
                batched=batched,
                source=None if bernoulli else build_source(distribution, system, p),
            )
            sizes.append(float(system.n))
            costs.append(estimate.mean)
            rows.append(
                Row(
                    experiment="thm3.8-hqs",
                    system=system.name,
                    quantity="avg probes (Probe_HQS)",
                    measured=estimate.mean,
                    paper=probe_hqs_expected_exact(height, p) if bernoulli else None,
                    relation="~",
                    params={"n": system.n, "h": height, "p": p},
                    note=(
                        f"recursion value; ±{estimate.ci95:.2f}"
                        if bernoulli
                        else f"{distribution} inputs; ±{estimate.ci95:.2f}"
                    ),
                )
            )
        fit = fit_power_law(sizes, costs)
        fits[p] = fit
        paper_exponent = (
            HQS_PPC_EXPONENT if bernoulli and abs(p - 0.5) < 1e-9 else None
        )
        if paper_exponent is not None:
            fit_note_suffix = ""
        elif bernoulli:
            fit_note_suffix = "; paper predicts < 0.834 for biased p"
        else:
            fit_note_suffix = f"; {distribution} inputs"
        rows.append(
            Row(
                experiment="thm3.8-hqs",
                system="HQS (fit)",
                quantity=f"fitted exponent at p={p}",
                measured=fit.exponent,
                paper=paper_exponent,
                relation="~",
                params={"heights": tuple(heights), "p": p},
                note=f"R^2 = {fit.r_squared:.4f}{fit_note_suffix}",
            )
        )
    return rows, fits


def run_probe_hqs_optimality(heights: Sequence[int] = (1, 2)) -> list[Row]:
    """Theorem 3.9 cross-check: Probe_HQS versus the exact optimum at ``p = 1/2``.

    The exact knowledge-state solver is feasible for heights 1 and 2
    (n = 3 and 9).  At height 1 the optimum coincides with Probe_HQS's
    ``2.5``.  At height 2 the exact optimum is ``6.140625``, slightly below
    Probe_HQS's ``2.5² = 6.25`` — i.e. the *directional* algorithm is not
    exactly optimal, a (small) measured deviation from the paper's
    Theorem 3.9 that matches later literature on recursive majority-of-three.
    The rows therefore assert only the direction that does hold: the exact
    optimum never exceeds ``2.5^h``, and Probe_HQS achieves ``2.5^h``.
    """
    rows: list[Row] = []
    for height in heights:
        system = HQS(height)
        optimal = ExactSolver(system).probabilistic_probe_complexity(0.5)
        rows.append(
            Row(
                experiment="thm3.8-hqs",
                system=system.name,
                quantity="optimal PPC at p=1/2 (exact solver)",
                measured=optimal,
                paper=2.5**height,
                relation="<=",
                params={"n": system.n, "h": height},
                note="Thm 3.9 claims equality; see EXPERIMENTS.md deviation note",
            )
        )
        rows.append(
            Row(
                experiment="thm3.8-hqs",
                system=system.name,
                quantity="Probe_HQS expected probes at p=1/2 (recursion)",
                measured=probe_hqs_expected_exact(height, 0.5),
                paper=2.5**height,
                relation="==",
                params={"n": system.n, "h": height},
                note="Theorem 3.8",
            )
        )
    return rows


def worst_case_family_sampler(system: HQS):
    """Sampler over the worst-case input family ``P`` of Lemma 4.11.

    Recursively: the root has some value; exactly two of its three children
    carry that value, and the same property holds in every subtree.  The
    identity of the minority child is chosen uniformly at every gate, and
    the root value is a fair coin.
    """

    def sample(rng: random.Random) -> Coloring:
        red: set[int] = set()

        def assign(node: int, value_red: bool) -> None:
            if system.is_leaf_node(node):
                if value_red:
                    red.add(system.leaf_to_element(node))
                return
            children = list(system.children(node))
            minority = rng.randrange(3)
            for index, child in enumerate(children):
                assign(child, not value_red if index == minority else value_red)

        assign(system.root, rng.random() < 0.5)
        return Coloring(system.n, red)

    return sample


class HQSFamilyPSource(ColoringSource):
    """The worst-case family ``P`` of Lemma 4.11 as a registered source.

    Assigns gate values top-down over whole trial batches: the root value
    is a fair coin per trial, and at every gate a uniformly chosen minority
    child flips its parent's value.  The leaf level is the red matrix.
    """

    name = "hqs_family_p"

    def __init__(self, system: HQS) -> None:
        self._n = system.n
        self._height = system.height

    @property
    def n(self) -> int:
        return self._n

    def _sample_matrix(self, trials, generator):
        value = generator.random((trials, 1)) < 0.5
        for _ in range(self._height):
            gates = value.shape[1]
            minority = generator.integers(3, size=(trials, gates))
            child_value = np.repeat(value, 3, axis=1)
            is_minority = np.tile(np.arange(3), gates)[None, :] == np.repeat(
                minority, 3, axis=1
            )
            value = child_value ^ is_minority
        return value


register_source(
    "hqs_family_p",
    lambda system, p: HQSFamilyPSource(require_system(system, HQS, "hqs_family_p")),
    "Lemma 4.11 worst-case family P: one minority child per HQS gate",
    aliases=("hqs_hard",),
)


def hqs_family_p_matrix(system: HQS, trials: int, rng=None) -> np.ndarray:
    """Batched sampler over the worst-case family ``P`` of Lemma 4.11."""
    return HQSFamilyPSource(system).sample_matrix(system.n, trials, rng)


def run_randomized_hqs(
    heights: Sequence[int] = (2, 3, 4, 5),
    trials: int = 1500,
    seed: int = 41,
    batched: bool = True,
) -> list[Row]:
    """R_Probe_HQS vs IR_Probe_HQS on the family ``P``, with exponent fits."""
    rows: list[Row] = []
    sizes: list[float] = []
    costs_r: list[float] = []
    costs_ir: list[float] = []
    for height in heights:
        system = HQS(height)
        if batched:
            from repro.core.engine import stream_estimate

            source = HQSFamilyPSource(system)
            est_r = stream_estimate(
                RProbeHQS(system), source, trials=trials, seed=seed + height
            )
            est_ir = stream_estimate(
                IRProbeHQS(system), source, trials=trials, seed=seed + height
            )
        else:
            sampler = worst_case_family_sampler(system)
            est_r = estimate_average_under(
                RProbeHQS(system), sampler, trials=trials, seed=seed + height
            )
            est_ir = estimate_average_under(
                IRProbeHQS(system), sampler, trials=trials, seed=seed + height
            )
        sizes.append(float(system.n))
        costs_r.append(est_r.mean)
        costs_ir.append(est_ir.mean)
        rows.append(
            Row(
                experiment="thm4.10-hqs-rand",
                system=system.name,
                quantity="E[probes] on family P (R_Probe_HQS)",
                measured=est_r.mean,
                paper=None,
                relation="~",
                params={"n": system.n, "h": height},
                note=f"±{est_r.ci95:.2f}",
            )
        )
        rows.append(
            Row(
                experiment="thm4.10-hqs-rand",
                system=system.name,
                quantity="E[probes] on family P (IR_Probe_HQS)",
                measured=est_ir.mean,
                paper=est_r.mean,
                relation="<=",
                params={"n": system.n, "h": height},
                note=f"IR should not exceed R; ±{est_ir.ci95:.2f}",
                tolerance=est_ir.ci95 + est_r.ci95,
            )
        )
    fit_r = fit_power_law(sizes, costs_r)
    fit_ir = fit_power_law(sizes, costs_ir)
    rows.append(
        Row(
            experiment="thm4.10-hqs-rand",
            system="HQS (fit)",
            quantity="fitted exponent, R_Probe_HQS on P",
            measured=fit_r.exponent,
            paper=HQS_PCR_BOPPANA_EXPONENT,
            relation="~",
            params={"heights": tuple(heights)},
            note=f"paper 0.893; R^2={fit_r.r_squared:.3f}",
        )
    )
    rows.append(
        Row(
            experiment="thm4.10-hqs-rand",
            system="HQS (fit)",
            quantity="fitted exponent, IR_Probe_HQS on P",
            measured=fit_ir.exponent,
            paper=HQS_PCR_IMPROVED_EXPONENT,
            relation="~",
            params={"heights": tuple(heights)},
            note=f"paper 0.887; lower bound exponent {HQS_PPC_EXPONENT:.3f}",
        )
    )
    return rows
