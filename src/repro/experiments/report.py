"""Common result-row structure and plain-text table rendering.

Every experiment driver returns a list of :class:`Row` objects; the same
rows back the pytest-benchmark harness, the example scripts and
EXPERIMENTS.md, so paper-versus-measured comparisons are produced by exactly
one code path.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import asdict, dataclass, field
from typing import Any


@dataclass(frozen=True)
class Row:
    """One line of an experiment report.

    ``measured`` is what our implementation produced, ``paper`` the value or
    bound predicted by the paper (already instantiated for the row's
    parameters), and ``relation`` how they are supposed to compare
    (``"<="``, ``">="``, ``"=="`` or ``"~"`` for asymptotic shape).

    ``tolerance`` is an optional absolute slack added on top of the default
    2% relative slack; Monte-Carlo drivers set it to the 95% confidence
    half-width of the measurement so that bounds the measurement sits
    *exactly on* (e.g. Probe_CW on wide uniform walls, where the expectation
    equals 2k − 1 up to vanishing terms) are not flagged due to sampling
    noise.
    """

    experiment: str
    system: str
    quantity: str
    measured: float
    paper: float | None = None
    relation: str = "~"
    params: dict[str, Any] = field(default_factory=dict)
    note: str = ""
    tolerance: float = 0.0

    @property
    def satisfied(self) -> bool | None:
        """Whether the stated relation holds (None when no paper value)."""
        if self.paper is None:
            return None
        tolerance = 1e-9 + 0.02 * abs(self.paper) + self.tolerance
        if self.relation == "<=":
            return self.measured <= self.paper + tolerance
        if self.relation == ">=":
            return self.measured >= self.paper - tolerance
        if self.relation == "==":
            return abs(self.measured - self.paper) <= tolerance
        return None  # "~": shape-only comparison, judged by the caller

    def formatted_params(self) -> str:
        return ", ".join(f"{k}={v}" for k, v in self.params.items())


def render_table(rows: list[Row], title: str | None = None) -> str:
    """Render rows as an aligned plain-text table."""
    headers = ["experiment", "system", "params", "quantity", "measured", "rel", "paper", "ok", "note"]
    table = []
    for row in rows:
        ok = row.satisfied
        table.append(
            [
                row.experiment,
                row.system,
                row.formatted_params(),
                row.quantity,
                f"{row.measured:.4g}",
                row.relation,
                "-" if row.paper is None else f"{row.paper:.4g}",
                "-" if ok is None else ("yes" if ok else "NO"),
                row.note,
            ]
        )
    widths = [max(len(headers[i]), *(len(r[i]) for r in table)) if table else len(headers[i]) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def violations(rows: list[Row]) -> list[Row]:
    """Rows whose stated paper relation does not hold."""
    return [row for row in rows if row.satisfied is False]


def row_to_dict(row: Row) -> dict[str, Any]:
    """JSON-ready representation of one row (tuple params become lists)."""
    payload = asdict(row)
    payload["params"] = {
        key: list(value) if isinstance(value, tuple) else value
        for key, value in row.params.items()
    }
    return payload


def row_from_dict(payload: Mapping[str, Any]) -> Row:
    """Invert :func:`row_to_dict`.

    JSON has no tuple type, so list-valued params are restored as tuples —
    exactly inverting the serialization, which keeps ``formatted_params``
    (and therefore table/Markdown renderings) byte-identical across an
    artifact round trip.
    """
    params = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in payload.get("params", {}).items()
    }
    return Row(
        experiment=payload["experiment"],
        system=payload["system"],
        quantity=payload["quantity"],
        measured=payload["measured"],
        paper=payload.get("paper"),
        relation=payload.get("relation", "~"),
        params=params,
        note=payload.get("note", ""),
        tolerance=payload.get("tolerance", 0.0),
    )
