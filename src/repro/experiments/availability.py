"""Availability experiments (Fact 2.3 and the per-system recursions).

These back the ``availability`` experiment id: exact availability (by
enumeration on small systems and by the system-specific recursions on large
ones) versus Monte-Carlo measurement, plus the Fact 2.3 identities that the
paper's analyses rely on.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.analysis.availability import (
    crumbling_wall_availability,
    hqs_availability,
    hqs_availability_bound,
    majority_availability,
    tree_availability,
    tree_availability_bound,
)
from repro.core.metrics import availability_exact, availability_monte_carlo
from repro.experiments.report import Row
from repro.experiments.seeding import cell_seed
from repro.systems.crumbling_walls import TriangSystem
from repro.systems.hqs import HQS
from repro.systems.majority import MajoritySystem
from repro.systems.tree import TreeSystem
from repro.systems.wheel import WheelSystem


def run_availability_experiment(
    ps: Sequence[float] = (0.1, 0.3, 0.5),
    trials: int = 4000,
    seed: int = 61,
    batched: bool = True,
) -> list[Row]:
    """Availability of every paper system: recursion vs enumeration vs MC.

    ``batched=True`` routes the Monte-Carlo estimates through the batched
    probing kernels (witness color ⇔ live quorum); systems without a kernel
    fall back to the per-trial loop.
    """
    rows: list[Row] = []

    small_systems = [
        MajoritySystem(9),
        WheelSystem(8),
        TriangSystem(4),
        TreeSystem(2),
        HQS(2),
    ]
    for system in small_systems:
        for p in ps:
            exact = availability_exact(system, p)
            mc = availability_monte_carlo(
                system, p, trials=trials, seed=cell_seed(seed, system.name, p), batched=batched
            )
            rows.append(
                Row(
                    experiment="availability",
                    system=system.name,
                    quantity="F_p (Monte-Carlo vs enumeration)",
                    measured=mc.mean,
                    paper=exact,
                    relation="~",
                    params={"n": system.n, "p": p},
                    note=f"±{mc.ci95:.3f}",
                )
            )
            if p <= 0.5:
                rows.append(
                    Row(
                        experiment="availability",
                        system=system.name,
                        quantity="Fact 2.3(1): F_p <= p",
                        measured=exact,
                        paper=p,
                        relation="<=",
                        params={"n": system.n, "p": p},
                    )
                )
            dual = availability_exact(system, 1.0 - p)
            rows.append(
                Row(
                    experiment="availability",
                    system=system.name,
                    quantity="Fact 2.3(2): F_p + F_{1-p}",
                    measured=exact + dual,
                    paper=1.0,
                    relation="==",
                    params={"n": system.n, "p": p},
                )
            )

    # Closed-form recursions vs exhaustive enumeration on small instances.
    for p in ps:
        rows.append(
            Row(
                experiment="availability",
                system="Maj(9)",
                quantity="binomial formula vs enumeration",
                measured=majority_availability(9, p),
                paper=availability_exact(MajoritySystem(9), p),
                relation="==",
                params={"p": p},
            )
        )
        rows.append(
            Row(
                experiment="availability",
                system="Triang(4)",
                quantity="CW row recursion vs enumeration",
                measured=crumbling_wall_availability(TriangSystem(4).widths, p),
                paper=availability_exact(TriangSystem(4), p),
                relation="==",
                params={"p": p},
            )
        )
        rows.append(
            Row(
                experiment="availability",
                system="Tree(h=2)",
                quantity="tree recursion vs enumeration",
                measured=tree_availability(2, p),
                paper=availability_exact(TreeSystem(2), p),
                relation="==",
                params={"p": p},
            )
        )
        rows.append(
            Row(
                experiment="availability",
                system="HQS(h=2)",
                quantity="HQS recursion vs enumeration",
                measured=hqs_availability(2, p),
                paper=availability_exact(HQS(2), p),
                relation="==",
                params={"p": p},
            )
        )

    # The availability bounds actually used inside the paper's proofs.
    for height in (3, 6, 9):
        for p in (0.1, 0.3, 0.45):
            rows.append(
                Row(
                    experiment="availability",
                    system=f"Tree(h={height})",
                    quantity="F_p vs (p+1/2)^h bound",
                    measured=tree_availability(height, p),
                    paper=tree_availability_bound(height, p),
                    relation="<=",
                    params={"h": height, "p": p},
                    note="bound used in Prop. 3.6",
                )
            )
            rows.append(
                Row(
                    experiment="availability",
                    system=f"HQS(h={height})",
                    quantity="F_p vs p(3p-2p^2)^h bound",
                    measured=hqs_availability(height, p),
                    paper=hqs_availability_bound(height, p),
                    relation="<=",
                    params={"h": height, "p": p},
                    note="bound used in Thm. 3.8",
                )
            )
    return rows
