"""Declarative experiment registry.

Every per-theorem driver is registered as an :class:`ExperimentSpec` — an
id, a human title, tags, a typed parameter schema with defaults and a
driver callable — so the runner (:mod:`repro.experiments.runner`), the CLI
(``repro-probe list`` / ``repro-probe run``) and the Markdown report writer
all resolve experiments the same way.  Adding a new workload is a
registration in :mod:`repro.experiments.specs`, not a new module plus a CLI
branch.

The driver contract: ``spec.driver(**params)`` receives exactly the
declared parameters (defaults merged with any overrides) and returns a
:class:`DriverResult` — the report rows plus optional free-form extra lines
(fit summaries and the like).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from repro.experiments.report import Row

#: Parameter kinds understood by the CLI's ``--param`` override parser.
PARAM_KINDS = ("int", "float", "str", "bool", "int_list", "float_list", "seed")


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter of an experiment.

    ``kind`` drives CLI string parsing (see :func:`parse_param_value`);
    ``"seed"`` behaves like ``int`` but is also settable through the
    shared ``--seed`` flag.  ``default`` is used when no override is given.
    """

    name: str
    kind: str
    default: Any
    help: str = ""

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ValueError(f"unknown parameter kind {self.kind!r}")


@dataclass(frozen=True)
class DriverResult:
    """What a registered driver returns: rows plus free-form extra lines."""

    rows: tuple[Row, ...]
    extra: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", tuple(self.rows))
        object.__setattr__(self, "extra", tuple(self.extra))


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: id, title, tags, parameter schema, driver."""

    id: str
    title: str
    driver: Callable[..., DriverResult]
    params: tuple[ParamSpec, ...] = ()
    tags: tuple[str, ...] = ()
    description: str = ""

    def param(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        raise KeyError(f"experiment {self.id!r} has no parameter {name!r}")

    def defaults(self) -> dict[str, Any]:
        return {spec.name: spec.default for spec in self.params}

    def resolve_params(
        self, overrides: Mapping[str, Any] | None = None, strict: bool = True
    ) -> dict[str, Any]:
        """Merge ``overrides`` into the declared defaults.

        With ``strict=True`` unknown parameter names raise ``KeyError``;
        with ``strict=False`` they are ignored (used when one shared
        override set — e.g. ``--trials`` — is applied across many specs
        that declare different schemas).  String override values for
        non-string parameters are parsed according to the parameter's
        declared kind, so CLI ``--param name=value`` pairs can be applied
        unmodified.
        """
        resolved = self.defaults()
        for name, value in (overrides or {}).items():
            if name not in resolved:
                if strict:
                    raise KeyError(
                        f"experiment {self.id!r} has no parameter {name!r}; "
                        f"declared: {', '.join(sorted(resolved)) or '(none)'}"
                    )
                continue
            spec = self.param(name)
            if isinstance(value, str) and spec.kind != "str":
                value = parse_param_value(spec, value)
            resolved[name] = value
        return resolved

    def run(self, overrides: Mapping[str, Any] | None = None, strict: bool = True):
        """Resolve parameters and invoke the driver."""
        params = self.resolve_params(overrides, strict=strict)
        result = self.driver(**params)
        if not isinstance(result, DriverResult):
            raise TypeError(
                f"driver for {self.id!r} returned {type(result).__name__}, "
                "expected DriverResult"
            )
        return params, result


def parse_param_value(spec: ParamSpec, text: str) -> Any:
    """Parse a CLI ``--param name=value`` string according to the schema."""
    kind = spec.kind
    if kind in ("int", "seed"):
        return int(text)
    if kind == "float":
        return float(text)
    if kind == "str":
        return text
    if kind == "bool":
        lowered = text.strip().lower()
        if lowered in ("1", "true", "yes", "on"):
            return True
        if lowered in ("0", "false", "no", "off"):
            return False
        raise ValueError(f"cannot parse {text!r} as bool for {spec.name!r}")
    if kind == "int_list":
        return tuple(int(part) for part in text.split(",") if part.strip())
    if kind == "float_list":
        return tuple(float(part) for part in text.split(",") if part.strip())
    raise ValueError(f"unknown parameter kind {kind!r}")  # pragma: no cover


_REGISTRY: dict[str, ExperimentSpec] = {}
_DEFAULTS_LOADED = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Register ``spec``; duplicate ids are an error."""
    if spec.id in _REGISTRY:
        raise ValueError(f"experiment id {spec.id!r} already registered")
    _REGISTRY[spec.id] = spec
    return spec


def _ensure_default_specs() -> None:
    """Load the built-in registrations exactly once (import side effect)."""
    global _DEFAULTS_LOADED
    if not _DEFAULTS_LOADED:
        _DEFAULTS_LOADED = True
        import repro.experiments.specs  # noqa: F401  (registers on import)


def get_spec(experiment_id: str) -> ExperimentSpec:
    """Look up a registered spec by id."""
    _ensure_default_specs()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {experiment_id!r}; known: {known}") from None


def all_specs() -> tuple[ExperimentSpec, ...]:
    """Every registered spec, sorted by id."""
    _ensure_default_specs()
    return tuple(_REGISTRY[key] for key in sorted(_REGISTRY))


def experiment_ids() -> tuple[str, ...]:
    """The sorted registered ids."""
    return tuple(spec.id for spec in all_specs())


def specs_for_tag(tag: str) -> tuple[ExperimentSpec, ...]:
    """Registered specs carrying ``tag``."""
    return tuple(spec for spec in all_specs() if tag in spec.tags)


def all_tags() -> tuple[str, ...]:
    """Every tag in use, sorted."""
    tags: set[str] = set()
    for spec in all_specs():
        tags.update(spec.tags)
    return tuple(sorted(tags))
