"""The Section 2.3 worked example: exact probe complexities of ``Maj3``.

The paper computes, for the 3-element majority coterie
``S = {{1,2}, {2,3}, {1,3}}`` (Fig. 4):

* ``PC(Maj3)   = 3``      — deterministic worst case;
* ``PCR(Maj3)  = 8/3``    — best randomized algorithm, worst-case input;
* ``PPC(Maj3)  = 5/2``    — best deterministic algorithm, i.i.d. inputs at
  ``p = 1/2``.

This driver recomputes all three from first principles: PC and PPC by the
exact knowledge-state solvers, PCR by exhaustive analysis of the uniform
random-permutation algorithm (upper bound) matched against the Yao bound of
Theorem 4.2 (lower bound), so the value ``8/3`` is pinched exactly.
"""

from __future__ import annotations

from repro.analysis.yao import majority_hard_distribution, majority_lower_bound
from repro.core.exact import ExactSolver, permutation_algorithm_worst_expected
from repro.experiments.report import Row
from repro.systems.majority import MajoritySystem


def run_maj3_experiment() -> list[Row]:
    """Recompute the three probe complexities of Maj3 exactly."""
    system = MajoritySystem(3)
    solver = ExactSolver(system)

    pc = solver.probe_complexity()
    ppc = solver.probabilistic_probe_complexity(0.5)
    pcr_upper = permutation_algorithm_worst_expected(system)
    pcr_lower = solver.best_deterministic_under(majority_hard_distribution(system))

    rows = [
        Row(
            experiment="fig4-maj3",
            system="Maj3",
            quantity="PC (deterministic worst case)",
            measured=float(pc),
            paper=3.0,
            relation="==",
        ),
        Row(
            experiment="fig4-maj3",
            system="Maj3",
            quantity="PPC at p=1/2",
            measured=ppc,
            paper=2.5,
            relation="==",
        ),
        Row(
            experiment="fig4-maj3",
            system="Maj3",
            quantity="PCR upper (random permutation alg.)",
            measured=pcr_upper,
            paper=8.0 / 3.0,
            relation="==",
        ),
        Row(
            experiment="fig4-maj3",
            system="Maj3",
            quantity="PCR lower (Yao, Thm 4.2 distribution)",
            measured=pcr_lower,
            paper=8.0 / 3.0,
            relation="==",
            note=f"closed form n-(n-1)/(n+3) = {majority_lower_bound(3):.4f}",
        ),
    ]
    return rows


def maj3_strategy_tree_summary() -> dict[str, float]:
    """Structure of the optimal Maj3 strategy tree (the Fig. 4 tree)."""
    system = MajoritySystem(3)
    solver = ExactSolver(system)
    tree = solver.optimal_strategy_tree(0.5)
    tree.validate()
    return {
        "depth": float(tree.depth()),
        "expected_depth_half": tree.expected_depth(0.5),
        "leaves": float(tree.leaf_count()),
        "probe_nodes": float(tree.node_count()),
    }
