"""Probing algorithms for the Majority system (Sections 3.1 and 4.1).

For Majority over an odd universe of size ``n = 2k + 1`` a witness is a
monochromatic set of size ``k + 1``:

* **Probe_Maj** probes elements in an arbitrary fixed order; since the
  elements are exchangeable in the probabilistic model, any order is optimal
  and the expected probe count is ``n − Θ(√n)`` at ``p = 1/2`` and
  ``n / (2q) + o(1)`` for ``p < 1/2`` (Proposition 3.2).
* **R_Probe_Maj** probes elements in a uniformly random order; its
  worst-case expected probe count is exactly ``n − (n − 1)/(n + 3)``
  (Theorem 4.2), which matches the Yao lower bound and is therefore the
  exact randomized probe complexity of Majority.
"""

from __future__ import annotations

import random

from repro.algorithms.base import ProbeRun, ProbingAlgorithm
from repro.core.coloring import Color
from repro.core.oracle import ProbeOracle
from repro.core.witness import Witness
from repro.systems.majority import MajoritySystem


class ProbeMaj(ProbingAlgorithm):
    """Deterministic majority probing: fixed order, stop at ``(n+1)/2`` of a color."""

    def __init__(self, system: MajoritySystem, order: list[int] | None = None) -> None:
        if not isinstance(system, MajoritySystem):
            raise TypeError("ProbeMaj requires a MajoritySystem")
        super().__init__(system)
        if order is None:
            order = sorted(system.universe)
        if sorted(order) != sorted(system.universe):
            raise ValueError("order must be a permutation of the universe")
        self._order = list(order)

    @property
    def order(self) -> list[int]:
        """The fixed probe order (used by the vectorized estimator)."""
        return list(self._order)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        return _majority_scan(self._system, self._order, oracle)


class RProbeMaj(ProbingAlgorithm):
    """Algorithm R_Probe_Maj: probe elements uniformly at random (Thm. 4.2)."""

    randomized = True

    def __init__(self, system: MajoritySystem) -> None:
        if not isinstance(system, MajoritySystem):
            raise TypeError("RProbeMaj requires a MajoritySystem")
        super().__init__(system)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        rng = self._require_rng(rng)
        order = sorted(self._system.universe)
        rng.shuffle(order)
        return _majority_scan(self._system, order, oracle)


def _majority_scan(
    system: MajoritySystem, order: list[int], oracle: ProbeOracle
) -> ProbeRun:
    """Probe in the given order until one color reaches quorum size."""
    target = system.quorum_size
    green: list[int] = []
    red: list[int] = []
    probes = 0
    sequence: list[int] = []
    for element in order:
        color = oracle.probe(element)
        probes += 1
        sequence.append(element)
        (green if color is Color.GREEN else red).append(element)
        if len(green) >= target:
            return ProbeRun(
                Witness(Color.GREEN, frozenset(green)), probes, tuple(sequence)
            )
        if len(red) >= target:
            return ProbeRun(
                Witness(Color.RED, frozenset(red)), probes, tuple(sequence)
            )
    raise RuntimeError("majority scan exhausted the universe without a witness")
