"""Probing algorithms for Crumbling Walls (Sections 3.2 and 4.2).

* **Probe_CW** (Fig. 5) scans the wall top-down.  It maintains a
  monochromatic set ``W`` (a witness for the sub-wall scanned so far) and a
  mode equal to ``W``'s color.  In each row it probes until it finds one
  element of the current mode; if the whole row has the opposite color, the
  row replaces ``W`` and the mode flips.  Its expected probe count is at
  most ``2k − 1`` for a wall with ``k`` rows, for every failure probability
  ``p`` (Theorem 3.3).
* **R_Probe_CW** scans the wall bottom-up, probing each row in uniformly
  random order until it has seen both colors (or exhausted the row).  It
  stops at the first monochromatic row; its randomized worst-case probe
  count is at most ``max_j { n_j + Σ_{i>j} ((n_i+1)/2 + 1/n_i) }``
  (Theorem 4.4).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.algorithms.base import ProbeRun, ProbingAlgorithm
from repro.core.coloring import Color
from repro.core.oracle import ProbeOracle
from repro.core.witness import Witness
from repro.systems.crumbling_walls import CrumblingWall


class ProbeCW(ProbingAlgorithm):
    """Algorithm Probe_CW of Fig. 5 (top-down scan, ``PPC ≤ 2k − 1``).

    ``within_row_order`` selects how elements inside a row are tried:
    ``"lexicographic"`` (default, fully deterministic) or ``"random"``
    (shuffled per run; used by the order-ablation benchmark).  The top-down
    row order is part of the algorithm's correctness argument and is not
    configurable.
    """

    def __init__(self, system: CrumblingWall, within_row_order: str = "lexicographic") -> None:
        if not isinstance(system, CrumblingWall):
            raise TypeError("ProbeCW requires a CrumblingWall system")
        if system.widths[0] != 1:
            raise ValueError(
                "Probe_CW is defined for walls whose first row has width 1 "
                "(the ND shape of Section 2.2)"
            )
        if within_row_order not in ("lexicographic", "random"):
            raise ValueError("within_row_order must be 'lexicographic' or 'random'")
        super().__init__(system)
        self._within_row_order = within_row_order
        self.randomized = within_row_order == "random"

    @property
    def within_row_order(self) -> str:
        """In-row probe order: ``"lexicographic"`` or ``"random"``."""
        return self._within_row_order

    def _row_elements(self, row: frozenset[int], rng: random.Random | None) -> list[int]:
        elements = sorted(row)
        if self._within_row_order == "random":
            rng = self._require_rng(rng)
            rng.shuffle(elements)
        return elements

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        wall: CrumblingWall = self._system
        rows = wall.rows
        probes = 0
        sequence: list[int] = []

        # Step 1-2: probe the unique element of the first row; it fixes the mode.
        v1 = next(iter(rows[0]))
        mode = oracle.probe(v1)
        probes += 1
        sequence.append(v1)
        witness_elements: set[int] = {v1}

        # Step 3: scan the remaining rows top-down.
        for row in rows[1:]:
            found: int | None = None
            row_colors: dict[int, Color] = {}
            for element in self._row_elements(row, rng):
                color = oracle.probe(element)
                probes += 1
                sequence.append(element)
                row_colors[element] = color
                if color is mode:
                    found = element
                    break
            if found is not None:
                witness_elements.add(found)
            else:
                # The whole row was probed and is monochromatic of the
                # opposite color: it becomes the new witness set.
                witness_elements = set(row)
                mode = mode.flipped()

        witness = Witness(mode, frozenset(witness_elements))
        return ProbeRun(witness, probes, tuple(sequence))


class RProbeCW(ProbingAlgorithm):
    """Algorithm R_Probe_CW (bottom-up randomized scan, Theorem 4.4)."""

    randomized = True

    def __init__(self, system: CrumblingWall) -> None:
        if not isinstance(system, CrumblingWall):
            raise TypeError("RProbeCW requires a CrumblingWall system")
        super().__init__(system)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        rng = self._require_rng(rng)
        wall: CrumblingWall = self._system
        rows = wall.rows
        probes = 0
        sequence: list[int] = []
        # For every row already scanned (all rows below the eventual
        # monochromatic row), remember one representative of each color.
        reps_below: dict[Color, list[int]] = {Color.GREEN: [], Color.RED: []}

        for row in reversed(rows):
            elements = sorted(row)
            rng.shuffle(elements)
            seen: dict[Color, list[int]] = {Color.GREEN: [], Color.RED: []}
            for element in elements:
                color = oracle.probe(element)
                probes += 1
                sequence.append(element)
                seen[color].append(element)
                if seen[Color.GREEN] and seen[Color.RED]:
                    break
            if not (seen[Color.GREEN] and seen[Color.RED]):
                # The whole row was probed and is monochromatic: witness found.
                mono_color = Color.GREEN if seen[Color.GREEN] else Color.RED
                # The full row plus one representative of the witness color
                # from each row below it.
                witness_elements = set(row) | set(reps_below[mono_color])
                witness = Witness(mono_color, frozenset(witness_elements))
                return ProbeRun(witness, probes, tuple(sequence))
            # Both colors present: record one representative per color and
            # continue with the next row up.
            reps_below[Color.GREEN].append(seen[Color.GREEN][0])
            reps_below[Color.RED].append(seen[Color.RED][0])

        raise RuntimeError(
            "R_Probe_CW scanned all rows without finding a monochromatic row; "
            "this cannot happen when the top row has width 1"
        )


def probe_cw_row_bound(widths: Sequence[int]) -> float:
    """The per-row upper bound of Theorem 4.4 for R_Probe_CW.

    Returns ``max_j { n_j + Σ_{i>j} ((n_i + 1)/2 + 1/n_i) }`` where rows are
    numbered top-down and the sum ranges over the rows below row ``j``.
    """
    widths = list(widths)
    k = len(widths)
    best = 0.0
    for j in range(k):
        value = widths[j] + sum(
            (widths[i] + 1) / 2.0 + 1.0 / widths[i] for i in range(j + 1, k)
        )
        best = max(best, value)
    return best
