"""Common interface for probing algorithms.

Every algorithm of the paper (Probe_CW, Probe_Tree, Probe_HQS, R_Probe_Maj,
R_Probe_CW, R_Probe_Tree, R_Probe_HQS, IR_Probe_HQS, ...) is implemented as a
:class:`ProbingAlgorithm`: it receives a probe oracle, adaptively probes
elements and returns a :class:`ProbeRun` containing the witness it found and
the number of probes it spent.  Randomized algorithms additionally consume a
``random.Random`` source so every experiment is reproducible from a seed.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.coloring import Color, Coloring
from repro.core.oracle import ColoringOracle, ProbeOracle
from repro.core.witness import Witness
from repro.systems.base import QuorumSystem


@dataclass(frozen=True)
class ProbeRun:
    """Outcome of one execution of a probing algorithm.

    Attributes
    ----------
    witness:
        The monochromatic witness found.
    probes:
        Number of distinct elements probed.
    sequence:
        The elements probed, in order (empty when the oracle in use does not
        record sequences).
    """

    witness: Witness
    probes: int
    sequence: tuple[int, ...] = field(default=())

    @property
    def color(self) -> Color:
        """Color of the witness (green = live quorum exists)."""
        return self.witness.color


class ProbingAlgorithm(ABC):
    """Base class for adaptive probing algorithms over a fixed system."""

    #: Whether the algorithm uses randomness (affects which complexity
    #: measure it is evaluated under).
    randomized: bool = False

    def __init__(self, system: QuorumSystem) -> None:
        self._system = system

    @property
    def system(self) -> QuorumSystem:
        """The quorum system this algorithm probes."""
        return self._system

    @property
    def name(self) -> str:
        """Human-readable algorithm name."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}({self._system.name})"

    # -- execution --------------------------------------------------------------

    @abstractmethod
    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        """Probe through ``oracle`` until a witness is found."""

    def run_on(
        self,
        coloring: Coloring,
        rng: random.Random | None = None,
        budget: int | None = None,
        validate: bool = False,
    ) -> ProbeRun:
        """Run against an in-memory coloring (convenience wrapper).

        With ``validate=True`` the returned witness is checked against the
        system and the coloring, raising on any inconsistency.
        """
        if coloring.n != self._system.n:
            raise ValueError(
                f"coloring has {coloring.n} elements but {self._system.name} "
                f"has n = {self._system.n}"
            )
        oracle = ColoringOracle(coloring, budget=budget)
        run = self.run(oracle, rng=rng)
        run = ProbeRun(run.witness, oracle.probe_count, tuple(oracle.sequence))
        if validate:
            run.witness.validate(self._system, coloring)
        return run

    # -- helpers shared by concrete algorithms ---------------------------------------

    @staticmethod
    def _require_rng(rng: random.Random | None) -> random.Random:
        """Return the given rng or a fresh unseeded one."""
        return rng if rng is not None else random.Random()

    def _witness_from_known(self, oracle: ProbeOracle) -> Witness:
        """Build a witness directly from the oracle's revealed colors.

        Used by algorithms whose termination argument guarantees that the
        probed elements already settle the system state; raises if not.
        """
        known = oracle.known
        green = frozenset(e for e, c in known.items() if c is Color.GREEN)
        red = frozenset(e for e, c in known.items() if c is Color.RED)
        quorum = self._system.find_quorum_within(green)
        if quorum is not None:
            return Witness(Color.GREEN, quorum)
        if self._system.is_transversal(red):
            return Witness(Color.RED, red)
        raise RuntimeError(
            f"{self.name} terminated without conclusive knowledge "
            f"(green={sorted(green)}, red={sorted(red)})"
        )
