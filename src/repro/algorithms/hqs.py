"""Probing algorithms for the Hierarchical Quorum System (Sections 3.4, 4.4).

Evaluating HQS means evaluating a complete ternary tree of 2-of-3 majority
gates whose leaves are the universe elements.  The *value* of the root is
green exactly when a live quorum exists; the witness is the set of evaluated
leaves supporting the winning majority at every gate, which forms a
monochromatic quorum.

* **Probe_HQS** (Theorem 3.8) evaluates children left-to-right and skips the
  third child whenever the first two agree.  At ``p = 1/2`` its expected
  probe count is ``n^{log3 2.5} ≈ n^0.834`` and it is *optimal* among all
  strategies (Theorem 3.9); for ``p < 1/2`` it is ``O(n^{log3 2})``.
* **R_Probe_HQS** (Fig. 7, due to Boppana, analyzed by Saks & Wigderson)
  evaluates two uniformly random children first; worst-case expected probes
  ``O(n^{log3 8/3}) ≈ O(n^0.893)``.
* **IR_Probe_HQS** (Fig. 8, Theorem 4.10) improves R_Probe_HQS by first
  evaluating a single random grandchild of the second chosen child and using
  its value to decide whether to finish that child or jump to the third
  child; worst-case expected probes ``O(n^0.887)`` via the recursion
  ``g(h) = (189.5 / 27) · g(h − 2)``.
"""

from __future__ import annotations

import random

from repro.algorithms.base import ProbeRun, ProbingAlgorithm
from repro.core.coloring import Color
from repro.core.oracle import ProbeOracle
from repro.core.witness import Witness
from repro.systems.hqs import HQS


class _GateEvaluation:
    """Result of evaluating a gate node: its value and supporting leaves."""

    __slots__ = ("value", "support")

    def __init__(self, value: Color, support: frozenset[int]) -> None:
        self.value = value
        self.support = support


class _HQSProbeState:
    """Probe bookkeeping plus a cache of already-evaluated gate nodes."""

    def __init__(self, oracle: ProbeOracle) -> None:
        self.oracle = oracle
        self.probes = 0
        self.sequence: list[int] = []
        self.evaluated: dict[int, _GateEvaluation] = {}

    def probe(self, element: int) -> Color:
        color = self.oracle.probe(element)
        self.probes += 1
        self.sequence.append(element)
        return color


class _HQSAlgorithm(ProbingAlgorithm):
    """Shared machinery for the three HQS probing algorithms."""

    def __init__(self, system: HQS) -> None:
        if not isinstance(system, HQS):
            raise TypeError(f"{type(self).__name__} requires an HQS system")
        super().__init__(system)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        rng = self._require_rng(rng)
        state = _HQSProbeState(oracle)
        result = self._evaluate(self._system.root, state, rng)
        witness = Witness(result.value, result.support)
        return ProbeRun(witness, state.probes, tuple(state.sequence))

    # -- to be provided by subclasses -------------------------------------------

    def _evaluate(
        self, node: int, state: _HQSProbeState, rng: random.Random
    ) -> _GateEvaluation:
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------------------

    def _evaluate_leaf(self, node: int, state: _HQSProbeState) -> _GateEvaluation:
        system: HQS = self._system
        element = system.leaf_to_element(node)
        color = state.probe(element)
        return _GateEvaluation(color, frozenset({element}))

    def _finish_gate(
        self,
        node: int,
        child_order: list[int],
        state: _HQSProbeState,
        rng: random.Random,
        pre: list[_GateEvaluation] | None = None,
    ) -> _GateEvaluation:
        """Evaluate children of ``node`` in ``child_order`` until two agree.

        ``pre`` holds evaluations of children that were already computed (and
        must not appear in ``child_order``).  The result is cached so that a
        node is never evaluated twice within one run.
        """
        if node in state.evaluated:
            return state.evaluated[node]
        results: list[_GateEvaluation] = list(pre or [])
        value = self._majority_value(results)
        for child in child_order:
            if value is not None:
                break
            results.append(self._evaluate(child, state, rng))
            value = self._majority_value(results)
        if value is None:
            raise RuntimeError("gate evaluation ended without a majority")
        support = self._majority_support(results, value)
        evaluation = _GateEvaluation(value, support)
        state.evaluated[node] = evaluation
        return evaluation

    @staticmethod
    def _majority_value(results: list[_GateEvaluation]) -> Color | None:
        greens = sum(1 for r in results if r.value is Color.GREEN)
        reds = len(results) - greens
        if greens >= 2:
            return Color.GREEN
        if reds >= 2:
            return Color.RED
        return None

    @staticmethod
    def _majority_support(
        results: list[_GateEvaluation], value: Color
    ) -> frozenset[int]:
        supports = [r.support for r in results if r.value is value]
        return supports[0] | supports[1]


class ProbeHQS(_HQSAlgorithm):
    """Algorithm Probe_HQS: deterministic left-to-right 2-then-3 evaluation."""

    def _evaluate(
        self, node: int, state: _HQSProbeState, rng: random.Random
    ) -> _GateEvaluation:
        system: HQS = self._system
        if system.is_leaf_node(node):
            return self._evaluate_leaf(node, state)
        children = list(system.children(node))
        return self._finish_gate(node, children, state, rng)


class RProbeHQS(_HQSAlgorithm):
    """Algorithm R_Probe_HQS (Fig. 7): evaluate two random children first."""

    randomized = True

    def _evaluate(
        self, node: int, state: _HQSProbeState, rng: random.Random
    ) -> _GateEvaluation:
        system: HQS = self._system
        if system.is_leaf_node(node):
            return self._evaluate_leaf(node, state)
        children = list(system.children(node))
        rng.shuffle(children)
        return self._finish_gate(node, children, state, rng)


class IRProbeHQS(_HQSAlgorithm):
    """Algorithm IR_Probe_HQS (Fig. 8): grandchild-guided evaluation.

    At a node of height at least 2, the algorithm evaluates one random child
    ``r1``, then peeks at a single random grandchild of a second random
    child ``r2``.  If the grandchild agrees with ``r1`` the algorithm
    finishes ``r2`` (hoping to close the majority); otherwise it jumps to
    the third child ``r3`` first and only completes ``r2`` if still needed.
    Nodes of height 0 or 1 fall back to the standard randomized evaluation.
    """

    randomized = True

    def _evaluate(
        self, node: int, state: _HQSProbeState, rng: random.Random
    ) -> _GateEvaluation:
        system: HQS = self._system
        if system.is_leaf_node(node):
            return self._evaluate_leaf(node, state)
        children = list(system.children(node))
        # Height-1 nodes have leaf children: no grandchildren to peek at.
        if system.is_leaf_node(children[0]):
            rng.shuffle(children)
            return self._finish_gate(node, children, state, rng)
        if node in state.evaluated:
            return state.evaluated[node]

        shuffled = list(children)
        rng.shuffle(shuffled)
        r1, r2, r3 = shuffled

        # Steps 1-2: fully evaluate r1.
        eval_r1 = self._evaluate(r1, state, rng)

        # Step 4: evaluate one random grandchild of r2.
        grandchildren = list(system.children(r2))
        rng.shuffle(grandchildren)
        peek_child = grandchildren[0]
        eval_peek = self._evaluate(peek_child, state, rng)

        if eval_peek.value is eval_r1.value:
            # Step 5: finish evaluating r2 (its peeked grandchild counts).
            eval_r2 = self._finish_gate(
                r2, grandchildren[1:], state, rng, pre=[eval_peek]
            )
            if eval_r2.value is eval_r1.value:
                result = _GateEvaluation(
                    eval_r1.value, eval_r1.support | eval_r2.support
                )
            else:
                eval_r3 = self._evaluate(r3, state, rng)
                partner = eval_r1 if eval_r3.value is eval_r1.value else eval_r2
                result = _GateEvaluation(
                    eval_r3.value, eval_r3.support | partner.support
                )
        else:
            # Step 6: the peek disagrees with r1 — try the third child first.
            eval_r3 = self._evaluate(r3, state, rng)
            if eval_r3.value is eval_r1.value:
                result = _GateEvaluation(
                    eval_r1.value, eval_r1.support | eval_r3.support
                )
            else:
                eval_r2 = self._finish_gate(
                    r2, grandchildren[1:], state, rng, pre=[eval_peek]
                )
                partner = eval_r1 if eval_r2.value is eval_r1.value else eval_r3
                result = _GateEvaluation(
                    eval_r2.value, eval_r2.support | partner.support
                )
        state.evaluated[node] = result
        return result
