"""Probing algorithms from the paper plus generic baselines.

Deterministic algorithms (evaluated in the probabilistic model, Section 3):
``ProbeMaj``, ``ProbeCW``, ``ProbeTree``, ``ProbeHQS``.

Randomized algorithms (evaluated in the worst-case model, Section 4):
``RProbeMaj``, ``RProbeCW``, ``RProbeTree``, ``RProbeHQS``, ``IRProbeHQS``.

Generic baselines usable with any system: ``SequentialScan``, ``RandomScan``,
``CandidateQuorumProbe``.
"""

from repro.algorithms.base import ProbeRun, ProbingAlgorithm
from repro.algorithms.crumbling_walls import ProbeCW, RProbeCW, probe_cw_row_bound
from repro.algorithms.generic import CandidateQuorumProbe, RandomScan, SequentialScan
from repro.algorithms.hqs import IRProbeHQS, ProbeHQS, RProbeHQS
from repro.algorithms.majority import ProbeMaj, RProbeMaj
from repro.algorithms.tree import ProbeTree, RProbeTree

__all__ = [
    "ProbeRun",
    "ProbingAlgorithm",
    "ProbeCW",
    "RProbeCW",
    "probe_cw_row_bound",
    "CandidateQuorumProbe",
    "RandomScan",
    "SequentialScan",
    "IRProbeHQS",
    "ProbeHQS",
    "RProbeHQS",
    "ProbeMaj",
    "RProbeMaj",
    "ProbeTree",
    "RProbeTree",
]


def default_deterministic_algorithm(system) -> ProbingAlgorithm:
    """The paper's deterministic probing algorithm for a given system.

    Falls back to :class:`SequentialScan` for systems the paper does not
    treat specifically.
    """
    from repro.systems.crumbling_walls import CrumblingWall
    from repro.systems.hqs import HQS
    from repro.systems.majority import MajoritySystem
    from repro.systems.tree import TreeSystem

    if isinstance(system, MajoritySystem):
        return ProbeMaj(system)
    if isinstance(system, CrumblingWall):
        return ProbeCW(system)
    if isinstance(system, TreeSystem):
        return ProbeTree(system)
    if isinstance(system, HQS):
        return ProbeHQS(system)
    return SequentialScan(system)


def default_randomized_algorithm(system) -> ProbingAlgorithm:
    """The paper's randomized probing algorithm for a given system.

    Falls back to :class:`RandomScan` for systems the paper does not treat
    specifically.
    """
    from repro.systems.crumbling_walls import CrumblingWall
    from repro.systems.hqs import HQS
    from repro.systems.majority import MajoritySystem
    from repro.systems.tree import TreeSystem

    if isinstance(system, MajoritySystem):
        return RProbeMaj(system)
    if isinstance(system, CrumblingWall):
        return RProbeCW(system)
    if isinstance(system, TreeSystem):
        return RProbeTree(system)
    if isinstance(system, HQS):
        return IRProbeHQS(system)
    return RandomScan(system)
