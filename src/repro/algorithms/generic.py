"""System-agnostic probing algorithms.

These algorithms work for *any* quorum system through the implicit
:class:`~repro.systems.base.QuorumSystem` interface and serve as baselines
for the system-specific algorithms of the paper:

* :class:`SequentialScan` — probe elements in a fixed order until the probed
  colors settle the witness.  On Majority this is the (asymptotically
  optimal) algorithm of Proposition 3.2.
* :class:`RandomScan` — probe elements in a uniformly random order.  On
  Majority this is Algorithm R_Probe_Maj of Theorem 4.2.
* :class:`CandidateQuorumProbe` — the classical universal strategy (in the
  spirit of the O(c²) algorithm of Peleg & Wool for c-uniform systems):
  repeatedly pick a quorum avoiding all known-red elements and probe its
  unknown members; a red discovery invalidates the candidate, completing it
  green finishes.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.algorithms.base import ProbeRun, ProbingAlgorithm
from repro.core.coloring import Color
from repro.core.oracle import ProbeOracle
from repro.core.witness import Witness
from repro.systems.base import QuorumSystem
from repro.systems.boolean import CharacteristicFunction


class SequentialScan(ProbingAlgorithm):
    """Probe elements in a fixed order until the witness is settled.

    The default order is ``1, 2, ..., n``; a custom order may be supplied.
    Termination uses the exact three-valued evaluation of the characteristic
    function, so the algorithm never probes more elements than necessary for
    the chosen order.
    """

    def __init__(self, system: QuorumSystem, order: Sequence[int] | None = None) -> None:
        super().__init__(system)
        if order is None:
            order = sorted(system.universe)
        if sorted(order) != sorted(system.universe):
            raise ValueError("order must be a permutation of the universe")
        self._order = list(order)
        self._f = CharacteristicFunction(system)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        return _scan(self, self._f, self._order, oracle)


class RandomScan(ProbingAlgorithm):
    """Probe elements in a uniformly random order until the witness settles."""

    randomized = True

    def __init__(self, system: QuorumSystem) -> None:
        super().__init__(system)
        self._f = CharacteristicFunction(system)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        rng = self._require_rng(rng)
        order = list(sorted(self._system.universe))
        rng.shuffle(order)
        return _scan(self, self._f, order, oracle)


def _scan(
    algorithm: ProbingAlgorithm,
    f: CharacteristicFunction,
    order: Sequence[int],
    oracle: ProbeOracle,
) -> ProbeRun:
    """Shared scan loop: probe in ``order`` until the knowledge settles."""
    green: set[int] = set()
    red: set[int] = set()
    probes = 0
    sequence: list[int] = []
    for element in order:
        color = oracle.probe(element)
        probes += 1
        sequence.append(element)
        (green if color is Color.GREEN else red).add(element)
        settled = f.witness_settled(frozenset(green), frozenset(red))
        if settled is not None:
            witness = _monochromatic_witness(algorithm.system, settled, green, red)
            return ProbeRun(witness, probes, tuple(sequence))
    raise RuntimeError("scanned the whole universe without settling a witness")


def _monochromatic_witness(
    system: QuorumSystem, color: Color, green: set[int], red: set[int]
) -> Witness:
    if color is Color.GREEN:
        quorum = system.find_quorum_within(frozenset(green))
        assert quorum is not None
        return Witness(Color.GREEN, quorum)
    return Witness(Color.RED, frozenset(red))


class CandidateQuorumProbe(ProbingAlgorithm):
    """Universal candidate-quorum strategy.

    Repeatedly select a quorum disjoint from all elements already known to be
    red (via ``find_quorum_within`` on the optimistic element set) and probe
    its not-yet-probed members.  If the candidate completes all green it is a
    live quorum; when no candidate exists the known-red elements form a
    transversal.  For ``c``-uniform systems each failed candidate contributes
    at least one new red element that every later candidate must avoid, which
    is the mechanism behind the O(c²) universal bound of Peleg & Wool.
    """

    def __init__(self, system: QuorumSystem) -> None:
        super().__init__(system)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        system = self._system
        green: set[int] = set()
        red: set[int] = set()
        probes = 0
        sequence: list[int] = []
        while True:
            optimistic = system.universe - frozenset(red)
            candidate = system.find_quorum_within(optimistic)
            if candidate is None:
                return ProbeRun(Witness(Color.RED, frozenset(red)), probes, tuple(sequence))
            failed = False
            for element in sorted(candidate):
                if element in green:
                    continue
                color = oracle.probe(element)
                probes += 1
                sequence.append(element)
                if color is Color.GREEN:
                    green.add(element)
                else:
                    red.add(element)
                    failed = True
                    break
            if not failed:
                return ProbeRun(
                    Witness(Color.GREEN, frozenset(candidate)), probes, tuple(sequence)
                )
