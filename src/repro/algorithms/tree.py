"""Probing algorithms for the binary Tree system (Sections 3.3 and 4.3).

* **Probe_Tree** (Proposition 3.6) works recursively: probe the root, find a
  witness for the right subtree; if its color matches the root, the union is
  a witness for the whole tree, otherwise a witness of the left subtree is
  found and combined with whichever of the root / right-subtree witness it
  matches.  Its expected probe count in the probabilistic model is
  ``O(n^{log2(1+p)})``, hence ``O(n^0.585)`` for every ``p``.
* **R_Probe_Tree** (Theorem 4.7) chooses uniformly among three evaluation
  orders at every node — (root, right) then left, (root, left) then right,
  or (left, right) then root — skipping the third component whenever the
  first two already determine a witness.  Its worst-case expected probe
  count is at most ``5n/6 + 1/6``.
"""

from __future__ import annotations

import random

from repro.algorithms.base import ProbeRun, ProbingAlgorithm
from repro.core.coloring import Color
from repro.core.oracle import ProbeOracle
from repro.core.witness import Witness
from repro.systems.tree import TreeSystem


class _TreeProbeState:
    """Bookkeeping shared by the recursive tree-probing procedures."""

    def __init__(self, oracle: ProbeOracle) -> None:
        self.oracle = oracle
        self.probes = 0
        self.sequence: list[int] = []

    def probe(self, element: int) -> Color:
        color = self.oracle.probe(element)
        self.probes += 1
        self.sequence.append(element)
        return color


class ProbeTree(ProbingAlgorithm):
    """Algorithm Probe_Tree: recursive right-then-left probing (Prop. 3.6)."""

    def __init__(self, system: TreeSystem) -> None:
        if not isinstance(system, TreeSystem):
            raise TypeError("ProbeTree requires a TreeSystem")
        super().__init__(system)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        state = _TreeProbeState(oracle)
        color, elements = self._witness(self._system.root, state)
        witness = Witness(color, frozenset(elements))
        return ProbeRun(witness, state.probes, tuple(state.sequence))

    def _witness(self, node: int, state: _TreeProbeState) -> tuple[Color, set[int]]:
        """Find a monochromatic quorum of the subtree rooted at ``node``."""
        system: TreeSystem = self._system
        if system.is_leaf(node):
            return state.probe(node), {node}
        left, right = system.children(node)
        root_color = state.probe(node)
        right_color, right_witness = self._witness(right, state)
        if right_color is root_color:
            return root_color, right_witness | {node}
        left_color, left_witness = self._witness(left, state)
        if left_color is root_color:
            return root_color, left_witness | {node}
        # left agrees with right (both differ from the root).
        return left_color, left_witness | right_witness


class RProbeTree(ProbingAlgorithm):
    """Algorithm R_Probe_Tree: random choice among three orders (Thm. 4.7)."""

    randomized = True

    def __init__(self, system: TreeSystem) -> None:
        if not isinstance(system, TreeSystem):
            raise TypeError("RProbeTree requires a TreeSystem")
        super().__init__(system)

    def run(self, oracle: ProbeOracle, rng: random.Random | None = None) -> ProbeRun:
        rng = self._require_rng(rng)
        state = _TreeProbeState(oracle)
        color, elements = self._witness(self._system.root, state, rng)
        witness = Witness(color, frozenset(elements))
        return ProbeRun(witness, state.probes, tuple(state.sequence))

    def _witness(
        self, node: int, state: _TreeProbeState, rng: random.Random
    ) -> tuple[Color, set[int]]:
        system: TreeSystem = self._system
        if system.is_leaf(node):
            return state.probe(node), {node}
        left, right = system.children(node)
        choice = rng.randrange(3)
        if choice == 0:
            return self._root_then_subtrees(node, right, left, state, rng)
        if choice == 1:
            return self._root_then_subtrees(node, left, right, state, rng)
        return self._subtrees_then_root(node, left, right, state, rng)

    def _root_then_subtrees(
        self,
        node: int,
        first: int,
        second: int,
        state: _TreeProbeState,
        rng: random.Random,
    ) -> tuple[Color, set[int]]:
        """Probe the root and the ``first`` subtree; only descend into the
        ``second`` subtree when they disagree."""
        root_color = state.probe(node)
        first_color, first_witness = self._witness(first, state, rng)
        if first_color is root_color:
            return root_color, first_witness | {node}
        second_color, second_witness = self._witness(second, state, rng)
        if second_color is root_color:
            return root_color, second_witness | {node}
        return second_color, second_witness | first_witness

    def _subtrees_then_root(
        self,
        node: int,
        left: int,
        right: int,
        state: _TreeProbeState,
        rng: random.Random,
    ) -> tuple[Color, set[int]]:
        """Probe both subtrees; only probe the root when they disagree."""
        left_color, left_witness = self._witness(left, state, rng)
        right_color, right_witness = self._witness(right, state, rng)
        if left_color is right_color:
            return left_color, left_witness | right_witness
        root_color = state.probe(node)
        if root_color is left_color:
            return root_color, left_witness | {node}
        return root_color, right_witness | {node}
