"""Grid-level sweep resume and per-cell recovery accounting.

The sweep checkpoints after every measured cell; resuming skips exactly
the cells already held (their seeds depended only on ``(size, p)``, so
the recorded cell *is* the cell) and re-runs the rest, byte-identically
to an uninterrupted sweep.  Checkpoints from a different run
configuration are refused loudly, and the loader rejects torn or foreign
files with messages naming the problem.
"""

from __future__ import annotations

import json

import pytest

from repro.core import engine
from repro.experiments import sweep as sweep_module
from repro.experiments.sweep import (
    SweepCheckpoint,
    load_sweep_artifact,
    load_sweep_checkpoint,
    render_sweep,
    resume_sweep,
    run_sweep,
    save_sweep_checkpoint,
    write_sweep_artifact,
)
from repro.testing import faults
from repro.testing.faults import Fault


@pytest.fixture(autouse=True)
def _fast_backoff(monkeypatch):
    monkeypatch.setattr(engine, "_sleep", lambda seconds: None)


GRID = dict(sizes=(2, 3), ps=(0.3, 0.5), trials=64, chunk_size=16, seed=9)


def _stats(result):
    """Per-cell statistics, excluding wall-clock and recovery fields."""
    return [
        (c.size, c.p, c.mean, c.std, c.ci95, c.trials, c.n_trials_used, c.status)
        for c in result.cells
    ]


def _counting_stream_probes(monkeypatch):
    calls = []
    real = sweep_module.stream_probes

    def counting(*args, **kwargs):
        calls.append(kwargs.get("seed"))
        return real(*args, **kwargs)

    monkeypatch.setattr(sweep_module, "stream_probes", counting)
    return calls


class TestResume:
    def test_resume_skips_completed_cells_and_matches_full_run(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.ckpt"
        full = run_sweep("tree", checkpoint_path=path, **GRID)
        state = load_sweep_checkpoint(path)
        assert state.complete and len(state.cells) == 4

        # Drop one measured cell: resuming must re-run that cell only.
        doctored = SweepCheckpoint(
            config=state.config, cells=state.cells[:-1], complete=False
        )
        save_sweep_checkpoint(path, doctored)
        calls = _counting_stream_probes(monkeypatch)
        resumed = resume_sweep(path)
        assert len(calls) == 1
        assert _stats(resumed) == _stats(full)

    def test_complete_checkpoint_resumes_without_running_anything(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.ckpt"
        full = run_sweep("tree", checkpoint_path=path, **GRID)
        calls = _counting_stream_probes(monkeypatch)
        resumed = resume_sweep(path)
        assert calls == []
        assert _stats(resumed) == _stats(full)

    def test_interrupt_mid_grid_resumes_byte_identically(self, tmp_path, monkeypatch):
        full = run_sweep("tree", **GRID)
        path = tmp_path / "sweep.ckpt"
        real = sweep_module.stream_probes
        calls = []

        def interrupting(*args, **kwargs):
            calls.append(None)
            if len(calls) == 3:
                raise KeyboardInterrupt("operator hit ctrl-C")
            return real(*args, **kwargs)

        monkeypatch.setattr(sweep_module, "stream_probes", interrupting)
        with pytest.raises(KeyboardInterrupt):
            run_sweep("tree", checkpoint_path=path, **GRID)
        monkeypatch.setattr(sweep_module, "stream_probes", real)

        state = load_sweep_checkpoint(path)
        assert not state.complete and len(state.cells) == 2
        resumed = resume_sweep(path)
        assert _stats(resumed) == _stats(full)
        # The two pre-interrupt cells came straight from the checkpoint,
        # wall-clock fields included.
        assert resumed.cells[0].seconds == state.cells[0].seconds

    def test_failed_cells_are_not_checkpointed_and_rerun_on_resume(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "sweep.ckpt"
        real = sweep_module.stream_probes
        calls = []

        def flaky(*args, **kwargs):
            calls.append(None)
            if len(calls) == 2:
                raise RuntimeError("transient infrastructure failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(sweep_module, "stream_probes", flaky)
        degraded = run_sweep("tree", checkpoint_path=path, **GRID)
        monkeypatch.setattr(sweep_module, "stream_probes", real)
        assert len(degraded.failed_cells) == 1

        # Only the three ok cells persist; resume re-measures the failure.
        state = load_sweep_checkpoint(path)
        assert len(state.cells) == 3
        resumed = resume_sweep(path)
        assert resumed.failed_cells == ()
        assert _stats(resumed) == _stats(run_sweep("tree", **GRID))

    def test_mismatched_config_is_refused_naming_the_difference(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        run_sweep("tree", checkpoint_path=path, **GRID)
        with pytest.raises(ValueError, match="different run.*seed"):
            run_sweep("tree", resume=path, **{**GRID, "seed": 10})
        with pytest.raises(ValueError, match="trials"):
            run_sweep("tree", resume=path, **{**GRID, "trials": 128})


class TestCheckpointLoader:
    def test_truncated_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        run_sweep("tree", checkpoint_path=path, **GRID)
        faults.truncate_file(path, 40)
        with pytest.raises(ValueError, match="sweep.ckpt"):
            load_sweep_checkpoint(path)

    def test_missing_config_field_rejected(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        run_sweep("tree", checkpoint_path=path, **GRID)
        faults.drop_json_field(path, "config")
        with pytest.raises(ValueError, match="config"):
            load_sweep_checkpoint(path)

    def test_foreign_kind_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "experiment", "schema": 1}))
        with pytest.raises(ValueError, match="kind"):
            load_sweep_checkpoint(path)


class TestRecoveryCounters:
    def test_faulted_cell_records_retries_and_artifact_round_trips(self, tmp_path):
        clean = run_sweep("tree", **GRID)
        with faults.active_plan([Fault("chunk", 16, "raise")], tmp_path / "plan"):
            bumpy = run_sweep("tree", **GRID)
        assert _stats(bumpy) == _stats(clean)
        assert sum(c.retries_used for c in bumpy.cells) == 1

        path = tmp_path / "sweep.json"
        write_sweep_artifact(bumpy, path)
        loaded = load_sweep_artifact(path)
        assert [c.retries_used for c in loaded.cells] == [
            c.retries_used for c in bumpy.cells
        ]

    def test_render_reports_recovery_only_when_bumpy(self, tmp_path):
        clean = run_sweep("tree", **GRID)
        assert "recovery:" not in render_sweep(clean)
        with faults.active_plan([Fault("chunk", 16, "raise")], tmp_path / "plan"):
            bumpy = run_sweep("tree", **GRID)
        assert "recovery: 1 chunk retries" in render_sweep(bumpy)

    def test_legacy_artifact_without_recovery_fields_loads_with_zeros(self, tmp_path):
        result = run_sweep("tree", **GRID)
        payload = result.to_dict()
        for cell in payload["cells"]:
            for key in ("retries_used", "pool_respawns", "worker_reassignments"):
                del cell[key]
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        loaded = load_sweep_artifact(path)
        assert all(c.retries_used == 0 for c in loaded.cells)
        assert _stats(loaded) == _stats(result)
