"""Graceful degradation of sweeps and experiment batches (ISSUE 6 d).

A poisoned cell or a failing experiment must not abort the grid: the
failure is recorded in the artifact (``status``/``error``) and every
other cell's statistics are byte-identical to a clean sub-grid run.
``fail_fast`` restores strict behavior; artifact writes are atomic and
loads fail with messages naming the file and field.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import (
    load_artifact,
    run_experiment,
    run_experiments,
    write_artifact,
)
from repro.experiments.sweep import (
    load_sweep_artifact,
    render_sweep,
    run_sweep,
    write_sweep_artifact,
)
from repro.testing.faults import drop_json_field, truncate_file

#: p > 1 makes BernoulliSource raise inside one cell — a natural poison
#: that leaves every other (size, p) cell untouched.
POISON_P = 1.5


class TestDegradedSweep:
    def test_poisoned_cell_does_not_abort_the_grid(self):
        result = run_sweep("tree", sizes=[2, 3], ps=[0.2, POISON_P], trials=32, seed=5)
        assert len(result.cells) == 4
        failed = result.failed_cells
        assert {(c.size, c.p) for c in failed} == {(2, POISON_P), (3, POISON_P)}
        for cell in failed:
            assert cell.status == "failed"
            assert "ValueError" in cell.error and "1.5" in cell.error
            assert cell.n_trials_used == 0

    def test_surviving_cells_match_a_clean_subgrid_run(self):
        from dataclasses import replace

        degraded = run_sweep(
            "tree", sizes=[2, 3], ps=[0.2, POISON_P], trials=32, seed=5
        )
        clean = run_sweep("tree", sizes=[2, 3], ps=[0.2], trials=32, seed=5)
        for size in (2, 3):
            survivor = replace(degraded.cell(size, 0.2), seconds=0.0)
            reference = replace(clean.cell(size, 0.2), seconds=0.0)
            assert survivor == reference  # wall clock aside, byte-identical

    def test_fail_fast_restores_strict_behavior(self):
        with pytest.raises(ValueError, match="failure probability"):
            run_sweep(
                "tree", sizes=[2], ps=[POISON_P], trials=8, seed=5, fail_fast=True
            )

    def test_unbuildable_size_fails_every_p_of_that_row(self):
        result = run_sweep(
            "majority", sizes=[-3, 9], ps=[0.2, 0.4], trials=8, seed=5
        )
        assert {(c.size, c.p) for c in result.failed_cells} == {
            (-3, 0.2),
            (-3, 0.4),
        }
        assert all(cell.status == "ok" for cell in result.cells if cell.size == 9)

    def test_degraded_artifact_round_trips(self, tmp_path):
        result = run_sweep("tree", sizes=[2], ps=[0.2, POISON_P], trials=16, seed=5)
        path = write_sweep_artifact(result, tmp_path / "sweep.json")
        loaded = load_sweep_artifact(path)
        assert loaded == result
        assert len(loaded.failed_cells) == 1

    def test_render_marks_failed_cells(self):
        result = run_sweep("tree", sizes=[2], ps=[0.2, POISON_P], trials=16, seed=5)
        text = render_sweep(result)
        assert "FAILED" in text
        assert "ValueError" in text


class TestDegradedRunner:
    def test_failing_experiment_is_recorded_not_raised(self):
        # An unregistered distribution fails inside the driver, at runtime.
        results = run_experiments(
            ["maj3", "sweep-tree"],
            overrides={"distribution": "no-such-source", "trials": 8},
        )
        by_id = {result.spec_id: result for result in results}
        assert by_id["maj3"].status == "ok"
        failed = by_id["sweep-tree"]
        assert failed.status == "failed"
        assert "no-such-source" in failed.error
        assert failed.rows == ()

    def test_fail_fast_reraises_the_driver_error(self):
        with pytest.raises(ValueError, match="no-such-source"):
            run_experiments(
                ["sweep-tree"],
                overrides={"distribution": "no-such-source", "trials": 8},
                fail_fast=True,
            )

    def test_bad_parameter_values_raise_up_front_even_degraded(self):
        with pytest.raises(ValueError):
            run_experiments(["sweep-tree"], overrides={"trials": "abc"})

    def test_failed_result_round_trips_through_artifact(self, tmp_path):
        (result,) = run_experiments(
            ["sweep-tree"], overrides={"distribution": "no-such-source", "trials": 8}
        )
        path = write_artifact(result, tmp_path / "failed.json")
        loaded = load_artifact(path)
        assert loaded.status == "failed"
        assert loaded.error == result.error


class TestArtifactRobustness:
    def test_artifact_write_is_atomic(self, tmp_path):
        result = run_experiment("maj3")
        path = write_artifact(result, tmp_path / "maj3.json")
        assert [p.name for p in tmp_path.iterdir()] == ["maj3.json"]
        assert json.loads(path.read_text())["id"] == "maj3"

    def test_truncated_artifact_names_the_file(self, tmp_path):
        path = write_artifact(run_experiment("maj3"), tmp_path / "maj3.json")
        truncate_file(path, 25)
        with pytest.raises(ValueError, match="maj3.json.*truncated or corrupt"):
            load_artifact(path)

    def test_missing_field_names_file_and_field(self, tmp_path):
        path = write_artifact(run_experiment("maj3"), tmp_path / "maj3.json")
        drop_json_field(path, "id")
        with pytest.raises(ValueError, match=r"maj3.json.*'id'"):
            load_artifact(path)

    def test_newer_schema_version_is_rejected(self, tmp_path):
        path = write_artifact(run_experiment("maj3"), tmp_path / "maj3.json")
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="999"):
            load_artifact(path)

    def test_wrong_kind_is_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"kind": "p_sweep"}')
        with pytest.raises(ValueError, match="expected kind 'experiment'"):
            load_artifact(path)

    def test_truncated_sweep_artifact_is_a_clear_error(self, tmp_path):
        result = run_sweep("tree", sizes=[2], ps=[0.2], trials=8, seed=5)
        path = write_sweep_artifact(result, tmp_path / "sweep.json")
        truncate_file(path, 30)
        with pytest.raises(ValueError, match="sweep.json.*truncated or corrupt"):
            load_sweep_artifact(path)

    def test_sweep_missing_field_names_file_and_field(self, tmp_path):
        result = run_sweep("tree", sizes=[2], ps=[0.2], trials=8, seed=5)
        path = write_sweep_artifact(result, tmp_path / "sweep.json")
        drop_json_field(path, "cells")
        with pytest.raises(ValueError, match=r"sweep.json.*'cells'"):
            load_sweep_artifact(path)
