"""Tests for the batched ``(p, n)`` sweep runner and its JSON artifact."""

from __future__ import annotations

import json

import pytest

from repro.experiments.sweep import (
    load_sweep_artifact,
    render_sweep,
    run_sweep,
    write_sweep_artifact,
)


class TestRunSweep:
    def test_grid_shape_and_cell_lookup(self):
        result = run_sweep("tree", sizes=(3, 5), ps=(0.3, 0.5), trials=300, seed=1)
        assert len(result.cells) == 4
        assert result.algorithm == "ProbeTree"
        cell = result.cell(5, 0.5)
        assert cell.n == 63 and cell.trials == 300 and cell.batched_kernel
        with pytest.raises(KeyError):
            result.cell(4, 0.5)

    def test_means_grow_with_size_and_p(self):
        result = run_sweep("hqs", sizes=(2, 4), ps=(0.25, 0.5), trials=600, seed=2)
        assert result.cell(4, 0.5).mean > result.cell(2, 0.5).mean
        assert result.cell(4, 0.5).mean > result.cell(4, 0.25).mean

    def test_per_cell_streams_are_deterministic_and_independent(self):
        full = run_sweep("tree", sizes=(3, 5), ps=(0.3, 0.5), trials=400, seed=3)
        again = run_sweep("tree", sizes=(3, 5), ps=(0.3, 0.5), trials=400, seed=3)
        assert [c.mean for c in full.cells] == [c.mean for c in again.cells]
        # Any sub-grid — prefix or not — reproduces its cells: streams are
        # keyed by the cell's (size, p) values, not by grid position.
        sub = run_sweep("tree", sizes=(5,), ps=(0.5,), trials=400, seed=3)
        assert sub.cell(5, 0.5).mean == full.cell(5, 0.5).mean
        prefix = run_sweep("tree", sizes=(3,), ps=(0.3, 0.5), trials=400, seed=3)
        assert prefix.cell(3, 0.3).mean == full.cell(3, 0.3).mean
        assert prefix.cell(3, 0.5).mean == full.cell(3, 0.5).mean

    def test_negative_seed_accepted(self):
        # random.Random accepts negative seeds, so the sweep path must too.
        result = run_sweep("tree", sizes=(3,), ps=(0.5,), trials=100, seed=-1)
        again = run_sweep("tree", sizes=(3,), ps=(0.5,), trials=100, seed=-1)
        assert result.cell(3, 0.5).mean == again.cell(3, 0.5).mean

    def test_randomized_flag_selects_randomized_algorithm(self):
        result = run_sweep("tree", sizes=(3,), ps=(0.5,), trials=200, seed=4, randomized=True)
        assert result.algorithm == "RProbeTree"
        assert result.randomized

    def test_fallback_for_systems_without_kernel(self):
        result = run_sweep("wheel", sizes=(6,), ps=(0.5,), trials=50, seed=5)
        assert not result.cells[0].batched_kernel
        assert result.cells[0].mean > 0

    def test_rejects_empty_grid_and_zero_trials(self):
        with pytest.raises(ValueError):
            run_sweep("tree", sizes=(), ps=(0.5,))
        with pytest.raises(ValueError):
            run_sweep("tree", sizes=(3,), ps=(0.5,), trials=0)


class TestSweepArtifact:
    def test_round_trip(self, tmp_path):
        result = run_sweep("hqs", sizes=(1, 2), ps=(0.5,), trials=200, seed=6)
        path = write_sweep_artifact(result, tmp_path / "sweep.json")
        payload = json.loads(path.read_text())
        assert payload["kind"] == "p_sweep"
        assert "created" in payload
        loaded = load_sweep_artifact(path)
        assert loaded == result

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "bench"}))
        with pytest.raises(ValueError):
            load_sweep_artifact(path)

    def test_render_mentions_every_size(self):
        result = run_sweep("tree", sizes=(3, 4), ps=(0.5,), trials=200, seed=7)
        text = render_sweep(result)
        assert "Tree(h=3)" in text and "Tree(h=4)" in text
        assert "vectorized kernel" in text


class TestSweepCLI:
    def test_cli_sweep_writes_artifact(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "cli_sweep.json"
        code = main(
            [
                "sweep",
                "--system",
                "hqs",
                "--sizes",
                "1,2",
                "--ps",
                "0.3,0.5",
                "--trials",
                "150",
                "--seed",
                "9",
                "--output",
                str(output),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "HQS(h=2)" in out and str(output) in out
        loaded = load_sweep_artifact(output)
        assert len(loaded.cells) == 4


class TestSweepDistributions:
    def test_non_iid_sweep_runs_batched(self):
        result = run_sweep(
            "tree",
            sizes=(3, 4),
            ps=(0.3, 0.5),
            trials=200,
            seed=6,
            distribution="fixed_count",
        )
        assert result.distribution == "fixed_count"
        assert all(cell.batched_kernel for cell in result.cells)
        # fixed_count at higher p fails more nodes -> more probes on Tree.
        assert result.cell(4, 0.5).mean > result.cell(4, 0.3).mean

    def test_hard_family_sweep_ignores_p_axis(self):
        result = run_sweep(
            "tree", sizes=(3,), ps=(0.2, 0.5), trials=300, seed=7,
            distribution="tree_hard",
        )
        low, high = result.cell(3, 0.2), result.cell(3, 0.5)
        # The Thm 4.8 distribution has no p knob: both cells draw the same
        # family (different streams), so the means must agree statistically.
        assert abs(low.mean - high.mean) < low.ci95 + high.ci95 + 0.5

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="coloring source"):
            run_sweep("tree", sizes=(3,), ps=(0.5,), trials=50, distribution="nope")

    def test_artifact_roundtrip_preserves_distribution(self, tmp_path):
        result = run_sweep(
            "hqs", sizes=(2,), ps=(0.5,), trials=100, seed=8,
            distribution="hqs_family_p",
        )
        path = write_sweep_artifact(result, tmp_path / "sweep.json")
        loaded = load_sweep_artifact(path)
        assert loaded == result
        assert loaded.distribution == "hqs_family_p"

    def test_legacy_artifact_without_distribution_field_loads(self, tmp_path):
        result = run_sweep("tree", sizes=(3,), ps=(0.5,), trials=50, seed=9)
        path = write_sweep_artifact(result, tmp_path / "legacy.json")
        payload = json.loads(path.read_text())
        del payload["distribution"]
        path.write_text(json.dumps(payload))
        loaded = load_sweep_artifact(path)
        assert loaded.distribution == "bernoulli"
        assert loaded.cells == result.cells

    def test_bernoulli_sweep_unchanged_by_distribution_layer(self):
        # The default distribution reproduces the historical stream.
        explicit = run_sweep(
            "tree", sizes=(3,), ps=(0.5,), trials=200, seed=3,
            distribution="bernoulli",
        )
        default = run_sweep("tree", sizes=(3,), ps=(0.5,), trials=200, seed=3)
        assert explicit.cell(3, 0.5).mean == default.cell(3, 0.5).mean

    def test_alias_normalizes_to_canonical_name(self):
        # "iid" is the bernoulli alias: same stream, canonical artifact name.
        aliased = run_sweep(
            "tree", sizes=(3,), ps=(0.5,), trials=200, seed=3, distribution="iid"
        )
        default = run_sweep("tree", sizes=(3,), ps=(0.5,), trials=200, seed=3)
        assert aliased.distribution == "bernoulli"
        assert aliased.cell(3, 0.5).mean == default.cell(3, 0.5).mean


class TestSweepStreaming:
    def test_cells_record_n_trials_used(self):
        result = run_sweep("tree", sizes=(3,), ps=(0.5,), trials=200, seed=1)
        cell = result.cell(3, 0.5)
        assert cell.n_trials_used == cell.trials == 200
        assert result.target_ci is None

    def test_target_ci_mode_stops_adaptively(self):
        result = run_sweep(
            "tree", sizes=(3, 5), ps=(0.5,), seed=2,
            target_ci=0.5, chunk_size=128, max_trials=100_000,
        )
        assert result.target_ci == 0.5
        for cell in result.cells:
            assert cell.ci95 <= 0.5
            assert cell.n_trials_used % 128 == 0
        # The larger tree has higher variance: it needs at least as many
        # trials to hit the same tolerance.
        assert (
            result.cell(5, 0.5).n_trials_used >= result.cell(3, 0.5).n_trials_used
        )

    def test_explicit_trials_with_target_ci_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            run_sweep("tree", sizes=(3,), ps=(0.5,), trials=100, target_ci=0.5)

    def test_adaptive_cells_record_consistent_counts(self):
        result = run_sweep(
            "tree", sizes=(3,), ps=(0.5,), seed=2, target_ci=0.5, chunk_size=128
        )
        cell = result.cell(3, 0.5)
        # No count was requested: the cell's trials IS the evaluated count.
        assert cell.trials == cell.n_trials_used > 0
        assert result.trials == 0

    def test_jobs_byte_identical_to_sequential(self):
        sequential = run_sweep(
            "hqs", sizes=(2, 3), ps=(0.5,), trials=256, seed=3, chunk_size=64
        )
        sharded = run_sweep(
            "hqs", sizes=(2, 3), ps=(0.5,), trials=256, seed=3, chunk_size=64, jobs=2
        )
        assert [c.mean for c in sequential.cells] == [c.mean for c in sharded.cells]
        assert [c.std for c in sequential.cells] == [c.std for c in sharded.cells]

    def test_chunking_does_not_change_deterministic_cells(self):
        one_shot = run_sweep("tree", sizes=(4,), ps=(0.3,), trials=300, seed=4)
        chunked = run_sweep(
            "tree", sizes=(4,), ps=(0.3,), trials=300, seed=4, chunk_size=37
        )
        assert one_shot.cell(4, 0.3).mean == chunked.cell(4, 0.3).mean

    def test_artifact_round_trip_with_engine_fields(self, tmp_path):
        result = run_sweep(
            "tree", sizes=(3,), ps=(0.5,), seed=5,
            target_ci=0.6, chunk_size=128, max_trials=50_000,
        )
        path = write_sweep_artifact(result, tmp_path / "adaptive.json")
        loaded = load_sweep_artifact(path)
        assert loaded == result
        assert loaded.target_ci == 0.6
        assert loaded.cells[0].n_trials_used == result.cells[0].n_trials_used

    def test_legacy_artifact_without_engine_fields_loads(self, tmp_path):
        result = run_sweep("tree", sizes=(3,), ps=(0.5,), trials=50, seed=9)
        path = write_sweep_artifact(result, tmp_path / "legacy.json")
        payload = json.loads(path.read_text())
        del payload["target_ci"]
        for cell in payload["cells"]:
            del cell["n_trials_used"]
        path.write_text(json.dumps(payload))
        loaded = load_sweep_artifact(path)
        assert loaded.target_ci is None
        assert loaded.cells[0].n_trials_used == loaded.cells[0].trials == 50

    def test_render_mentions_adaptive_budget(self):
        result = run_sweep(
            "tree", sizes=(3,), ps=(0.5,), seed=6, target_ci=0.7, chunk_size=128
        )
        text = render_sweep(result)
        assert "target ci95 0.7" in text
        assert "adaptive stopping used" in text
