"""Tests for the Markdown report writer."""

from __future__ import annotations

from repro.experiments.report import Row, violations
from repro.experiments.writer import (
    artifact_to_markdown,
    artifacts_to_markdown,
    build_markdown_report,
    rows_to_markdown,
    run_result_to_markdown,
    write_markdown_report,
)


class TestViolations:
    def test_empty_for_no_rows(self):
        assert violations([]) == []

    def test_flags_only_broken_relations(self):
        ok_row = Row("e", "s", "ok", measured=9.0, paper=10.0, relation="<=")
        bad_row = Row("e", "s", "bad", measured=12.0, paper=10.0, relation="<=")
        shape_row = Row("e", "s", "shape", measured=12.0, paper=10.0, relation="~")
        unchecked = Row("e", "s", "unchecked", measured=12.0, paper=None)
        assert violations([ok_row, bad_row, shape_row, unchecked]) == [bad_row]

    def test_tolerance_excuses_boundary_noise(self):
        tight = Row("e", "s", "q", measured=10.5, paper=10.0, relation="<=")
        slack = Row("e", "s", "q", measured=10.5, paper=10.0, relation="<=", tolerance=0.6)
        assert violations([tight]) == [tight]
        assert violations([slack]) == []

    def test_equality_relation_both_directions(self):
        low = Row("e", "s", "q", measured=8.0, paper=10.0, relation="==")
        high = Row("e", "s", "q", measured=12.0, paper=10.0, relation="==")
        close = Row("e", "s", "q", measured=10.1, paper=10.0, relation="==")
        assert violations([low, high, close]) == [low, high]


class TestRowsToMarkdown:
    def test_table_structure(self):
        rows = [
            Row("table1", "Maj", "avg probes", measured=9.5, paper=10.0, relation="<=",
                params={"n": 11}),
            Row("table1", "Maj", "shape only", measured=3.0, paper=None),
        ]
        text = rows_to_markdown(rows, "My section")
        assert text.startswith("## My section")
        assert "| experiment | system |" in text
        assert "| table1 | Maj | n=11 | avg probes | 9.5 | <= | 10 | yes |" in text
        assert "All 1 checked relations hold (2 rows total)." in text

    def test_violations_are_flagged(self):
        rows = [
            Row("e", "s", "bad", measured=12.0, paper=10.0, relation="<="),
        ]
        text = rows_to_markdown(rows, "Broken")
        assert "**NO**" in text
        assert "1 of 1 checked relations violated" in text

    def test_pipe_characters_escaped_in_quantity(self):
        rows = [Row("e", "s", "a|b", measured=1.0)]
        assert "a/b" in rows_to_markdown(rows, "t")


class TestArtifactRendering:
    def test_run_result_section_includes_extra_lines(self):
        from repro.experiments.runner import run_experiment

        result = run_experiment("tree", {"trials": 15})
        section = run_result_to_markdown(result)
        assert section.startswith(f"## {result.title}")
        assert "fitted exponent" in section

    def test_artifact_to_markdown_matches_live_rendering(self, tmp_path):
        from repro.experiments.runner import run_experiment, write_artifact

        result = run_experiment("lemmas", {"trials": 40})
        path = write_artifact(result, tmp_path / "lemmas.json")
        assert artifact_to_markdown(path) == run_result_to_markdown(result)

    def test_artifacts_to_markdown_document(self, tmp_path):
        from repro.experiments.runner import run_experiments, write_artifacts

        paths = write_artifacts(
            run_experiments(["maj3", "lemmas"], {"trials": 40}), tmp_path
        )
        text = artifacts_to_markdown(sorted(paths))
        assert text.startswith("# Probe-complexity reproduction report")
        assert "Maj3 worked example" in text and "Technical lemmas" in text


class TestFullReport:
    def test_quick_report_contains_key_sections(self):
        text = build_markdown_report(trials=120, include_slow=False)
        assert "# Probe-complexity reproduction report" in text
        assert "Maj3 worked example" in text
        assert "Theorem 3.3" in text
        assert "Technical lemmas" in text
        assert "**NO**" not in text  # no violated relations in the quick run

    def test_write_to_disk(self, tmp_path):
        destination = write_markdown_report(
            tmp_path / "report.md", trials=120, include_slow=False
        )
        content = destination.read_text()
        assert destination.exists()
        assert content.startswith("# Probe-complexity reproduction report")
