"""Tests for the Markdown report writer."""

from __future__ import annotations

from repro.experiments.report import Row
from repro.experiments.writer import (
    build_markdown_report,
    rows_to_markdown,
    write_markdown_report,
)


class TestRowsToMarkdown:
    def test_table_structure(self):
        rows = [
            Row("table1", "Maj", "avg probes", measured=9.5, paper=10.0, relation="<=",
                params={"n": 11}),
            Row("table1", "Maj", "shape only", measured=3.0, paper=None),
        ]
        text = rows_to_markdown(rows, "My section")
        assert text.startswith("## My section")
        assert "| experiment | system |" in text
        assert "| table1 | Maj | n=11 | avg probes | 9.5 | <= | 10 | yes |" in text
        assert "All 1 checked relations hold (2 rows total)." in text

    def test_violations_are_flagged(self):
        rows = [
            Row("e", "s", "bad", measured=12.0, paper=10.0, relation="<="),
        ]
        text = rows_to_markdown(rows, "Broken")
        assert "**NO**" in text
        assert "1 of 1 checked relations violated" in text

    def test_pipe_characters_escaped_in_quantity(self):
        rows = [Row("e", "s", "a|b", measured=1.0)]
        assert "a/b" in rows_to_markdown(rows, "t")


class TestFullReport:
    def test_quick_report_contains_key_sections(self):
        text = build_markdown_report(trials=120, include_slow=False)
        assert "# Probe-complexity reproduction report" in text
        assert "Maj3 worked example" in text
        assert "Theorem 3.3" in text
        assert "Technical lemmas" in text
        assert "**NO**" not in text  # no violated relations in the quick run

    def test_write_to_disk(self, tmp_path):
        destination = write_markdown_report(
            tmp_path / "report.md", trials=120, include_slow=False
        )
        content = destination.read_text()
        assert destination.exists()
        assert content.startswith("# Probe-complexity reproduction report")
