"""Tests for the reporting helpers and figure renderings."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    render_all_figures,
    render_crumbling_wall,
    render_hqs,
    render_tree,
)
from repro.experiments.report import Row, render_table, violations
from repro.systems import HQS, TreeSystem, TriangSystem


class TestRow:
    def test_relation_satisfaction(self):
        assert Row("e", "s", "q", measured=5.0, paper=6.0, relation="<=").satisfied
        assert not Row("e", "s", "q", measured=7.0, paper=6.0, relation="<=").satisfied
        assert Row("e", "s", "q", measured=7.0, paper=6.0, relation=">=").satisfied
        assert Row("e", "s", "q", measured=6.05, paper=6.0, relation="==").satisfied
        assert Row("e", "s", "q", measured=9.0, paper=6.0, relation="~").satisfied is None
        assert Row("e", "s", "q", measured=9.0, paper=None).satisfied is None

    def test_tolerance_is_relative(self):
        # 2% slack on the paper value.
        assert Row("e", "s", "q", measured=102.0, paper=101.0, relation="<=").satisfied
        assert not Row("e", "s", "q", measured=110.0, paper=101.0, relation="<=").satisfied

    def test_explicit_statistical_tolerance(self):
        # Monte-Carlo drivers may add their CI half-width as extra slack.
        tight = Row("e", "s", "q", measured=20.0, paper=19.0, relation="<=")
        slack = Row("e", "s", "q", measured=20.0, paper=19.0, relation="<=", tolerance=1.0)
        assert not tight.satisfied
        assert slack.satisfied

    def test_params_formatting(self):
        row = Row("e", "s", "q", measured=1.0, params={"n": 9, "p": 0.5})
        assert row.formatted_params() == "n=9, p=0.5"


class TestRenderTable:
    def test_contains_headers_and_values(self):
        rows = [
            Row("exp", "Maj", "probes", measured=3.14159, paper=3.0, relation="<=",
                params={"n": 9}),
        ]
        text = render_table(rows, title="My Table")
        assert "My Table" in text
        assert "exp" in text and "Maj" in text and "n=9" in text
        assert "3.142" in text and "NO" in text

    def test_violations_filter(self):
        rows = [
            Row("e", "s", "ok", measured=1.0, paper=2.0, relation="<="),
            Row("e", "s", "bad", measured=3.0, paper=2.0, relation="<="),
            Row("e", "s", "shape", measured=3.0, paper=2.0, relation="~"),
        ]
        assert [r.quantity for r in violations(rows)] == ["bad"]

    def test_empty_rows_render(self):
        assert "experiment" in render_table([])


class TestFigureRendering:
    def test_triang_figure_marks_a_quorum(self):
        triang = TriangSystem(4)
        text = render_crumbling_wall(triang)
        assert "row  1" in text and "row  4" in text
        assert text.count("[") >= 4  # at least the quorum elements bracketed

    def test_tree_figure_levels(self):
        text = render_tree(TreeSystem(2))
        assert "level 0" in text and "level 2" in text

    def test_hqs_figure_gate_rows(self):
        text = render_hqs(HQS(2))
        assert "gates at depth 1" in text
        assert "[*]" in text

    def test_explicit_quorum_is_respected(self):
        triang = TriangSystem(3)
        quorum = next(iter(triang.quorums()))
        text = render_crumbling_wall(triang, quorum)
        for element in quorum:
            assert f"[{element:>2}]" in text

    def test_foreign_quorum_rejected(self):
        with pytest.raises(ValueError):
            render_tree(TreeSystem(1), frozenset({99}))

    def test_render_all_figures_mentions_each_system(self):
        text = render_all_figures()
        assert "Figure 1" in text and "Figure 2" in text and "Figure 3" in text
        assert "Triang" in text and "Tree" in text and "HQS" in text
