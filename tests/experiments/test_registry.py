"""Tests for the experiment registry and the unified runner.

Covers the declarative layer introduced by the scenario-registry refactor:
spec lookup and parameter resolution, every registered spec running at tiny
trial counts, registry-vs-direct-driver row parity, artifact round trips
and ``jobs``-parallel determinism.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.registry import (
    DriverResult,
    ExperimentSpec,
    ParamSpec,
    all_specs,
    all_tags,
    experiment_ids,
    get_spec,
    parse_param_value,
    specs_for_tag,
)
from repro.experiments.runner import (
    ARTIFACT_SCHEMA_VERSION,
    load_artifact,
    run_experiment,
    run_experiments,
    write_artifact,
    write_artifacts,
)
from repro.experiments.seeding import cell_generator, cell_seed

#: Former hard-wired CLI ids that must all be registered.
LEGACY_EXPERIMENT_IDS = (
    "maj3",
    "majority",
    "crumbling-walls",
    "tree",
    "hqs",
    "randomized",
    "lemmas",
    "availability",
    "ablations",
)

#: Shared tiny-override set; specs ignore undeclared names (strict=False).
TINY = {"trials": 15, "sizes": (2, 3), "ps": (0.5,), "heights": (2, 3)}


class TestRegistry:
    def test_legacy_ids_all_registered(self):
        ids = experiment_ids()
        for experiment_id in LEGACY_EXPERIMENT_IDS:
            assert experiment_id in ids
        assert "table1" in ids
        assert "sweep-tree" in ids and "sweep-hqs" in ids

    def test_get_spec_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_spec("nope")

    def test_specs_sorted_and_tagged(self):
        specs = all_specs()
        assert [spec.id for spec in specs] == sorted(spec.id for spec in specs)
        assert {spec.id for spec in specs_for_tag("scaling")} >= {"tree", "hqs"}
        assert "scaling" in all_tags()

    def test_resolve_params_defaults_and_overrides(self):
        spec = get_spec("lemmas")
        assert spec.resolve_params()["trials"] == 800
        assert spec.resolve_params({"trials": 50})["trials"] == 50
        # CLI-style string values are coerced by declared kind.
        assert spec.resolve_params({"trials": "50"})["trials"] == 50
        with pytest.raises(KeyError):
            spec.resolve_params({"bogus": 1})
        assert "bogus" not in spec.resolve_params({"bogus": 1}, strict=False)

    def test_parse_param_value_kinds(self):
        assert parse_param_value(ParamSpec("t", "int", 0), "7") == 7
        assert parse_param_value(ParamSpec("p", "float", 0.0), "0.25") == 0.25
        assert parse_param_value(ParamSpec("s", "int_list", ()), "3,5,7") == (3, 5, 7)
        assert parse_param_value(ParamSpec("q", "float_list", ()), "0.1,0.5") == (0.1, 0.5)
        assert parse_param_value(ParamSpec("r", "bool", False), "true") is True
        with pytest.raises(ValueError):
            parse_param_value(ParamSpec("r", "bool", False), "maybe")

    def test_param_spec_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ParamSpec("x", "complex", 0)

    def test_driver_result_normalizes_to_tuples(self):
        result = DriverResult(rows=[], extra=["a"])
        assert result.rows == () and result.extra == ("a",)


@pytest.mark.parametrize("experiment_id", sorted(set(experiment_ids())))
def test_every_registered_spec_runs_tiny(experiment_id):
    result = run_experiment(experiment_id, TINY, strict=False)
    assert result.spec_id == experiment_id
    assert result.rows, f"{experiment_id} produced no rows"
    assert result.environment["python"]
    # Deterministic re-run: same params, same rows.
    again = run_experiment(experiment_id, TINY, strict=False)
    assert again.rows == result.rows


class TestRegistryDriverParity:
    def test_majority_rows_match_direct_driver_call(self):
        from repro.experiments.majority import run_probabilistic_majority

        via_registry = run_experiment("majority", {"trials": 40, "seed": 9})
        direct = run_probabilistic_majority(trials=40, seed=9)
        assert list(via_registry.rows) == direct

    def test_lemmas_rows_match_direct_driver_call(self):
        from repro.experiments.lemmas import run_urn_experiment, run_walk_experiment

        via_registry = run_experiment("lemmas", {"trials": 60, "seed": 3})
        direct = run_walk_experiment(trials=60, seed=3) + run_urn_experiment(trials=60, seed=3)
        assert list(via_registry.rows) == direct

    def test_default_seed_matches_driver_historic_default(self):
        from repro.experiments.lemmas import run_urn_experiment, run_walk_experiment

        via_registry = run_experiment("lemmas", {"trials": 60})
        direct = run_walk_experiment(trials=60) + run_urn_experiment(trials=60)
        assert list(via_registry.rows) == direct


class TestRunner:
    def test_parallel_matches_sequential(self):
        ids = ["maj3", "lemmas", "availability"]
        sequential = run_experiments(ids, TINY, jobs=1)
        parallel = run_experiments(ids, TINY, jobs=2)
        assert [r.spec_id for r in parallel] == ids
        for seq, par in zip(sequential, parallel):
            assert seq.rows == par.rows
            assert seq.params == par.params

    def test_parallel_artifacts_byte_identical(self, tmp_path):
        ids = ["maj3", "lemmas"]
        seq_dir, par_dir = tmp_path / "seq", tmp_path / "par"
        write_artifacts(run_experiments(ids, TINY, jobs=1), seq_dir)
        write_artifacts(run_experiments(ids, TINY, jobs=2), par_dir)
        for experiment_id in ids:
            seq_bytes = (seq_dir / f"{experiment_id}.json").read_bytes()
            par_bytes = (par_dir / f"{experiment_id}.json").read_bytes()
            assert seq_bytes == par_bytes

    def test_unknown_id_fails_fast(self):
        with pytest.raises(KeyError):
            run_experiments(["maj3", "nope"], jobs=2)

    def test_artifact_round_trip(self, tmp_path):
        result = run_experiment("tree", {"trials": 15}, strict=False)
        path = write_artifact(result, tmp_path / "tree.json")
        payload = json.loads(path.read_text())
        assert payload["kind"] == "experiment" and payload["id"] == "tree"
        assert payload["schema"] == ARTIFACT_SCHEMA_VERSION
        assert isinstance(payload["violations"], int)
        loaded = load_artifact(path)
        assert loaded.rows == result.rows
        assert loaded.params == result.params
        assert loaded.extra == result.extra

    def test_artifact_round_trip_preserves_markdown(self, tmp_path):
        from repro.experiments.writer import rows_to_markdown

        result = run_experiment("tree", {"trials": 15}, strict=False)
        path = write_artifact(result, tmp_path / "tree.json")
        loaded = load_artifact(path)
        assert rows_to_markdown(loaded.rows, result.title) == rows_to_markdown(
            result.rows, result.title
        )

    def test_load_rejects_foreign_artifact(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"kind": "p_sweep"}))
        with pytest.raises(ValueError):
            load_artifact(path)

    def test_custom_spec_registration_and_run(self):
        from repro.experiments import registry
        from repro.experiments.report import Row

        spec = ExperimentSpec(
            id="__test-custom",
            title="custom",
            driver=lambda trials: DriverResult(
                rows=[Row("custom", "s", "q", measured=float(trials))]
            ),
            params=(ParamSpec("trials", "int", 3),),
            tags=("test",),
        )
        registry.register(spec)
        try:
            result = run_experiment("__test-custom", {"trials": 5})
            assert result.rows[0].measured == 5.0
            with pytest.raises(ValueError):
                registry.register(spec)
        finally:
            registry._REGISTRY.pop("__test-custom", None)


class TestSeeding:
    def test_cell_seed_deterministic_and_distinct(self):
        assert cell_seed(1, 10, 0.5) == cell_seed(1, 10, 0.5)
        assert cell_seed(1, 10, 0.5) != cell_seed(1, 10, 0.3)
        assert cell_seed(1, 10, 0.5) != cell_seed(2, 10, 0.5)
        assert cell_seed(1, "a") != cell_seed(1, "b")

    def test_cell_seed_none_passthrough(self):
        assert cell_seed(None, 10, 0.5) is None

    def test_negative_seed_accepted(self):
        assert cell_seed(-1, 3, 0.5) == cell_seed(-1, 3, 0.5)

    def test_cell_generator_matches_sweep_streams(self):
        first = cell_generator(3, 5, 0.5).random(4)
        second = cell_generator(3, 5, 0.5).random(4)
        assert (first == second).all()

    def test_rejects_unhashable_key_types(self):
        with pytest.raises(TypeError):
            cell_seed(1, object())

    def test_majority_cells_are_grid_independent(self):
        from repro.experiments.majority import run_probabilistic_majority

        full = run_probabilistic_majority(sizes=(11, 25), ps=(0.5, 0.3), trials=50, seed=1)
        single = run_probabilistic_majority(sizes=(25,), ps=(0.3,), trials=50, seed=1)
        full_cell = [r for r in full if r.params["n"] == 25 and r.params["p"] == 0.3]
        assert full_cell[0].measured == single[0].measured


class TestRecoveryAccounting:
    """``run_experiment`` sums engine recovery counters into the artifact."""

    def test_collect_recovery_sums_engine_runs(self, tmp_path, monkeypatch):
        from repro.algorithms import ProbeTree
        from repro.core import engine
        from repro.core.engine import collect_recovery, stream_probes
        from repro.systems import build_system
        from repro.testing import faults
        from repro.testing.faults import ANY_KEY, Fault

        monkeypatch.setattr(engine, "_sleep", lambda seconds: None)
        algorithm = ProbeTree(build_system("tree", 2))
        with faults.active_plan([Fault("chunk", ANY_KEY, "raise")], tmp_path):
            with collect_recovery() as totals:
                stream_probes(algorithm, p=0.2, trials=64, chunk_size=16, seed=7)
                stream_probes(algorithm, p=0.3, trials=64, chunk_size=16, seed=8)
        assert totals["retries_used"] == 1  # once-only fault, summed once
        assert set(totals) == {
            "retries_used",
            "pool_respawns",
            "worker_reassignments",
        }

    def test_run_experiment_records_recovery_in_artifact(self, tmp_path, monkeypatch):
        from repro.core import engine
        from repro.testing import faults
        from repro.testing.faults import ANY_KEY, Fault

        monkeypatch.setattr(engine, "_sleep", lambda seconds: None)
        with faults.active_plan([Fault("chunk", ANY_KEY, "raise")], tmp_path):
            result = run_experiment("tree", TINY, strict=False)
        assert result.recovery["retries_used"] >= 1
        path = write_artifact(result, tmp_path / "tree.json")
        loaded = load_artifact(path)
        assert loaded.recovery == result.recovery
        # The recovered rows are byte-identical to a fault-free run's.
        clean = run_experiment("tree", TINY, strict=False)
        assert clean.recovery.get("retries_used", 0) == 0
        assert loaded.rows == clean.rows

    def test_legacy_artifact_without_recovery_loads_empty(self, tmp_path):
        result = run_experiment("tree", {"trials": 15}, strict=False)
        payload = result.to_dict()
        del payload["recovery"]
        payload["schema"] = 2
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        loaded = load_artifact(path)
        assert loaded.recovery == {}
        assert loaded.rows == result.rows
