"""Smoke and consistency tests for the experiment drivers.

Each driver is run at a reduced size and checked for (a) structural sanity
of the returned rows and (b) the absence of violations of the paper
relations it asserts (``<=``, ``>=``, ``==``).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    Table1Sizes,
    maj3_strategy_tree_summary,
    render_table1,
    run_availability_experiment,
    run_cw_independence_of_n,
    run_cw_order_ablation,
    run_generic_baseline_ablation,
    run_hqs_ablation,
    run_maj3_experiment,
    run_probabilistic_majority,
    run_probe_cw_bound,
    run_probe_hqs_optimality,
    run_probe_hqs_scaling,
    run_probe_tree_scaling,
    run_randomized_cw,
    run_randomized_majority,
    run_randomized_tree,
    run_table1,
    run_urn_experiment,
    run_walk_experiment,
    run_wheel_and_triang_corollaries,
    violations,
)
from repro.experiments.majority import majority_sqrt_deficit_fit
from repro.systems import TriangSystem


class TestMaj3Experiment:
    def test_all_relations_hold_exactly(self):
        rows = run_maj3_experiment()
        assert len(rows) == 4
        assert not violations(rows)
        assert all(row.satisfied for row in rows)

    def test_strategy_tree_summary(self):
        summary = maj3_strategy_tree_summary()
        assert summary["depth"] == 3.0
        assert math.isclose(summary["expected_depth_half"], 2.5)


class TestMajorityExperiments:
    def test_probabilistic_rows_track_exact_values(self):
        rows = run_probabilistic_majority(sizes=(11, 25), ps=(0.5, 0.3), trials=800, seed=1)
        assert len(rows) == 4
        for row in rows:
            assert abs(row.measured - row.paper) / row.paper < 0.1

    def test_sqrt_deficit_fit_positive_coefficient(self):
        fit = majority_sqrt_deficit_fit(sizes=(25, 51, 101), trials=800, seed=2)
        assert 0.3 < fit.sqrt_coefficient < 2.5

    def test_randomized_rows_near_theorem_value(self):
        rows = run_randomized_majority(sizes=(9, 21), trials=1500, seed=3)
        for row in rows:
            assert abs(row.measured - row.paper) / row.paper < 0.1


class TestCrumblingWallExperiments:
    def test_probe_cw_bound_rows(self):
        rows = run_probe_cw_bound(
            walls=[TriangSystem(5)], ps=(0.3, 0.5), trials=600, seed=4
        )
        assert not violations(rows)

    def test_corollaries(self):
        rows = run_wheel_and_triang_corollaries(trials=800, seed=5)
        assert not violations(rows)

    def test_independence_of_n(self):
        rows = run_cw_independence_of_n(widths_per_row=(5, 50), rows_count=6, trials=500, seed=6)
        assert not violations(rows)
        measured = [row.measured for row in rows]
        assert max(measured) - min(measured) < 1.5

    def test_randomized_cw(self):
        rows = run_randomized_cw(depths=(4, 6), trials=800, seed=7)
        assert not violations(rows)


class TestTreeExperiments:
    def test_scaling_exponent_close_to_paper(self):
        rows, fits = run_probe_tree_scaling(heights=(3, 4, 5, 6, 7), ps=(0.5,), trials=600, seed=8)
        assert not violations(rows)
        assert abs(fits[0.5].exponent - math.log2(1.5)) < 0.12

    def test_randomized_tree_bracketed(self):
        rows = run_randomized_tree(heights=(3, 5), trials=800, seed=9)
        assert not violations(rows)


class TestHQSExperiments:
    def test_scaling_matches_recursion(self):
        rows, fits = run_probe_hqs_scaling(heights=(2, 3, 4), ps=(0.5,), trials=600, seed=10)
        assert not violations(rows)
        assert abs(fits[0.5].exponent - math.log(2.5, 3)) < 0.1

    def test_optimality_rows(self):
        rows = run_probe_hqs_optimality(heights=(1, 2))
        assert not violations(rows)
        assert all(row.satisfied for row in rows)


class TestLemmaAndAvailabilityExperiments:
    def test_walk_rows(self):
        rows = run_walk_experiment(sizes=(20, 100), ps=(0.5, 0.3), trials=600, seed=11)
        for row in rows:
            assert abs(row.measured - row.paper) / row.paper < 0.1

    def test_urn_rows(self):
        rows = run_urn_experiment(cases=((3, 5), (10, 10)), trials=1500, seed=12)
        for row in rows:
            assert abs(row.measured - row.paper) / row.paper < 0.1

    def test_availability_rows(self):
        rows = run_availability_experiment(ps=(0.3, 0.5), trials=800, seed=13)
        assert not violations(rows)


class TestAblations:
    def test_cw_order_ablation_runs(self):
        rows = run_cw_order_ablation(depth=6, ps=(0.5,), trials=400, seed=14)
        # The paper algorithm's row must respect 2k-1; the scans need not.
        paper_rows = [r for r in rows if "paper" in r.quantity]
        assert paper_rows and all(r.measured <= 11 + 1 for r in paper_rows)

    def test_hqs_ablation_eager_probes_everything(self):
        rows = run_hqs_ablation(heights=(2,), trials=300, seed=15)
        eager = [r for r in rows if "Eager" in r.quantity][0]
        lazy = [r for r in rows if "lazy" in r.quantity][0]
        assert math.isclose(eager.measured, 9.0)
        assert lazy.measured < eager.measured

    def test_generic_baseline_rows(self):
        rows = run_generic_baseline_ablation(trials=300, seed=16)
        assert len(rows) == 4
        assert all(row.paper is not None for row in rows)


class TestTable1:
    @pytest.fixture(scope="class")
    def table1_rows(self):
        sizes = Table1Sizes(maj_n=51, triang_depth=8, tree_height=5, hqs_height=3)
        return run_table1(sizes=sizes, trials=700, seed=17)

    def test_has_all_sixteen_cells(self, table1_rows):
        assert len(table1_rows) == 16
        assert {row.system for row in table1_rows} == {"Maj", "Triang", "Tree", "HQS"}

    def test_no_violated_relations(self, table1_rows):
        assert not violations(table1_rows)

    def test_shape_rows_are_close_to_paper_values(self, table1_rows):
        for row in table1_rows:
            if row.relation == "~" and row.paper is not None:
                assert abs(row.measured - row.paper) / row.paper < 0.15

    def test_rendering(self, table1_rows):
        text = render_table1(table1_rows)
        assert "Table 1" in text
        assert "Maj" in text and "HQS" in text
