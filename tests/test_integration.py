"""End-to-end integration tests crossing module boundaries.

These tests wire together systems + algorithms + analysis + simulation the
way the experiments and examples do, and check the paper's claims at small
-to-medium scale with deterministic seeds.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.algorithms import (
    IRProbeHQS,
    ProbeCW,
    ProbeHQS,
    ProbeMaj,
    ProbeTree,
    RProbeMaj,
    default_deterministic_algorithm,
)
from repro.analysis.bounds import Direction, Model, bounds_for
from repro.analysis.walks import majority_expected_probes_exact
from repro.analysis.yao import majority_hard_distribution
from repro.core.coloring import Coloring, enumerate_colorings
from repro.core.estimator import estimate_average_probes
from repro.core.exact import ExactSolver
from repro.core.metrics import availability_exact
from repro.core.strategy_tree import strategy_tree_from_algorithm
from repro.simulation import BernoulliFailures, SimulatedCluster, run_cluster_trials
from repro.simulation.protocols import ReplicatedRegister, run_replication_workload
from repro.systems import (
    HQS,
    CrumblingWall,
    MajoritySystem,
    TreeSystem,
    TriangSystem,
    WheelSystem,
)


class TestStrategyTreesOfPaperAlgorithms:
    """Extract explicit strategy trees from the paper's algorithms and check
    their costs against both the exact DP and the Monte-Carlo estimator."""

    @pytest.mark.parametrize(
        "system,algorithm_factory",
        [
            (MajoritySystem(5), ProbeMaj),
            (TriangSystem(3), ProbeCW),
            (WheelSystem(5), lambda s: ProbeCW(CrumblingWall([1, s.n - 1]))),
            (TreeSystem(2), ProbeTree),
            (HQS(2), ProbeHQS),
        ],
        ids=["Maj5", "Triang3", "Wheel5", "Tree2", "HQS2"],
    )
    def test_tree_extraction_costs_are_consistent(self, system, algorithm_factory):
        algorithm = algorithm_factory(system)
        tree = strategy_tree_from_algorithm(
            lambda oracle: algorithm.run(oracle).witness, algorithm.system
        )
        tree.validate()

        # (a) The tree's expected depth is an upper bound on the exact optimum.
        solver = ExactSolver(algorithm.system)
        assert tree.expected_depth(0.5) >= solver.probabilistic_probe_complexity(0.5) - 1e-9

        # (b) The tree's expected depth matches the Monte-Carlo estimate of
        #     the same algorithm.
        estimate = estimate_average_probes(algorithm, 0.5, trials=3000, seed=1)
        assert abs(tree.expected_depth(0.5) - estimate.mean) < 4 * estimate.stderr + 0.05

        # (c) The tree never exceeds the deterministic worst case n.
        assert tree.depth() <= algorithm.system.n

    def test_probe_cw_tree_matches_theorem_3_3_for_all_p(self):
        wall = CrumblingWall([1, 2, 3])
        algorithm = ProbeCW(wall)
        tree = strategy_tree_from_algorithm(
            lambda oracle: algorithm.run(oracle).witness, wall
        )
        tree.validate()
        for p in (0.05, 0.2, 0.5, 0.8, 0.95):
            assert tree.expected_depth(p) <= 2 * wall.num_rows - 1 + 1e-9


class TestExactOptimaAgainstPaperBounds:
    """The exact optimum must respect every paper bound on small systems."""

    @pytest.mark.parametrize(
        "system",
        [MajoritySystem(7), TriangSystem(3), WheelSystem(6), TreeSystem(2), HQS(2)],
        ids=lambda s: s.name,
    )
    def test_exact_ppc_between_generic_bounds(self, system):
        solver = ExactSolver(system)
        value = solver.probabilistic_probe_complexity(0.5)
        c = system.min_quorum_size()
        lemma_3_1 = 2 * c - 2 * math.sqrt(c)
        assert value >= lemma_3_1 - 1e-9
        assert value <= system.n

    @pytest.mark.parametrize(
        "system",
        [MajoritySystem(7), TriangSystem(3), WheelSystem(6), TreeSystem(2)],
        ids=lambda s: s.name,
    )
    def test_paper_systems_are_evasive_but_cheap_on_average(self, system):
        solver = ExactSolver(system)
        assert solver.probe_complexity() == system.n  # Lemma 2.2
        assert solver.probabilistic_probe_complexity(0.5) < system.n

    def test_paper_upper_bounds_hold_for_exact_optimum(self):
        # Asymptotic bounds (Θ/O with instantiated constants) are not tight
        # at these tiny sizes, so only the finite-n formulas are asserted.
        cases = [MajoritySystem(7), TriangSystem(3), WheelSystem(6), HQS(2)]
        for system in cases:
            table = bounds_for(system)
            solver = ExactSolver(system)
            optimum = solver.probabilistic_probe_complexity(0.5)
            for direction in (Direction.UPPER, Direction.EXACT):
                bound = table.get(Model.PROBABILISTIC, direction)
                if bound is not None and not bound.asymptotic:
                    assert optimum <= bound.value(system.n, 0.5) + 1e-6


class TestRandomizedMajorityPinching:
    def test_upper_and_lower_meet(self):
        """Theorem 4.2 end-to-end: the measured algorithm (upper side), the
        Yao DP (lower side) and the closed form agree."""
        system = MajoritySystem(7)
        closed_form = 7 - 6 / 10
        yao = ExactSolver(system).best_deterministic_under(
            majority_hard_distribution(system)
        )
        assert math.isclose(yao, closed_form, rel_tol=1e-9)

        algorithm = RProbeMaj(system)
        rng = random.Random(0)
        worst = Coloring(7, red=[1, 2, 3, 4])
        samples = [algorithm.run_on(worst, rng=rng).probes for _ in range(8000)]
        measured = sum(samples) / len(samples)
        assert abs(measured - closed_form) < 0.1


class TestAvailabilityConsistencyAcrossLayers:
    def test_cluster_measurements_match_exact_availability(self):
        """Simulation layer vs enumeration layer vs recursion layer."""
        system = TreeSystem(2)
        exact = availability_exact(system, 0.3)
        batch = run_cluster_trials(
            ProbeTree(system), BernoulliFailures(0.3), trials=3000, seed=3
        )
        assert abs(batch.availability_failure_rate - exact) < 0.03

    def test_witness_color_frequency_matches_availability_for_all_algorithms(self):
        system = HQS(2)
        exact = availability_exact(system, 0.5)
        for algorithm in (ProbeHQS(system), IRProbeHQS(system)):
            rng = random.Random(4)
            reds = 0
            trials = 2000
            for _ in range(trials):
                coloring = Coloring.random(system.n, 0.5, rng)
                run = algorithm.run_on(coloring, rng=rng)
                reds += 0 if run.witness.is_green else 1
            assert abs(reds / trials - exact) < 0.04


class TestApplicationLayerAgainstComplexityLayer:
    def test_replication_probe_cost_matches_estimator(self):
        """The replicated store's probes/op equals the algorithm's average
        probe count measured by the estimator (same failure probability)."""
        system = TriangSystem(6)
        p = 0.3
        estimate = estimate_average_probes(ProbeCW(system), p, trials=3000, seed=5)

        cluster = SimulatedCluster(system.n, failure_model=BernoulliFailures(p), seed=6)
        register = ReplicatedRegister(cluster, ProbeCW(system), seed=7)
        # Redraw the failure pattern before every operation so operations see
        # i.i.d. states, matching the estimator's model.
        rng = random.Random(8)
        probes_before = register.stats.total_probes
        operations = 400
        for i in range(operations):
            cluster.apply_coloring(Coloring.random(system.n, p, rng))
            if i % 3 == 0:
                register.write(f"v{i}")
            else:
                register.read()
        probes_per_op = (register.stats.total_probes - probes_before) / operations
        assert abs(probes_per_op - estimate.mean) < 0.6
        assert register.stats.stale_reads == 0

    def test_full_workload_on_every_default_algorithm(self):
        for system in (MajoritySystem(9), TriangSystem(4), TreeSystem(3), HQS(2)):
            algorithm = default_deterministic_algorithm(system)
            cluster = SimulatedCluster(
                system.n, failure_model=BernoulliFailures(0.2), seed=9
            )
            register = ReplicatedRegister(cluster, algorithm, seed=10)
            stats = run_replication_workload(
                register, operations=60, write_fraction=0.5,
                failure_rate_between_ops=0.05, seed=11,
            )
            assert stats.stale_reads == 0
            assert stats.operations == 60


class TestExhaustiveCrossValidation:
    def test_all_algorithms_agree_with_reference_on_every_coloring(self):
        """For every coloring of small instances, every algorithm's witness
        color equals the ground truth (cross-validating systems, algorithms
        and witnesses in one sweep)."""
        cases = [
            (MajoritySystem(5), ProbeMaj),
            (TriangSystem(3), ProbeCW),
            (TreeSystem(2), ProbeTree),
            (HQS(2), ProbeHQS),
        ]
        rng = random.Random(12)
        for system, factory in cases:
            algorithm = factory(system)
            for coloring in enumerate_colorings(system.n):
                run = algorithm.run_on(coloring, rng=rng, validate=True)
                assert run.witness.is_green == system.has_live_quorum(coloring)

    def test_majority_exact_expectation_consistency(self):
        """Three independent derivations of E[probes] for Probe_Maj agree:
        the walk formula, the exact DP, and the extracted strategy tree."""
        system = MajoritySystem(7)
        walk_value = majority_expected_probes_exact(7, 0.5)
        dp_value = ExactSolver(system).probabilistic_probe_complexity(0.5)
        algorithm = ProbeMaj(system)
        tree = strategy_tree_from_algorithm(
            lambda oracle: algorithm.run(oracle).witness, system
        )
        assert math.isclose(walk_value, dp_value, rel_tol=1e-9)
        assert math.isclose(tree.expected_depth(0.5), dp_value, rel_tol=1e-9)
