"""Tests for the level-synchronous gate engine (:mod:`repro.core.batched_gates`).

The deterministic Tree/HQS kernels must reproduce the recursive
implementations *trial-by-trial* on shared red matrices (identical probe
counts and witness colors per row); the randomized kernels draw from the
same distribution over probe orders, so their per-input probe-count
histograms and their means must agree with the sequential loops within
confidence bounds.
"""

from __future__ import annotations

import random
from collections import Counter

import numpy as np
import pytest

from repro.algorithms import (
    IRProbeHQS,
    ProbeHQS,
    ProbeTree,
    RProbeHQS,
    RProbeTree,
)
from repro.core.batched import (
    batched_run,
    estimate_average_under_batched,
    sample_red_matrix,
    supports_batched,
)
from repro.core.coloring import Coloring
from repro.core.estimator import estimate_average_under
from repro.experiments.hqs import hqs_family_p_matrix, worst_case_family_sampler
from repro.systems import HQS, TreeSystem


TREE_HEIGHTS = [0, 1, 2, 4, 6]
HQS_HEIGHTS = [0, 1, 2, 3]


@pytest.mark.parametrize("height", TREE_HEIGHTS)
def test_probe_tree_kernel_is_trial_exact(height):
    system = TreeSystem(height)
    algorithm = ProbeTree(system)
    red = sample_red_matrix(system.n, 0.5, 150, rng=height + 1)
    probes, witness_green = batched_run(algorithm, red)
    for t in range(red.shape[0]):
        run = algorithm.run_on(Coloring.from_red_row(red[t]))
        assert run.probes == probes[t]
        assert run.witness.is_green == bool(witness_green[t])


@pytest.mark.parametrize("height", HQS_HEIGHTS)
@pytest.mark.parametrize("p", [0.2, 0.5])
def test_probe_hqs_kernel_is_trial_exact(height, p):
    system = HQS(height)
    algorithm = ProbeHQS(system)
    red = sample_red_matrix(system.n, p, 150, rng=height + 7)
    probes, witness_green = batched_run(algorithm, red)
    rng = random.Random(0)
    for t in range(red.shape[0]):
        run = algorithm.run_on(Coloring.from_red_row(red[t]), rng=rng)
        assert run.probes == probes[t]
        assert run.witness.is_green == bool(witness_green[t])


class TestRandomizedKernelsMatchInDistribution:
    @pytest.mark.parametrize(
        "factory,system",
        [
            (RProbeTree, TreeSystem(5)),
            (RProbeHQS, HQS(3)),
            (IRProbeHQS, HQS(3)),
        ],
        ids=["RProbeTree", "RProbeHQS", "IRProbeHQS"],
    )
    def test_means_agree_on_random_inputs(self, factory, system):
        algorithm = factory(system)
        red = sample_red_matrix(system.n, 0.5, 4000, rng=11)
        probes, _ = batched_run(algorithm, red, rng=np.random.default_rng(12))
        rng = random.Random(13)
        sequential = [
            algorithm.run_on(Coloring.from_red_row(red[t]), rng=rng).probes
            for t in range(1500)
        ]
        batched_sem = float(np.std(probes)) / np.sqrt(len(probes))
        seq_sem = float(np.std(sequential)) / np.sqrt(len(sequential))
        tolerance = 4.0 * (batched_sem + seq_sem)
        assert abs(float(np.mean(probes)) - float(np.mean(sequential))) < tolerance

    @pytest.mark.parametrize(
        "factory", [RProbeHQS, IRProbeHQS], ids=["RProbeHQS", "IRProbeHQS"]
    )
    def test_fixed_input_histograms_agree(self, factory):
        """On one fixed family-P input the per-probe-count frequencies of the
        kernel and the sequential loop must agree bin by bin."""
        system = HQS(2)
        algorithm = factory(system)
        coloring = worst_case_family_sampler(system)(random.Random(3))
        row = np.zeros(system.n, dtype=bool)
        for e in coloring.red_elements:
            row[e - 1] = True
        trials = 30000
        red = np.broadcast_to(row, (trials, system.n))
        probes, _ = batched_run(algorithm, red, rng=np.random.default_rng(4))
        rng = random.Random(5)
        sequential = [algorithm.run_on(coloring, rng=rng).probes for _ in range(trials)]
        batched_hist = Counter(probes.tolist())
        seq_hist = Counter(sequential)
        for k in set(batched_hist) | set(seq_hist):
            fb = batched_hist.get(k, 0) / trials
            fs = seq_hist.get(k, 0) / trials
            f = max(fb, fs)
            stderr = np.sqrt(2.0 * f * (1.0 - f) / trials)
            assert abs(fb - fs) < 5.0 * stderr + 1e-3, (k, fb, fs)

    @pytest.mark.parametrize("height", [1, 2, 3, 4])
    def test_witness_color_matches_system_truth(self, height):
        for factory, system in [
            (RProbeTree, TreeSystem(height)),
            (IRProbeHQS, HQS(height)),
        ]:
            algorithm = factory(system)
            red = sample_red_matrix(system.n, 0.5, 200, rng=height)
            _, witness_green = batched_run(
                algorithm, red, rng=np.random.default_rng(height)
            )
            for t in range(red.shape[0]):
                coloring = Coloring.from_red_row(red[t])
                assert bool(witness_green[t]) == system.has_live_quorum(coloring)

    def test_ir_does_not_exceed_r_on_family_p(self):
        """Theorem 4.10's point: the grandchild peek helps on family P."""
        system = HQS(4)
        from functools import partial

        sampler = partial(hqs_family_p_matrix, system)
        est_r = estimate_average_under_batched(
            RProbeHQS(system), sampler, trials=6000, seed=21
        )
        est_ir = estimate_average_under_batched(
            IRProbeHQS(system), sampler, trials=6000, seed=22
        )
        assert est_ir.mean <= est_r.mean + est_ir.ci95 + est_r.ci95


class TestBatchedUnderEstimator:
    def test_matches_sequential_on_family_p(self):
        from functools import partial

        system = HQS(3)
        algorithm = RProbeHQS(system)
        batched = estimate_average_under_batched(
            algorithm, partial(hqs_family_p_matrix, system), trials=4000, seed=31
        )
        sequential = estimate_average_under(
            algorithm, worst_case_family_sampler(system), trials=4000, seed=32
        )
        assert abs(batched.mean - sequential.mean) < 2 * (batched.ci95 + sequential.ci95)

    def test_rejects_zero_trials(self):
        system = HQS(1)
        with pytest.raises(ValueError):
            estimate_average_under_batched(
                RProbeHQS(system), lambda t, g: np.zeros((t, 3), bool), trials=0
            )


class TestGateKernelRegistration:
    def test_all_gate_algorithms_supported(self):
        tree = TreeSystem(2)
        hqs = HQS(2)
        for algorithm in (
            ProbeTree(tree),
            RProbeTree(tree),
            ProbeHQS(hqs),
            RProbeHQS(hqs),
            IRProbeHQS(hqs),
        ):
            assert supports_batched(algorithm)

    def test_estimator_flag_routes_tree_to_kernel(self):
        from repro.core.batched import estimate_average_probes_batched
        from repro.core.estimator import estimate_average_probes

        algorithm = ProbeTree(TreeSystem(4))
        via_flag = estimate_average_probes(algorithm, 0.5, trials=300, seed=8, batched=True)
        direct = estimate_average_probes_batched(algorithm, 0.5, trials=300, seed=8)
        assert via_flag.mean == direct.mean
