"""Equivalence suite: the bitmask engine versus the legacy frozenset path.

The bitmask fast paths (``contains_quorum_mask``, the mask-DP
:class:`~repro.core.exact.ExactSolver`, the memoized settled-witness test)
must be *semantically identical* to the original frozenset implementations.
This module pins that down three ways:

* a reference solver implementing the seed's frozenset knowledge-state DP
  verbatim, compared against the mask solver on all of the paper's worked
  systems (``PC`` bit-identical, ``PPC_p`` and Yao bounds within 1e-9);
* the paper's ``Maj3`` constants (PC = 3, PPC_{1/2} = 5/2, PCR = 8/3);
* property checks that ``contains_quorum(frozenset)`` agrees with the mask
  evaluation on random subsets for *every* system construction.
"""

from __future__ import annotations

import math
import random
from functools import lru_cache

import pytest

from repro.analysis.yao import majority_hard_distribution, majority_lower_bound
from repro.core.bitmask import elements_of, full_mask, mask_of
from repro.core.coloring import ColoringDistribution
from repro.core.exact import EXACT_LIMIT, ExactSolver, permutation_algorithm_worst_expected
from repro.systems import (
    HQS,
    CompositeSystem,
    CrumblingWall,
    ExplicitQuorumSystem,
    GridSystem,
    MajoritySystem,
    ProjectivePlaneSystem,
    SingletonSystem,
    StarSystem,
    TreeSystem,
    TriangSystem,
    WeightedMajoritySystem,
    WheelSystem,
)
from repro.systems.boolean import CharacteristicFunction


class LegacySolver:
    """The seed's frozenset knowledge-state DP, kept as ground truth."""

    def __init__(self, system) -> None:
        self._system = system
        self._universe = tuple(sorted(system.universe))

    def _settled(self, green: frozenset[int], red: frozenset[int]):
        system = self._system
        if system.contains_quorum(green):
            return "green"
        if not system.contains_quorum(system.universe - red):
            return "red"
        return None

    def probe_complexity(self) -> int:
        @lru_cache(maxsize=None)
        def value(green: frozenset[int], red: frozenset[int]) -> int:
            if self._settled(green, red) is not None:
                return 0
            remaining = [e for e in self._universe if e not in green and e not in red]
            return 1 + min(
                max(value(green | {e}, red), value(green, red | {e}))
                for e in remaining
            )

        return value(frozenset(), frozenset())

    def probabilistic_probe_complexity(self, p: float) -> float:
        q = 1.0 - p

        @lru_cache(maxsize=None)
        def value(green: frozenset[int], red: frozenset[int]) -> float:
            if self._settled(green, red) is not None:
                return 0.0
            remaining = [e for e in self._universe if e not in green and e not in red]
            return 1.0 + min(
                q * value(green | {e}, red) + p * value(green, red | {e})
                for e in remaining
            )

        return value(frozenset(), frozenset())

    def best_deterministic_under(self, distribution: ColoringDistribution) -> float:
        support = distribution.support

        @lru_cache(maxsize=None)
        def value(green: frozenset[int], red: frozenset[int]) -> float:
            if self._settled(green, red) is not None:
                return 0.0
            consistent = [
                w
                for w in support
                if green <= w.coloring.green_elements
                and red <= w.coloring.red_elements
            ]
            total = sum(w.probability for w in consistent)
            if total == 0:
                return 0.0
            remaining = [e for e in self._universe if e not in green and e not in red]
            best = float("inf")
            for e in remaining:
                green_mass = sum(
                    w.probability for w in consistent if w.coloring.is_green(e)
                )
                prob_green = green_mass / total
                cost = (
                    1.0
                    + prob_green * value(green | {e}, red)
                    + (1.0 - prob_green) * value(green, red | {e})
                )
                best = min(best, cost)
            return best

        return value(frozenset(), frozenset())


PAPER_SYSTEMS = [
    MajoritySystem(3),
    MajoritySystem(5),
    WheelSystem(5),
    WheelSystem(6),
    CrumblingWall([1, 2, 3]),
    TriangSystem(4),  # n = 10
    TreeSystem(2),  # n = 7
    HQS(2),  # n = 9
    CrumblingWall([1, 3, 3, 3]),  # n = 10
]


@pytest.mark.parametrize("system", PAPER_SYSTEMS, ids=lambda s: s.name)
class TestMaskSolverMatchesLegacy:
    def test_pc_bit_identical(self, system):
        assert ExactSolver(system).probe_complexity() == LegacySolver(system).probe_complexity()

    @pytest.mark.parametrize("p", [0.0, 0.3, 0.5, 0.8, 1.0])
    def test_ppc_within_1e9(self, system, p):
        mask_value = ExactSolver(system).probabilistic_probe_complexity(p)
        legacy_value = LegacySolver(system).probabilistic_probe_complexity(p)
        assert math.isclose(mask_value, legacy_value, rel_tol=0, abs_tol=1e-9)

    def test_repeated_queries_reuse_caches(self, system):
        solver = ExactSolver(system)
        first = solver.probabilistic_probe_complexity(0.5)
        # Same-solver re-query and cross-measure queries must be consistent.
        assert solver.probabilistic_probe_complexity(0.5) == first
        assert solver.probe_complexity() == LegacySolver(system).probe_complexity()


class TestYaoEquivalence:
    @pytest.mark.parametrize("n", [3, 5])
    def test_majority_hard_distribution(self, n):
        system = MajoritySystem(n)
        dist = majority_hard_distribution(system)
        mask_value = ExactSolver(system).best_deterministic_under(dist)
        legacy_value = LegacySolver(system).best_deterministic_under(dist)
        assert math.isclose(mask_value, legacy_value, rel_tol=0, abs_tol=1e-9)
        assert math.isclose(mask_value, majority_lower_bound(n), rel_tol=1e-9)

    @pytest.mark.parametrize(
        "system",
        [WheelSystem(5), TriangSystem(3), TreeSystem(1)],
        ids=lambda s: s.name,
    )
    def test_product_distribution(self, system):
        dist = ColoringDistribution.product(system.n, 0.5)
        mask_value = ExactSolver(system).best_deterministic_under(dist)
        legacy_value = LegacySolver(system).best_deterministic_under(dist)
        assert math.isclose(mask_value, legacy_value, rel_tol=0, abs_tol=1e-9)


class TestPaperWorkedExample:
    """Section 2.3: Maj3 has PC = 3, PPC_{1/2} = 5/2 and PCR = 8/3."""

    def test_maj3_constants(self):
        system = MajoritySystem(3)
        solver = ExactSolver(system)
        assert solver.probe_complexity() == 3
        assert math.isclose(solver.probabilistic_probe_complexity(0.5), 2.5)
        assert math.isclose(permutation_algorithm_worst_expected(system), 8 / 3)
        yao = solver.best_deterministic_under(majority_hard_distribution(system))
        assert math.isclose(yao, 8 / 3, rel_tol=1e-9)


ALL_SYSTEMS = [
    MajoritySystem(9),
    WeightedMajoritySystem([3, 1, 1, 2, 1]),
    WheelSystem(8),
    StarSystem(6),
    SingletonSystem(5, center=3),
    CrumblingWall([1, 3, 2, 4]),
    TriangSystem(4),
    TreeSystem(3),  # n = 15
    HQS(2),
    GridSystem(3, 4),
    ProjectivePlaneSystem(2),  # Fano plane, n = 7
    ExplicitQuorumSystem(5, [{1, 2}, {2, 3, 4}, {1, 4, 5}]),
    CompositeSystem(MajoritySystem(3), [MajoritySystem(3), WheelSystem(3), SingletonSystem(2)]),
]


@pytest.mark.parametrize("system", ALL_SYSTEMS, ids=lambda s: s.name)
class TestMaskPredicateEquivalence:
    def test_random_subsets(self, system):
        rng = random.Random(20260728 + system.n)
        for _ in range(200):
            subset = frozenset(
                e for e in range(1, system.n + 1) if rng.random() < rng.choice([0.2, 0.5, 0.8])
            )
            mask = mask_of(subset)
            assert system.contains_quorum_mask(mask) == system.contains_quorum(subset)

    def test_extremes(self, system):
        assert system.contains_quorum_mask(full_mask(system.n)) is True
        assert system.contains_quorum_mask(0) == system.contains_quorum(frozenset())

    def test_out_of_universe_mask_rejected(self, system):
        with pytest.raises(ValueError):
            system.contains_quorum_mask(1 << system.n)

    def test_witness_settled_mask_agrees(self, system):
        f = CharacteristicFunction(system)
        rng = random.Random(31 + system.n)
        for _ in range(50):
            greens, reds = set(), set()
            for e in range(1, system.n + 1):
                u = rng.random()
                if u < 0.3:
                    greens.add(e)
                elif u < 0.6:
                    reds.add(e)
            assert f.witness_settled_mask(mask_of(greens), mask_of(reds)) == f.witness_settled(
                greens, reds
            )


class TestMaskEnumeration:
    @pytest.mark.parametrize(
        "system",
        [MajoritySystem(5), WheelSystem(5), TriangSystem(3), TreeSystem(2), HQS(1)],
        ids=lambda s: s.name,
    )
    def test_quorum_masks_match_quorums(self, system):
        assert set(system.quorum_masks()) == {mask_of(q) for q in system.quorums()}
        # Cached: second call returns the identical tuple.
        assert system.quorum_masks() is system.quorum_masks()

    def test_transversal_masks_are_minimal_transversals(self):
        system = WheelSystem(5)
        transversals = [elements_of(m) for m in system.transversal_masks()]
        assert all(system.is_transversal(t) for t in transversals)
        # Minimality: removing any element breaks the transversal.
        for t in transversals:
            for e in t:
                assert not system.is_transversal(t - {e})

    def test_exact_limit_raised_to_24(self):
        assert EXACT_LIMIT >= 24
        ExactSolver(MajoritySystem(17))  # constructible beyond the old cap of 16
        with pytest.raises(ValueError):
            ExactSolver(MajoritySystem(EXACT_LIMIT + 1))


class TestLargeUniverseMaskPaths:
    """Mask predicates on universes far beyond 64 bits (arbitrary precision)."""

    def test_majority_large(self):
        system = MajoritySystem(1001)
        mask = mask_of(range(1, 502))
        assert system.contains_quorum_mask(mask)
        assert not system.contains_quorum_mask(mask >> 1)

    def test_tree_large(self):
        system = TreeSystem(9)  # n = 1023
        # A full root-to-leaf path is a quorum.
        path = []
        v = 1
        while v <= system.n:
            path.append(v)
            v *= 2
        assert system.contains_quorum_mask(mask_of(path))
        assert not system.contains_quorum_mask(mask_of(path[1:]))

    def test_hqs_large(self):
        system = HQS(6)  # n = 729

        # Build a quorum explicitly: two of three children recursively.
        def build(v: int) -> list[int]:
            if system.is_leaf_node(v):
                return [system.leaf_to_element(v)]
            a, b, _ = system.children(v)
            return build(a) + build(b)

        elements = build(0)
        assert system.contains_quorum_mask(mask_of(elements))
        assert not system.contains_quorum_mask(mask_of(elements[1:]))
