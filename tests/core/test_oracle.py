"""Tests for probe oracles."""

from __future__ import annotations

import pytest

from repro.core.coloring import Color, Coloring
from repro.core.oracle import (
    ColoringOracle,
    ProbeBudgetExceeded,
    ProbeOracle,
    RecordingOracle,
)


class TestColoringOracle:
    def test_probe_reveals_true_color(self):
        oracle = ColoringOracle(Coloring(4, red=[2]))
        assert oracle.probe(2) is Color.RED
        assert oracle.probe(1) is Color.GREEN

    def test_probe_count_counts_distinct_elements(self):
        oracle = ColoringOracle(Coloring(4, red=[2]))
        oracle.probe(1)
        oracle.probe(1)
        oracle.probe(2)
        assert oracle.probe_count == 2

    def test_sequence_preserves_first_probe_order(self):
        oracle = ColoringOracle(Coloring(4))
        for e in (3, 1, 3, 2):
            oracle.probe(e)
        assert oracle.sequence == [3, 1, 2]

    def test_known_green_and_red_sets(self):
        oracle = ColoringOracle(Coloring(4, red=[2, 3]))
        for e in (1, 2, 3):
            oracle.probe(e)
        assert oracle.known_green == {1}
        assert oracle.known_red == {2, 3}

    def test_out_of_range_probe_rejected(self):
        oracle = ColoringOracle(Coloring(3))
        with pytest.raises(ValueError):
            oracle.probe(4)

    def test_budget_enforced(self):
        oracle = ColoringOracle(Coloring(5), budget=2)
        oracle.probe(1)
        oracle.probe(2)
        oracle.probe(1)  # cached, not counted
        with pytest.raises(ProbeBudgetExceeded):
            oracle.probe(3)

    def test_known_mapping_is_a_copy(self):
        oracle = ColoringOracle(Coloring(3, red=[1]))
        oracle.probe(1)
        snapshot = oracle.known
        snapshot[2] = Color.GREEN
        assert 2 not in oracle.known

    def test_satisfies_protocol(self):
        assert isinstance(ColoringOracle(Coloring(2)), ProbeOracle)


class TestRecordingOracle:
    def test_forwards_and_records(self):
        inner = ColoringOracle(Coloring(4, red=[4]))
        recorder = RecordingOracle(inner)
        assert recorder.probe(4) is Color.RED
        recorder.probe(1)
        recorder.probe(4)
        assert recorder.sequence == [4, 1]
        assert recorder.probe_count == 2
        assert recorder.n == 4
        assert recorder.known == inner.known

    def test_satisfies_protocol(self):
        inner = ColoringOracle(Coloring(2))
        assert isinstance(RecordingOracle(inner), ProbeOracle)
