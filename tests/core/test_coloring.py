"""Tests for colorings and coloring distributions."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring import (
    Color,
    Coloring,
    ColoringDistribution,
    WeightedColoring,
    enumerate_colorings,
    enumerate_colorings_with_reds,
)


class TestColor:
    def test_flipped(self):
        assert Color.GREEN.flipped() is Color.RED
        assert Color.RED.flipped() is Color.GREEN

    def test_invert_operator(self):
        assert ~Color.GREEN is Color.RED
        assert ~Color.RED is Color.GREEN


class TestColoringConstruction:
    def test_basic_red_green_split(self):
        coloring = Coloring(5, red=[2, 4])
        assert coloring.red_elements == {2, 4}
        assert coloring.green_elements == {1, 3, 5}
        assert coloring[2] is Color.RED
        assert coloring[1] is Color.GREEN

    def test_all_green_and_all_red(self):
        assert Coloring.all_green(4).red_elements == frozenset()
        assert Coloring.all_red(4).red_elements == {1, 2, 3, 4}

    def test_element_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            Coloring(3, red=[4])

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Coloring(-1)

    def test_from_mapping_roundtrip(self):
        original = Coloring(4, red=[1, 3])
        rebuilt = Coloring.from_mapping(dict(original.items()))
        assert rebuilt == original

    def test_from_mapping_requires_full_universe(self):
        with pytest.raises(ValueError):
            Coloring.from_mapping({1: Color.RED, 3: Color.GREEN})

    def test_random_respects_probability_extremes(self, rng):
        assert Coloring.random(10, 0.0, rng).red_elements == frozenset()
        assert Coloring.random(10, 1.0, rng).red_elements == frozenset(range(1, 11))

    def test_random_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Coloring.random(5, 1.5)

    def test_with_exact_reds(self, rng):
        coloring = Coloring.with_exact_reds(10, 4, rng)
        assert len(coloring.red_elements) == 4

    def test_with_exact_reds_bounds(self):
        with pytest.raises(ValueError):
            Coloring.with_exact_reds(5, 6)


class TestColoringQueries:
    def test_mapping_protocol(self):
        coloring = Coloring(3, red=[2])
        assert len(coloring) == 3
        assert list(coloring) == [1, 2, 3]
        assert coloring.get(2) is Color.RED

    def test_lookup_outside_universe(self):
        with pytest.raises(KeyError):
            Coloring(3)[4]

    def test_monochromatic(self):
        coloring = Coloring(5, red=[1, 2])
        assert coloring.monochromatic([1, 2]) is Color.RED
        assert coloring.monochromatic([3, 4]) is Color.GREEN
        assert coloring.monochromatic([1, 3]) is None
        assert coloring.monochromatic([]) is Color.GREEN

    def test_flip_and_inverted(self):
        coloring = Coloring(3, red=[1])
        assert coloring.flip(1).red_elements == frozenset()
        assert coloring.flip(2).red_elements == {1, 2}
        assert coloring.inverted().red_elements == {2, 3}

    def test_probability(self):
        coloring = Coloring(3, red=[1])
        assert math.isclose(coloring.probability(0.25), 0.25 * 0.75 * 0.75)

    def test_equality_and_hash(self):
        assert Coloring(3, [1]) == Coloring(3, [1])
        assert Coloring(3, [1]) != Coloring(3, [2])
        assert len({Coloring(3, [1]), Coloring(3, [1])}) == 1

    def test_repr_mentions_reds(self):
        assert "red={1,3}" in repr(Coloring(3, [1, 3]))


class TestEnumeration:
    def test_enumerate_all(self):
        colorings = list(enumerate_colorings(3))
        assert len(colorings) == 8
        assert len(set(colorings)) == 8

    def test_enumerate_with_reds(self):
        colorings = list(enumerate_colorings_with_reds(4, 2))
        assert len(colorings) == 6
        assert all(len(c.red_elements) == 2 for c in colorings)

    @given(n=st.integers(min_value=0, max_value=8))
    @settings(max_examples=9, deadline=None)
    def test_enumeration_count_matches_power_of_two(self, n):
        assert sum(1 for _ in enumerate_colorings(n)) == 2**n


class TestColoringDistribution:
    def test_product_distribution_probabilities_sum_to_one(self):
        dist = ColoringDistribution.product(3, 0.3)
        assert math.isclose(sum(w.probability for w in dist.support), 1.0)

    def test_product_distribution_matches_iid_probability(self):
        dist = ColoringDistribution.product(3, 0.3)
        lookup = {w.coloring: w.probability for w in dist.support}
        assert math.isclose(lookup[Coloring(3, [1])], 0.3 * 0.7 * 0.7)

    def test_exact_reds_distribution(self):
        dist = ColoringDistribution.exact_reds(5, 3)
        assert len(dist.support) == 10
        assert all(len(w.coloring.red_elements) == 3 for w in dist.support)

    def test_expectation(self):
        dist = ColoringDistribution.exact_reds(4, 2)
        mean_reds = dist.expectation(lambda c: len(c.red_elements))
        assert math.isclose(mean_reds, 2.0)

    def test_sampling_stays_in_support(self, rng):
        dist = ColoringDistribution.exact_reds(4, 1)
        support = {w.coloring for w in dist.support}
        for _ in range(50):
            assert dist.sample(rng) in support

    def test_normalization(self):
        items = [
            WeightedColoring(Coloring(2, []), 3.0),
            WeightedColoring(Coloring(2, [1]), 1.0),
        ]
        dist = ColoringDistribution(2, items)
        probs = sorted(w.probability for w in dist.support)
        assert math.isclose(probs[0], 0.25) and math.isclose(probs[1], 0.75)

    def test_empty_distribution_rejected(self):
        with pytest.raises(ValueError):
            ColoringDistribution(2, [])

    def test_mismatched_universe_rejected(self):
        with pytest.raises(ValueError):
            ColoringDistribution(3, [WeightedColoring(Coloring(2, []), 1.0)])

    def test_uniform_helper(self):
        dist = ColoringDistribution.uniform([Coloring(2, []), Coloring(2, [1])])
        assert all(math.isclose(w.probability, 0.5) for w in dist.support)

    def test_product_distribution_size_limit(self):
        with pytest.raises(ValueError):
            ColoringDistribution.product(25, 0.5)


class TestRandomColoringStatistics:
    def test_red_fraction_concentrates(self):
        rng = random.Random(7)
        total_red = sum(
            len(Coloring.random(50, 0.3, rng).red_elements) for _ in range(400)
        )
        fraction = total_red / (50 * 400)
        assert abs(fraction - 0.3) < 0.03

    @given(p=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_red_and_green_partition_universe(self, p, seed):
        coloring = Coloring.random(12, p, random.Random(seed))
        assert coloring.red_elements | coloring.green_elements == frozenset(range(1, 13))
        assert not coloring.red_elements & coloring.green_elements
