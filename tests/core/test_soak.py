"""Randomized fault-plan soak: recovery is byte-exact under *any* plan.

The targeted fault tests pin one failure shape each; this suite draws
small fault plans at random (seeded, so failures reproduce) and asserts
the one invariant that must hold for every plan, stopping mode and
backend: the recovered run's statistics are byte-identical to a clean
run's.  Each backend draws from the fault pool it can actually survive —
``kill`` needs a respawnable process (the pool backend) or a networked
worker process, never an in-thread worker.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager

import pytest

from repro.algorithms import ProbeTree
from repro.core import engine
from repro.core.engine import stream_probes
from repro.distributed import Coordinator, run_worker
from repro.systems import build_system
from repro.testing import faults
from repro.testing.faults import Fault


@contextmanager
def _cluster(count: int, **coordinator_kwargs):
    """In-thread worker cluster (kills stay out of its fault pool)."""
    with Coordinator(**coordinator_kwargs) as coordinator:
        for index in range(count):
            threading.Thread(
                target=run_worker,
                args=(coordinator.addresses[0],),
                kwargs={
                    "heartbeat_interval": 0.05,
                    "reconnect_for": 5.0,
                    "name": f"soak-worker-{index}",
                },
                daemon=True,
            ).start()
        coordinator.wait_for_workers(count, timeout=30.0)
        yield coordinator


@pytest.fixture(autouse=True)
def _fast_backoff(monkeypatch):
    monkeypatch.setattr(engine, "_sleep", lambda seconds: None)


MODES = {
    "fixed": dict(trials=64, chunk_size=16),
    "adaptive": dict(target_ci=0.2, chunk_size=32, max_trials=4096),
}

#: (site, action, seconds) pools per backend.  Delays are short — the
#: soak exercises ordering and retry paths, not wall-clock behavior —
#: except the heartbeat delay, which must outlast the cluster's tight
#: lease timeout to actually trip an expiry.
_COMMON = [
    ("chunk", "raise", 0.0),
    ("chunk", "delay", 0.05),
]
_POOLS = {
    "sequential": _COMMON,
    "pool": _COMMON + [("chunk", "kill", 0.0)],
    "distributed": _COMMON
    + [
        ("worker-heartbeat", "delay", 2.0),
        ("worker-send", "drop", 0.0),
        ("worker-send", "corrupt", 0.0),
    ],
}


def _algorithm():
    return ProbeTree(build_system("tree", 2))


def _run(mode: str, **kwargs):
    return stream_probes(
        _algorithm(), p=0.2, seed=7, retries=5, **MODES[mode], **kwargs
    )


def _random_plan(backend: str, mode: str, seed: int) -> list[Fault]:
    rng = random.Random(seed)
    chunk = MODES[mode]["chunk_size"]
    starts = [index * chunk for index in range(4)]
    plan = []
    for _ in range(rng.randint(1, 2)):
        site, action, seconds = rng.choice(_POOLS[backend])
        plan.append(Fault(site, rng.choice(starts), action, seconds=seconds))
    return plan


def _same_statistics(a, b) -> bool:
    return (
        a.mean == b.mean
        and a.std == b.std
        and a.histogram == b.histogram
        and a.witness_red == b.witness_red
        and a.n_trials_used == b.n_trials_used
        and a.chunks == b.chunks
    )


@pytest.mark.parametrize("mode", sorted(MODES))
@pytest.mark.parametrize("seed", [0, 1, 2])
class TestSoak:
    def test_sequential(self, mode, seed, tmp_path):
        clean = _run(mode)
        plan = _random_plan("sequential", mode, seed)
        with faults.active_plan(plan, tmp_path):
            faulted = _run(mode)
        assert _same_statistics(faulted, clean), f"plan {plan} broke identity"

    def test_process_pool(self, mode, seed, tmp_path):
        clean = _run(mode)
        plan = _random_plan("pool", mode, seed)
        with faults.active_plan(plan, tmp_path):
            faulted = _run(mode, jobs=2)
        assert _same_statistics(faulted, clean), f"plan {plan} broke identity"

    def test_distributed(self, mode, seed, tmp_path):
        clean = _run(mode)
        plan = _random_plan("distributed", mode, seed)
        with faults.active_plan(plan, tmp_path):
            with _cluster(2, lease_timeout=0.5) as coordinator:
                faulted = _run(mode, coordinator=coordinator)
        assert _same_statistics(faulted, clean), f"plan {plan} broke identity"
