"""Tests for the unified coloring-source layer (:mod:`repro.core.distributions`).

Covers the registry contract, the scalar/batched agreement of every
registered source (exact invariants where the distribution has them,
frequency checks otherwise) and the source-aware estimator entry points.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import ProbeMaj, ProbeTree
from repro.core.batched import (
    estimate_average_source_batched,
    sample_red_matrix,
)
from repro.core.coloring import (
    Coloring,
    ColoringDistribution,
    WeightedColoring,
)
from repro.core.distributions import (
    AdversarialSource,
    BernoulliSource,
    ColoringSource,
    CorrelatedGroupsSource,
    FiniteSource,
    FixedCountSource,
    build_source,
    canonical_source_name,
    register_source,
    sample_bernoulli_matrix,
    source_names,
    source_specs,
)
from repro.core.estimator import estimate_average_probes
from repro.systems import HQS, MajoritySystem, TreeSystem, TriangSystem


def _column_frequencies(source: ColoringSource, trials: int, seed: int):
    """Per-element red frequencies of the scalar and batched paths."""
    generator = np.random.default_rng(seed)
    scalar = np.zeros(source.n, dtype=float)
    for _ in range(trials):
        coloring = source.sample(generator)
        for element in coloring.red_elements:
            scalar[element - 1] += 1.0
    scalar /= trials
    batched = source.sample_matrix(source.n, trials, np.random.default_rng(seed + 1))
    return scalar, batched.mean(axis=0)


class TestRegistry:
    def test_all_expected_sources_registered(self):
        names = source_names()
        for expected in (
            "bernoulli",
            "fixed_count",
            "correlated_groups",
            "adversarial",
            "majority_hard",
            "cw_hard",
            "tree_hard",
            "hqs_family_p",
        ):
            assert expected in names

    def test_unknown_name_lists_known_sources(self):
        with pytest.raises(ValueError, match="bernoulli"):
            build_source("no_such_source", MajoritySystem(5), 0.5)

    def test_aliases_resolve(self):
        system = HQS(2)
        assert build_source("hqs_hard", system, 0.5).name == "hqs_family_p"
        assert build_source("iid", system, 0.5).name == "bernoulli"

    def test_canonical_source_name_resolves_aliases_and_case(self):
        assert canonical_source_name("iid") == "bernoulli"
        assert canonical_source_name("Bernoulli") == "bernoulli"
        assert canonical_source_name("HQS_HARD") == "hqs_family_p"
        with pytest.raises(ValueError, match="coloring source"):
            canonical_source_name("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_source("bernoulli", lambda system, p: None)

    def test_rejected_registration_leaves_registry_untouched(self):
        names_before = source_names()
        with pytest.raises(ValueError, match="alias"):
            register_source(
                "brand_new_source", lambda system, p: None, aliases=("iid",)
            )
        assert source_names() == names_before

    def test_specs_carry_descriptions(self):
        for spec in source_specs():
            assert spec.description

    def test_hard_families_require_their_system(self):
        with pytest.raises(ValueError, match="majority_hard"):
            build_source("majority_hard", TreeSystem(2), 0.5)
        with pytest.raises(ValueError, match="tree_hard"):
            build_source("tree_hard", MajoritySystem(5), 0.5)
        with pytest.raises(ValueError, match="cw_hard"):
            build_source("cw_hard", MajoritySystem(5), 0.5)
        with pytest.raises(ValueError, match="hqs_family_p"):
            build_source("hqs_family_p", MajoritySystem(5), 0.5)


def _registered_cases():
    """One ``(name, system, p)`` instance per registered source family."""
    return [
        ("bernoulli", MajoritySystem(21), 0.3),
        ("fixed_count", MajoritySystem(21), 0.3),
        ("correlated_groups", TriangSystem(4), 0.4),
        ("adversarial", MajoritySystem(21), 0.3),
        ("majority_hard", MajoritySystem(9), 0.5),
        ("cw_hard", TriangSystem(4), 0.5),
        ("tree_hard", TreeSystem(3), 0.5),
        ("hqs_family_p", HQS(2), 0.5),
    ]


class TestSourceContract:
    @pytest.mark.parametrize(
        "name,system,p", _registered_cases(), ids=lambda case: str(case)[:24]
    )
    def test_matrix_shape_dtype_and_scalar_universe(self, name, system, p):
        source = build_source(name, system, p)
        assert source.n == system.n
        red = source.sample_matrix(system.n, 50, rng=7)
        assert red.shape == (50, system.n) and red.dtype == np.bool_
        coloring = source.sample(11)
        assert coloring.n == system.n

    @pytest.mark.parametrize(
        "name,system,p", _registered_cases(), ids=lambda case: str(case)[:24]
    )
    def test_universe_mismatch_rejected(self, name, system, p):
        source = build_source(name, system, p)
        with pytest.raises(ValueError):
            source.sample_matrix(system.n + 1, 10, rng=1)

    @pytest.mark.parametrize(
        "name,system,p", _registered_cases(), ids=lambda case: str(case)[:24]
    )
    def test_scalar_and_batched_column_frequencies_agree(self, name, system, p):
        source = build_source(name, system, p)
        trials = 1500
        scalar, batched = _column_frequencies(source, trials, seed=5)
        # Each column frequency is a binomial proportion; 5 sigma + slack.
        stderr = np.sqrt(np.maximum(batched * (1 - batched), 0.25 / trials) / trials)
        assert (np.abs(scalar - batched) < 5.0 * stderr + 0.05).all()


class TestBernoulliSource:
    def test_is_the_single_iid_sampler_implementation(self):
        # Dedup satellite: all four historical entry points draw the same
        # stream for the same seed.
        reference = sample_bernoulli_matrix(12, 0.3, 40, rng=9)
        assert (Coloring.random_batch(12, 0.3, 40, rng=9) == reference).all()
        assert (sample_red_matrix(12, 0.3, 40, rng=9) == reference).all()
        source = BernoulliSource(12, 0.3)
        assert (source.sample_matrix(12, 40, rng=9) == reference).all()

    def test_extremes(self):
        assert not BernoulliSource(8, 0.0).sample_matrix(8, 20, rng=1).any()
        assert BernoulliSource(8, 1.0).sample_matrix(8, 20, rng=1).all()

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            BernoulliSource(5, 1.5)
        with pytest.raises(ValueError):
            sample_bernoulli_matrix(5, -0.1, 4)


class TestFixedCountSource:
    def test_every_row_has_exactly_count_reds(self):
        source = FixedCountSource(30, 11)
        red = source.sample_matrix(30, 500, rng=3)
        assert (red.sum(axis=1) == 11).all()
        for seed in range(20):
            assert len(source.sample(seed).red_elements) == 11

    def test_subsets_are_uniform_over_elements(self):
        source = FixedCountSource(10, 3)
        red = source.sample_matrix(10, 6000, rng=5)
        frequency = red.mean(axis=0)
        assert np.abs(frequency - 0.3).max() < 0.03

    def test_edge_counts(self):
        assert not FixedCountSource(6, 0).sample_matrix(6, 10, rng=1).any()
        assert FixedCountSource(6, 6).sample_matrix(6, 10, rng=1).all()
        with pytest.raises(ValueError):
            FixedCountSource(6, 7)


class TestCorrelatedGroupsSource:
    def test_groups_fail_atomically_in_both_paths(self):
        groups = [{1, 2, 3}, {4, 5}, {7, 8}]
        source = CorrelatedGroupsSource(8, groups, 0.5)
        red = source.sample_matrix(8, 400, rng=2)
        for group in groups:
            columns = np.asarray(sorted(group)) - 1
            per_row = red[:, columns].sum(axis=1)
            assert set(per_row.tolist()) <= {0, len(group)}
        assert not red[:, 5].any()  # element 6 is in no group
        for seed in range(30):
            failed = source.sample(seed).red_elements
            for group in groups:
                assert failed & group in (frozenset(), frozenset(group))

    def test_group_failure_rate(self):
        source = CorrelatedGroupsSource(6, [{1, 2}, {3, 4, 5}], 0.25)
        red = source.sample_matrix(6, 8000, rng=4)
        rate = red[:, 0].mean()
        assert abs(rate - 0.25) < 0.02

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            CorrelatedGroupsSource(5, [{1}], 1.5)
        with pytest.raises(ValueError):
            CorrelatedGroupsSource(5, [{9}], 0.5)

    def test_registry_factory_uses_rows_when_they_are_groups(self):
        wall = TriangSystem(3)
        source = build_source("correlated_groups", wall, 0.5)
        assert {frozenset(row) for row in wall.rows} == set(source.groups)

    def test_registry_factory_falls_back_on_non_group_rows(self):
        from repro.systems import GridSystem

        # GridSystem.rows is a row *count*, not a grouping: the factory
        # must fall back to contiguous blocks instead of crashing.
        grid = GridSystem(5)
        source = build_source("correlated_groups", grid, 0.5)
        assert sorted(e for group in source.groups for e in group) == list(
            range(1, grid.n + 1)
        )
        red = source.sample_matrix(grid.n, 50, rng=1)
        assert red.shape == (50, grid.n)


class TestAdversarialSource:
    def test_every_draw_is_the_fixed_set(self):
        source = AdversarialSource(7, {2, 5})
        red = source.sample_matrix(7, 25, rng=1)
        expected = np.zeros(7, dtype=bool)
        expected[[1, 4]] = True
        assert (red == expected).all()
        assert source.sample().red_elements == {2, 5}

    def test_matrix_rows_are_independent_copies(self):
        red = AdversarialSource(4, {1}).sample_matrix(4, 3, rng=1)
        red[0, 3] = True  # must not alias other rows
        assert not red[1, 3] and not red[2, 3]

    def test_out_of_universe_rejected(self):
        with pytest.raises(ValueError):
            AdversarialSource(4, {5})


class TestFiniteSource:
    def _distribution(self):
        colorings = [Coloring(4, red) for red in ([], [1], [1, 2], [1, 2, 3])]
        weights = [0.4, 0.3, 0.2, 0.1]
        return ColoringDistribution(
            4,
            [WeightedColoring(c, w) for c, w in zip(colorings, weights)],
        )

    def test_matrix_rows_stay_in_support_with_right_frequencies(self):
        distribution = self._distribution()
        source = FiniteSource(distribution)
        trials = 8000
        red = source.sample_matrix(4, trials, rng=6)
        support = {w.coloring: w.probability for w in distribution.support}
        counts: dict[Coloring, int] = {}
        for t in range(trials):
            coloring = Coloring.from_red_row(red[t])
            assert coloring in support
            counts[coloring] = counts.get(coloring, 0) + 1
        for coloring, probability in support.items():
            stderr = np.sqrt(probability * (1 - probability) / trials)
            assert abs(counts.get(coloring, 0) / trials - probability) < 5 * stderr + 1e-3

    def test_scalar_sample_matches_distribution_sample(self):
        distribution = self._distribution()
        source = FiniteSource(distribution)
        for seed in range(25):
            assert len(source.sample(seed).red_elements) <= 3

    def test_cdf_is_monotone_and_normalized(self):
        cdf = self._distribution().cdf
        assert all(b >= a for a, b in zip(cdf, cdf[1:]))
        assert abs(cdf[-1] - 1.0) < 1e-12


class TestSourceAwareEstimators:
    def test_batched_and_scalar_estimates_agree(self):
        system = MajoritySystem(21)
        source = FixedCountSource(system.n, 8)
        batched = estimate_average_source_batched(
            ProbeMaj(system), source, trials=3000, seed=11
        )
        scalar = estimate_average_probes(
            ProbeMaj(system), source=source, trials=3000, seed=13
        )
        assert abs(batched.mean - scalar.mean) < batched.ci95 + scalar.ci95 + 0.2

    def test_estimate_average_probes_requires_p_or_source(self):
        with pytest.raises(ValueError):
            estimate_average_probes(ProbeMaj(MajoritySystem(5)))

    def test_estimate_rejects_mismatched_source(self):
        with pytest.raises(ValueError):
            estimate_average_probes(
                ProbeMaj(MajoritySystem(5)),
                source=BernoulliSource(7, 0.5),
                trials=10,
            )

    def test_source_path_matches_p_path_for_bernoulli_batched(self):
        # Same seed, same stream: the p shorthand is the Bernoulli source.
        system = TreeSystem(4)
        via_p = estimate_average_probes(
            ProbeTree(system), 0.4, trials=500, seed=3, batched=True
        )
        via_source = estimate_average_probes(
            ProbeTree(system),
            source=BernoulliSource(system.n, 0.4),
            trials=500,
            seed=3,
            batched=True,
        )
        assert via_p == via_source
